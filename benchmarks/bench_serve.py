"""Broadcast fan-out economics: render once, serve a fleet.

The claim under test is ``repro.serve``'s reason to exist: a carousel
session renders exactly one steady-state cycle of emitted fields, and
every receiver after that is a cache hit -- so serving N receivers costs
one cycle of rendering plus N decodes, where the naive architecture
re-renders the emitted stream once per receiver.

The benchmark runs a fleet against one :class:`BroadcastSession` and
reports the **reuse ratio**: fan-out render-cache reads divided by
fields actually rendered.  Every one of those reads would have been a
render under per-receiver re-rendering, so the ratio *is* the render
cost multiplier of the naive design.  To keep the wall-clock claim
honest the benchmark also times real re-rendering on a small sample of
fresh (un-memoized) :class:`DisplayTimeline`\\ s and projects what the
full fleet would have paid.

The render-cache hit/miss counters also flow through ``repro.obs`` --
the benchmark asserts the exported metrics agree with the report, so
the standing CI artifact carries the same numbers a fleet operator
would see in telemetry.

Run as a script::

    PYTHONPATH=src python benchmarks/bench_serve.py --out serve.json
    PYTHONPATH=src python benchmarks/bench_serve.py --quick

or under pytest (quick mode -- this is what CI smoke-runs)::

    pytest benchmarks/bench_serve.py --benchmark-only
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

from repro.tools.perf import bench_envelope

from repro.analysis.experiments import ExperimentScale
from repro.display.scheduler import DisplayTimeline
from repro.serve import (
    BroadcastSession,
    deterministic_payload,
    parse_cohorts,
    run_fleet,
)

#: The acceptance fleet: 256 receivers across a near and a far cohort.
STANDARD_RECEIVERS = 256
QUICK_RECEIVERS = 16
#: Fresh timelines timed for the re-render projection.
BASELINE_SAMPLE = 2
#: The acceptance bar: emitted-frame reuse at the standard fleet size.
REUSE_RATIO_BAR = 10.0


def _cohort_spec(n_receivers: int, dwell_s: float) -> str:
    near = n_receivers - n_receivers // 4
    far = n_receivers - near
    spec = f"near:n={near},join_spread=0.6,dwell={dwell_s}"
    if far:
        spec += f"|far:n={far},distance=1.3,join_spread=0.6,dwell={dwell_s}"
    return spec


def measure_fleet(
    n_receivers: int = STANDARD_RECEIVERS,
    dwell_s: float = 2.5,
    payload_bytes: int = 64,
    seed: int = 1,
    workers: int | None = None,
) -> dict:
    """Serve one payload to *n_receivers*; return the reuse record."""
    scale = ExperimentScale.quick()
    config = scale.config(amplitude=20.0)
    with BroadcastSession(
        config, scale.video("gray"), deterministic_payload(payload_bytes), session_id=1
    ) as session:
        cohorts = parse_cohorts(_cohort_spec(n_receivers, dwell_s))
        wall0 = time.perf_counter()
        fleet = run_fleet(
            session, cohorts, base_camera=scale.camera(), seed=seed, workers=workers
        )
        fleet_s = time.perf_counter() - wall0
        report = fleet.report
        metrics = fleet.telemetry.metrics

        # What per-receiver re-rendering would cost: every cache read
        # becomes a render on a private timeline.  Time a small sample
        # of fresh timelines over one cycle to price a field render.
        memo = session.prepare(session.cycle_s)
        period = session.period_frames
        sample_fields = 0
        wall0 = time.perf_counter()
        for _ in range(BASELINE_SAMPLE):
            fresh = DisplayTimeline(session.panel, memo.inner.source)
            for index in range(period, 2 * period):
                fresh.frame_average_luminance(index)
                sample_fields += 1
        baseline_s = time.perf_counter() - wall0
        per_field_s = baseline_s / sample_fields

        return {
            "bench": "serve",
            "scale": "quick",
            "payload_bytes": payload_bytes,
            "seed": seed,
            "workers": workers,
            "n_receivers": n_receivers,
            "dwell_s": dwell_s,
            "k": session.k,
            "cycle_packets": session.cycle_packets,
            "period_frames": period,
            "cycle_s": session.cycle_s,
            "fleet": {
                "elapsed_s": fleet_s,
                "delivery_rate": report.delivery_rate,
                "render_reads": report.render_reads,
                "renders": report.renders,
                "reuse_ratio": report.reuse_ratio,
                "obs_cache_hits": metrics["serve.render_cache.hits"]["value"],
                "obs_cache_misses": metrics["serve.render_cache.misses"]["value"],
                "obs_renders": metrics["serve.render_cache.renders"]["value"],
            },
            "rerender_baseline": {
                "sample_timelines": BASELINE_SAMPLE,
                "sample_fields": sample_fields,
                "per_field_s": per_field_s,
                "projected_fleet_render_s": per_field_s * report.render_reads,
                "session_render_s": per_field_s * report.renders,
            },
        }


def format_report(record: dict) -> str:
    """The human-readable table printed next to the JSON."""
    fleet = record["fleet"]
    base = record["rerender_baseline"]
    return "\n".join(
        [
            f"serve fan-out: {record['n_receivers']} receivers, "
            f"{record['payload_bytes']} B payload, "
            f"cycle {record['cycle_packets']} packets "
            f"({record['period_frames']} frames, {record['cycle_s']:.2f} s)",
            f"  fleet wall clock   {fleet['elapsed_s']:9.2f} s  "
            f"(delivery {fleet['delivery_rate'] * 100:.0f}%)",
            f"  fields rendered    {fleet['renders']:9d}     "
            f"(one steady-state cycle)",
            f"  cache reads        {fleet['render_reads']:9d}",
            f"  reuse ratio        {fleet['reuse_ratio']:9.1f}x",
            f"  re-render baseline {base['projected_fleet_render_s']:9.2f} s "
            f"render time projected from {base['sample_timelines']} fresh "
            f"timelines ({base['per_field_s'] * 1e3:.2f} ms/field)",
        ]
    )


# ----------------------------------------------------------------------
# pytest entry point (quick mode -- this is what CI smoke-runs)
# ----------------------------------------------------------------------
def test_serve_render_reuse(benchmark, emit, results_dir):
    from conftest import run_once

    record = run_once(benchmark, lambda: measure_fleet(QUICK_RECEIVERS))
    emit("bench_serve_quick", format_report(record))
    bench_envelope(record, bench="serve", quick=True)
    with open(os.path.join(results_dir, "bench_serve_quick.json"), "w") as f:
        json.dump(record, f, indent=2)
    fleet = record["fleet"]
    # The acceptance bar holds already at the quick fleet size; the
    # 256-receiver script run only pushes the ratio higher.
    assert fleet["reuse_ratio"] >= REUSE_RATIO_BAR
    # The session rendered exactly one steady-state cycle, nothing more.
    assert fleet["renders"] == record["period_frames"]
    # The exported obs counters are the report's numbers, not a parallel
    # bookkeeping that could drift.
    assert fleet["obs_cache_hits"] == fleet["render_reads"]
    assert fleet["obs_renders"] == fleet["renders"]
    assert fleet["delivery_rate"] >= 0.9


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--quick", action="store_true", help=f"{QUICK_RECEIVERS}-receiver fleet"
    )
    parser.add_argument("--receivers", type=int, default=None)
    parser.add_argument("--workers", type=int, default=None)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--out", default=None, help="write the JSON record here")
    args = parser.parse_args(argv)
    n_receivers = args.receivers or (
        QUICK_RECEIVERS if args.quick else STANDARD_RECEIVERS
    )
    record = measure_fleet(n_receivers, seed=args.seed, workers=args.workers)
    print(format_report(record))
    if args.out:
        bench_envelope(record, bench="serve", quick=n_receivers <= QUICK_RECEIVERS)
        with open(args.out, "w") as f:
            json.dump(record, f, indent=2)
        print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
