"""Figure 3: why the naive designs fail and complementary frames do not.

The paper's Figure 3 walks through the insertion patterns the authors
tried first -- V D1 D2 D3, V D V D, V V D D, V V V D -- and reports
"severe flickers" for all of them.  This benchmark plays each naive stream
and the InFrame stream on the same panel, scores them with the simulated
user panel, and checks the paper's verdict: every naive design is rated
as evident-to-strong flicker while InFrame stays satisfactory.
"""

from __future__ import annotations

import pytest

from repro.analysis.experiments import FLICKER_PANEL, flicker_config
from repro.analysis.reporting import format_table
from repro.analysis.userstudy import SimulatedPanel
from repro.baselines.naive import NaiveDesign, NaiveScheme
from repro.core.framing import PseudoRandomSchedule
from repro.core.pipeline import InFrameSender
from repro.display.panel import DisplayPanel
from repro.display.scheduler import DisplayTimeline
from repro.video.synthetic import pure_color_video

from conftest import run_once

DURATION_S = 0.4


@pytest.fixture(scope="module")
def study_results():
    height, width = FLICKER_PANEL["height"], FLICKER_PANEL["width"]
    config = flicker_config(delta=20.0, tau=12)
    video = pure_color_video(height, width, 127.0, n_frames=30)
    display = DisplayPanel(width=width, height=height, refresh_hz=120.0)
    panel = SimulatedPanel()
    schedule = PseudoRandomSchedule(config)

    results = {}
    for design in NaiveDesign:
        stream = NaiveScheme(config, video, schedule, design)
        timeline = DisplayTimeline(display, stream)
        results[design.value] = panel.study(timeline, DURATION_S, stimulus_seed=hash(design.value) % 997)
    sender = InFrameSender(config, video, schedule=schedule)
    results["InFrame (complementary)"] = panel.study(sender.timeline(), DURATION_S)
    return results


def test_fig3_naive_designs(benchmark, emit, study_results):
    rows = [
        [name, f"{result.mean_score:.2f} +/- {result.std_score:.2f}",
         "satisfactory" if result.satisfactory else "flickers"]
        for name, result in study_results.items()
    ]
    emit(
        "fig3_naive_designs",
        format_table(
            ["scheme", "flicker score (0-4)", "verdict"],
            rows,
            title="Figure 3: naive frame-insertion designs vs InFrame (delta=20, gray video)",
        ),
    )
    height, width = FLICKER_PANEL["height"], FLICKER_PANEL["width"]
    config = flicker_config(delta=20.0, tau=12)
    video = pure_color_video(height, width, 127.0, n_frames=15)
    run_once(
        benchmark,
        lambda: SimulatedPanel().study(
            InFrameSender(config, video).timeline(), 0.2
        ),
    )

    inframe = study_results["InFrame (complementary)"]
    assert inframe.satisfactory
    assert inframe.mean_score < 1.0

    # Every naive design shows "severe flickers" (evident or worse).
    for design in NaiveDesign:
        result = study_results[design.value]
        assert result.mean_score >= 2.5, (design, result.mean_score)
        assert result.mean_score > inframe.mean_score + 1.5

    # The aggressive design (three data frames per video frame) is at
    # least as bad as the gentlest ratio.
    assert (
        study_results[NaiveDesign.AGGRESSIVE.value].mean_score
        >= study_results[NaiveDesign.RATIO_3_1.value].mean_score - 0.5
    )
