"""Ablations over the design choices DESIGN.md calls out.

The paper's Section 5 names Block size (s), amplitude (delta) and
smoothing cycle (tau) as the throughput trade-off dimensions, and
Section 3 chooses the chessboard pattern, the SRRC envelope and per-Block
parity.  Each ablation here swaps one choice and measures the end-to-end
consequence on the same link.
"""

from __future__ import annotations

import pytest

from repro.analysis.experiments import ExperimentScale
from repro.analysis.reporting import format_table
from repro.core.pipeline import run_link
from repro.core.decoder import InFrameDecoder
from repro.core.metrics import summarize_link

from conftest import run_once

SCALE = ExperimentScale.benchmark()


def _run(config, video_name="gray", seed=1):
    return run_link(config, SCALE.video(video_name), camera=SCALE.camera(), seed=seed)


@pytest.fixture(scope="module")
def pattern_results():
    results = {}
    for pattern in ("chessboard", "stripes", "random"):
        config = SCALE.config(amplitude=20.0, tau=12).with_updates(pattern=pattern)
        results[pattern] = _run(config).stats
    return results


def test_ablation_pattern(benchmark, emit, pattern_results):
    rows = [
        [name, f"{stats.bit_accuracy * 100:.1f}%", f"{stats.throughput_kbps:.2f}"]
        for name, stats in pattern_results.items()
    ]
    emit(
        "ablation_pattern",
        format_table(
            ["pattern", "bit accuracy", "throughput kbps"],
            rows,
            title="Ablation: modulation pattern (gray carrier, delta=20, tau=12)",
        ),
    )
    config = SCALE.config(amplitude=20.0, tau=12)
    run_once(benchmark, lambda: _run(config).stats)

    # The chessboard's all-high-frequency spectrum is the point: it must
    # beat the low-frequency stripes under the smooth-subtract detector.
    assert (
        pattern_results["chessboard"].bit_accuracy
        >= pattern_results["stripes"].bit_accuracy
    )
    assert pattern_results["chessboard"].bit_accuracy > 0.9


@pytest.fixture(scope="module")
def waveform_results():
    results = {}
    for waveform in ("srrc", "linear", "stair"):
        config = SCALE.config(amplitude=20.0, tau=12).with_updates(waveform=waveform)
        results[waveform] = _run(config).stats
    return results


def test_ablation_waveform_throughput(benchmark, emit, waveform_results):
    rows = [
        [name, f"{stats.available_gob_ratio * 100:.1f}%", f"{stats.throughput_kbps:.2f}"]
        for name, stats in waveform_results.items()
    ]
    emit(
        "ablation_waveform",
        format_table(
            ["envelope", "available GOBs", "throughput kbps"],
            rows,
            title="Ablation: smoothing envelope's effect on the data channel",
        ),
    )
    config = SCALE.config(amplitude=20.0, tau=12).with_updates(waveform="stair")
    run_once(benchmark, lambda: _run(config).stats)

    # Smoothing costs little data-channel performance: every envelope stays
    # within ~20% of the best throughput (its benefit is perceptual).
    best = max(stats.throughput_kbps for stats in waveform_results.values())
    for name, stats in waveform_results.items():
        assert stats.throughput_kbps > 0.8 * best, name


@pytest.fixture(scope="module")
def block_size_results():
    results = {}
    for s in (2, 3, 4):
        config = SCALE.config(amplitude=20.0, tau=12).with_updates(pixels_per_block=s)
        results[s] = _run(config).stats
    return results


def test_ablation_block_size(benchmark, emit, block_size_results):
    rows = [
        [
            s,
            f"{stats.bits_per_frame}",
            f"{stats.available_gob_ratio * 100:.1f}%",
            f"{stats.gob_error_rate * 100:.1f}%",
            f"{stats.throughput_kbps:.2f}",
        ]
        for s, stats in block_size_results.items()
    ]
    emit(
        "ablation_block_size",
        format_table(
            ["s (Pixels/Block)", "bits/frame", "avail", "err", "throughput kbps"],
            rows,
            title="Ablation: Block size s -- the paper's capacity/robustness tradeoff",
        ),
    )
    config = SCALE.config(amplitude=20.0, tau=12).with_updates(pixels_per_block=2)
    run_once(benchmark, lambda: _run(config).stats)

    # Same Block *grid*, so bits/frame is constant here; what s buys is
    # robustness: bigger Blocks average more camera pixels per decision.
    accuracies = {s: stats.bit_accuracy for s, stats in block_size_results.items()}
    assert accuracies[4] >= accuracies[2]


@pytest.fixture(scope="module")
def aggregation_results():
    config = SCALE.config(amplitude=20.0, tau=12)
    video = SCALE.video("gray")
    camera = SCALE.camera()
    out = {}
    for aggregation in ("max", "mean"):
        run = run_link(config, video, camera=camera, seed=1)
        decoder = InFrameDecoder(
            config, run.sender.geometry, camera.height, camera.width,
            aggregation=aggregation,
        )
        decoded_all = decoder.decode(run.captures)
        last = max(d.index for d in run.decoded)
        decoded = [d for d in decoded_all if 1 <= d.index <= last]
        truths = [run.sender.stream.ground_truth(d.index) for d in decoded]
        out[aggregation] = summarize_link(truths, decoded, config)
    return out


def test_ablation_capture_aggregation(benchmark, emit, aggregation_results):
    rows = [
        [name, f"{stats.bit_accuracy * 100:.2f}%", f"{stats.available_gob_ratio * 100:.1f}%"]
        for name, stats in aggregation_results.items()
    ]
    emit(
        "ablation_aggregation",
        format_table(
            ["aggregation", "bit accuracy", "available GOBs"],
            rows,
            title="Ablation: multi-capture evidence aggregation",
        ),
    )
    config = SCALE.config(amplitude=20.0, tau=12)
    run_once(benchmark, lambda: _run(config).stats)

    # Max-aggregation recovers rolling-shutter-cancelled Blocks that the
    # stability-weighted mean dilutes.
    assert (
        aggregation_results["max"].bit_accuracy
        >= aggregation_results["mean"].bit_accuracy
    )


@pytest.fixture(scope="module")
def clip_mode_results():
    results = {}
    for mode in ("pixel", "block"):
        config = SCALE.config(amplitude=30.0, tau=12).with_updates(clip_mode=mode)
        results[mode] = _run(config, video_name="video").stats
    return results


def test_ablation_clip_mode(benchmark, emit, clip_mode_results):
    rows = [
        [name, f"{stats.bit_accuracy * 100:.1f}%", f"{stats.throughput_kbps:.2f}"]
        for name, stats in clip_mode_results.items()
    ]
    emit(
        "ablation_clip_mode",
        format_table(
            ["clip mode", "bit accuracy", "throughput kbps"],
            rows,
            title="Ablation: local amplitude adjustment granularity (sunrise, delta=30)",
        ),
    )
    config = SCALE.config(amplitude=30.0, tau=12).with_updates(clip_mode="block")
    run_once(benchmark, lambda: _run(config, video_name="video").stats)

    # Per-pixel clipping preserves more amplitude on high-contrast content.
    assert (
        clip_mode_results["pixel"].bit_accuracy
        >= clip_mode_results["block"].bit_accuracy - 0.02
    )
