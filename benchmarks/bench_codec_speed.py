"""Computational-cost benchmarks (the paper's Section 5 open question).

"What are the associated computational cost and energy overhead?" --
these benches time the hot paths with real repetitions (unlike the
figure benches, which run once): frame multiplexing, block noise
extraction, Reed-Solomon coding, and the HVS scoring pass.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.experiments import ExperimentScale
from repro.camera.capture import CameraModel
from repro.core.decoder import InFrameDecoder
from repro.core.framing import PseudoRandomSchedule
from repro.core.multiplexer import MultiplexedStream
from repro.core.pipeline import InFrameSender
from repro.ecc.reed_solomon import ReedSolomonCodec
from repro.hvs.flicker import FlickerPredictor

SCALE = ExperimentScale.benchmark()


@pytest.fixture(scope="module")
def sender():
    config = SCALE.config(amplitude=20.0, tau=12)
    return InFrameSender(config, SCALE.video("gray"))


def test_speed_multiplex_frame(benchmark, sender):
    """Render one multiplexed 960x540 display frame."""
    counter = iter(range(10**9))

    def render():
        return sender.stream.frame(next(counter) % sender.stream.n_frames)

    frame = benchmark(render)
    assert frame.shape == (540, 960)
    # Real-time budget context: 120 FPS needs < 8.3 ms per frame.


def test_speed_block_noise_map(benchmark, sender):
    """Extract one capture's Block noise map (the decoder's hot path)."""
    config = sender.config
    camera = SCALE.camera()
    decoder = InFrameDecoder(config, sender.geometry, camera.height, camera.width)
    capture = camera.capture_frame(sender.timeline(), 1, rng=np.random.default_rng(0))

    noise = benchmark(decoder.block_noise_map, capture.pixels)
    assert noise.shape == (config.block_rows, config.block_cols)


def test_speed_rs_encode(benchmark):
    """Encode 1 kB of payload with RS(60, 40)."""
    codec = ReedSolomonCodec(60, 40)
    chunks = [bytes(range(40))] * 25  # 1000 message bytes

    def encode_all():
        return [codec.encode(chunk) for chunk in chunks]

    words = benchmark(encode_all)
    assert len(words) == 25


def test_speed_rs_decode_with_errors(benchmark):
    """Decode RS(60, 40) codewords carrying 5 byte errors each."""
    codec = ReedSolomonCodec(60, 40)
    word = bytearray(codec.encode(bytes(range(40))))
    for position in (3, 11, 25, 44, 59):
        word[position] ^= 0xA5
    corrupted = bytes(word)

    decoded, fixed = benchmark(codec.decode, corrupted)
    assert fixed == 5


def test_speed_flicker_scoring(benchmark):
    """Score 0.25 s of a multiplexed stream with the HVS model."""
    from repro.analysis.experiments import flicker_timeline

    timeline = flicker_timeline(20.0, 12, 127.0, n_video_frames=8)
    predictor = FlickerPredictor()

    report = benchmark(predictor.report, timeline, 0.25)
    assert 0.0 <= report.score <= 4.0


def test_speed_camera_capture(benchmark, sender):
    """Capture one camera frame (rolling shutter + optics + sensor)."""
    camera = SCALE.camera()
    timeline = sender.timeline()
    rng = np.random.default_rng(0)
    counter = iter(range(10**9))

    def capture():
        return camera.capture_frame(timeline, next(counter) % 8, rng=rng)

    frame = benchmark(capture)
    assert frame.pixels.shape == (camera.height, camera.width)
