"""Runtime engine throughput: worker-count sweep on the standard gray link.

The reference workload is the 64-frame gray-video link at benchmark
scale (the clip every Figure-7 gray cell uses, lengthened to 64 content
frames so the pool has enough captures to amortise its fork cost).  The
sweep runs it serially and at increasing worker counts, checks that
every parallel run decodes *bit-identically* to serial, and writes a
machine-readable throughput record -- the repo's first standing perf
datapoint (CI runs the quick mode on every PR and uploads the JSON).

Expectations scale with the hardware: per-worker CPU overhead is the
per-chunk timeline-cache warmup (~25-30 % at 4 workers), so a >= 2x
wall-clock speedup at ``--workers 4`` needs >= 4 usable cores.  On
fewer cores the sweep still validates determinism and records the
honest numbers; the speedup assertion is gated on the visible CPU
count, never faked.

Run as a script::

    PYTHONPATH=src python benchmarks/bench_runtime.py --quick --out runtime.json

or under pytest (quick mode)::

    pytest benchmarks/bench_runtime.py --benchmark-only
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time
from dataclasses import replace

import numpy as np

from repro.analysis.experiments import ExperimentScale
from repro.core.pipeline import run_link
from repro.obs.live import LiveCollector, install_live
from repro.tools.perf import bench_envelope, usable_cpus

#: The acceptance workload: 64 gray content frames at benchmark scale.
STANDARD_FRAMES = 64
STANDARD_WORKER_COUNTS = (1, 2, 4)


def sweep_runtime(
    scale_name: str = "benchmark",
    n_video_frames: int = STANDARD_FRAMES,
    worker_counts: tuple[int, ...] = STANDARD_WORKER_COUNTS,
    seed: int = 1,
) -> dict:
    """Run the gray link once per worker count; return the throughput record."""
    scale = replace(
        getattr(ExperimentScale, scale_name)(), n_video_frames=n_video_frames
    )
    config = scale.config(amplitude=20.0, tau=12)
    video = scale.video("gray")
    camera = scale.camera()

    runs = []
    reference = None
    for workers in worker_counts:
        wall0 = time.perf_counter()
        run = run_link(
            config,
            video,
            camera=camera,
            seed=seed,
            workers=None if workers <= 1 else workers,
        )
        elapsed_s = time.perf_counter() - wall0
        if reference is None:
            reference = run
        identical = run.stats == reference.stats and all(
            np.array_equal(a.pixels, b.pixels)
            for a, b in zip(run.captures, reference.captures)
        )
        report = run.runtime
        runs.append(
            {
                "workers": workers,
                "mode": report.mode,
                "elapsed_s": elapsed_s,
                "frames": len(run.captures),
                "frames_per_s": len(run.captures) / elapsed_s,
                "bits_per_s": report.bits / elapsed_s,
                "speedup_vs_serial": runs[0]["elapsed_s"] / elapsed_s if runs else 1.0,
                "bit_identical_to_serial": bool(identical),
                "retries": report.retries,
                "stages": report.stages,
            }
        )
    return {
        "bench": "runtime",
        "scale": scale_name,
        "n_video_frames": n_video_frames,
        "seed": seed,
        "usable_cpus": usable_cpus(),
        "throughput_kbps": reference.stats.throughput_kbps,
        "runs": runs,
    }


def format_report(record: dict) -> str:
    """The human-readable table printed next to the JSON."""
    lines = [
        f"runtime sweep: {record['scale']} scale, "
        f"{record['n_video_frames']} content frames, "
        f"{record['usable_cpus']} usable CPUs",
        f"{'workers':>8s} {'mode':>16s} {'elapsed':>9s} {'frames/s':>9s} "
        f"{'speedup':>8s} {'identical':>10s}",
    ]
    for run in record["runs"]:
        lines.append(
            f"{run['workers']:8d} {run['mode']:>16s} {run['elapsed_s']:8.2f}s "
            f"{run['frames_per_s']:9.1f} {run['speedup_vs_serial']:7.2f}x "
            f"{'yes' if run['bit_identical_to_serial'] else 'NO':>10s}"
        )
    return "\n".join(lines)


def measure_telemetry_overhead(
    scale_name: str = "quick",
    n_video_frames: int = 32,
    seed: int = 1,
    repeats: int = 3,
) -> dict:
    """Serial-link wall clock with telemetry collection off vs on.

    Uses best-of-*repeats* timings (the standard noise filter for
    micro-overheads) after one warmup run; the ratio is the cost of the
    ``repro.obs`` spans, counters and histogram fills along the
    pipeline.  The "on" leg also runs a 1 Hz live snapshot collector
    streaming to disk -- the full observability stack a ``--snapshot-out``
    run pays for -- so the budget covers live telemetry too.
    """
    scale = replace(
        getattr(ExperimentScale, scale_name)(), n_video_frames=n_video_frames
    )
    config = scale.config(amplitude=20.0, tau=12)
    video = scale.video("gray")
    camera = scale.camera()

    def one(collect: bool) -> float:
        wall0 = time.perf_counter()
        run_link(config, video, camera=camera, seed=seed, collect_telemetry=collect)
        return time.perf_counter() - wall0

    def one_live() -> float:
        with tempfile.TemporaryDirectory() as tmp:
            collector = LiveCollector(
                interval_s=1.0, snapshot_path=os.path.join(tmp, "live.jsonl")
            )
            install_live(collector)
            try:
                with collector:
                    return one(True)
            finally:
                install_live(None)

    one(False)  # warmup: caches, imports
    off_s = min(one(False) for _ in range(repeats))
    on_s = min(one_live() for _ in range(repeats))
    return {
        "scale": scale_name,
        "n_video_frames": n_video_frames,
        "repeats": repeats,
        "telemetry_off_s": off_s,
        "telemetry_on_s": on_s,
        "overhead_ratio": max(0.0, on_s / off_s - 1.0),
    }


# ----------------------------------------------------------------------
# pytest entry point (quick mode -- this is what CI smoke-runs)
# ----------------------------------------------------------------------
def test_runtime_worker_sweep(benchmark, emit, results_dir):
    from conftest import run_once

    record = run_once(
        benchmark,
        lambda: sweep_runtime(
            scale_name="quick", n_video_frames=32, worker_counts=(1, 2, 4)
        ),
    )
    emit("bench_runtime_quick", format_report(record))
    bench_envelope(record, bench="runtime", quick=True)
    with open(os.path.join(results_dir, "bench_runtime_quick.json"), "w") as f:
        json.dump(record, f, indent=2)
    # The determinism contract holds on any machine.
    assert all(run["bit_identical_to_serial"] for run in record["runs"])
    # Wall-clock wins need real cores; only then is the 2x bar meaningful.
    if record["usable_cpus"] >= 4:
        by_workers = {run["workers"]: run for run in record["runs"]}
        assert by_workers[4]["speedup_vs_serial"] >= 1.5


def test_telemetry_overhead_within_budget(benchmark, emit, results_dir):
    from conftest import run_once

    record = run_once(benchmark, lambda: measure_telemetry_overhead())
    emit(
        "bench_telemetry_overhead",
        f"telemetry overhead: off={record['telemetry_off_s']:.3f}s "
        f"on={record['telemetry_on_s']:.3f}s "
        f"(+{record['overhead_ratio'] * 100:.2f}%)",
    )
    bench_envelope(record, bench="telemetry_overhead", quick=True)
    with open(os.path.join(results_dir, "bench_telemetry_overhead.json"), "w") as f:
        json.dump(record, f, indent=2)
    # The observability budget: collection costs at most 5% wall clock.
    assert record["overhead_ratio"] <= 0.05


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="benchmarks/bench_runtime.py",
        description="Sweep worker counts on the standard gray-video link.",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="quick scale with 32 content frames (the CI smoke mode)",
    )
    parser.add_argument(
        "--frames", type=int, default=None, help="content frames (default 64, quick 32)"
    )
    parser.add_argument(
        "--workers",
        type=int,
        nargs="+",
        default=list(STANDARD_WORKER_COUNTS),
        help="worker counts to sweep (1 = serial reference)",
    )
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument(
        "--out",
        default=os.path.join(os.path.dirname(__file__), "results", "bench_runtime.json"),
        help="where the throughput JSON goes",
    )
    args = parser.parse_args(argv)
    scale_name = "quick" if args.quick else "benchmark"
    n_frames = args.frames if args.frames is not None else (32 if args.quick else STANDARD_FRAMES)
    record = sweep_runtime(
        scale_name=scale_name,
        n_video_frames=n_frames,
        worker_counts=tuple(args.workers),
        seed=args.seed,
    )
    overhead = measure_telemetry_overhead(
        scale_name=scale_name, n_video_frames=min(n_frames, 32), seed=args.seed
    )
    record["telemetry_overhead"] = overhead
    print(format_report(record))
    print(
        f"telemetry overhead: off={overhead['telemetry_off_s']:.3f}s "
        f"on={overhead['telemetry_on_s']:.3f}s "
        f"(+{overhead['overhead_ratio'] * 100:.2f}%)"
    )
    bench_envelope(record, bench="runtime", quick=args.quick)
    os.makedirs(os.path.dirname(os.path.abspath(args.out)), exist_ok=True)
    with open(args.out, "w") as f:
        json.dump(record, f, indent=2)
    print(f"wrote {args.out}")
    if not all(run["bit_identical_to_serial"] for run in record["runs"]):
        print("FAIL: parallel output diverged from serial", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
