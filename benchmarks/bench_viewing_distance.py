"""Viewing-distance sweep.

The camera moves back (``screen_fill`` < 1: the screen subtends a
shrinking part of the capture) and both channels are measured.  Two
honest findings come out:

* InFrame's full-frame Blocks keep decoding at >90% down to ~5 sensor
  pixels per Block, then collapse -- the working range of the paper's
  50 cm setup extends to roughly 3x the distance;
* a *visible* black/white barcode survives even further, because its
  255-level contrast dwarfs InFrame's delta=20: imperceptibility is paid
  for with distance margin.  InFrame's full-frame advantage is capacity
  and ergonomics at close range, not raw range.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest

from repro.analysis.experiments import ExperimentScale
from repro.analysis.reporting import format_table
from repro.baselines.qr_region import QRRegionLayout, QRRegionScheme
from repro.core.pipeline import run_link
from repro.display.panel import DisplayPanel
from repro.display.scheduler import DisplayTimeline

from conftest import run_once

SCALE = ExperimentScale.benchmark()
FILLS = (1.0, 0.7, 0.5, 0.35)


@pytest.fixture(scope="module")
def inframe_by_distance():
    config = SCALE.config(amplitude=20.0, tau=12)
    video = SCALE.video("gray")
    results = {}
    for fill in FILLS:
        camera = replace(SCALE.camera(), screen_fill=fill)
        results[fill] = run_link(config, video, camera=camera, seed=1).stats
    return results


@pytest.fixture(scope="module")
def qr_by_distance():
    video = SCALE.video("gray")
    scheme = QRRegionScheme(video, QRRegionLayout(area_fraction=0.1, cells=20))
    panel = DisplayPanel(
        width=SCALE.video_width, height=SCALE.video_height, refresh_hz=120.0
    )
    timeline = DisplayTimeline(panel, scheme)
    results = {}
    for fill in FILLS:
        camera = replace(SCALE.camera(), screen_fill=fill)
        captures = camera.capture_sequence(timeline, 4, rng=np.random.default_rng(0))
        accuracies = []
        for capture in captures[1:]:
            truth = scheme.barcode(scheme.barcode_index(int(capture.mid_exposure_s * 120)))
            # Decode with the screen-rect-aware geometry.
            r0, r1, c0, c1 = camera.screen_rect()
            cropped = capture.pixels[r0:r1, c0:c1]

            class _View:
                pixels = cropped
                index = capture.index
                start_time_s = capture.start_time_s
                mid_exposure_s = capture.mid_exposure_s

            decoded = scheme.decode_capture(_View, (r1 - r0, c1 - c0))
            accuracies.append(float((decoded == truth).mean()))
        results[fill] = float(np.mean(accuracies))
    return results


def test_viewing_distance_sweep(benchmark, emit, inframe_by_distance, qr_by_distance):
    config = SCALE.config(amplitude=20.0, tau=12)
    block_px = config.block_side_px
    rows = []
    for fill in FILLS:
        stats = inframe_by_distance[fill]
        block_cam = block_px * fill * SCALE.camera_height / SCALE.video_height
        rows.append(
            [
                f"{fill:.2f}",
                f"{block_cam:.1f} px",
                f"{stats.bit_accuracy * 100:.1f}%",
                f"{stats.throughput_kbps:.2f}",
                f"{qr_by_distance[fill] * 100:.1f}%",
            ]
        )
    emit(
        "viewing_distance",
        format_table(
            ["screen fill", "Block in capture", "InFrame accuracy", "kbps", "QR cell accuracy"],
            rows,
            title="Viewing-distance sweep (smaller fill = further away)",
        ),
    )
    camera = replace(SCALE.camera(), screen_fill=0.7)
    run_once(
        benchmark,
        lambda: run_link(
            config, SCALE.video("gray"), camera=camera, seed=2, n_camera_frames=12
        ).stats,
    )

    # Close range is the paper's regime: near-perfect.
    assert inframe_by_distance[1.0].bit_accuracy > 0.95
    # Moderate distance still delivers most of the rate.
    assert inframe_by_distance[0.7].throughput_kbps > 0.6 * inframe_by_distance[1.0].throughput_kbps
    # Far away the channel collapses -- Blocks below ~4 sensor pixels.
    assert inframe_by_distance[0.35].bit_accuracy < 0.8
    # Working range: >90% bit accuracy down to ~5 px Blocks.
    assert inframe_by_distance[0.5].bit_accuracy > 0.9
    # The visible barcode's 255-level contrast keeps it decodable even
    # further out -- the price of InFrame's imperceptibility, quantified.
    assert qr_by_distance[0.35] > 0.9
