"""Figure 7: throughput, available-GOB ratio and error rate per condition.

The paper's headline evaluation: for each input video (gray 127, dark gray
180, sunrise clip) and each (delta, tau) setting, the achieved throughput
in kbps with the availability/error accounting.  Reproduced end to end on
the simulated link at the benchmark scale (same Block grid and rates as
the paper, smaller Block footprint -- see DESIGN.md).
"""

from __future__ import annotations

import pytest

from repro.analysis.experiments import (
    PAPER_FIG7,
    ExperimentScale,
    run_fig7_condition,
)
from repro.analysis.reporting import format_table

from conftest import run_once

SETTINGS = ((20.0, 10), (20.0, 12), (20.0, 14), (30.0, 12))


@pytest.fixture(scope="module")
def fig7_results():
    scale = ExperimentScale.benchmark()
    results = {}
    for video in ("gray", "dark-gray", "video"):
        for delta, tau in SETTINGS:
            results[(video, delta, tau)] = run_fig7_condition(video, delta, tau, scale)
    return results


def _table(results) -> str:
    rows = []
    for video in ("gray", "dark-gray", "video"):
        for delta, tau in SETTINGS:
            stats = results[(video, delta, tau)]
            paper = PAPER_FIG7[video]
            paper_tput = paper["throughput_kbps"].get((int(delta), tau))
            paper_avail = paper["available"].get((int(delta), tau))
            paper_err = paper["error"].get((int(delta), tau))
            rows.append(
                [
                    video,
                    f"d={int(delta)} tau={tau}",
                    f"{stats.throughput_kbps:5.2f}",
                    f"{paper_tput:5.2f}" if paper_tput else "-",
                    f"{stats.available_gob_ratio * 100:5.1f}%",
                    f"{paper_avail * 100:5.1f}%" if paper_avail else "-",
                    f"{stats.gob_error_rate * 100:5.1f}%",
                    f"{paper_err * 100:5.1f}%" if paper_err else "-",
                ]
            )
    return format_table(
        ["video", "setting", "tput", "paper", "avail", "paper", "err", "paper"],
        rows,
        title="Figure 7: InFrame screen-camera data communication",
    )


def test_fig7_throughput(benchmark, emit, fig7_results):
    emit("fig7_throughput", _table(fig7_results))
    results = fig7_results
    run_once(benchmark, lambda: run_fig7_condition("gray", 20.0, 12, ExperimentScale.benchmark()))

    # --- Shape assertions -------------------------------------------------
    # 1. Pure-colour carriers deliver roughly the paper's rates (9-13 kbps).
    for video in ("gray", "dark-gray"):
        for delta, tau in SETTINGS:
            tput = results[(video, delta, tau)].throughput_kbps
            assert 7.0 < tput < 14.0, (video, delta, tau, tput)

    # 2. Throughput falls as tau grows (rate = refresh / tau).
    for video in ("gray", "dark-gray"):
        t10 = results[(video, 20.0, 10)].throughput_kbps
        t12 = results[(video, 20.0, 12)].throughput_kbps
        t14 = results[(video, 20.0, 14)].throughput_kbps
        assert t10 > t12 > t14

    # 3. Real video is the hard case: clearly below pure colour, in the
    #    paper's 5-7 kbps band at delta=20.
    for delta, tau in SETTINGS:
        video_tput = results[("video", delta, tau)].throughput_kbps
        gray_tput = results[("gray", delta, tau)].throughput_kbps
        assert video_tput < 0.85 * gray_tput, (delta, tau)

    # 4. Video availability and errors match the paper's character:
    #    availability far below pure colour, error rate several-fold higher.
    video_stats = results[("video", 20.0, 12)]
    gray_stats = results[("gray", 20.0, 12)]
    assert video_stats.available_gob_ratio < gray_stats.available_gob_ratio - 0.1
    assert video_stats.gob_error_rate > 2.0 * gray_stats.gob_error_rate

    # 5. The paper's delta=30 rescue on video content: higher amplitude
    #    buys back availability and cuts errors versus delta=20.
    v20 = results[("video", 20.0, 12)]
    v30 = results[("video", 30.0, 12)]
    assert v30.available_gob_ratio > v20.available_gob_ratio
    assert v30.gob_error_rate < v20.gob_error_rate
    assert v30.throughput_kbps > v20.throughput_kbps
