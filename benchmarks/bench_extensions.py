"""Extensions beyond the paper: the Section 5 "ongoing work" directions.

* **Gamma compensation** -- removes the fused-luminance brightening of
  1-Blocks (a physical limit of pixel-domain complementarity the paper
  inherits), which lowers the perceived flicker at large amplitudes.
* **Adaptive amplitude** -- spends extra delta only where the content's
  own texture masks it, improving the hard video-content channel without
  touching flat regions: the paper's "increase the screen-camera channel
  rate without interfering the primary screen-eye channel".
* **Blind synchronisation** -- decoding without a shared display clock,
  recovering the cycle phase from capture noise energies.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.experiments import ExperimentScale, flicker_config
from repro.analysis.reporting import format_table
from repro.camera.capture import CapturedFrame
from repro.core.decoder import InFrameDecoder
from repro.core.pipeline import InFrameSender, run_link
from repro.hvs.flicker import FlickerPredictor
from repro.video.synthetic import pure_color_video

from conftest import run_once

SCALE = ExperimentScale.benchmark()


@pytest.fixture(scope="module")
def gamma_comp_scores():
    predictor = FlickerPredictor()
    scores = {}
    for compensated in (False, True):
        config = flicker_config(delta=50.0, tau=12).with_updates(
            gamma_compensation=compensated
        )
        video = pure_color_video(240, 400, 127.0, n_frames=30)
        sender = InFrameSender(config, video)
        scores[compensated] = predictor.report(sender.timeline(), duration_s=0.5)
    return scores


def test_extension_gamma_compensation(benchmark, emit, gamma_comp_scores):
    rows = [
        [
            "on" if key else "off",
            f"{report.score:.2f}",
            f"{report.flicker_energy:.3e}",
        ]
        for key, report in gamma_comp_scores.items()
    ]
    emit(
        "extension_gamma_compensation",
        format_table(
            ["gamma compensation", "flicker score", "flicker energy"],
            rows,
            title="Extension: gamma-compensated complementarity (delta=50, gray)",
        ),
    )
    config = flicker_config(delta=50.0, tau=12).with_updates(gamma_compensation=True)
    video = pure_color_video(240, 400, 127.0, n_frames=10)
    run_once(
        benchmark,
        lambda: FlickerPredictor().report(InFrameSender(config, video).timeline(), 0.2),
    )

    # Compensation strictly reduces the perceived residual at large delta.
    assert gamma_comp_scores[True].flicker_energy < gamma_comp_scores[False].flicker_energy
    assert gamma_comp_scores[True].score <= gamma_comp_scores[False].score + 1e-6


@pytest.fixture(scope="module")
def adaptive_results():
    results = {}
    for adaptive in (False, True):
        config = SCALE.config(amplitude=20.0, tau=12).with_updates(
            adaptive_amplitude=adaptive
        )
        results[adaptive] = run_link(
            config, SCALE.video("video"), camera=SCALE.camera(), seed=1
        ).stats
    return results


def test_extension_adaptive_amplitude(benchmark, emit, adaptive_results):
    rows = [
        [
            "on" if key else "off",
            f"{stats.bit_accuracy * 100:.1f}%",
            f"{stats.available_gob_ratio * 100:.1f}%",
            f"{stats.throughput_kbps:.2f}",
        ]
        for key, stats in adaptive_results.items()
    ]
    emit(
        "extension_adaptive_amplitude",
        format_table(
            ["adaptive delta", "bit accuracy", "avail", "throughput kbps"],
            rows,
            title="Extension: texture-masked adaptive amplitude (sunrise, delta=20 base)",
        ),
    )
    config = SCALE.config(amplitude=20.0, tau=12).with_updates(adaptive_amplitude=True)
    run_once(
        benchmark,
        lambda: run_link(config, SCALE.video("video"), camera=SCALE.camera(), seed=2).stats,
    )

    assert adaptive_results[True].throughput_kbps > adaptive_results[False].throughput_kbps
    assert adaptive_results[True].bit_accuracy > adaptive_results[False].bit_accuracy


def test_extension_blind_synchronisation(benchmark, emit):
    config = SCALE.config(amplitude=20.0, tau=12)
    run = run_link(config, SCALE.video("gray"), camera=SCALE.camera(), seed=1)
    offset = 0.0512  # the receiver's clock is off by 51 ms

    shifted = [
        CapturedFrame(
            pixels=c.pixels,
            index=c.index,
            start_time_s=c.start_time_s + offset,
            mid_exposure_s=c.mid_exposure_s + offset,
        )
        for c in run.captures
    ]
    camera = SCALE.camera()
    decoder = InFrameDecoder(config, run.sender.geometry, camera.height, camera.width)

    def blind_decode():
        blind = decoder.synchronized(shifted)
        return blind, blind.decode(shifted)

    blind, decoded = run_once(benchmark, blind_decode)

    # Accuracy against the best-aligned ground truth.
    accuracies = []
    for frame in decoded[2:-2]:
        best = 0.0
        for k in range(max(frame.index - 1, 0), frame.index + 2):
            truth = run.sender.stream.ground_truth(
                min(k, run.sender.stream.n_data_frames - 1)
            )
            best = max(best, float((frame.bits == truth).mean()))
        accuracies.append(best)
    accuracy = float(np.mean(accuracies))
    cycle = config.tau / config.refresh_hz
    residual = (blind.clock_phase_s - offset) % cycle
    residual = min(residual, cycle - residual)
    emit(
        "extension_blind_sync",
        format_table(
            ["quantity", "value"],
            [
                ["injected clock offset", f"{offset * 1000:.1f} ms"],
                ["phase residual after estimation", f"{residual * 1000:.1f} ms"],
                ["bit accuracy (blind)", f"{accuracy * 100:.1f}%"],
            ],
            title="Extension: blind data-frame synchronisation",
        ),
    )
    assert residual < cycle / 4
    assert accuracy > 0.9
