"""Transport schemes under GOB loss: plain RS vs fountain vs ARQ.

The PHY turns display impairments into *frame* erasures: a packet's frame
either survives its inner RS decode or the whole packet is gone.  This
bench sweeps a bursty GOB-loss channel (the rolling-shutter band shape)
over the three delivery schemes in :mod:`repro.transport`:

* ``plain``    -- sequential DATA packets, one pass, no feedback (the
  RS-only baseline of the seed repo's file-transfer example);
* ``fountain`` -- rateless LT packets, no feedback, send until decoded;
* ``arq``      -- NACK-driven selective retransmission.

The loss sweep uses the synthetic packet channel (perfect bit decisions,
masked GOB availability) so many cells stay cheap; a second table runs
the full photon pipeline on textured content at quick scale, where the
content itself defeats a single plain pass.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.experiments import ExperimentScale
from repro.analysis.reporting import format_table
from repro.core.config import InFrameConfig
from repro.core.pipeline import run_transport_link
from repro.transport import (
    ArqReceiver,
    ArqSender,
    ArqSession,
    BroadcastCarousel,
    CarouselReceiver,
    FramePacketCodec,
    GobLossModel,
    simulate_packet_channel,
)

from conftest import run_once

LOSS_RATES = (0.0, 0.1, 0.2, 0.3, 0.4)
N_TRIALS = 8
PAYLOAD_BYTES = 300
MAX_ROUNDS = 8

# Full-size grid (30x50 Blocks) with tiny pixels: the synthetic channel
# never renders pixels, so only the bit geometry matters.
CONFIG = InFrameConfig(element_pixels=1, pixels_per_block=2)
CODEC = FramePacketCodec(CONFIG, rs_n=60, rs_k=24)


def _deliver(mode: str, loss_rate: float, seed: int) -> dict:
    """One payload delivery over the synthetic GOB-loss channel."""
    rng = np.random.default_rng((seed, int(loss_rate * 1000)))
    payload = rng.integers(0, 256, PAYLOAD_BYTES, dtype=np.uint8).tobytes()
    loss = GobLossModel(loss_rate, burst=True)
    chunk = CODEC.max_payload_bytes
    k = (len(payload) + chunk - 1) // chunk
    counters = {"sent": 0, "rounds": 0}

    def forward(packets: list[bytes]) -> list[bytes]:
        counters["rounds"] += 1
        counters["sent"] += len(packets)
        return simulate_packet_channel(CODEC, packets, loss, rng)

    delivered: bytes | None = None
    if mode == "plain":
        receiver = ArqReceiver()
        for raw in forward(ArqSender(payload, chunk).all_packets()):
            receiver.receive(raw)
        if receiver.complete:
            delivered = receiver.payload()
    elif mode == "arq":
        session = ArqSession(
            payload, chunk, forward, max_rounds=MAX_ROUNDS, rng=rng
        )
        _, delivered = session.run()
    elif mode == "fountain":
        carousel = BroadcastCarousel(payload, chunk)
        receiver = CarouselReceiver()
        next_seq = 0
        for _ in range(MAX_ROUNDS):
            missing = (
                carousel.k if receiver.decoder is None else receiver.decoder.n_missing
            )
            batch = max(2, int(np.ceil(missing * 1.35)))
            for raw in forward(carousel.packets(next_seq, batch)):
                receiver.receive(raw)
            next_seq += batch
            if receiver.complete:
                break
        if receiver.complete:
            delivered = receiver.payload()
    else:
        raise ValueError(mode)
    return {
        "ok": delivered == payload,
        "sent": counters["sent"],
        "rounds": counters["rounds"],
        "overhead": counters["sent"] / k,
    }


@pytest.fixture(scope="module")
def sweep():
    results = {}
    for loss_rate in LOSS_RATES:
        for mode in ("plain", "fountain", "arq"):
            trials = [_deliver(mode, loss_rate, seed) for seed in range(N_TRIALS)]
            results[loss_rate, mode] = {
                "rate": sum(t["ok"] for t in trials) / N_TRIALS,
                "overhead": np.mean([t["overhead"] for t in trials]),
                "rounds": np.mean([t["rounds"] for t in trials]),
            }
    return results


def test_transport_loss_sweep(benchmark, emit, sweep):
    rows = [
        [
            f"{loss_rate * 100:.0f}%",
            mode,
            f"{cell['rate'] * 100:.0f}%",
            f"{cell['overhead']:.2f}x",
            f"{cell['rounds']:.1f}",
        ]
        for (loss_rate, mode), cell in sweep.items()
    ]
    emit(
        "transport_loss_sweep",
        format_table(
            ["GOB loss", "scheme", "delivery", "sent/k", "rounds"],
            rows,
            title=(
                f"Transport delivery vs bursty GOB loss "
                f"({PAYLOAD_BYTES} B payload, RS(60,24), {N_TRIALS} trials)"
            ),
        ),
    )
    run_once(benchmark, lambda: _deliver("fountain", 0.3, seed=99))

    # Lossless floor: everyone delivers in one round.  Plain and ARQ hit
    # the 1.0x overhead floor exactly; open-loop fountain still pays its
    # provisioning margin (it cannot know the channel was clean).
    for mode in ("plain", "fountain", "arq"):
        assert sweep[0.0, mode]["rate"] == 1.0
        assert sweep[0.0, mode]["rounds"] == 1.0
    assert sweep[0.0, "plain"]["overhead"] == 1.0
    assert sweep[0.0, "arq"]["overhead"] == 1.0
    assert sweep[0.0, "fountain"]["overhead"] <= 1.5

    # One open-loop pass cannot survive bursty loss; the feedback (ARQ)
    # and rateless (fountain) schemes keep delivering.
    assert sweep[0.3, "plain"]["rate"] < 0.5
    assert sweep[0.3, "fountain"]["rate"] == 1.0
    assert sweep[0.3, "arq"]["rate"] == 1.0

    # Redundancy scales with the channel, not a worst-case provision:
    # fountain overhead grows with loss but stays far below blanket
    # repetition of the whole batch every round.
    assert sweep[0.1, "fountain"]["overhead"] < sweep[0.4, "fountain"]["overhead"]
    assert sweep[0.3, "arq"]["rounds"] > sweep[0.1, "arq"]["rounds"] - 1e-9


@pytest.fixture(scope="module")
def phy_results():
    scale = ExperimentScale.quick()
    config = scale.config(amplitude=30.0, tau=12)
    rng = np.random.default_rng(7)
    payload = rng.integers(0, 256, 84, dtype=np.uint8).tobytes()
    return {
        mode: run_transport_link(
            config,
            scale.video("video"),
            payload,
            mode=mode,
            camera=scale.camera(),
            seed=3,
            max_rounds=6,
        ).stats
        for mode in ("plain", "fountain", "arq")
    }


def test_transport_over_phy(benchmark, emit, phy_results):
    emit(
        "transport_phy",
        format_table(
            ["scheme", "summary"],
            [[mode, stats.row()] for mode, stats in phy_results.items()],
            title=(
                "Transport over the photon pipeline "
                "(textured video, delta=30, tau=12, quick scale)"
            ),
        ),
    )
    run_once(benchmark, lambda: phy_results)

    # Textured content alone pushes a single open-loop pass past the
    # inner code's budget; both closed-loop and rateless delivery cope.
    assert not phy_results["plain"].delivered
    assert phy_results["fountain"].delivered
    assert phy_results["arq"].delivered
    assert phy_results["arq"].rounds <= 6
