"""GOB code comparison: the paper's parity vs the future-work upgrade.

Paper Section 3.3: "A GOB is termed as an available GOB if all its
component Blocks are decoded ... More sophisticated error correction
codes can be applied for larger GOB. We leave this as part of the future
work."  This bench runs that future work on the hard (video) content:

* ``xor`` 2x2 -- the prototype: 3 bits / 4 Blocks, detection only;
* ``xor`` 3x3 -- larger GOB, same parity: 8 bits / 9 Blocks, but *more*
  fragile (one bad Block voids 9 Blocks' worth of data);
* ``hamming84`` 3x3 -- 4 bits / 9 Blocks, single-error correction.

All three run on a 30x48 Block grid (tiles both 2x2 and 3x3).
"""

from __future__ import annotations

import pytest

from repro.analysis.experiments import ExperimentScale
from repro.analysis.reporting import format_table
from repro.core.pipeline import run_link

from conftest import run_once

SCALE = ExperimentScale.benchmark()

VARIANTS = {
    "xor 2x2 (paper)": dict(gob_size=2, gob_code="xor"),
    "xor 3x3": dict(gob_size=3, gob_code="xor"),
    "hamming84 3x3": dict(gob_size=3, gob_code="hamming84"),
}


def _config(**gob):
    return SCALE.config(amplitude=20.0, tau=12).with_updates(block_cols=48, **gob)


@pytest.fixture(scope="module")
def gob_results():
    video = SCALE.video("video")
    camera = SCALE.camera()
    return {
        name: run_link(_config(**gob), video, camera=camera, seed=1).stats
        for name, gob in VARIANTS.items()
    }


def test_gob_code_comparison(benchmark, emit, gob_results):
    rows = [
        [
            name,
            f"{stats.bits_per_frame}",
            f"{stats.available_gob_ratio * 100:.1f}%",
            f"{stats.gob_error_rate * 100:.1f}%",
            f"{stats.bit_accuracy * 100:.1f}%",
            f"{stats.throughput_kbps:.2f}",
        ]
        for name, stats in gob_results.items()
    ]
    emit(
        "gob_codes",
        format_table(
            ["GOB code", "bits/frame", "avail", "err", "bit acc", "kbps"],
            rows,
            title="GOB coding on video content (delta=20, tau=12, 30x48 Blocks)",
        ),
    )
    run_once(
        benchmark,
        lambda: run_link(
            _config(**VARIANTS["hamming84 3x3"]),
            SCALE.video("video"),
            camera=SCALE.camera(),
            seed=2,
            n_camera_frames=12,
        ).stats,
    )

    paper = gob_results["xor 2x2 (paper)"]
    large_xor = gob_results["xor 3x3"]
    hamming = gob_results["hamming84 3x3"]

    # Larger GOBs with bare parity are more fragile (a GOB needs all 9
    # Blocks confident) even though they carry more bits.
    assert large_xor.available_gob_ratio <= paper.available_gob_ratio + 0.02

    # The Hamming upgrade buys availability (one shaky Block no longer
    # voids the GOB) and overall bit accuracy; its residual error rate is
    # comparable because the relaxed availability rule admits marginal
    # GOBs that bare parity would simply have discarded.
    assert hamming.available_gob_ratio > large_xor.available_gob_ratio + 0.05
    assert hamming.bit_accuracy > large_xor.bit_accuracy
    assert hamming.gob_error_rate < large_xor.gob_error_rate + 0.05
    # The price is rate (4 data bits per 9 Blocks).
    assert hamming.bits_per_frame < large_xor.bits_per_frame
