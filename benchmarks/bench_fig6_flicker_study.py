"""Figure 6: the 8-participant flicker study, both panels.

Left: flicker perception vs colour brightness for delta in {20, 50}.
Right: flicker perception vs waveform amplitude delta for tau in
{10, 12, 14}.  Scores come from the simulated panel (seeded subjects,
integer ratings, mean +/- std exactly as the paper plots); the trend
assertions use the continuous model score, which is what the integer
ratings estimate.
"""

from __future__ import annotations

import pytest

from repro.analysis.experiments import (
    PAPER_FIG6_LEFT,
    PAPER_FIG6_RIGHT,
    run_fig6_left,
    run_fig6_right,
)
from repro.analysis.reporting import format_table
from repro.analysis.userstudy import SimulatedPanel

from conftest import run_once

BRIGHTNESS = (60, 100, 140, 180, 200)


@pytest.fixture(scope="module")
def panel():
    return SimulatedPanel()


@pytest.fixture(scope="module")
def left_results(panel):
    return run_fig6_left(brightness_values=BRIGHTNESS, panel=panel)


@pytest.fixture(scope="module")
def right_results(panel):
    return run_fig6_right(panel=panel)


def test_fig6_left_brightness(benchmark, emit, left_results):
    rows = []
    for value in BRIGHTNESS:
        r20 = left_results[(20.0, value)]
        r50 = left_results[(50.0, value)]
        paper20 = PAPER_FIG6_LEFT[20].get(value)
        paper50 = PAPER_FIG6_LEFT[50].get(value)
        rows.append(
            [
                value,
                f"{r20.mean_score:.2f}+/-{r20.std_score:.2f}",
                f"~{paper20:.2f}" if paper20 is not None else "-",
                f"{r50.mean_score:.2f}+/-{r50.std_score:.2f}",
                f"~{paper50:.2f}" if paper50 is not None else "-",
            ]
        )
    emit(
        "fig6_left",
        format_table(
            ["brightness", "d=20 (panel)", "paper", "d=50 (panel)", "paper"],
            rows,
            title="Figure 6 (left): flicker perception vs colour brightness (tau=12)",
        ),
    )
    run_once(benchmark, lambda: run_fig6_left(brightness_values=(127,), deltas=(20.0,)))

    # Shape: delta=50 clearly above delta=20 at every brightness.
    for value in BRIGHTNESS:
        assert left_results[(50.0, value)].mean_score > left_results[(20.0, value)].mean_score

    # Shape: brightness raises perceived flicker (model scores, end-to-end).
    for delta in (20.0, 50.0):
        dim = left_results[(delta, 60)].model_score
        bright = left_results[(delta, 200)].model_score
        assert bright > dim, (delta, dim, bright)

    # The paper's satisfactory band: delta=20 averages below 1 everywhere,
    # "in all the tests, the average score is below 1".
    for value in BRIGHTNESS:
        assert left_results[(20.0, value)].mean_score < 1.0


def test_fig6_right_amplitude_cycle(benchmark, emit, right_results):
    rows = []
    for delta in (20.0, 30.0, 50.0):
        row = [int(delta)]
        for tau in (10, 12, 14):
            result = right_results[(delta, tau)]
            row.append(f"{result.mean_score:.2f}+/-{result.std_score:.2f}")
        for tau in (10, 12, 14):
            row.append(f"~{PAPER_FIG6_RIGHT[tau][int(delta)]:.2f}")
        rows.append(row)
    emit(
        "fig6_right",
        format_table(
            ["delta", "tau=10", "tau=12", "tau=14", "p~10", "p~12", "p~14"],
            rows,
            title="Figure 6 (right): flicker perception vs amplitude and cycle",
        ),
    )
    run_once(benchmark, lambda: run_fig6_right(deltas=(20.0,), taus=(12,)))

    # Shape: flicker grows with amplitude at every tau.
    for tau in (10, 12, 14):
        s20 = right_results[(20.0, tau)].model_score
        s30 = right_results[(30.0, tau)].model_score
        s50 = right_results[(50.0, tau)].model_score
        assert s20 < s30 < s50

    # Shape: "longer cycles tend to reduce the perceived flickers".
    for delta in (20.0, 30.0, 50.0):
        s10 = right_results[(delta, 10)].model_score
        s14 = right_results[(delta, 14)].model_score
        assert s14 <= s10 + 1e-6

    # The paper's operating point is satisfactory.
    assert right_results[(20.0, 12)].mean_score < 1.0
