"""Shared infrastructure for the benchmark suite.

Every benchmark regenerates one of the paper's tables or figures: it runs
the experiment once (via ``benchmark.pedantic`` so pytest-benchmark also
times it), prints the paper-vs-measured rows, writes them under
``benchmarks/results/`` for later inspection, and asserts the *shape* of
the result (who wins, rough factors, trend directions) rather than exact
numbers -- the substrate is a simulator, not the authors' testbed.

Run:  pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import os

import pytest

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


@pytest.fixture(scope="session")
def results_dir() -> str:
    """Directory collecting the regenerated tables."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def emit(results_dir):
    """Print a regenerated table and persist it to the results directory."""

    def _emit(name: str, text: str) -> None:
        print(f"\n{text}\n")
        path = os.path.join(results_dir, f"{name}.txt")
        with open(path, "w") as f:
            f.write(text + "\n")

    return _emit


def run_once(benchmark, func):
    """Run *func* exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(func, rounds=1, iterations=1)
