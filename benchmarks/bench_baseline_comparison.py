"""Baseline comparison: InFrame vs the alternatives the paper positions against.

One table answers the introduction's argument end to end, on the same
simulated panel and camera:

* **QR region** -- the status quo: a visible barcode corner.  Decodes
  easily but costs the viewer screen area and looks like a barcode.
* **LSB steganography** -- invisible, but the optical channel destroys it
  (BER at chance), so it is not a screen-camera scheme at all.
* **Hue/translucency keying** -- unobtrusive like InFrame but with no
  high-frequency signature; requires pair differencing and carries far
  less data per frame at a viewer-safe amplitude.
* **InFrame** -- full-frame video for the human *and* kilobits per second
  for the camera.
"""

from __future__ import annotations

import numpy as np
import pytest
from scipy import ndimage

from repro.analysis.experiments import ExperimentScale
from repro.analysis.reporting import format_table
from repro.baselines.lsb_stego import LSBSteganography
from repro.baselines.qr_region import QRRegionLayout, QRRegionScheme
from repro.core.pipeline import run_link
from repro.display.panel import DisplayPanel
from repro.display.scheduler import DisplayTimeline
from repro.video.source import ArrayVideoSource

from conftest import run_once

SCALE = ExperimentScale.benchmark()


@pytest.fixture(scope="module")
def inframe_stats():
    config = SCALE.config(amplitude=20.0, tau=12)
    return run_link(config, SCALE.video("gray"), camera=SCALE.camera(), seed=1).stats


@pytest.fixture(scope="module")
def qr_result():
    video = SCALE.video("gray")
    scheme = QRRegionScheme(video, QRRegionLayout(area_fraction=0.1, cells=20))
    panel = DisplayPanel(
        width=SCALE.video_width, height=SCALE.video_height, refresh_hz=120.0
    )
    camera = SCALE.camera()
    timeline = DisplayTimeline(panel, scheme)
    captures = camera.capture_sequence(timeline, 8, rng=np.random.default_rng(0))
    accuracies = []
    for capture in captures[1:]:
        truth = scheme.barcode(scheme.barcode_index(int(capture.mid_exposure_s * 120)))
        decoded = scheme.decode_capture(capture, (camera.height, camera.width))
        accuracies.append(float((decoded == truth).mean()))
    return {
        "accuracy": float(np.mean(accuracies)),
        "raw_bps": scheme.raw_bit_rate_bps(30.0),
        "occluded": scheme.occluded_fraction(),
    }


@pytest.fixture(scope="module")
def lsb_result():
    stego = LSBSteganography()
    video = SCALE.video("gray")
    frame = video.frame(0)
    rng = np.random.default_rng(5)
    bits = rng.random(20000) < 0.5
    carrier = stego.embed(frame, bits)
    panel = DisplayPanel(
        width=SCALE.video_width, height=SCALE.video_height, refresh_hz=120.0
    )
    timeline = DisplayTimeline(
        panel, ArrayVideoSource(carrier[None].repeat(8, axis=0), fps=120.0)
    )
    camera = SCALE.camera()
    capture = camera.capture_frame(timeline, 0, rng=rng)
    upsampled = ndimage.zoom(
        capture.pixels,
        (SCALE.video_height / camera.height, SCALE.video_width / camera.width),
        order=1,
        mode="nearest",
        grid_mode=True,
    )[: SCALE.video_height, : SCALE.video_width]
    recovered = stego.extract(upsampled, bits.size)
    return {"ber": stego.bit_error_rate(bits, recovered)}


def test_baseline_comparison(benchmark, emit, inframe_stats, qr_result, lsb_result):
    rows = [
        [
            "InFrame",
            f"{inframe_stats.throughput_kbps:.2f} kbps",
            "0% (full-frame video)",
            "imperceptible (score < 1)",
        ],
        [
            "QR region",
            f"{qr_result['raw_bps'] / 1000 * qr_result['accuracy']:.2f} kbps",
            f"{qr_result['occluded'] * 100:.0f}% of screen lost",
            "visible barcode",
        ],
        [
            "LSB stego",
            f"0.00 kbps (BER {lsb_result['ber']:.2f})",
            "0%",
            "imperceptible",
        ],
    ]
    emit(
        "baseline_comparison",
        format_table(
            ["scheme", "camera data rate", "display cost", "viewer experience"],
            rows,
            title="InFrame vs baselines on the same panel + camera",
        ),
    )
    config = SCALE.config(amplitude=20.0, tau=12)
    run_once(
        benchmark,
        lambda: run_link(
            config, SCALE.video("gray"), camera=SCALE.camera(), seed=2,
            n_camera_frames=12,
        ).stats,
    )

    # The introduction's argument, quantified:
    # 1. LSB stego cannot cross the optical channel (chance-level BER).
    assert 0.4 < lsb_result["ber"] <= 0.6
    # 2. The QR region decodes fine but occludes real screen area.
    assert qr_result["accuracy"] > 0.95
    assert qr_result["occluded"] > 0.05
    # 3. InFrame's throughput is comparable to the visible barcode's
    #    ("still comparable to that in other proposals") at zero area cost.
    qr_kbps = qr_result["raw_bps"] / 1000 * qr_result["accuracy"]
    assert inframe_stats.throughput_kbps > 0.5 * qr_kbps
