"""Off-axis capture sweep (the paper's §5 "practical issues" direction).

The paper captured fronto-parallel from 50 cm and asked "How to multiplex
video and data frames on any display?" -- part of the answer is whether
the channel survives capture at an angle.  This bench tilts the camera
(pure yaw) with a corner-calibrated receiver (the decoder warps its Block
label map through the known homography) and measures the cost.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.analysis.experiments import ExperimentScale
from repro.analysis.reporting import format_table
from repro.camera.geometry import PerspectiveView
from repro.core.pipeline import run_link

from conftest import run_once

SCALE = ExperimentScale.benchmark()
YAWS = (0, 15, 30, 45)


@pytest.fixture(scope="module")
def tilt_results():
    config = SCALE.config(amplitude=20.0, tau=12)
    video = SCALE.video("gray")
    camera = SCALE.camera()
    results = {}
    for yaw in YAWS:
        view = PerspectiveView.tilted(camera.height, camera.width, yaw_deg=yaw, fill=0.9)
        results[yaw] = run_link(
            config, video, camera=replace(camera, view=view), seed=1
        ).stats
    return results


def test_perspective_tilt_sweep(benchmark, emit, tilt_results):
    rows = [
        [
            f"{yaw} deg",
            f"{stats.bit_accuracy * 100:.1f}%",
            f"{stats.available_gob_ratio * 100:.1f}%",
            f"{stats.gob_error_rate * 100:.1f}%",
            f"{stats.throughput_kbps:.2f}",
        ]
        for yaw, stats in tilt_results.items()
    ]
    emit(
        "perspective_tilt",
        format_table(
            ["camera yaw", "bit acc", "avail", "err", "throughput kbps"],
            rows,
            title="Off-axis capture with a corner-calibrated receiver (gray, d=20, tau=12)",
        ),
    )
    config = SCALE.config(amplitude=20.0, tau=12)
    camera = SCALE.camera()
    view = PerspectiveView.tilted(camera.height, camera.width, yaw_deg=30, fill=0.9)
    run_once(
        benchmark,
        lambda: run_link(
            config, SCALE.video("gray"), camera=replace(camera, view=view),
            seed=2, n_camera_frames=12,
        ).stats,
    )

    # Straight-on matches the paper's regime.
    assert tilt_results[0].bit_accuracy > 0.95
    # Off-axis capture degrades gracefully with a calibrated receiver:
    # even 45 degrees of yaw keeps >90% of the straight-on throughput.
    assert tilt_results[45].throughput_kbps > 0.85 * tilt_results[0].throughput_kbps
    assert tilt_results[45].bit_accuracy > 0.9
    # And the trend is monotone-ish: more tilt never helps.
    assert tilt_results[45].throughput_kbps <= tilt_results[0].throughput_kbps + 0.3
