"""Campaign kill/resume: the crash-recovery determinism acceptance test.

The claim under test is ``repro.campaign``'s reason to exist: a campaign
is resumable after the master dies -- hard, mid-dispatch, ``SIGKILL`` --
and the resumed run's aggregated report is **byte-identical** to the
same campaign run straight through, because completed units are
recovered from the journal and every unit's result is a pure function of
its own spawn-keyed seed.

The benchmark:

1. runs the campaign uninterrupted in-process (the reference report);
2. launches ``python -m repro.tools.campaign run`` as a subprocess,
   polls the journal until a few units have durably completed, and
   ``SIGKILL``\\ s the master mid-campaign;
3. resumes from the survivor journal (at a *different* worker count, to
   exercise the scheduling-independence claim at the same time);
4. asserts ``metrics_json()`` and ``report_json()`` equality and reports
   how much work the journal saved.

Run as a script::

    PYTHONPATH=src python benchmarks/bench_campaign.py --out campaign.json
    PYTHONPATH=src python benchmarks/bench_campaign.py --quick

or under pytest (quick mode -- this is what CI smoke-runs)::

    pytest benchmarks/bench_campaign.py --benchmark-only

``--chaos`` switches to the orchestration chaos harness
(:func:`repro.campaign.chaos.run_chaos_campaign`): the campaign runs as
a real subprocess fleet, the harness SIGKILLs one pool worker and
SIGSTOPs another mid-unit, and the acceptance criteria tighten to (a)
the recovered ``report_json()`` being byte-identical to the chaos-free
run and (b) the stalled worker's lease being reclaimed via heartbeat
staleness strictly before its wall-clock lease timeout::

    PYTHONPATH=src python benchmarks/bench_campaign.py --chaos --quick
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import time

import repro
from repro.tools.perf import bench_envelope
from repro.campaign import CampaignJournal, CampaignMaster
from repro.campaign.chaos import run_chaos_campaign

#: The benchmark campaign: swept parameter x fault plan x heal -- 8 units,
#: half of them faulted (the determinism claim must include those).
SPEC = "parameter=tau:8,12|faults=none,drop:p=0.3|heal=on,off"
#: Kill the master once this many units are durably recorded.
KILL_AFTER_DONE = 3
#: Give the subprocess this long before declaring the poll stuck.
POLL_TIMEOUT_S = 300.0
#: The ``--chaos`` schedule: SIGKILL one worker mid-unit, SIGSTOP
#: another long enough for heartbeat staleness to reclaim its lease.
CHAOS_SCHEDULE = "kill:unit=1;stall:unit=6,dur=2.0"


def _src_path() -> str:
    """The ``src`` directory the subprocess must import ``repro`` from."""
    return os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))


def _count_done(journal_path: str) -> int:
    try:
        with open(journal_path, encoding="utf-8") as handle:
            return sum(1 for line in handle if '"event":"done"' in line)
    except OSError:
        return 0


def run_killed_campaign(
    journal_path: str, *, scale: str, kill_after_done: int
) -> dict:
    """Start a campaign subprocess and SIGKILL it mid-dispatch."""
    env = dict(os.environ)
    env["PYTHONPATH"] = _src_path() + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro.tools.campaign", "run",
            "--spec", SPEC, "--scale", scale, "--journal", journal_path,
        ],
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    deadline = time.monotonic() + POLL_TIMEOUT_S
    done_at_kill = 0
    killed = False
    try:
        while time.monotonic() < deadline:
            done_at_kill = _count_done(journal_path)
            if done_at_kill >= kill_after_done and proc.poll() is None:
                proc.kill()  # SIGKILL -- no cleanup, no atexit, no flush
                killed = True
                break
            if proc.poll() is not None:
                break  # finished before we could kill it (still a valid run)
            time.sleep(0.02)
    finally:
        if proc.poll() is None:
            proc.kill()
            killed = True
        proc.wait()
    return {
        "killed": killed,
        "returncode": proc.returncode,
        "done_at_kill": done_at_kill,
    }


def measure_kill_resume(
    scale: str = "quick",
    workers: int | None = None,
    resume_workers: int | None = 4,
    kill_after_done: int = KILL_AFTER_DONE,
    journal_dir: str | None = None,
) -> dict:
    """The full kill/resume cycle; returns the comparison record."""
    import tempfile

    with tempfile.TemporaryDirectory(dir=journal_dir) as tmp:
        journal_path = os.path.join(tmp, "campaign.jsonl")

        wall0 = time.perf_counter()
        reference = CampaignMaster(SPEC, scale=scale, workers=workers).run()
        reference_s = time.perf_counter() - wall0

        wall0 = time.perf_counter()
        kill = run_killed_campaign(
            journal_path, scale=scale, kill_after_done=kill_after_done
        )
        killed_s = time.perf_counter() - wall0

        wall0 = time.perf_counter()
        master = CampaignMaster.resume(
            CampaignJournal(journal_path), workers=resume_workers
        )
        resumed = master.run(resume=True)
        resume_s = time.perf_counter() - wall0

    ref_report = reference.report
    res_report = resumed.report
    return {
        "bench": "campaign",
        "spec": SPEC,
        "scale": scale,
        "units": reference.stats.units_total,
        "kill": kill,
        "resume": {
            "reused": resumed.stats.reused,
            "executed": resumed.stats.executed,
            "torn_tail": resumed.stats.torn_tail,
            "workers": resumed.stats.workers,
        },
        "elapsed_s": {
            "reference": reference_s,
            "until_kill": killed_s,
            "resume": resume_s,
        },
        "reports": {
            "counts": ref_report.counts(),
            "metrics_json_identical": (
                res_report.metrics_json() == ref_report.metrics_json()
            ),
            "report_json_identical": (
                res_report.report_json() == ref_report.report_json()
            ),
        },
        "metrics_json": ref_report.metrics_json(),
        "report": ref_report.as_dict(),
    }


def measure_chaos(
    scale: str = "quick",
    schedule: str = CHAOS_SCHEDULE,
    workers: int = 2,
    workdir: str | None = None,
) -> dict:
    """SIGKILL + SIGSTOP real workers mid-campaign; compare the reports.

    When *workdir* is given the journals and reports are left there for
    inspection (the CI chaos job uploads them as artifacts); otherwise a
    temporary directory is used and cleaned up.
    """
    import contextlib
    import tempfile

    with contextlib.ExitStack() as stack:
        if workdir is None:
            workdir = stack.enter_context(tempfile.TemporaryDirectory())
        wall0 = time.perf_counter()
        result = run_chaos_campaign(
            SPEC, schedule, workdir, scale=scale, workers=workers
        )
        elapsed_s = time.perf_counter() - wall0
    reclaims = [
        {
            "unit": r.unit,
            "fence": r.fence,
            "margin_s": r.lease_expires_at - r.reclaimed_at,
            "beat_wall_clock": r.beat_wall_clock,
        }
        for r in result.stuck_reclaims
    ]
    return {
        "bench": "campaign-chaos",
        "spec": SPEC,
        "scale": scale,
        "schedule": schedule,
        "workers": workers,
        "elapsed_s": elapsed_s,
        "injected": list(result.injected),
        "resumes": result.resumes,
        "exit_codes": list(result.exit_codes),
        "deaths": result.deaths,
        "quarantined": result.quarantined,
        "stuck_reclaims": reclaims,
        "report_json_identical": result.identical,
        # Vacuously true when the schedule stalls nobody; with a stall,
        # the reclaim must beat the wall-clock lease timeout.
        "stall_reclaimed_before_timeout": (
            "stall" not in schedule
            or any(r["beat_wall_clock"] for r in reclaims)
        ),
        "summary": result.summary(),
    }


def format_chaos_report(record: dict) -> str:
    """The human-readable chaos summary printed next to the JSON."""
    verdict = (
        "byte-identical" if record["report_json_identical"] else "DIVERGED"
    )
    staleness = (
        "reclaimed before lease timeout"
        if record["stall_reclaimed_before_timeout"]
        else "NOT reclaimed before lease timeout"
    )
    lines = [
        f"campaign chaos: {record['schedule']} on {record['spec']}",
        f"  elapsed            {record['elapsed_s']:8.2f} s  "
        f"(resumes={record['resumes']}, exit_codes={record['exit_codes']})",
        f"  worker deaths      {record['deaths']}  "
        f"(quarantined={record['quarantined']})",
        f"  stalled lease      {staleness}",
        f"  report_json        {verdict}",
    ]
    for item in record["injected"]:
        lines.append(f"  injected {item}")
    for reclaim in record["stuck_reclaims"]:
        lines.append(
            f"  reclaimed {reclaim['unit']} (fence {reclaim['fence']}) "
            f"{reclaim['margin_s']:.1f}s before its lease timeout"
        )
    return "\n".join(lines)


def format_report(record: dict) -> str:
    """The human-readable table printed next to the JSON."""
    kill = record["kill"]
    res = record["resume"]
    rep = record["reports"]
    t = record["elapsed_s"]
    killed_text = (
        f"SIGKILL after {kill['done_at_kill']} units (rc={kill['returncode']})"
        if kill["killed"]
        else "finished before the kill landed"
    )
    return "\n".join(
        [
            f"campaign kill/resume: {record['units']} units on {record['spec']}",
            f"  reference run      {t['reference']:8.2f} s  "
            f"({rep['counts']['ok']} ok, {rep['counts']['invalid']} invalid)",
            f"  killed run         {t['until_kill']:8.2f} s  ({killed_text})",
            f"  resume             {t['resume']:8.2f} s  "
            f"(reused {res['reused']}, executed {res['executed']}, "
            f"workers={res['workers']})",
            f"  metrics_json       {'byte-identical' if rep['metrics_json_identical'] else 'DIVERGED'}",
            f"  report_json        {'byte-identical' if rep['report_json_identical'] else 'DIVERGED'}",
        ]
    )


# ----------------------------------------------------------------------
# pytest entry point (quick mode -- this is what CI smoke-runs)
# ----------------------------------------------------------------------
def test_campaign_kill_resume(benchmark, emit, results_dir):
    from conftest import run_once

    record = run_once(benchmark, lambda: measure_kill_resume(scale="quick"))
    emit("bench_campaign_quick", format_report(record))
    bench_envelope(record, bench="campaign", quick=True)
    with open(os.path.join(results_dir, "bench_campaign_quick.json"), "w") as f:
        json.dump(record, f, indent=2)
    # The acceptance criteria: a killed-and-resumed campaign aggregates
    # byte-identically to the uninterrupted run, faulted units included.
    assert record["reports"]["metrics_json_identical"]
    assert record["reports"]["report_json_identical"]
    assert record["reports"]["counts"]["ok"] == record["units"]
    # The journal actually saved work (unless the run won the race).
    if record["kill"]["killed"]:
        assert record["resume"]["reused"] >= 1
        assert record["resume"]["executed"] <= record["units"]


def test_campaign_chaos(benchmark, emit, results_dir):
    from conftest import run_once

    record = run_once(benchmark, lambda: measure_chaos(scale="quick"))
    emit("bench_campaign_chaos", format_chaos_report(record))
    bench_envelope(record, bench="campaign-chaos", quick=True)
    with open(os.path.join(results_dir, "bench_campaign_chaos.json"), "w") as f:
        json.dump(record, f, indent=2)
    # The supervision acceptance criteria: a campaign whose workers were
    # SIGKILLed and SIGSTOPed mid-unit aggregates byte-identically, and
    # the stalled worker's lease is reclaimed via heartbeat staleness
    # strictly before its wall-clock lease timeout would have fired.
    assert record["report_json_identical"]
    assert record["stall_reclaimed_before_timeout"]
    assert record["deaths"] >= 1


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--quick", action="store_true", help="quick scale (the CI shape)"
    )
    parser.add_argument(
        "--scale", choices=("quick", "benchmark", "full"), default=None
    )
    parser.add_argument("--workers", type=int, default=None)
    parser.add_argument(
        "--resume-workers", type=int, default=4,
        help="worker count for the resumed master (differs on purpose)",
    )
    parser.add_argument(
        "--kill-after", type=int, default=KILL_AFTER_DONE,
        help="SIGKILL the master once this many units are journaled done",
    )
    parser.add_argument(
        "--chaos", action="store_true",
        help="run the orchestration chaos harness instead of kill/resume",
    )
    parser.add_argument(
        "--chaos-schedule", default=CHAOS_SCHEDULE, metavar="SPEC",
        help="fault schedule for --chaos "
        "(e.g. 'kill:unit=1;stall:unit=6,dur=2.0')",
    )
    parser.add_argument(
        "--chaos-dir", default=None, metavar="DIR",
        help="keep the chaos journals/reports here (default: temp dir)",
    )
    parser.add_argument("--out", default=None, help="write the JSON record here")
    args = parser.parse_args(argv)
    scale = args.scale or ("quick" if args.quick else "benchmark")
    if args.chaos:
        record = measure_chaos(
            scale=scale,
            schedule=args.chaos_schedule,
            workers=args.workers or 2,
            workdir=args.chaos_dir,
        )
        print(format_chaos_report(record))
        if args.out:
            bench_envelope(record, bench="campaign-chaos", quick=scale == "quick")
            with open(args.out, "w") as f:
                json.dump(record, f, indent=2)
        ok = (
            record["report_json_identical"]
            and record["stall_reclaimed_before_timeout"]
        )
        return 0 if ok else 1
    record = measure_kill_resume(
        scale=scale,
        workers=args.workers,
        resume_workers=args.resume_workers,
        kill_after_done=args.kill_after,
    )
    print(format_report(record))
    if args.out:
        bench_envelope(record, bench="campaign", quick=scale == "quick")
        with open(args.out, "w") as f:
            json.dump(record, f, indent=2)
    ok = (
        record["reports"]["metrics_json_identical"]
        and record["reports"]["report_json_identical"]
    )
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
