"""The paper's headline claims (abstract and Section 4).

* "about 12.8kbps data rate with imperceptible video artifacts when being
  played back at 120FPS" -- pure light-gray carrier, best tau;
* "about 7.0 kbps when being multiplexed over a normal video" -- the
  sunrise clip at delta=30, tau=12;
* imperceptibility: the flicker panel rates the winning configuration
  satisfactory (< 1.5 on the 0-4 scale).
"""

from __future__ import annotations

import pytest

from repro.analysis.experiments import (
    ExperimentScale,
    flicker_timeline,
    run_fig7_condition,
)
from repro.analysis.reporting import format_table, paper_vs_measured
from repro.analysis.userstudy import SimulatedPanel

from conftest import run_once


@pytest.fixture(scope="module")
def headline():
    scale = ExperimentScale.benchmark()
    return {
        "gray_best": run_fig7_condition("gray", 20.0, 10, scale),
        "video_best": run_fig7_condition("video", 30.0, 12, scale),
    }


def test_headline_rates(benchmark, emit, headline):
    gray = headline["gray_best"]
    video = headline["video_best"]
    study = SimulatedPanel().study(flicker_timeline(20.0, 10, 127.0), duration_s=0.5)
    lines = [
        paper_vs_measured("gray best-case throughput", 12.8, gray.throughput_kbps, " kbps"),
        paper_vs_measured("normal-video throughput", 7.0, video.throughput_kbps, " kbps"),
        paper_vs_measured("flicker score at delta=20 tau=10", 0.5, study.mean_score),
    ]
    emit(
        "headline_rates",
        format_table(
            ["claim"],
            [[line] for line in lines],
            title="Headline claims (paper abstract / Section 4)",
        ),
    )
    run_once(
        benchmark,
        lambda: run_fig7_condition("gray", 20.0, 10, ExperimentScale.benchmark()),
    )

    # Within a factor ~1.3 of the paper's headline numbers.
    assert 9.5 < gray.throughput_kbps < 14.5
    assert 5.3 < video.throughput_kbps < 9.0
    # And the viewer does not notice.
    assert study.mean_score < 1.5
