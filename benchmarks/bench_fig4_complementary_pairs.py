"""Figure 4: complementary frame pairs on gray and normal-video carriers.

The figure itself is qualitative (four example frames); the quantitative
content this benchmark verifies is the construction behind it:

* ``V + D`` and ``V - D`` stay inside [0, 255] on any content;
* the pair averages back to ``V`` exactly (pixel domain);
* the fused *luminance* matches the plain video to within the small
  gamma-convexity residual (the physical limit of pixel-domain
  complementarity, quantified here);
* the chessboard is present in each half (the camera's signal exists).
"""

from __future__ import annotations

import numpy as np
import pytest
from scipy import ndimage

from repro.analysis.reporting import format_table
from repro.core.config import InFrameConfig
from repro.core.encoder import DataFrameEncoder
from repro.core.framing import PseudoRandomSchedule
from repro.core.geometry import FrameGeometry
from repro.core.pipeline import InFrameSender
from repro.hvs.perception import perception_artifacts
from repro.video.synthetic import pure_color_video, sunrise_video

from conftest import run_once


@pytest.fixture(scope="module")
def config():
    return InFrameConfig(amplitude=20.0).scaled(0.45)


@pytest.fixture(scope="module")
def pair_metrics(config):
    height = config.data_height_px + 60
    width = config.data_width_px + 80
    bits = PseudoRandomSchedule(config, seed=2014).bits(0)
    carriers = {
        "gray": pure_color_video(height, width, 127.0, n_frames=1).frame(0),
        "sunrise": sunrise_video(height, width, n_frames=1).frame(0),
    }
    metrics = {}
    for name, video_frame in carriers.items():
        geometry = FrameGeometry(config, height, width)
        encoder = DataFrameEncoder(config, geometry)
        plus, minus = encoder.multiplexed_pair(video_frame, bits)
        residual = float(np.abs((plus + minus) / 2.0 - video_frame).max())
        hf = lambda img: float(
            np.abs(img - ndimage.uniform_filter(img, 3, mode="nearest")).mean()
        )
        metrics[name] = {
            "range_ok": plus.min() >= 0 and plus.max() <= 255 and minus.min() >= 0,
            "residual": residual,
            "hf_plus": hf(plus),
            "hf_video": hf(video_frame),
        }
    return metrics


def test_fig4_complementary_pairs(benchmark, emit, pair_metrics, config):
    rows = [
        [
            name,
            "yes" if m["range_ok"] else "NO",
            f"{m['residual']:.2e}",
            f"{m['hf_plus']:.3f}",
            f"{m['hf_video']:.3f}",
        ]
        for name, m in pair_metrics.items()
    ]
    emit(
        "fig4_complementary_pairs",
        format_table(
            ["carrier", "in range", "pair residual", "|HF| with data", "|HF| plain"],
            rows,
            title="Figure 4: complementary pair construction (delta=20)",
        ),
    )

    height = config.data_height_px + 60
    width = config.data_width_px + 80
    video_frame = pure_color_video(height, width, 127.0, n_frames=1).frame(0)
    geometry = FrameGeometry(config, height, width)
    encoder = DataFrameEncoder(config, geometry)
    bits = PseudoRandomSchedule(config).bits(0)
    run_once(benchmark, lambda: encoder.multiplexed_pair(video_frame, bits))

    for name, m in pair_metrics.items():
        assert m["range_ok"], name
        assert m["residual"] < 1e-4, name
        # The camera-visible high-frequency signature is added on top of
        # whatever texture the content has (on grainy content the margin
        # is smaller because half the Blocks carry no pattern).
        assert m["hf_plus"] > m["hf_video"] + 0.5, name


def test_fig4_fused_luminance(benchmark, config):
    """What the eye integrates matches the plain video up to gamma convexity."""
    height = config.data_height_px + 60
    width = config.data_width_px + 80
    video = pure_color_video(height, width, 127.0, n_frames=6)
    sender = InFrameSender(config, video)

    def fused():
        return perception_artifacts(sender.timeline(), video.frame(0), t=0.1)

    metrics = run_once(benchmark, fused)
    # At delta=20 the fused image sits within a few percent of the original;
    # see DESIGN.md on the gamma-convexity floor.
    assert metrics["max_weber"] < 0.06
    assert metrics["psnr_db"] > 30.0
