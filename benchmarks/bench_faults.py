"""Fault matrix: BER / goodput / time-to-resync with healing on and off.

Two stages, both seeded and deterministic:

1. **Link matrix.**  Each (fault kind, severity) cell perturbs the
   standard gray link and decodes it twice -- once with the plain
   decoder (``heal=False``) and once with the self-healing pass -- and
   records BER, goodput and the healed decoder's time to resync after
   the fault onset.
2. **Transport gap.**  The default moderate matrix (``MODERATE_MATRIX``:
   10 % drops, one polarity flip turned 5-frame stall, one exposure
   step, one 0.5 s blackout) hits an ARQ transfer bounded by a
   retransmission budget.  The healing decoder is expected to deliver
   >= 90 % of the payload where the plain decoder stays under 50 % --
   the repo's standing robustness datapoint (CI smoke-runs the quick
   mode on every PR and uploads the JSON).

Run as a script::

    PYTHONPATH=src python benchmarks/bench_faults.py --quick --out faults.json

or under pytest (quick mode)::

    pytest benchmarks/bench_faults.py --benchmark-only
"""

from __future__ import annotations

import argparse
import json
import os
import time
from dataclasses import replace

from repro.analysis.experiments import ExperimentScale
from repro.core.pipeline import run_link, run_transport_link
from repro.faults import FaultPlan
from repro.tools.perf import bench_envelope

#: The default moderate fault matrix the acceptance gap is stated for.
MODERATE_MATRIX = (
    "drop:p=0.10;flip:at=0.2,frames=5;exposure:at=0.6,gain=0.7;"
    "blackout:at=0.55,dur=0.5"
)
#: Transport-gap defaults: payload and retransmission budget are sized so
#: a healing receiver finishes while an unhealed one exhausts the budget.
GAP_PAYLOAD_BYTES = 336
GAP_RETRY_BUDGET = 3
GAP_MAX_ROUNDS = 6

#: The link-matrix cells: (label, spec, onset fraction for resync timing).
FULL_CELLS = (
    ("drop-5%", "drop:p=0.05", None),
    ("drop-10%", "drop:p=0.10", None),
    ("drop-20%", "drop:p=0.20", None),
    ("dup-10%", "dup:p=0.10", None),
    ("reorder-10%", "reorder:p=0.10,span=2", None),
    ("flip-1f", "flip:at=0.5,frames=1", 0.5),
    ("flip-5f", "flip:at=0.5,frames=5", 0.5),
    ("drift-3000ppm", "drift:ppm=3000", None),
    ("jitter-4ms", "jitter:std=4e-3", None),
    ("exposure-0.7", "exposure:at=0.5,gain=0.7", 0.5),
    ("exposure-0.5", "exposure:at=0.5,gain=0.5", 0.5),
    ("ambient-+40", "ambient:at=0.5,add=40", 0.5),
    ("blackout-0.25s", "blackout:at=0.5,dur=0.25", 0.5),
    ("blackout-0.5s", "blackout:at=0.5,dur=0.5", 0.5),
)
QUICK_CELLS = (
    ("drop-10%", "drop:p=0.10", None),
    ("flip-5f", "flip:at=0.5,frames=5", 0.5),
    ("exposure-0.7", "exposure:at=0.5,gain=0.7", 0.5),
    ("blackout-0.5s", "blackout:at=0.5,dur=0.5", 0.5),
)


def _scale(n_video_frames: int) -> ExperimentScale:
    return replace(ExperimentScale.quick(), n_video_frames=n_video_frames)


def sweep_link_matrix(
    cells=QUICK_CELLS,
    n_video_frames: int = 48,
    seed: int = 3,
    plan_seed: int = 11,
    workers: int | None = None,
) -> list[dict]:
    """One record per (cell, heal mode): BER, goodput, time-to-resync."""
    scale = _scale(n_video_frames)
    config = scale.config(amplitude=30.0, tau=12)
    video = scale.video("gray")
    camera = scale.camera()

    records = []
    for label, spec, onset_frac in cells:
        row: dict = {"fault": label, "spec": spec}
        for heal in (False, True):
            plan = FaultPlan.parse(spec, seed=plan_seed)
            wall0 = time.perf_counter()
            run = run_link(
                config,
                video,
                camera=camera,
                seed=seed,
                workers=workers,
                faults=plan,
                heal=heal,
            )
            elapsed_s = time.perf_counter() - wall0
            stats = run.stats
            side = {
                "ber": 1.0 - stats.bit_accuracy,
                "available_gob_ratio": stats.available_gob_ratio,
                "goodput_bps": stats.goodput_bps,
                "elapsed_s": elapsed_s,
            }
            healing = run.degradation.healing if run.degradation else None
            if heal and healing is not None:
                side["resyncs"] = healing.n_resyncs
                side["excluded_captures"] = healing.excluded_captures
                if onset_frac is not None:
                    onset_s = onset_frac * video.duration_s
                    side["time_to_resync_s"] = healing.time_to_resync_s(onset_s)
            row["heal_on" if heal else "heal_off"] = side
        records.append(row)
    return records


def run_transport_gap(
    n_video_frames: int = 48,
    seed: int = 3,
    plan_seed: int = 11,
    workers: int | None = None,
) -> dict:
    """The moderate-matrix ARQ transfer, healed and unhealed."""
    scale = _scale(n_video_frames)
    config = scale.config(amplitude=30.0, tau=12)
    video = scale.video("gray")
    payload = bytes(i % 251 for i in range(GAP_PAYLOAD_BYTES))

    record: dict = {
        "matrix": MODERATE_MATRIX,
        "payload_bytes": GAP_PAYLOAD_BYTES,
        "retry_budget": GAP_RETRY_BUDGET,
        "max_rounds": GAP_MAX_ROUNDS,
    }
    for heal in (False, True):
        plan = FaultPlan.parse(MODERATE_MATRIX, seed=plan_seed)
        wall0 = time.perf_counter()
        run = run_transport_link(
            config,
            video,
            payload,
            mode="arq",
            camera=scale.camera(),
            seed=seed,
            max_rounds=GAP_MAX_ROUNDS,
            workers=workers,
            faults=plan,
            heal=heal,
            retry_budget=GAP_RETRY_BUDGET,
        )
        elapsed_s = time.perf_counter() - wall0
        degradation = run.degradation
        healing = degradation.healing if degradation else None
        side = {
            "delivered": run.payload == payload,
            "delivered_bytes": degradation.delivered_bytes,
            "recovered_ratio": degradation.recovered_ratio,
            "rounds": run.arq_stats.rounds,
            "retransmissions": run.arq_stats.retransmissions,
            "budget_exhausted": run.arq_stats.budget_exhausted,
            "blackout_rounds": degradation.blackout_rounds,
            "elapsed_s": elapsed_s,
        }
        if heal and healing is not None:
            side["resyncs"] = healing.n_resyncs
        record["heal_on" if heal else "heal_off"] = side
    return record


def run_bench(
    quick: bool = False,
    seed: int = 3,
    plan_seed: int = 11,
    workers: int | None = None,
) -> dict:
    cells = QUICK_CELLS if quick else FULL_CELLS
    frames = 48 if quick else 72
    return {
        "bench": "faults",
        "quick": quick,
        "seed": seed,
        "plan_seed": plan_seed,
        "n_video_frames": frames,
        "link_matrix": sweep_link_matrix(
            cells, n_video_frames=frames, seed=seed, plan_seed=plan_seed,
            workers=workers,
        ),
        "transport_gap": run_transport_gap(
            n_video_frames=48, seed=seed, plan_seed=plan_seed, workers=workers
        ),
    }


def format_report(record: dict) -> str:
    lines = [
        f"fault matrix ({'quick' if record['quick'] else 'full'}, "
        f"seed={record['seed']}, plan_seed={record['plan_seed']}):",
        f"{'fault':>15s} {'BER off':>9s} {'BER on':>9s} {'goodput off':>12s} "
        f"{'goodput on':>11s} {'resync':>7s}",
    ]
    for row in record["link_matrix"]:
        off, on = row["heal_off"], row["heal_on"]
        resync = on.get("time_to_resync_s")
        lines.append(
            f"{row['fault']:>15s} {off['ber']:9.4f} {on['ber']:9.4f} "
            f"{off['goodput_bps']:10.0f}bp {on['goodput_bps']:9.0f}bp "
            f"{f'{resync:.2f}s' if resync is not None else '-':>7s}"
        )
    gap = record["transport_gap"]
    off, on = gap["heal_off"], gap["heal_on"]
    lines.append(
        f"transport gap (moderate matrix, budget={gap['retry_budget']}): "
        f"heal-on {on['recovered_ratio'] * 100:.0f}% vs "
        f"heal-off {off['recovered_ratio'] * 100:.0f}% of "
        f"{gap['payload_bytes']} B"
    )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# pytest entry point (quick mode -- this is what CI smoke-runs)
# ----------------------------------------------------------------------
def test_fault_matrix_quick(benchmark, emit, results_dir):
    from conftest import run_once

    record = run_once(benchmark, lambda: run_bench(quick=True))
    emit("bench_faults_quick", format_report(record))
    bench_envelope(record, bench="faults", quick=True)
    with open(os.path.join(results_dir, "bench_faults_quick.json"), "w") as f:
        json.dump(record, f, indent=2)
    gap = record["transport_gap"]
    assert gap["heal_on"]["recovered_ratio"] >= 0.9
    assert gap["heal_off"]["recovered_ratio"] < 0.5
    # Healing never makes a faulted link worse in the matrix.
    for row in record["link_matrix"]:
        assert row["heal_on"]["ber"] <= row["heal_off"]["ber"] + 0.02


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="benchmarks/bench_faults.py",
        description="Fault type x severity matrix with healing on/off.",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="4-cell matrix on short clips (the CI smoke mode)",
    )
    parser.add_argument("--seed", type=int, default=3, help="capture noise seed")
    parser.add_argument("--plan-seed", type=int, default=11, help="fault plan seed")
    parser.add_argument(
        "--workers", type=int, default=None, help="worker processes per link run"
    )
    parser.add_argument(
        "--out",
        default=os.path.join(os.path.dirname(__file__), "results", "bench_faults.json"),
        help="where the fault-matrix JSON goes",
    )
    args = parser.parse_args(argv)
    record = run_bench(
        quick=args.quick, seed=args.seed, plan_seed=args.plan_seed,
        workers=args.workers,
    )
    print(format_report(record))
    bench_envelope(record, bench="faults", quick=bool(record["quick"]))
    os.makedirs(os.path.dirname(os.path.abspath(args.out)), exist_ok=True)
    with open(args.out, "w") as f:
        json.dump(record, f, indent=2)
    print(f"wrote {args.out}")
    gap = record["transport_gap"]
    ok = (
        gap["heal_on"]["recovered_ratio"] >= 0.9
        and gap["heal_off"]["recovered_ratio"] < 0.5
    )
    if not ok:
        print(
            "FAIL: healing gap not met "
            f"(on={gap['heal_on']['recovered_ratio']:.2f}, "
            f"off={gap['heal_off']['recovered_ratio']:.2f})"
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
