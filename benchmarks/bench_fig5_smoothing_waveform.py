"""Figure 5: the temporal smoothing waveform and its low-pass response.

The paper's Figure 5 shows the transition envelope adopted by InFrame (the
red solid curve: half a square-root raised cosine across the second half
of the cycle) and its effect after an electronic low-pass filter (the blue
dotted curve: a stable output waveform).  This benchmark regenerates both
series for a 1 -> 0 -> 1 bit sequence, compares the three candidate
envelope shapes the paper evaluated, and verifies the property the design
is for: the SRRC envelope leaves the least below-CFF residual energy.
"""

from __future__ import annotations

import numpy as np
import pytest
from scipy import signal

from repro.analysis.reporting import format_series, format_table
from repro.core.smoothing import SmoothingWaveform, transition_profile
from repro.hvs.temporal import perceived_flicker_energy

from conftest import run_once

TAU = 12
REFRESH_HZ = 120.0


def _carrier_waveform(kind: str, bits=(1, 0, 1, 0)) -> tuple[np.ndarray, float]:
    """The signed per-frame modulation waveform for a Pixel, oversampled."""
    waveform = SmoothingWaveform(TAU, kind)
    envelope = waveform.envelope_samples(np.array(bits, dtype=float))
    oversample = 4
    samples = np.repeat(envelope, oversample)
    signs = np.repeat(np.where(np.arange(envelope.size) % 2 == 0, 1.0, -1.0), oversample)
    return samples * signs, REFRESH_HZ * oversample


def _lowpass(carrier: np.ndarray, fs: float, cutoff_hz: float = 40.0) -> np.ndarray:
    """The paper's verification: pass the waveform through an electronic LPF.

    A 6th-order Butterworth at 40 Hz stands in for the paper's (unnamed)
    electronic filter: it passes the envelope's spectral content and
    rejects the 60 Hz carrier by ~21 dB.
    """
    sos = signal.butter(6, cutoff_hz, fs=fs, output="sos")
    return signal.sosfilt(sos, carrier)


@pytest.fixture(scope="module")
def waveforms():
    return {kind: _carrier_waveform(kind) for kind in ("srrc", "linear", "stair")}


def test_fig5_smoothing_waveform(benchmark, emit, waveforms):
    # Regenerate the figure's two curves for the adopted SRRC envelope.
    carrier, fs = waveforms["srrc"]
    filtered = _lowpass(carrier, fs)
    steps = np.arange(0, carrier.size, 8)
    series = format_series(
        "Figure 5: smoothing waveform (SRRC, tau=12, bits 1->0->1->0)",
        [f"{t / fs * 1000:.1f}ms" for t in steps],
        [f"{carrier[t]:+.2f} -> {filtered[t]:+.3f}" for t in steps],
        x_label="time",
        y_label="carrier -> low-passed",
    )

    rows = []
    for kind, (wave, rate) in waveforms.items():
        residual = float(np.abs(_lowpass(wave, rate)).max())
        # Below-CFF perceptual energy of the luminance waveform around a
        # 100 cd/m^2 operating point with a 10% modulation depth.
        luminance = 100.0 + 10.0 * wave
        energy = perceived_flicker_energy(luminance, rate)
        rows.append([kind, f"{residual:.4f}", f"{energy:.3e}"])
    table = format_table(
        ["envelope", "LPF residual (peak)", "below-CFF energy"],
        rows,
        title="Envelope comparison (the paper picked SRRC over linear and stair)",
    )
    emit("fig5_smoothing_waveform", series + "\n\n" + table)
    run_once(benchmark, lambda: _lowpass(*_carrier_waveform("srrc")))

    # The filtered output is stable: tiny compared to the carrier amplitude.
    assert float(np.abs(filtered[len(filtered) // 4 :]).max()) < 0.25

    # The paper's choice is justified: both smooth envelopes leave far
    # less perceivable residual than the stair (hard-switch) control;
    # SRRC and linear are close (the paper picked SRRC empirically).
    energies = {
        kind: perceived_flicker_energy(100.0 + 10.0 * wave, rate)
        for kind, (wave, rate) in waveforms.items()
    }
    assert energies["srrc"] < 0.5 * energies["stair"]
    assert energies["linear"] < 0.5 * energies["stair"]
    assert energies["srrc"] <= energies["linear"] * 1.3

    # Transition profiles are monotone and hit their endpoints.
    for kind in ("srrc", "linear", "stair"):
        profile = transition_profile(kind, 65)
        assert profile[0] == pytest.approx(1.0)
        assert profile[-1] == pytest.approx(0.0)
