"""CRC-16 and block interleaver."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ecc.crc import crc16, crc16_append, crc16_bytes, crc16_verify
from repro.ecc.interleaver import BlockInterleaver


class TestCRC:
    def test_known_check_value(self):
        # CRC-16/CCITT-FALSE check value for "123456789".
        assert crc16(b"123456789") == 0x29B1

    def test_empty_input(self):
        assert crc16(b"") == 0xFFFF  # the initial value, by definition

    def test_append_and_verify(self):
        assert crc16_verify(crc16_append(b"payload"))

    def test_verify_rejects_corruption(self):
        buf = bytearray(crc16_append(b"payload"))
        buf[0] ^= 0x01
        assert not crc16_verify(bytes(buf))

    def test_verify_rejects_short_input(self):
        assert not crc16_verify(b"\x00")

    def test_crc_bytes_is_big_endian(self):
        assert crc16_bytes(b"123456789") == b"\x29\xb1"

    @given(st.binary(max_size=256))
    @settings(max_examples=100)
    def test_roundtrip_property(self, data):
        assert crc16_verify(crc16_append(data))

    @given(st.binary(min_size=1, max_size=64), st.integers(min_value=0, max_value=7))
    @settings(max_examples=100)
    def test_single_bit_flip_always_detected(self, data, bit):
        buf = bytearray(crc16_append(data))
        buf[0] ^= 1 << bit
        assert not crc16_verify(bytes(buf))


class TestInterleaver:
    def test_known_permutation(self):
        il = BlockInterleaver(2, 3)
        assert il.interleave(b"abcdef") == b"adbecf"

    def test_roundtrip(self):
        il = BlockInterleaver(7, 13)
        data = bytes(range(91))
        assert il.deinterleave(il.interleave(data)) == data

    def test_size_mismatch_rejected(self):
        il = BlockInterleaver(2, 3)
        with pytest.raises(ValueError):
            il.interleave(b"abcde")
        with pytest.raises(ValueError):
            il.deinterleave(b"abcde")

    def test_position_maps_match_data_permutation(self):
        il = BlockInterleaver(3, 5)
        data = bytes(range(15))
        permuted = il.interleave(data)
        for original_index in range(15):
            [forward] = il.interleave_positions([original_index])
            assert permuted[forward] == data[original_index]
            [back] = il.deinterleave_positions([forward])
            assert back == original_index

    def test_position_out_of_range(self):
        il = BlockInterleaver(2, 2)
        with pytest.raises(ValueError):
            il.interleave_positions([4])

    def test_burst_spreads_across_rows(self):
        # A contiguous burst in the interleaved stream must hit distinct
        # codewords (rows): that is the whole point of interleaving.
        il = BlockInterleaver(rows=4, cols=8)
        burst = list(range(4))  # 4 consecutive post-interleave positions
        original = il.deinterleave_positions(burst)
        rows_hit = {pos // 8 for pos in original}
        assert len(rows_hit) == 4

    @given(
        st.integers(min_value=1, max_value=12),
        st.integers(min_value=1, max_value=12),
        st.randoms(),
    )
    @settings(max_examples=50)
    def test_roundtrip_property(self, rows, cols, rnd):
        il = BlockInterleaver(rows, cols)
        data = bytes(rnd.randrange(256) for _ in range(rows * cols))
        assert il.deinterleave(il.interleave(data)) == data
