"""Baselines: naive designs, QR region, LSB steganography, hue shift."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.hue_shift import HueShiftScheme
from repro.baselines.lsb_stego import LSBSteganography
from repro.baselines.naive import NaiveDesign, NaiveScheme
from repro.baselines.qr_region import QRRegionLayout, QRRegionScheme
from repro.camera.capture import CameraModel
from repro.core.framing import PseudoRandomSchedule
from repro.display.panel import DisplayPanel
from repro.display.scheduler import DisplayTimeline
from repro.video.synthetic import pure_color_video


class TestNaiveDesigns:
    def test_patterns(self):
        assert NaiveDesign.AGGRESSIVE.pattern == "VDDD"
        assert NaiveDesign.INTERLEAVED.pattern == "VDVD"
        assert NaiveDesign.RATIO_2_2.pattern == "VVDD"
        assert NaiveDesign.RATIO_3_1.pattern == "VVVD"

    def test_video_slots_show_plain_video(self, small_config, small_video):
        scheme = NaiveScheme(
            small_config, small_video, PseudoRandomSchedule(small_config), NaiveDesign.INTERLEAVED
        )
        assert np.array_equal(scheme.frame(0), small_video.frame(0))
        assert np.array_equal(scheme.frame(2), small_video.frame(0))

    def test_data_slots_modulated_without_complementarity(self, small_config, small_video):
        scheme = NaiveScheme(
            small_config, small_video, PseudoRandomSchedule(small_config), NaiveDesign.INTERLEAVED
        )
        d1 = scheme.frame(1) - small_video.frame(0)
        d3 = scheme.frame(3) - small_video.frame(0)
        assert np.abs(d1).max() > 0
        # Consecutive data slots use *different* data frames (D1, D2, ...),
        # so they do not cancel -- the design's fatal flaw.
        assert not np.allclose(d1, -d3)

    def test_aggressive_consumes_three_data_frames_per_video_frame(
        self, small_config, small_video
    ):
        scheme = NaiveScheme(
            small_config, small_video, PseudoRandomSchedule(small_config), NaiveDesign.AGGRESSIVE
        )
        assert scheme._data_index(0, 1) == 0
        assert scheme._data_index(0, 3) == 2
        assert scheme._data_index(1, 1) == 3

    def test_requires_four_slots(self, small_config):
        video = pure_color_video(80, 112, 127.0, fps=60.0, n_frames=4)
        config = small_config.with_updates(video_fps=60.0)
        with pytest.raises(ValueError):
            NaiveScheme(config, video, PseudoRandomSchedule(config))

    def test_naive_flickers_more_than_inframe(self, small_config, small_video):
        from repro.core.pipeline import InFrameSender
        from repro.hvs.flicker import FlickerPredictor

        predictor = FlickerPredictor(grid=(8, 12))
        sender = InFrameSender(small_config, small_video)
        inframe_score = predictor.report(sender.timeline(), duration_s=0.3).score
        naive = NaiveScheme(
            small_config, small_video, PseudoRandomSchedule(small_config), NaiveDesign.INTERLEAVED
        )
        panel = DisplayPanel(width=112, height=80, refresh_hz=120.0)
        naive_score = predictor.report(DisplayTimeline(panel, naive), duration_s=0.3).score
        assert naive_score > inframe_score + 0.5


class TestQRRegion:
    def test_occluded_fraction_near_layout(self):
        video = pure_color_video(120, 160, 127.0, n_frames=4)
        scheme = QRRegionScheme(video, QRRegionLayout(area_fraction=0.1, cells=20))
        assert scheme.occluded_fraction() == pytest.approx(0.1, abs=0.05)

    def test_barcode_visible_in_frame(self):
        video = pure_color_video(120, 160, 127.0, n_frames=4)
        scheme = QRRegionScheme(video)
        frame = scheme.frame(0)
        region = frame[-scheme.region_side :, -scheme.region_side :]
        assert set(np.unique(region)) == {0.0, 255.0}

    def test_barcode_changes_on_schedule(self):
        video = pure_color_video(120, 160, 127.0, n_frames=8)
        scheme = QRRegionScheme(video, QRRegionLayout(refresh_divider=2))
        assert scheme.barcode_index(0) == scheme.barcode_index(7)  # frames 0-7 = video 0-1
        assert scheme.barcode_index(0) != scheme.barcode_index(8)

    def test_raw_bit_rate(self):
        video = pure_color_video(120, 160, 127.0, n_frames=4)
        scheme = QRRegionScheme(video, QRRegionLayout(cells=30, refresh_divider=2))
        assert scheme.raw_bit_rate_bps(30.0) == pytest.approx(900 * 15)

    def test_camera_decode_recovers_barcode(self):
        video = pure_color_video(240, 320, 127.0, n_frames=8)
        scheme = QRRegionScheme(video, QRRegionLayout(area_fraction=0.12, cells=12))
        panel = DisplayPanel(width=320, height=240, refresh_hz=120.0)
        camera = CameraModel(width=214, height=160, exposure_s=1 / 500)
        timeline = DisplayTimeline(panel, scheme)
        capture = camera.capture_frame(timeline, 1, rng=np.random.default_rng(0))
        decoded = scheme.decode_capture(capture, (160, 214))
        truth = scheme.barcode(scheme.barcode_index(4))
        accuracy = float((decoded == truth).mean())
        assert accuracy > 0.95


class TestLSBStego:
    def test_embed_boundary_pixels_never_wrap(self):
        # Regression for the DT002 finding: embed() used to cast
        # round(frame) straight to uint8.  check_frame tolerates values a
        # hair above 255.0, so the cast must clip first -- a wrapped cast
        # would flip a white pixel to black.  Pins the corrected values.
        stego = LSBSteganography()
        frame = np.array([[255.0005, 0.0], [128.0, 64.0]], dtype=np.float64)
        bits = np.ones(4, dtype=bool)
        carrier = stego.embed(frame, bits)
        assert carrier.tolist() == [[255.0, 1.0], [129.0, 65.0]]

    def test_file_to_file_roundtrip(self):
        stego = LSBSteganography()
        frame = pure_color_video(32, 32, 127.0, n_frames=1).frame(0)
        bits = np.random.default_rng(0).random(256) < 0.5
        carrier = stego.embed(frame, bits)
        recovered = stego.extract(carrier, 256)
        assert np.array_equal(recovered, bits)

    def test_embedding_is_visually_negligible(self):
        stego = LSBSteganography()
        frame = pure_color_video(32, 32, 127.0, n_frames=1).frame(0)
        bits = np.ones(1024, dtype=bool)
        carrier = stego.embed(frame, bits)
        assert np.abs(carrier - frame).max() <= 1.0

    def test_capacity_enforced(self):
        stego = LSBSteganography()
        frame = pure_color_video(4, 4, 127.0, n_frames=1).frame(0)
        with pytest.raises(ValueError):
            stego.embed(frame, np.ones(17, dtype=bool))

    def test_multi_plane(self):
        stego = LSBSteganography(bits_per_pixel=2)
        frame = pure_color_video(8, 8, 127.0, n_frames=1).frame(0)
        bits = np.random.default_rng(1).random(128) < 0.5
        assert np.array_equal(stego.extract(stego.embed(frame, bits), 128), bits)

    def test_rejects_destructive_depth(self):
        with pytest.raises(ValueError):
            LSBSteganography(bits_per_pixel=5)

    def test_camera_link_destroys_lsb(self, small_camera):
        # The headline negative result: stego does not survive the optical
        # channel, which is why InFrame exists.
        stego = LSBSteganography()
        frame = pure_color_video(80, 112, 127.0, n_frames=1).frame(0)
        bits = np.random.default_rng(2).random(80 * 112) < 0.5
        carrier = stego.embed(frame, bits)
        from repro.video.source import ArrayVideoSource

        panel = DisplayPanel(width=112, height=80)
        timeline = DisplayTimeline(
            panel, ArrayVideoSource(carrier[None].repeat(8, axis=0), fps=120.0)
        )
        capture = small_camera.capture_frame(timeline, 0, rng=np.random.default_rng(3))
        # Upsample capture back to display geometry for extraction.
        from scipy import ndimage

        upsampled = ndimage.zoom(
            capture.pixels, (80 / 54, 112 / 75), order=1, mode="nearest", grid_mode=True
        )[:80, :112]
        recovered = stego.extract(upsampled, bits.size)
        ber = stego.bit_error_rate(bits, recovered)
        assert 0.4 < ber <= 0.6  # chance level

    def test_bit_error_rate_validation(self):
        with pytest.raises(ValueError):
            LSBSteganography.bit_error_rate(np.ones(3, bool), np.ones(4, bool))


class TestHueShift:
    def test_stream_offsets_are_uniform_per_block(self, small_config, small_video):
        scheme = HueShiftScheme(small_config, small_video, PseudoRandomSchedule(small_config))
        diff = scheme.frame(0) - small_video.frame(0)
        rslice, cslice = scheme.geometry.block_slices(2, 3)
        block = diff[rslice, cslice]
        assert np.allclose(block, block[0, 0])
        assert abs(float(block[0, 0])) == pytest.approx(small_config.amplitude)

    def test_complementary_pairs(self, small_config, small_video):
        scheme = HueShiftScheme(small_config, small_video, PseudoRandomSchedule(small_config))
        video = small_video.frame(0)
        assert np.allclose(
            (scheme.frame(0) + scheme.frame(1)) / 2.0, video, atol=1e-4
        )

    def test_pair_difference_decoding(self, small_config, small_video):
        scheme = HueShiftScheme(small_config, small_video, PseudoRandomSchedule(small_config))
        panel = DisplayPanel(width=112, height=80, refresh_hz=120.0)
        timeline = DisplayTimeline(panel, scheme)
        camera = CameraModel(width=75, height=54, exposure_s=1 / 500, readout_s=0.0,
                             timing_jitter_s=0.0)
        plus = camera.capture_frame(timeline, 0, rng=None)
        # Second capture half a display frame later in the minus phase.
        from dataclasses import replace

        camera_b = replace(camera, clock_offset_s=1 / 120)
        minus = camera_b.capture_frame(timeline, 0, rng=None)
        signed = scheme.decode_pair(plus, minus, (54, 75))
        truth = scheme.schedule.bits(0)
        decoded = signed > 0
        assert float((decoded == truth).mean()) > 0.9
