"""Extended Hamming (8,4) and the Hamming-coded GOB mode."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import InFrameConfig
from repro.core.parity import (
    check_parity_grid,
    data_bits_to_grid,
    decode_gob_grid,
    grid_to_data_bits,
)
from repro.ecc.hamming import (
    CORRECTED,
    DOUBLE_ERROR,
    OK,
    decode_hamming84,
    encode_block,
    encode_hamming84,
)

NIBBLES = st.lists(st.booleans(), min_size=4, max_size=4)


class TestHamming84:
    @given(NIBBLES)
    def test_clean_roundtrip(self, nibble):
        word = encode_hamming84(np.array(nibble))
        decoded, verdict = decode_hamming84(word)
        assert verdict == OK
        assert np.array_equal(decoded, np.array(nibble))

    @given(NIBBLES, st.integers(min_value=0, max_value=7))
    @settings(max_examples=128)
    def test_every_single_error_corrected(self, nibble, position):
        word = encode_hamming84(np.array(nibble))
        word[position] = ~word[position]
        decoded, verdict = decode_hamming84(word)
        assert verdict == CORRECTED
        assert np.array_equal(decoded, np.array(nibble))

    @given(
        NIBBLES,
        st.tuples(
            st.integers(min_value=0, max_value=7), st.integers(min_value=0, max_value=7)
        ).filter(lambda t: t[0] != t[1]),
    )
    @settings(max_examples=128)
    def test_every_double_error_detected(self, nibble, positions):
        word = encode_hamming84(np.array(nibble))
        for position in positions:
            word[position] = ~word[position]
        _, verdict = decode_hamming84(word)
        assert verdict == DOUBLE_ERROR

    def test_all_codewords_distinct_distance_4(self):
        words = encode_block(
            np.array([[bool(n & 8), bool(n & 4), bool(n & 2), bool(n & 1)] for n in range(16)])
        )
        for i in range(16):
            for j in range(i + 1, 16):
                distance = int(np.sum(words[i] != words[j]))
                assert distance >= 4

    def test_input_validation(self):
        with pytest.raises(ValueError):
            encode_hamming84(np.ones(3, bool))
        with pytest.raises(ValueError):
            decode_hamming84(np.ones(7, bool))
        with pytest.raises(ValueError):
            encode_block(np.ones((2, 3), bool))


@pytest.fixture
def hamming_config() -> InFrameConfig:
    return InFrameConfig(
        element_pixels=2,
        pixels_per_block=3,
        gob_size=3,
        block_rows=9,
        block_cols=12,
        tau=12,
        gob_code="hamming84",
    )


class TestHammingGOBMode:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            InFrameConfig(gob_code="hamming84")  # gob_size 2
        with pytest.raises(ValueError):
            InFrameConfig(gob_code="turbo")

    def test_bit_budget(self, hamming_config):
        assert hamming_config.bits_per_gob == 4
        assert hamming_config.bits_per_frame == hamming_config.n_gobs * 4

    def test_grid_roundtrip(self, hamming_config):
        rng = np.random.default_rng(0)
        bits = rng.random(hamming_config.bits_per_frame) < 0.5
        grid = data_bits_to_grid(bits, hamming_config)
        assert np.array_equal(grid_to_data_bits(grid, hamming_config), bits)
        assert check_parity_grid(grid, hamming_config).all()

    def test_spare_block_is_zero(self, hamming_config):
        rng = np.random.default_rng(1)
        bits = rng.random(hamming_config.bits_per_frame) < 0.5
        grid = data_bits_to_grid(bits, hamming_config)
        # Bottom-right Block of every 3x3 GOB is the unused spare.
        assert not grid[2::3, 2::3].any()

    def test_single_block_error_repaired(self, hamming_config):
        rng = np.random.default_rng(2)
        bits = rng.random(hamming_config.bits_per_frame) < 0.5
        grid = data_bits_to_grid(bits, hamming_config)
        corrupted = grid.copy()
        corrupted[0, 1] = ~corrupted[0, 1]
        repaired, ok, n_corrected = decode_gob_grid(corrupted, hamming_config)
        assert ok.all()
        assert n_corrected == 1
        assert np.array_equal(repaired, grid)
        assert np.array_equal(grid_to_data_bits(corrupted, hamming_config), bits)

    def test_double_block_error_detected(self, hamming_config):
        rng = np.random.default_rng(3)
        bits = rng.random(hamming_config.bits_per_frame) < 0.5
        grid = data_bits_to_grid(bits, hamming_config)
        corrupted = grid.copy()
        corrupted[0, 0] = ~corrupted[0, 0]
        corrupted[1, 1] = ~corrupted[1, 1]
        _, ok, _ = decode_gob_grid(corrupted, hamming_config)
        assert not ok[0, 0]
        assert ok.sum() == ok.size - 1

    def test_xor_mode_decode_gob_grid_is_checking_only(self, small_config):
        rng = np.random.default_rng(4)
        bits = rng.random(small_config.bits_per_frame) < 0.5
        grid = data_bits_to_grid(bits, small_config)
        corrupted = grid.copy()
        corrupted[0, 0] = ~corrupted[0, 0]
        repaired, ok, n_corrected = decode_gob_grid(corrupted, small_config)
        assert n_corrected == 0
        assert np.array_equal(repaired, corrupted)  # XOR cannot repair
        assert not ok[0, 0]

    def test_end_to_end_link_with_hamming(self):
        from repro.camera.capture import CameraModel
        from repro.core.pipeline import run_link
        from repro.video.synthetic import pure_color_video

        config = InFrameConfig(
            element_pixels=4,
            pixels_per_block=3,
            gob_size=3,
            block_rows=15,
            block_cols=24,
            tau=12,
            gob_code="hamming84",
        )
        video = pure_color_video(240, 360, 127.0, n_frames=24)
        camera = CameraModel(width=240, height=160)
        stats = run_link(config, video, camera=camera, seed=3).stats
        assert stats.bit_accuracy > 0.9
        assert stats.available_gob_ratio > 0.7
