"""Command-line tools: argument handling and end-to-end invocation."""

from __future__ import annotations

import pytest

from repro.tools import budget, flicker, simulate, sweep


class TestSimulateCLI:
    def test_runs_quick_scale(self, capsys):
        code = simulate.main(["--video", "gray", "--scale", "quick", "--seed", "3"])
        out = capsys.readouterr().out
        assert code == 0
        assert "throughput" in out
        assert "bits/frame" in out

    def test_rejects_unknown_video(self):
        with pytest.raises(SystemExit):
            simulate.main(["--video", "cats"])

    def test_screen_fill_flag(self, capsys):
        code = simulate.main(
            ["--video", "gray", "--scale", "quick", "--screen-fill", "0.8"]
        )
        assert code == 0
        assert "fill=0.8" in capsys.readouterr().out

    def test_parser_defaults(self):
        args = simulate.build_parser().parse_args([])
        assert args.video == "gray"
        assert args.tau == 12


class TestBudgetCLI:
    def test_prints_budget(self, capsys):
        code = budget.main(["--brightness", "127"])
        out = capsys.readouterr().out
        assert code == 0
        assert "SNR at delta=20" in out
        assert "verdict" in out

    def test_dim_operating_point_still_valid(self, capsys):
        assert budget.main(["--brightness", "30"]) == 0

    def test_high_ambient_reported(self, capsys):
        budget.main(["--lux", "5000"])
        out = capsys.readouterr().out
        assert "ambient contrast loss" in out


class TestFlickerCLI:
    def test_satisfactory_at_paper_point(self, capsys):
        code = flicker.main(["--delta", "20", "--duration", "0.2"])
        out = capsys.readouterr().out
        assert code == 0
        assert "satisfactory" in out

    def test_panel_size_flag(self, capsys):
        flicker.main(["--delta", "20", "--duration", "0.2", "--subjects", "4"])
        out = capsys.readouterr().out
        assert "(4 subjects)" in out


class TestSweepCLI:
    def test_tau_sweep(self, capsys):
        code = sweep.main(
            ["--parameter", "tau", "--values", "10", "12", "--scale", "quick"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "Sweep of tau" in out
        assert "10" in out and "12" in out

    def test_invalid_value_type(self, capsys):
        code = sweep.main(["--parameter", "tau", "--values", "banana"])
        assert code == 2

    def test_invalid_config_value_reported_in_table(self, capsys):
        code = sweep.main(
            ["--parameter", "tau", "--values", "11", "--scale", "quick"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "invalid" in out

    def test_unknown_parameter_rejected(self):
        with pytest.raises(SystemExit):
            sweep.main(["--parameter", "nonsense", "--values", "1"])
