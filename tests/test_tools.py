"""Command-line tools: argument handling and end-to-end invocation."""

from __future__ import annotations

import json

import pytest

from repro.tools import budget, flicker, report, serve, simulate, sweep, transfer


class TestSimulateCLI:
    def test_runs_quick_scale(self, capsys):
        code = simulate.main(["--video", "gray", "--scale", "quick", "--seed", "3"])
        out = capsys.readouterr().out
        assert code == 0
        assert "throughput" in out
        assert "bits/frame" in out

    def test_rejects_unknown_video(self):
        with pytest.raises(SystemExit):
            simulate.main(["--video", "cats"])

    def test_screen_fill_flag(self, capsys):
        code = simulate.main(
            ["--video", "gray", "--scale", "quick", "--screen-fill", "0.8"]
        )
        assert code == 0
        assert "fill=0.8" in capsys.readouterr().out

    def test_parser_defaults(self):
        args = simulate.build_parser().parse_args([])
        assert args.video == "gray"
        assert args.tau == 12
        assert args.json is False

    def test_json_output(self, capsys):
        code = simulate.main(["--video", "gray", "--scale", "quick", "--json"])
        out = capsys.readouterr().out
        assert code == 0
        record = json.loads(out)
        assert record["video"] == "gray"
        assert 0.0 <= record["bit_accuracy"] <= 1.0
        assert record["throughput_kbps"] == pytest.approx(
            record["throughput_bps"] / 1000.0
        )

    def test_json_carries_wall_clock_timing(self, capsys):
        code = simulate.main(["--video", "gray", "--scale", "quick", "--json"])
        record = json.loads(capsys.readouterr().out)
        assert code == 0
        assert record["elapsed_s"] > 0.0
        assert record["frames_per_s"] > 0.0

    def test_workers_flag_matches_serial_stats(self, capsys):
        code = simulate.main(
            ["--video", "gray", "--scale", "quick", "--seed", "3", "--json"]
        )
        serial = json.loads(capsys.readouterr().out)
        code2 = simulate.main(
            [
                "--video", "gray", "--scale", "quick", "--seed", "3",
                "--json", "--workers", "2",
            ]
        )
        parallel = json.loads(capsys.readouterr().out)
        assert code == code2 == 0
        assert parallel["bit_accuracy"] == serial["bit_accuracy"]
        assert parallel["throughput_bps"] == serial["throughput_bps"]

    def test_profile_flag_prints_stage_breakdown(self, capsys):
        code = simulate.main(["--video", "gray", "--scale", "quick", "--profile"])
        out = capsys.readouterr().out
        assert code == 0
        assert "runtime: mode=serial" in out
        assert "render" in out

    def test_profile_json_embeds_runtime_report(self, capsys):
        code = simulate.main(
            ["--video", "gray", "--scale", "quick", "--json", "--profile"]
        )
        record = json.loads(capsys.readouterr().out)
        assert code == 0
        assert record["runtime"]["frames"] > 0
        assert "render" in record["runtime"]["stages"]


class TestTransferCLI:
    def test_parser_defaults(self):
        args = transfer.build_parser().parse_args([])
        assert args.mode == "fountain"
        assert args.rs_k == 24
        assert args.json is False

    def test_arq_transfer_delivers(self, capsys):
        code = transfer.main(
            ["--bytes", "56", "--mode", "arq", "--seed", "3", "--delta", "30"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "arq" in out and "ok" in out

    def test_json_output(self, capsys):
        code = transfer.main(
            ["--bytes", "56", "--mode", "arq", "--seed", "3", "--json"]
        )
        record = json.loads(capsys.readouterr().out)
        assert code == 0
        assert record["mode"] == "arq"
        assert record["delivered"] is True
        assert record["elapsed_s"] > 0.0
        assert record["frames_per_s"] > 0.0

    def test_workers_and_profile_flags(self, capsys):
        code = transfer.main(
            [
                "--bytes", "40", "--mode", "plain", "--seed", "3", "--delta", "30",
                "--json", "--workers", "2", "--profile",
            ]
        )
        record = json.loads(capsys.readouterr().out)
        assert code in (0, 1)  # plain mode may legitimately fail to deliver
        assert record["runtime"]["workers"] == 2
        assert record["runtime"]["frames"] > 0

    def test_file_payload(self, tmp_path, capsys):
        path = tmp_path / "payload.bin"
        path.write_bytes(b"file transfer payload over InFrame!")
        code = transfer.main(
            ["--file", str(path), "--mode", "arq", "--seed", "3"]
        )
        assert code == 0

    def test_rejects_unknown_mode(self):
        with pytest.raises(SystemExit):
            transfer.main(["--mode", "wishful"])

    def test_rejects_out_of_range_loss(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            transfer.main(["--loss", "1.2"])
        assert excinfo.value.code == 2
        assert "--loss" in capsys.readouterr().err

    def test_missing_file_reported_cleanly(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            transfer.main(["--file", "/no/such/payload.bin"])
        assert excinfo.value.code == 2
        assert "payload.bin" in capsys.readouterr().err


class TestBudgetCLI:
    def test_prints_budget(self, capsys):
        code = budget.main(["--brightness", "127"])
        out = capsys.readouterr().out
        assert code == 0
        assert "SNR at delta=20" in out
        assert "verdict" in out

    def test_dim_operating_point_still_valid(self, capsys):
        assert budget.main(["--brightness", "30"]) == 0

    def test_high_ambient_reported(self, capsys):
        budget.main(["--lux", "5000"])
        out = capsys.readouterr().out
        assert "ambient contrast loss" in out


class TestFlickerCLI:
    def test_satisfactory_at_paper_point(self, capsys):
        code = flicker.main(["--delta", "20", "--duration", "0.2"])
        out = capsys.readouterr().out
        assert code == 0
        assert "satisfactory" in out

    def test_panel_size_flag(self, capsys):
        flicker.main(["--delta", "20", "--duration", "0.2", "--subjects", "4"])
        out = capsys.readouterr().out
        assert "(4 subjects)" in out


class TestSweepCLI:
    def test_tau_sweep(self, capsys):
        code = sweep.main(
            ["--parameter", "tau", "--values", "10", "12", "--scale", "quick"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "Sweep of tau" in out
        assert "10" in out and "12" in out

    def test_invalid_value_type(self, capsys):
        code = sweep.main(["--parameter", "tau", "--values", "banana"])
        assert code == 2

    def test_invalid_config_value_reported_in_table(self, capsys):
        code = sweep.main(
            ["--parameter", "tau", "--values", "11", "--scale", "quick"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "invalid" in out

    def test_unknown_parameter_rejected(self):
        with pytest.raises(SystemExit):
            sweep.main(["--parameter", "nonsense", "--values", "1"])

    def test_parallel_sweep_matches_serial_table(self, capsys):
        args = ["--parameter", "tau", "--values", "10", "12", "--scale", "quick"]
        assert sweep.main(args) == 0
        serial_out = capsys.readouterr().out
        assert sweep.main(args + ["--workers", "2"]) == 0
        parallel_out = capsys.readouterr().out
        assert parallel_out == serial_out

    def test_distance_is_sweepable(self, capsys):
        code = sweep.main(
            ["--parameter", "distance", "--values", "1.0", "2.0", "--scale", "quick"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "Sweep of distance" in out

    def test_seed_count_is_sweepable(self, capsys):
        code = sweep.main(
            ["--parameter", "seeds", "--values", "1", "2", "--scale", "quick"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "Sweep of seeds" in out

    def test_value_error_lists_sweepable_keys(self, capsys):
        code = sweep.main(["--parameter", "tau", "--values", "banana"])
        out = capsys.readouterr().out
        assert code == 2
        for key in ("exposure_s", "distance", "seeds"):
            assert key in out

    def test_out_of_range_value_rejected_at_parse_time(self, capsys):
        code = sweep.main(["--parameter", "distance", "--values", "-1"])
        assert code == 2
        assert "must be > 0" in capsys.readouterr().out


class TestTelemetryCLI:
    """The --telemetry-out / repro.tools.report loop."""

    def test_simulate_writes_loadable_telemetry(self, capsys, tmp_path):
        out_path = tmp_path / "run.json"
        code = simulate.main(
            ["--scale", "quick", "--seed", "3", "--telemetry-out", str(out_path)]
        )
        capsys.readouterr()
        assert code == 0
        telemetry = report.load_telemetry(out_path)
        assert telemetry.meta["run"] == "link"
        assert telemetry.metrics["decode.frames"]["value"] >= 1

    def test_report_summary_and_trace(self, capsys, tmp_path):
        out_path = tmp_path / "run.json"
        trace_path = tmp_path / "trace.json"
        assert simulate.main(["--scale", "quick", "--telemetry-out", str(out_path)]) == 0
        capsys.readouterr()
        code = report.main([str(out_path), "--trace-out", str(trace_path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "decode.frames" in out
        assert "trace events" in out
        trace = json.loads(trace_path.read_text())
        assert report.validate_chrome_trace(trace) == []
        names = {e["name"] for e in trace["traceEvents"] if e["ph"] == "X"}
        assert {"render", "observe", "decide", "score"} <= names

    def test_report_json_merges_files_exactly(self, capsys, tmp_path):
        paths = []
        for n in (1, 2):
            path = tmp_path / f"run{n}.json"
            assert simulate.main(
                ["--scale", "quick", "--seed", "3", "--telemetry-out", str(path)]
            ) == 0
            paths.append(str(path))
        capsys.readouterr()
        assert report.main(paths + ["--json"]) == 0
        merged = json.loads(capsys.readouterr().out)
        assert merged["meta"]["merged_runs"] == 2
        one = report.load_telemetry(paths[0])
        assert (
            merged["metrics"]["decode.observations"]["value"]
            == 2 * one.metrics["decode.observations"]["value"]
        )

    def test_report_rejects_non_telemetry_file(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text('{"format": "something-else"}')
        with pytest.raises(SystemExit):
            report.main([str(bad)])
        capsys.readouterr()

    def test_sweep_telemetry_covers_every_cell(self, capsys, tmp_path):
        out_path = tmp_path / "sweep.json"
        code = sweep.main(
            [
                "--parameter", "tau", "--values", "10", "12",
                "--scale", "quick", "--telemetry-out", str(out_path),
            ]
        )
        capsys.readouterr()
        assert code == 0
        telemetry = report.load_telemetry(out_path)
        assert telemetry.meta["merged_runs"] == 2

    def test_transfer_telemetry_carries_transport_metrics(self, capsys, tmp_path):
        out_path = tmp_path / "transfer.json"
        code = transfer.main(
            [
                "--bytes", "48", "--mode", "fountain", "--scale", "quick",
                "--max-rounds", "2", "--telemetry-out", str(out_path),
            ]
        )
        capsys.readouterr()
        assert code == 0
        telemetry = report.load_telemetry(out_path)
        assert telemetry.metrics["transport.rounds"]["value"] >= 1
        assert "fountain.degree" in telemetry.metrics


class TestExpandTelemetryPaths:
    """Directory and glob arguments to repro.tools.report."""

    def _write_runs(self, tmp_path, n=2):
        paths = []
        for i in range(n):
            path = tmp_path / f"run{i}.json"
            assert simulate.main(
                ["--scale", "quick", "--seed", "3", "--telemetry-out", str(path)]
            ) == 0
            paths.append(str(path))
        return paths

    def test_directory_expands_to_sorted_json_files(self, capsys, tmp_path):
        paths = self._write_runs(tmp_path)
        (tmp_path / "notes.txt").write_text("not telemetry")
        capsys.readouterr()
        assert report.expand_telemetry_paths([str(tmp_path)]) == sorted(paths)

    def test_glob_expands_and_plain_paths_pass_through(self, capsys, tmp_path):
        paths = self._write_runs(tmp_path)
        capsys.readouterr()
        expanded = report.expand_telemetry_paths(
            [str(tmp_path / "run*.json"), paths[0]]
        )
        assert expanded == sorted(paths) + [paths[0]]

    def test_empty_expansion_is_an_error_not_a_silence(self, tmp_path):
        (tmp_path / "empty").mkdir()
        with pytest.raises(ValueError, match="no .json files"):
            report.expand_telemetry_paths([str(tmp_path / "empty")])
        with pytest.raises(ValueError, match="matched no files"):
            report.expand_telemetry_paths([str(tmp_path / "nope*.json")])

    def test_report_merges_a_directory_of_runs(self, capsys, tmp_path):
        self._write_runs(tmp_path)
        capsys.readouterr()
        assert report.main([str(tmp_path), "--json"]) == 0
        merged = json.loads(capsys.readouterr().out)
        assert merged["meta"]["merged_runs"] == 2


class TestServeCLI:
    """python -m repro.tools.serve end to end at quick scale."""

    def test_serve_writes_report_and_telemetry(self, capsys, tmp_path):
        report_path = tmp_path / "fleet.json"
        telemetry_path = tmp_path / "serve.json"
        code = serve.main(
            [
                "--scale", "quick",
                "--payload-bytes", "48",
                "--cohorts", "solo:n=1,dwell=2.0",
                "--seed", "1",
                "--report-out", str(report_path),
                "--telemetry-out", str(telemetry_path),
                "--json",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        fleet = json.loads(report_path.read_text())
        assert fleet["receivers"] == 1
        (cohort,) = fleet["cohorts"]
        assert cohort["name"] == "solo"
        assert cohort["delivered"] == 1
        assert cohort["delivery_rate"] == 1.0
        assert cohort["mean_time_to_deliver_s"] is not None
        assert fleet["renders"] >= 1 and fleet["render_reads"] > fleet["renders"]
        assert json.loads(out)["delivery_rate"] == 1.0
        telemetry = report.load_telemetry(telemetry_path)
        assert telemetry.metrics["serve.cohort.solo.delivered"]["value"] == 1
