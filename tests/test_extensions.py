"""Extension features beyond the paper: gamma compensation, adaptive
amplitude, blind clock synchronisation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.camera.capture import CameraModel, CapturedFrame
from repro.core.config import InFrameConfig
from repro.core.decoder import InFrameDecoder
from repro.core.encoder import DataFrameEncoder
from repro.core.geometry import FrameGeometry
from repro.core.metrics import summarize_link
from repro.core.pipeline import InFrameSender, run_link
from repro.hvs.perception import perception_artifacts
from repro.video.synthetic import pure_color_video, sunrise_video


def _config(**overrides) -> InFrameConfig:
    base = dict(
        element_pixels=2, pixels_per_block=4, block_rows=8, block_cols=12,
        amplitude=40.0, tau=12,
    )
    base.update(overrides)
    return InFrameConfig(**base)


class TestGammaCompensation:
    def test_fused_luminance_error_nearly_eliminated(self):
        video = pure_color_video(80, 112, 127.0, n_frames=15)
        plain = InFrameSender(_config(), video)
        fixed = InFrameSender(_config(gamma_compensation=True), video)
        reference = video.frame(0)
        err_plain = perception_artifacts(plain.timeline(), reference, t=0.15)["max_weber"]
        err_fixed = perception_artifacts(fixed.timeline(), reference, t=0.15)["max_weber"]
        assert err_fixed < err_plain / 10.0

    def test_compensation_zero_when_disabled(self):
        config = _config()
        geometry = FrameGeometry(config, 80, 112)
        encoder = DataFrameEncoder(config, geometry)
        video = pure_color_video(80, 112, 127.0, n_frames=1).frame(0)
        bits = np.ones((8, 12), bool)
        modulation = encoder.modulation_field(video, bits)
        assert not encoder.compensation_field(video, modulation).any()

    def test_compensation_negative_on_convex_gamma(self):
        config = _config(gamma_compensation=True)
        geometry = FrameGeometry(config, 80, 112)
        encoder = DataFrameEncoder(config, geometry)
        video = pure_color_video(80, 112, 127.0, n_frames=1).frame(0)
        bits = np.ones((8, 12), bool)
        modulation = encoder.modulation_field(video, bits)
        compensation = encoder.compensation_field(video, modulation)
        modulated = modulation > 0
        assert np.all(compensation[modulated] < 0)
        assert not compensation[~modulated].any()

    def test_pair_stays_in_range(self):
        config = _config(gamma_compensation=True)
        geometry = FrameGeometry(config, 80, 112)
        encoder = DataFrameEncoder(config, geometry)
        bits = np.ones((8, 12), bool)
        for value in (2.0, 127.0, 250.0):
            video = pure_color_video(80, 112, value, n_frames=1).frame(0)
            plus, minus = encoder.multiplexed_pair(video, bits)
            assert plus.min() >= 0 and plus.max() <= 255
            assert minus.min() >= 0 and minus.max() <= 255

    def test_decoder_unaffected_by_compensation(self):
        # The chessboard amplitude is unchanged; only a DC shift is added,
        # so the link performs the same with compensation on.
        camera = CameraModel(width=96, height=72, readout_s=0.006)
        video = pure_color_video(108, 144, 127.0, n_frames=24)
        config = _config(
            element_pixels=2, pixels_per_block=5, block_rows=10, block_cols=14,
            amplitude=20.0,
        )
        plain = run_link(config, video, camera=camera, seed=4).stats
        comp = run_link(
            config.with_updates(gamma_compensation=True), video, camera=camera, seed=4
        ).stats
        assert abs(comp.bit_accuracy - plain.bit_accuracy) < 0.08


class TestAdaptiveAmplitude:
    def test_flat_content_keeps_base_amplitude(self):
        config = _config(amplitude=20.0, adaptive_amplitude=True)
        geometry = FrameGeometry(config, 80, 112)
        encoder = DataFrameEncoder(config, geometry)
        video = pure_color_video(80, 112, 127.0, n_frames=1).frame(0)
        delta = encoder._adaptive_delta(video)
        assert np.allclose(delta, 20.0)

    def test_textured_content_raises_amplitude(self):
        config = _config(amplitude=20.0, adaptive_amplitude=True)
        geometry = FrameGeometry(config, 160, 200)
        encoder = DataFrameEncoder(config, geometry)
        video = sunrise_video(160, 200, n_frames=1, grain_std=12.0).frame(0)
        delta = encoder._adaptive_delta(video)
        assert float(delta.max()) > 25.0
        assert float(delta.max()) <= config.adaptive_amplitude_max + 1e-5

    def test_adaptive_improves_textured_link(self):
        camera = CameraModel(width=192, height=108)
        video = sunrise_video(162, 288, n_frames=24, grain_std=10.0)
        config = InFrameConfig(
            element_pixels=2, pixels_per_block=6, block_rows=12, block_cols=20,
            amplitude=20.0, tau=12,
        )
        plain = run_link(config, video, camera=camera, seed=6).stats
        adaptive = run_link(
            config.with_updates(adaptive_amplitude=True), video, camera=camera, seed=6
        ).stats
        assert adaptive.bit_accuracy >= plain.bit_accuracy


class TestBlindSynchronisation:
    def test_synchronized_recovers_shifted_clock(self, small_config, small_video):
        sender = InFrameSender(small_config, small_video)
        timeline = sender.timeline()
        camera = CameraModel(width=75, height=54, readout_s=0.004, exposure_s=1 / 500)
        captures = camera.capture_sequence(timeline, 24, rng=np.random.default_rng(2))

        # The receiver's clock reads the captures with an unknown offset.
        offset = 0.0437
        shifted = [
            CapturedFrame(
                pixels=c.pixels,
                index=c.index,
                start_time_s=c.start_time_s + offset,
                mid_exposure_s=c.mid_exposure_s + offset,
            )
            for c in captures
        ]

        decoder = InFrameDecoder(small_config, sender.geometry, 54, 75)
        blind = decoder.synchronized(shifted)
        cycle = small_config.tau / small_config.refresh_hz
        # The estimated phase compensates the offset modulo the cycle.
        residual = (blind.clock_phase_s - offset) % cycle
        residual = min(residual, cycle - residual)
        assert residual < cycle / 4

        decoded = blind.decode(shifted)
        # Bits should be decodable against *some* alignment of the ground
        # truth; find the best integer frame shift and check accuracy.
        best = 0.0
        for frame in decoded[1:-1]:
            for k in range(max(frame.index - 1, 0), frame.index + 2):
                truth = sender.stream.ground_truth(min(k, sender.stream.n_data_frames - 1))
                best = max(best, float((frame.bits == truth).mean()))
        assert best > 0.9

    def test_synchronized_preserves_settings(self, small_config, small_geometry, small_sender):
        camera = CameraModel(width=75, height=54)
        captures = camera.capture_sequence(
            small_sender.timeline(), 6, rng=np.random.default_rng(0)
        )
        decoder = InFrameDecoder(
            small_config, small_geometry, 54, 75, inset=0.3, aggregation="mean"
        )
        blind = decoder.synchronized(captures)
        assert blind.inset == 0.3
        assert blind.aggregation == "mean"
