"""repro.campaign: spec grammar, journal, queue, master, determinism."""

import json
import multiprocessing
import os
import shutil
import signal
import threading
import time

import pytest

from repro.campaign import (
    CampaignJournal,
    CampaignJournalError,
    CampaignMaster,
    CampaignQueueError,
    CampaignSpec,
    CampaignSpecError,
    ChaosScheduleError,
    LeaseHealth,
    QueueState,
    SupervisePolicy,
    Supervisor,
    UnitResult,
    UnitStatus,
    classify_lease,
    coerce_sweep_values,
    compact_journal,
    execute_unit,
    journal_status,
    parse_chaos,
    report_from_journal,
)
from repro.campaign.chaos import (
    CHAOS_ENV,
    heartbeat_filter_from_env,
    tamper_from_env,
)
from repro.campaign.supervise import HeartbeatEmitter, JournalTail
from repro.runtime.engine import resolve_start_method
from repro.tools import campaign as campaign_cli

# The shared test campaign: 8 units crossing a swept parameter with a
# fault plan and both heal settings -- the matrix shape the determinism
# contract must hold for (faulted units included).
QSPEC = "parameter=tau:8,12|faults=none,drop:p=0.3|heal=on,off"


@pytest.fixture(scope="module")
def journaled_run(tmp_path_factory):
    """One journaled serial run of QSPEC: (outcome, journal path)."""
    path = tmp_path_factory.mktemp("campaign") / "journal.jsonl"
    master = CampaignMaster(
        QSPEC, journal=CampaignJournal(path), scale="quick", workers=1
    )
    return master.run(), path


@pytest.fixture(scope="module")
def parallel_run():
    """The same campaign at workers=4, unjournaled."""
    return CampaignMaster(QSPEC, scale="quick", workers=4).run()


class TestCampaignSpec:
    def test_canonical_order_and_defaults(self):
        spec = CampaignSpec.parse("heal=on,off|parameter=tau:8,12")
        assert spec.spec() == (
            "workload=link|video=gray|parameter=tau:8,12|faults=none|heal=on,off"
        )
        assert spec.n_units == 4

    def test_round_trip(self):
        text = "workload=link|video=gray|parameter=tau:8,12|faults=none|heal=on,off"
        assert CampaignSpec.parse(text).spec() == text

    def test_duplicate_axis_rejected(self):
        with pytest.raises(CampaignSpecError, match="duplicate axis"):
            CampaignSpec.parse("heal=on|heal=off")

    def test_unknown_axis_rejected(self):
        with pytest.raises(CampaignSpecError, match="unknown axis"):
            CampaignSpec.parse("flavor=salty")

    def test_unknown_parameter_lists_sweepable_keys(self):
        with pytest.raises(CampaignSpecError, match="exposure_s"):
            CampaignSpec.parse("parameter=nonsense:1,2")

    def test_bad_faults_value_rejected(self):
        with pytest.raises(CampaignSpecError, match="faults"):
            CampaignSpec.parse("faults=explode:p=0.1")

    def test_workload_parameters_validated(self):
        spec = CampaignSpec.parse("workload=transport:mode=arq+rounds=2")
        assert "transport:mode=arq+rounds=2" in spec.spec()
        with pytest.raises(CampaignSpecError, match="transport"):
            CampaignSpec.parse("workload=transport:mode=telepathy")
        with pytest.raises(CampaignSpecError, match="no parameter"):
            CampaignSpec.parse("workload=link:n=4")

    def test_expansion_is_deterministic(self):
        a = CampaignSpec.parse(QSPEC).expand(scale="quick", seed=7)
        b = CampaignSpec.parse(QSPEC).expand(scale="quick", seed=7)
        assert a == b
        assert [u.index for u in a] == list(range(8))

    def test_unit_seed_depends_only_on_key(self):
        # Adding an axis value must not re-key the units that already existed.
        small = CampaignSpec.parse("parameter=tau:8|heal=on").expand(seed=7)
        large = CampaignSpec.parse("parameter=tau:8|heal=on,off").expand(seed=7)
        by_key = {u.key: u for u in large}
        assert small[0].seed == by_key[small[0].key].seed

    def test_fingerprint_tracks_expansion_inputs(self):
        spec = CampaignSpec.parse(QSPEC)
        assert spec.fingerprint(seed=1) != spec.fingerprint(seed=2)
        assert spec.fingerprint(seed=1) == spec.fingerprint(seed=1)

    def test_seeds_axis_sets_replicates(self):
        units = CampaignSpec.parse("parameter=seeds:2").expand(scale="quick")
        assert units[0].replicates == 2


class TestCoerceSweepValues:
    def test_unknown_key_lists_sweepable(self):
        with pytest.raises(CampaignSpecError) as excinfo:
            coerce_sweep_values("nonsense", ["1"])
        for key in ("tau", "exposure_s", "distance", "seeds"):
            assert key in str(excinfo.value)

    def test_type_coercion(self):
        assert coerce_sweep_values("tau", ["8", "12"]) == (8, 12)
        assert coerce_sweep_values("distance", ["1.5"]) == (1.5,)

    def test_bad_type_reported(self):
        with pytest.raises(CampaignSpecError, match="must be int"):
            coerce_sweep_values("tau", ["banana"])

    def test_range_checks(self):
        with pytest.raises(CampaignSpecError, match=">= 1"):
            coerce_sweep_values("seeds", ["0"])
        with pytest.raises(CampaignSpecError, match="> 0"):
            coerce_sweep_values("distance", ["-1"])


class TestJournal:
    def test_append_read_round_trip(self, tmp_path):
        journal = CampaignJournal(tmp_path / "j.jsonl")
        assert not journal.exists
        journal.append({"event": "campaign", "format": "repro.campaign/1"})
        journal.append({"event": "queued", "unit": "k", "index": 0})
        contents = journal.read()
        assert journal.exists
        assert not contents.torn_tail
        assert [r["event"] for r in contents.records] == ["campaign", "queued"]

    def test_torn_final_line_is_tolerated(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = CampaignJournal(path)
        journal.append({"event": "campaign", "format": "repro.campaign/1"})
        journal.append({"event": "queued", "unit": "k", "index": 0})
        text = path.read_text()
        path.write_text(text + '{"event":"leased","unit":"k"')  # no newline, torn
        contents = journal.read()
        assert contents.torn_tail
        assert [r["event"] for r in contents.records] == ["campaign", "queued"]

    def test_mid_file_corruption_raises(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_text(
            '{"event":"campaign","format":"repro.campaign/1"}\n'
            "{torn mid-file\n"
            '{"event":"queued","unit":"k","index":0}\n'
        )
        with pytest.raises(CampaignJournalError, match="line 2"):
            CampaignJournal(path).read()

    def test_missing_header_raises(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_text('{"event":"queued","unit":"k","index":0}\n')
        with pytest.raises(CampaignJournalError, match="header"):
            CampaignJournal(path).read()

    def test_empty_journal_raises(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_text("")
        with pytest.raises(CampaignJournalError, match="empty"):
            CampaignJournal(path).read()


def _queue_for(keys):
    from repro.campaign.queue import UnitState

    return QueueState(
        units={key: UnitState(key=key, index=index) for index, key in enumerate(keys)}
    )


class TestQueue:
    def test_lifecycle_replay(self):
        state = _queue_for(["a", "b"])
        state.apply({"event": "leased", "unit": "a", "worker": "m1", "expires": 10.0})
        result = UnitResult(index=0, key="a", ok=True, row={"x": 1.0})
        state.apply({"event": "done", "unit": "a", "result": result.as_dict()})
        assert state.units["a"].status is UnitStatus.DONE
        assert state.results()["a"].row == {"x": 1.0}
        assert state.counts() == {
            "queued": 1, "leased": 0, "done": 1, "failed": 0, "quarantined": 0,
        }

    def test_done_is_first_wins(self):
        state = _queue_for(["a"])
        first = UnitResult(index=0, key="a", ok=True, row={"x": 1.0})
        second = UnitResult(index=0, key="a", ok=True, row={"x": 2.0})
        state.apply({"event": "done", "unit": "a", "result": first.as_dict()})
        state.apply({"event": "done", "unit": "a", "result": second.as_dict()})
        assert state.results()["a"].row == {"x": 1.0}

    def test_lease_expiry_and_foreign_owner(self):
        state = _queue_for(["a"])
        state.apply({"event": "leased", "unit": "a", "worker": "dead", "expires": 1e12})
        # A foreign (dead) incarnation's lease is runnable immediately...
        assert [e.key for e in state.runnable(0.0, "me", 3)] == ["a"]
        state.apply({"event": "leased", "unit": "a", "worker": "me", "expires": 100.0})
        # ...our own live lease is not...
        assert state.runnable(50.0, "me", 3) == []
        # ...until it expires.
        assert [e.key for e in state.runnable(200.0, "me", 3)] == ["a"]

    def test_failed_attempts_budget(self):
        state = _queue_for(["a"])
        state.apply({"event": "failed", "unit": "a", "error": "boom", "attempt": 1})
        assert [e.key for e in state.runnable(0.0, "me", 2)] == ["a"]
        state.apply({"event": "failed", "unit": "a", "error": "boom", "attempt": 2})
        assert state.runnable(0.0, "me", 2) == []
        assert [e.key for e in state.exhausted(2)] == ["a"]

    def test_unknown_unit_rejected(self):
        state = _queue_for(["a"])
        with pytest.raises(CampaignQueueError, match="unknown unit"):
            state.apply({"event": "queued", "unit": "zzz", "index": 9})


class TestExecuteUnit:
    def test_invalid_cell_is_nonretryable(self):
        unit = CampaignSpec.parse("parameter=tau:11").expand(scale="quick")[0]
        result = execute_unit(unit)
        assert not result.ok and not result.retryable
        assert "tau" in result.error

    def test_result_round_trips_through_json(self):
        unit = CampaignSpec.parse("parameter=tau:8").expand(scale="quick")[0]
        result = execute_unit(unit)
        clone = UnitResult.from_dict(json.loads(json.dumps(result.as_dict())))
        assert clone == result


class TestDeterminism:
    """The campaign determinism contract (ISSUE acceptance criteria)."""

    def test_workers_do_not_change_the_report(self, journaled_run, parallel_run):
        serial, _ = journaled_run
        assert parallel_run.report.metrics_json() == serial.report.metrics_json()
        assert parallel_run.report.report_json() == serial.report.report_json()

    def test_faulted_units_are_covered(self, journaled_run):
        outcome, _ = journaled_run
        faulted = [r for r in outcome.report.rows if "drop" in r["key"]]
        assert len(faulted) == 4
        assert all(r["status"] == "ok" for r in faulted)

    def test_campaign_counters_in_metrics(self, journaled_run):
        outcome, _ = journaled_run
        metrics = json.loads(outcome.report.metrics_json())
        assert metrics["campaign.units"]["value"] == 8
        assert metrics["campaign.units_ok"]["value"] == 8


class TestResume:
    def test_fresh_run_refuses_existing_journal(self, journaled_run):
        _, path = journaled_run
        master = CampaignMaster(QSPEC, journal=CampaignJournal(path), scale="quick")
        with pytest.raises(CampaignJournalError, match="resume"):
            master.run()

    def test_resume_refuses_foreign_fingerprint(self, journaled_run, tmp_path):
        _, path = journaled_run
        copy = tmp_path / "journal.jsonl"
        shutil.copy(path, copy)
        master = CampaignMaster(
            QSPEC,
            journal=CampaignJournal(copy),
            scale="quick",
            seed=99,  # different expansion than the journal records
        )
        with pytest.raises(CampaignJournalError, match="fingerprint"):
            master.run(resume=True)

    def test_truncated_journal_resumes_byte_identical(self, journaled_run, tmp_path):
        outcome, path = journaled_run
        lines = path.read_text().splitlines(keepends=True)
        done = [i for i, line in enumerate(lines) if '"event":"done"' in line]
        # Keep everything up to (and including) the third completion --
        # the shape a SIGKILL between appends leaves behind.
        copy = tmp_path / "journal.jsonl"
        copy.write_text("".join(lines[: done[2] + 1]))
        master = CampaignMaster.resume(CampaignJournal(copy), workers=1)
        resumed = master.run(resume=True)
        assert resumed.stats.reused == 3
        assert resumed.stats.executed == 5
        assert resumed.report.metrics_json() == outcome.report.metrics_json()
        assert resumed.report.report_json() == outcome.report.report_json()

    def test_torn_final_line_resumes_cleanly(self, journaled_run, tmp_path):
        """Regression: a crash-torn last record must not poison resume."""
        outcome, path = journaled_run
        lines = path.read_text().splitlines(keepends=True)
        done = [i for i, line in enumerate(lines) if '"event":"done"' in line]
        kept = lines[: done[1] + 1]
        torn = lines[done[2]][: len(lines[done[2]]) // 2]  # half a done record
        copy = tmp_path / "journal.jsonl"
        copy.write_text("".join(kept) + torn)
        master = CampaignMaster.resume(CampaignJournal(copy), workers=1)
        resumed = master.run(resume=True)
        assert resumed.stats.torn_tail
        assert resumed.stats.reused == 2  # the torn completion does not count
        assert resumed.report.metrics_json() == outcome.report.metrics_json()
        assert resumed.report.report_json() == outcome.report.report_json()

    def test_resume_at_workers_4_matches(self, journaled_run, tmp_path):
        outcome, path = journaled_run
        lines = path.read_text().splitlines(keepends=True)
        done = [i for i, line in enumerate(lines) if '"event":"done"' in line]
        copy = tmp_path / "journal.jsonl"
        copy.write_text("".join(lines[: done[3] + 1]))
        master = CampaignMaster.resume(CampaignJournal(copy), workers=4)
        resumed = master.run(resume=True)
        assert resumed.report.metrics_json() == outcome.report.metrics_json()
        assert resumed.report.report_json() == outcome.report.report_json()

    def test_journal_views(self, journaled_run):
        outcome, path = journaled_run
        snapshot = journal_status(CampaignJournal(path))
        assert snapshot["complete"] is True
        assert snapshot["counts"]["done"] == 8
        rebuilt = report_from_journal(CampaignJournal(path))
        assert rebuilt.report_json() == outcome.report.report_json()

    def test_partial_journal_reports_missing_rows(self, journaled_run, tmp_path):
        _, path = journaled_run
        lines = path.read_text().splitlines(keepends=True)
        done = [i for i, line in enumerate(lines) if '"event":"done"' in line]
        copy = tmp_path / "journal.jsonl"
        copy.write_text("".join(lines[: done[0] + 1]))
        report = report_from_journal(CampaignJournal(copy))
        counts = report.counts()
        assert counts["ok"] == 1 and counts["missing"] == 7


class TestRetries:
    def test_transient_crash_is_retried(self, monkeypatch):
        from repro.campaign import master as master_module
        from repro.campaign.units import execute_unit as real_execute

        crashed = []

        def flaky(unit):
            if "tau=12" in unit.key and not crashed:
                crashed.append(unit.key)
                raise RuntimeError("simulated worker crash")
            return real_execute(unit)

        monkeypatch.setattr(master_module, "execute_unit", flaky)
        outcome = CampaignMaster(
            "parameter=tau:8,12", scale="quick", workers=1
        ).run()
        assert crashed  # the crash happened...
        assert outcome.stats.retries == 1
        assert outcome.report.counts()["ok"] == 2  # ...and the retry healed it

    def test_exhausted_budget_reports_failed(self, monkeypatch):
        from repro.campaign import master as master_module
        from repro.campaign.units import execute_unit as real_execute

        def doomed(unit):
            if "tau=12" in unit.key:
                raise RuntimeError("permanent crash")
            return real_execute(unit)

        monkeypatch.setattr(master_module, "execute_unit", doomed)
        outcome = CampaignMaster(
            "parameter=tau:8,12", scale="quick", workers=1, max_attempts=2
        ).run()
        assert outcome.stats.exhausted == 1
        counts = outcome.report.counts()
        assert counts["ok"] == 1 and counts["failed"] == 1
        failed = [r for r in outcome.report.rows if r["status"] == "failed"]
        assert "attempts" in failed[0]["error"]


class TestCampaignCLI:
    def test_run_status_report(self, capsys, tmp_path):
        journal = tmp_path / "j.jsonl"
        report_path = tmp_path / "report.json"
        code = campaign_cli.main(
            [
                "run", "--spec", "parameter=tau:8,11", "--scale", "quick",
                "--journal", str(journal), "--report-out", str(report_path),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "ok=1 invalid=1" in out
        payload = json.loads(report_path.read_text())
        assert payload["format"] == "repro.campaign/1"
        assert campaign_cli.main(["status", "--journal", str(journal)]) == 0
        assert "complete: True" in capsys.readouterr().out
        assert campaign_cli.main(["report", "--journal", str(journal), "--json"]) == 0
        rebuilt = json.loads(capsys.readouterr().out)
        assert rebuilt["rows"] == payload["rows"]

    def test_bad_spec_exits_2(self, capsys):
        assert campaign_cli.main(["run", "--spec", "parameter=zzz:1"]) == 2
        assert "sweepable" in capsys.readouterr().out

    def test_existing_journal_suggests_resume(self, capsys, tmp_path):
        journal = tmp_path / "j.jsonl"
        args = ["run", "--spec", "parameter=tau:8", "--scale", "quick",
                "--journal", str(journal)]
        assert campaign_cli.main(args) == 0
        capsys.readouterr()
        assert campaign_cli.main(args) == 2
        assert "resume" in capsys.readouterr().out

    def test_resume_completed_campaign_is_a_no_op(self, capsys, tmp_path):
        journal = tmp_path / "j.jsonl"
        assert campaign_cli.main(
            ["run", "--spec", "parameter=tau:8", "--scale", "quick",
             "--journal", str(journal)]
        ) == 0
        capsys.readouterr()
        assert campaign_cli.main(["resume", "--journal", str(journal)]) == 0
        assert "ok=1" in capsys.readouterr().out

    def test_compact_subcommand_preserves_the_report(self, capsys, tmp_path):
        journal = tmp_path / "j.jsonl"
        assert campaign_cli.main(
            ["run", "--spec", "parameter=tau:8,12", "--scale", "quick",
             "--journal", str(journal), "--workers", "1"]
        ) == 0
        capsys.readouterr()
        assert campaign_cli.main(["report", "--journal", str(journal), "--json"]) == 0
        before_json = capsys.readouterr().out
        assert campaign_cli.main(["compact", "--journal", str(journal)]) == 0
        assert "compacted" in capsys.readouterr().out
        assert campaign_cli.main(["report", "--journal", str(journal), "--json"]) == 0
        assert capsys.readouterr().out == before_json
        assert campaign_cli.main(["status", "--journal", str(journal)]) == 0
        assert "complete: True" in capsys.readouterr().out

    def test_status_shows_leases_and_quarantine(self, capsys, journaled_run, tmp_path):
        _, path = journaled_run
        lines = path.read_text().splitlines(keepends=True)
        done = [i for i, line in enumerate(lines) if '"event":"done"' in line]
        copy = tmp_path / "j.jsonl"
        copy.write_text("".join(lines[: done[0] + 1]))
        queued = [
            json.loads(line) for line in lines if '"event":"queued"' in line
        ]
        done_key = json.loads(lines[done[0]])["unit"]
        others = [r for r in queued if r["unit"] != done_key]
        beating, silent, poison = others[0], others[1], others[2]
        journal = CampaignJournal(copy)
        now = time.time()
        for record in (beating, silent):
            journal.append(
                {"event": "leased", "unit": record["unit"],
                 "index": record["index"], "worker": "deadbeef.1", "fence": 1,
                 "granted": now, "expires": now + 600.0}
            )
        journal.append(
            {"event": "heartbeat", "unit": beating["unit"],
             "index": beating["index"], "fence": 1, "seq": 2,
             "worker": "deadbeef.1", "pid": 1234, "t": now}
        )
        journal.append(
            {"event": "quarantined", "unit": poison["unit"], "reclaims": 3,
             "deaths": 0,
             "error": "quarantined after 3 lease reclamations and 0 worker deaths"}
        )
        snapshot = journal_status(journal)
        leases = {lease["unit"]: lease for lease in snapshot["leases"]}
        assert set(leases) == {beating["unit"], silent["unit"]}
        alive = leases[beating["unit"]]
        assert alive["owner"] == "deadbeef.1" and alive["fence"] == 1
        assert alive["heartbeat_seq"] == 2 and alive["heartbeat_age_s"] is not None
        assert alive["lease_age_s"] >= 0.0 and alive["expires_in_s"] > 0.0
        # A lease that never managed a beat reports its silence honestly.
        assert leases[silent["unit"]]["heartbeat_age_s"] is None
        assert leases[silent["unit"]]["heartbeat_seq"] == -1
        assert snapshot["quarantined"][0]["unit"] == poison["unit"]
        assert snapshot["counts"]["quarantined"] == 1
        assert campaign_cli.main(["status", "--journal", str(copy)]) == 0
        out = capsys.readouterr().out
        assert "[ leased]" in out and "fence=1" in out and "(seq 2)" in out
        assert "heartbeat=never" in out
        assert "[ poison]" in out and "3 lease reclamations" in out


class TestFencing:
    """Late records from fenced-off leases are rejected on replay."""

    def _result(self, x):
        return UnitResult(index=0, key="a", ok=True, row={"x": x})

    def test_late_done_after_reclaim_is_rejected(self):
        state = _queue_for(["a"])
        state.apply({"event": "leased", "unit": "a", "worker": "m1", "fence": 1,
                     "granted": 0.0, "expires": 100.0})
        state.apply({"event": "reclaimed", "unit": "a", "fence": 1,
                     "reason": "stuck", "t": 5.0})
        # The stalled worker resumes and reports its stale-fenced result.
        state.apply({"event": "done", "unit": "a", "fence": 1,
                     "result": self._result(1.0).as_dict()})
        assert state.units["a"].status is UnitStatus.QUEUED

    def test_first_valid_fence_wins(self):
        state = _queue_for(["a"])
        state.apply({"event": "leased", "unit": "a", "worker": "m1", "fence": 1,
                     "granted": 0.0, "expires": 100.0})
        state.apply({"event": "reclaimed", "unit": "a", "fence": 1,
                     "reason": "stuck", "t": 5.0})
        state.apply({"event": "leased", "unit": "a", "worker": "m1", "fence": 2,
                     "granted": 6.0, "expires": 106.0})
        state.apply({"event": "done", "unit": "a", "fence": 1,
                     "result": self._result(1.0).as_dict()})  # fenced off
        state.apply({"event": "done", "unit": "a", "fence": 2,
                     "result": self._result(2.0).as_dict()})  # the standing one
        assert state.results()["a"].row == {"x": 2.0}

    def test_late_failed_with_stale_fence_is_rejected(self):
        state = _queue_for(["a"])
        state.apply({"event": "leased", "unit": "a", "worker": "m1", "fence": 1,
                     "granted": 0.0, "expires": 100.0})
        state.apply({"event": "reclaimed", "unit": "a", "fence": 1,
                     "reason": "stuck", "t": 5.0})
        state.apply({"event": "failed", "unit": "a", "fence": 1, "kind": "crash",
                     "error": "late", "attempt": 1})
        assert state.units["a"].status is UnitStatus.QUEUED
        assert state.units["a"].attempts == 0

    def test_newer_grant_invalidates_older_fence(self):
        state = _queue_for(["a"])
        state.apply({"event": "leased", "unit": "a", "worker": "m1", "fence": 1,
                     "granted": 0.0, "expires": 100.0})
        state.apply({"event": "leased", "unit": "a", "worker": "m2", "fence": 2,
                     "granted": 1.0, "expires": 101.0})
        state.apply({"event": "done", "unit": "a", "fence": 1,
                     "result": self._result(1.0).as_dict()})
        assert state.units["a"].status is UnitStatus.LEASED

    def test_unfenced_legacy_records_stay_valid(self):
        state = _queue_for(["a"])
        state.apply({"event": "leased", "unit": "a", "worker": "m1", "fence": 3,
                     "granted": 0.0, "expires": 100.0})
        state.apply({"event": "done", "unit": "a",
                     "result": self._result(1.0).as_dict()})
        assert state.units["a"].status is UnitStatus.DONE

    def test_replay_is_invariant_to_fenced_noise(self):
        base = [
            {"event": "leased", "unit": "a", "worker": "m1", "fence": 1,
             "granted": 0.0, "expires": 100.0},
            {"event": "reclaimed", "unit": "a", "fence": 1, "reason": "stuck",
             "t": 5.0},
            {"event": "leased", "unit": "a", "worker": "m1", "fence": 2,
             "granted": 6.0, "expires": 106.0},
            {"event": "done", "unit": "a", "fence": 2,
             "result": self._result(2.0).as_dict()},
        ]
        noise = {"event": "done", "unit": "a", "fence": 1,
                 "result": self._result(9.0).as_dict()}
        clean, noisy = _queue_for(["a"]), _queue_for(["a"])
        clean.replay(base)
        noisy.replay(base[:3] + [noise] + base[3:])
        assert noisy.results()["a"] == clean.results()["a"]


class TestSupervisePolicyResolve:
    def test_derived_defaults(self):
        policy = SupervisePolicy.resolve(heartbeat_s=1.0, lease_timeout_s=600.0)
        assert policy.stuck_after_s == 4.0
        assert policy.first_beat_grace_s == 16.0
        assert policy.soft_deadline_s == 150.0
        assert policy.tick_s == 0.5

    def test_tick_clamped_to_floor(self):
        policy = SupervisePolicy.resolve(heartbeat_s=0.02, lease_timeout_s=600.0)
        assert policy.tick_s == 0.02

    def test_heartbeat_must_be_positive(self):
        with pytest.raises(ValueError, match="heartbeat_s"):
            SupervisePolicy.resolve(heartbeat_s=0.0)

    def test_stuck_must_exceed_heartbeat(self):
        with pytest.raises(ValueError, match="missed beat"):
            SupervisePolicy.resolve(heartbeat_s=1.0, stuck_after_s=1.0)

    def test_stuck_must_beat_the_wall_clock(self):
        with pytest.raises(ValueError, match="lease timeout"):
            SupervisePolicy.resolve(
                heartbeat_s=1.0, stuck_after_s=600.0, lease_timeout_s=600.0
            )

    def test_grace_must_cover_stuck(self):
        with pytest.raises(ValueError, match="first_beat_grace_s"):
            SupervisePolicy.resolve(
                heartbeat_s=1.0, stuck_after_s=4.0, first_beat_grace_s=2.0
            )

    def test_quarantine_threshold_must_be_positive(self):
        with pytest.raises(ValueError, match="quarantine_after"):
            SupervisePolicy.resolve(quarantine_after=0)


# A synthetic-clock policy: beats every 1s, stuck after 4s of staleness,
# 16s of grace before the first beat, slow past 150s.
_POLICY = SupervisePolicy(
    heartbeat_s=1.0, stuck_after_s=4.0, first_beat_grace_s=16.0,
    soft_deadline_s=150.0, max_extensions=3, quarantine_after=3, tick_s=0.25,
)


class TestSupervisor:
    def test_classify_lease_rule(self):
        # Beating lease: judged on heartbeat staleness.
        assert classify_lease(2.0, 0.0, 1.0, _POLICY) is LeaseHealth.LIVE
        assert classify_lease(6.0, 0.0, 1.0, _POLICY) is LeaseHealth.STUCK
        # Silent lease: judged on the (more generous) first-beat grace.
        assert (
            classify_lease(10.0, 0.0, 0.0, _POLICY, has_beats=False)
            is LeaseHealth.LIVE
        )
        assert (
            classify_lease(17.0, 0.0, 0.0, _POLICY, has_beats=False)
            is LeaseHealth.STUCK
        )
        # Old but still beating: slow, not stuck.
        assert classify_lease(151.0, 0.0, 150.0, _POLICY) is LeaseHealth.SLOW

    def test_stale_heartbeats_make_a_lease_stuck(self):
        supervisor = Supervisor(_POLICY)
        supervisor.track("a", 0, 1, granted_s=0.0, expires_s=600.0)
        supervisor.observe(
            {"event": "heartbeat", "unit": "a", "fence": 1, "seq": 0, "t": 1.0}
        )
        assert supervisor.classify(2.0) == {"a": LeaseHealth.LIVE}
        decisions = supervisor.decide(6.0)  # 5s since the last beat
        assert len(decisions) == 1
        assert decisions[0].reason == "stuck"
        assert decisions[0].fence == 1
        assert "a" not in supervisor.leases  # reclaimed leases stop being tracked

    def test_silent_lease_reclaimed_as_unstarted(self):
        supervisor = Supervisor(_POLICY)
        supervisor.track("a", 0, 1, granted_s=0.0, expires_s=600.0)
        assert supervisor.decide(10.0) == []  # within first-beat grace
        decisions = supervisor.decide(17.0)
        assert [d.reason for d in decisions] == ["unstarted"]

    def test_slow_lease_extended_with_bounded_backoff(self):
        supervisor = Supervisor(_POLICY)
        supervisor.track("a", 0, 1, granted_s=0.0, expires_s=600.0)
        supervisor.observe(
            {"event": "heartbeat", "unit": "a", "fence": 1, "seq": 0, "t": 150.0}
        )
        (first,) = supervisor.decide(151.0)
        assert first.extension == 1
        assert first.expires_s == 600.0 + 300.0  # soft_deadline * 2**1
        assert supervisor.decide(152.0) == []  # backoff: not due again yet
        supervisor.observe(
            {"event": "heartbeat", "unit": "a", "fence": 1, "seq": 1, "t": 450.0}
        )
        (second,) = supervisor.decide(451.0)
        assert second.extension == 2
        assert second.expires_s == 900.0 + 600.0  # soft_deadline * 2**2
        supervisor.observe(
            {"event": "heartbeat", "unit": "a", "fence": 1, "seq": 2, "t": 1051.0}
        )
        (third,) = supervisor.decide(1051.5)
        assert third.extension == 3
        # The extension budget is spent; the hard timeout is now final.
        supervisor.observe(
            {"event": "heartbeat", "unit": "a", "fence": 1, "seq": 3, "t": 3451.0}
        )
        assert supervisor.decide(3451.5) == []
        assert "a" in supervisor.leases

    def test_fenced_off_heartbeats_are_ignored(self):
        supervisor = Supervisor(_POLICY)
        supervisor.track("a", 0, 2, granted_s=0.0, expires_s=600.0)
        assert not supervisor.observe(
            {"event": "heartbeat", "unit": "a", "fence": 1, "seq": 7, "t": 5.0}
        )
        assert supervisor.leases["a"].heartbeat_seq == -1

    def test_decisions_come_in_index_order(self):
        supervisor = Supervisor(_POLICY)
        supervisor.track("b", 1, 1, granted_s=0.0, expires_s=600.0)
        supervisor.track("a", 0, 1, granted_s=0.0, expires_s=600.0)
        decisions = supervisor.decide(17.0)
        assert [d.key for d in decisions] == ["a", "b"]


class TestHeartbeatEmitter:
    def test_emits_sequenced_records(self, tmp_path):
        path = tmp_path / "j.jsonl"
        CampaignJournal(path).append(
            {"event": "campaign", "format": "repro.campaign/1"}
        )
        emitter = HeartbeatEmitter(
            path, key="k", index=0, fence=1, worker="w", interval_s=0.02
        )
        with emitter:
            time.sleep(0.15)
        beats = [
            r for r in CampaignJournal(path).read().records
            if r["event"] == "heartbeat"
        ]
        assert len(beats) >= 2
        assert [r["seq"] for r in beats] == list(range(len(beats)))
        assert all(r["fence"] == 1 and r["pid"] == os.getpid() for r in beats)


class TestJournalTail:
    def test_poll_consumes_only_complete_lines(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_text('{"event":"a"}\n{"event":"b')
        tail = JournalTail(path)
        assert [r["event"] for r in tail.poll()] == ["a"]
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('x"}\n')
        assert [r["event"] for r in tail.poll()] == ["bx"]
        assert tail.poll() == []


_HEADER = '{"event":"campaign","format":"repro.campaign/1"}\n'
_QUEUED_K = '{"event":"queued","unit":"k","index":0}\n'
_BEAT = '{"event":"heartbeat","unit":"k","index":0,"fence":1,"seq":0,"t":1.0}\n'


class TestTornRecords:
    """The record-aware torn-line policy (crash signatures vs corruption)."""

    def test_torn_middle_heartbeat_skipped_with_warning(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_text(
            _HEADER + _QUEUED_K
            + '{"event":"heartbeat","unit":"k","seq":\n'
            + '{"event":"queued","unit":"m","index":1}\n'
        )
        contents = CampaignJournal(path).read()
        assert not contents.torn_tail
        assert [r["event"] for r in contents.records] == [
            "campaign", "queued", "queued",
        ]
        assert any("torn heartbeat line skipped" in w for w in contents.warnings)

    def test_torn_heartbeat_with_embedded_record_salvaged(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_text(
            _HEADER + _QUEUED_K
            + '{"event":"heartbeat","unit":"k","seq{"event":"queued","unit":"m","index":1}\n'
        )
        contents = CampaignJournal(path).read()
        assert [r["event"] for r in contents.records] == [
            "campaign", "queued", "queued",
        ]
        assert any("salvaged" in w for w in contents.warnings)

    def test_torn_final_work_record_stays_the_crash_signature(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_text(
            _HEADER + _QUEUED_K + '{"event":"done","unit":"k","result":{"in'
        )
        contents = CampaignJournal(path).read()
        assert contents.torn_tail
        assert contents.warnings == ()
        assert [r["event"] for r in contents.records] == ["campaign", "queued"]

    def test_torn_master_record_followed_by_heartbeats_is_legal(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_text(
            _HEADER + _QUEUED_K
            + '{"event":"done","unit":"k","resu\n' + _BEAT + _BEAT
        )
        contents = CampaignJournal(path).read()
        assert contents.torn_tail  # the interrupted state transition was lost
        assert any("torn master append dropped" in w for w in contents.warnings)
        assert [r["event"] for r in contents.records] == [
            "campaign", "queued", "heartbeat", "heartbeat",
        ]

    def test_torn_master_record_with_embedded_heartbeat_salvaged(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_text(
            _HEADER + _QUEUED_K
            + '{"event":"done","unit":"k","resu'
            + '{"event":"heartbeat","unit":"k","index":0,"fence":1,"seq":3,"t":2.0}\n'
            + _BEAT
        )
        contents = CampaignJournal(path).read()
        assert contents.torn_tail
        assert any("recovered the heartbeat" in w for w in contents.warnings)
        assert [r["event"] for r in contents.records] == [
            "campaign", "queued", "heartbeat", "heartbeat",
        ]

    def test_torn_master_record_before_resumed_master_is_legal(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_text(
            _HEADER + _QUEUED_K
            + '{"event":"done","unit":"k","resu\n' + _BEAT
            + '{"event":"master","incarnation":"2"}\n'
            + '{"event":"queued","unit":"m","index":1}\n'
        )
        contents = CampaignJournal(path).read()
        assert contents.torn_tail
        assert [r["event"] for r in contents.records] == [
            "campaign", "queued", "heartbeat", "master", "queued",
        ]

    def test_torn_master_followed_by_state_transition_raises(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_text(
            _HEADER + _QUEUED_K
            + '{"event":"done","unit":"k","resu\n'
            + '{"event":"queued","unit":"m","index":1}\n'
        )
        with pytest.raises(CampaignJournalError, match="crash signature"):
            CampaignJournal(path).read()

    def test_torn_master_with_embedded_state_record_raises(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_text(
            _HEADER + _QUEUED_K
            + '{"event":"done","u{"event":"queued","unit":"m","index":1}\n'
            + _BEAT
        )
        with pytest.raises(CampaignJournalError, match="crash signature"):
            CampaignJournal(path).read()


class TestQuarantine:
    def test_only_fault_reasons_count_toward_quarantine(self):
        state = _queue_for(["a"])
        for reason in ("drain", "unstarted", "takeover"):
            state.apply({"event": "leased", "unit": "a", "worker": "m", "fence": 1,
                         "granted": 0.0, "expires": 100.0})
            state.apply({"event": "reclaimed", "unit": "a", "fence": 1,
                         "reason": reason, "t": 1.0})
        assert state.units["a"].reclaims == 0
        for fence, reason in ((2, "stuck"), (3, "expired")):
            state.apply({"event": "leased", "unit": "a", "worker": "m",
                         "fence": fence, "granted": 0.0, "expires": 100.0})
            state.apply({"event": "reclaimed", "unit": "a", "fence": fence,
                         "reason": reason, "t": 1.0})
        assert state.units["a"].reclaims == 2

    def test_quarantine_is_terminal(self):
        state = _queue_for(["a"])
        state.apply({"event": "quarantined", "unit": "a", "reclaims": 3,
                     "deaths": 0, "error": "poison"})
        entry = state.units["a"]
        assert entry.status is UnitStatus.QUARANTINED and entry.terminal
        assert state.counts()["quarantined"] == 1
        # Neither a late lease nor a late completion moves it.
        result = UnitResult(index=0, key="a", ok=True, row={"x": 1.0})
        state.apply({"event": "leased", "unit": "a", "worker": "m", "fence": 9,
                     "granted": 0.0, "expires": 100.0})
        state.apply({"event": "done", "unit": "a", "result": result.as_dict()})
        assert state.units["a"].status is UnitStatus.QUARANTINED
        assert state.runnable(0.0, "m", 3) == []

    def test_standing_result_beats_a_quarantine_marker(self):
        state = _queue_for(["a"])
        result = UnitResult(index=0, key="a", ok=True, row={"x": 1.0})
        state.apply({"event": "done", "unit": "a", "result": result.as_dict()})
        state.apply({"event": "quarantined", "unit": "a", "reclaims": 3,
                     "deaths": 0, "error": "poison"})
        assert state.units["a"].status is UnitStatus.DONE

    def test_died_failures_use_their_own_budget(self):
        state = _queue_for(["a"])
        state.apply({"event": "failed", "unit": "a", "kind": "died",
                     "error": "worker process died mid-unit", "death": 1})
        entry = state.units["a"]
        assert entry.deaths == 1 and entry.attempts == 0
        # Worker deaths never consume the crash-attempt budget.
        assert [e.key for e in state.runnable(0.0, "m", 1)] == ["a"]

    @pytest.mark.skipif(
        resolve_start_method() != "fork",
        reason="monkeypatched workers need fork inheritance",
    )
    def test_worker_death_quarantines_poison_unit(self, monkeypatch, tmp_path):
        from repro.campaign import master as master_module
        from repro.campaign.units import execute_unit as real_execute

        def poison(unit):
            if "tau=16" in unit.key and multiprocessing.parent_process() is not None:
                time.sleep(1.0)  # let the healthy units clear the pool first
                os._exit(21)
            return real_execute(unit)

        monkeypatch.setattr(master_module, "execute_unit", poison)
        path = tmp_path / "poison.jsonl"
        outcome = CampaignMaster(
            "parameter=tau:8,12,16",
            journal=CampaignJournal(path),
            scale="quick",
            workers=2,
            supervise=SupervisePolicy.resolve(
                quarantine_after=1, lease_timeout_s=600.0
            ),
        ).run()
        assert outcome.stats.deaths >= 1
        assert outcome.stats.quarantined == 1
        counts = outcome.report.counts()
        assert counts["ok"] == 2 and counts["quarantined"] == 1
        (row,) = [r for r in outcome.report.rows if r["status"] == "quarantined"]
        assert "tau=16" in row["key"] and "worker deaths" in row["error"]
        metrics = json.loads(outcome.report.metrics_json())
        assert metrics["campaign.units_quarantined"]["value"] == 1
        # Replaying the journal reproduces the identical report bytes.
        rebuilt = report_from_journal(CampaignJournal(path))
        assert rebuilt.report_json() == outcome.report.report_json()


class TestCompact:
    def test_compacted_complete_journal_resumes_identically(
        self, journaled_run, tmp_path
    ):
        outcome, path = journaled_run
        copy = tmp_path / "j.jsonl"
        shutil.copy(path, copy)
        before, after = compact_journal(CampaignJournal(copy))
        assert before > after
        assert after == 17  # header + 8 queued + 8 done
        master = CampaignMaster.resume(CampaignJournal(copy), workers=1)
        resumed = master.run(resume=True)
        assert resumed.stats.reused == 8 and resumed.stats.executed == 0
        assert resumed.report.report_json() == outcome.report.report_json()

    def test_compacted_partial_journal_resumes_identically(
        self, journaled_run, tmp_path
    ):
        outcome, path = journaled_run
        lines = path.read_text().splitlines(keepends=True)
        done = [i for i, line in enumerate(lines) if '"event":"done"' in line]
        copy = tmp_path / "j.jsonl"
        copy.write_text("".join(lines[: done[2] + 1]))
        compact_journal(CampaignJournal(copy))
        master = CampaignMaster.resume(CampaignJournal(copy), workers=1)
        resumed = master.run(resume=True)
        assert resumed.stats.reused == 3 and resumed.stats.executed == 5
        assert resumed.report.report_json() == outcome.report.report_json()

    def test_compact_to_out_leaves_the_original(self, journaled_run, tmp_path):
        _, path = journaled_run
        copy = tmp_path / "j.jsonl"
        out = tmp_path / "compact.jsonl"
        shutil.copy(path, copy)
        original = copy.read_text()
        before, after = compact_journal(CampaignJournal(copy), out=out)
        assert copy.read_text() == original
        assert len(CampaignJournal(out).read().records) == after < before

    def test_compact_preserves_failure_accounting(self, journaled_run, tmp_path):
        _, path = journaled_run
        lines = [
            line for line in path.read_text().splitlines(keepends=True)
            if '"event":"campaign"' in line or '"event":"queued"' in line
        ]
        copy = tmp_path / "j.jsonl"
        copy.write_text("".join(lines))
        key = json.loads(lines[1])["unit"]
        journal = CampaignJournal(copy)
        journal.append({"event": "failed", "unit": key, "kind": "crash",
                        "error": "boom", "attempt": 2})
        journal.append({"event": "failed", "unit": key, "kind": "died",
                        "error": "worker process died mid-unit", "death": 1})
        compact_journal(journal)
        state = QueueState.from_journal(journal.read().records)
        assert state.units[key].attempts == 2
        assert state.units[key].deaths == 1
        assert state.units[key].status is UnitStatus.FAILED


class TestChaosGrammar:
    def test_parse_round_trip(self):
        text = "kill:unit=3;stall:unit=5,dur=2.0;tear:record=done"
        schedule = parse_chaos(text)
        assert schedule.spec() == text
        assert [e.kind for e in schedule.external()] == ["kill", "stall"]
        assert [e.kind for e in schedule.internal()] == ["tear"]
        assert schedule.env() == {CHAOS_ENV: "tear:record=done"}

    def test_external_only_schedule_needs_no_env(self):
        assert parse_chaos("kill:unit=1").env() == {}

    def test_unknown_kind_rejected(self):
        with pytest.raises(ChaosScheduleError, match="unknown chaos event kind"):
            parse_chaos("explode:unit=1")

    def test_required_params_enforced(self):
        with pytest.raises(ChaosScheduleError, match="unit=N"):
            parse_chaos("kill")
        with pytest.raises(ChaosScheduleError, match="dur=S"):
            parse_chaos("delay_hb:unit=1")
        with pytest.raises(ChaosScheduleError, match="record=EVENT"):
            parse_chaos("tear")
        with pytest.raises(ChaosScheduleError, match="key=value"):
            parse_chaos("kill:unit")

    def test_heartbeat_filter_drop_budget(self):
        chaos = heartbeat_filter_from_env(
            {CHAOS_ENV: "drop_hb:unit=2,from=1,count=2"}
        )
        assert chaos(2, 0) == (True, 0.0)  # below `from`
        assert chaos(2, 1) == (False, 0.0)
        assert chaos(2, 2) == (False, 0.0)
        assert chaos(2, 3) == (True, 0.0)  # count budget consumed
        assert chaos(0, 5) == (True, 0.0)  # another unit is untouched

    def test_heartbeat_filter_delay(self):
        chaos = heartbeat_filter_from_env({CHAOS_ENV: "delay_hb:unit=0,dur=0.5"})
        assert chaos(0, 0) == (True, 0.5)
        assert chaos(1, 0) == (True, 0.0)

    def test_no_internal_events_mean_no_hooks(self, tmp_path):
        assert heartbeat_filter_from_env({}) is None
        assert heartbeat_filter_from_env({CHAOS_ENV: "kill:unit=1"}) is None
        assert tamper_from_env(tmp_path / "j", "master", {}) is None

    def test_tamper_routes_by_writer_role(self, tmp_path):
        env = {CHAOS_ENV: "tear:record=heartbeat"}
        assert tamper_from_env(tmp_path / "j", "worker", env) is not None
        assert tamper_from_env(tmp_path / "j", "master", env) is None
        env = {CHAOS_ENV: "tear:record=done"}
        assert tamper_from_env(tmp_path / "j", "worker", env) is None
        assert tamper_from_env(tmp_path / "j", "master", env) is not None


class TestDrain:
    def test_sigterm_drains_to_a_clean_marker(self, journaled_run, tmp_path):
        outcome, _ = journaled_run
        path = tmp_path / "drain.jsonl"
        # Keep a no-op handler installed around the run so a late-firing
        # timer cannot terminate the test process.
        fired = []
        previous = signal.signal(signal.SIGTERM, lambda s, f: fired.append(s))
        timer = threading.Timer(
            0.15, os.kill, (os.getpid(), signal.SIGTERM)
        )
        try:
            timer.start()
            master = CampaignMaster(
                QSPEC, journal=CampaignJournal(path), scale="quick", workers=1
            )
            drained = master.run()
        finally:
            timer.cancel()
            timer.join()
            signal.signal(signal.SIGTERM, previous)
        assert drained.stats.drained is True
        snapshot = journal_status(CampaignJournal(path))
        assert snapshot["drained"] is True
        assert snapshot["counts"]["done"] < 8
        assert snapshot["leases"] == []  # nothing left in flight
        records = CampaignJournal(path).read().records
        assert records[-1]["event"] == "drained"
        assert records[-1]["outstanding"] == 8 - snapshot["counts"]["done"]
        # The drained campaign resumes to the byte-identical report.
        resumed = CampaignMaster.resume(CampaignJournal(path), workers=1).run(
            resume=True
        )
        assert resumed.report.report_json() == outcome.report.report_json()
