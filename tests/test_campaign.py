"""repro.campaign: spec grammar, journal, queue, master, determinism."""

import json
import shutil

import pytest

from repro.campaign import (
    CampaignJournal,
    CampaignJournalError,
    CampaignMaster,
    CampaignQueueError,
    CampaignSpec,
    CampaignSpecError,
    QueueState,
    UnitResult,
    UnitStatus,
    coerce_sweep_values,
    execute_unit,
    journal_status,
    report_from_journal,
)
from repro.tools import campaign as campaign_cli

# The shared test campaign: 8 units crossing a swept parameter with a
# fault plan and both heal settings -- the matrix shape the determinism
# contract must hold for (faulted units included).
QSPEC = "parameter=tau:8,12|faults=none,drop:p=0.3|heal=on,off"


@pytest.fixture(scope="module")
def journaled_run(tmp_path_factory):
    """One journaled serial run of QSPEC: (outcome, journal path)."""
    path = tmp_path_factory.mktemp("campaign") / "journal.jsonl"
    master = CampaignMaster(
        QSPEC, journal=CampaignJournal(path), scale="quick", workers=1
    )
    return master.run(), path


@pytest.fixture(scope="module")
def parallel_run():
    """The same campaign at workers=4, unjournaled."""
    return CampaignMaster(QSPEC, scale="quick", workers=4).run()


class TestCampaignSpec:
    def test_canonical_order_and_defaults(self):
        spec = CampaignSpec.parse("heal=on,off|parameter=tau:8,12")
        assert spec.spec() == (
            "workload=link|video=gray|parameter=tau:8,12|faults=none|heal=on,off"
        )
        assert spec.n_units == 4

    def test_round_trip(self):
        text = "workload=link|video=gray|parameter=tau:8,12|faults=none|heal=on,off"
        assert CampaignSpec.parse(text).spec() == text

    def test_duplicate_axis_rejected(self):
        with pytest.raises(CampaignSpecError, match="duplicate axis"):
            CampaignSpec.parse("heal=on|heal=off")

    def test_unknown_axis_rejected(self):
        with pytest.raises(CampaignSpecError, match="unknown axis"):
            CampaignSpec.parse("flavor=salty")

    def test_unknown_parameter_lists_sweepable_keys(self):
        with pytest.raises(CampaignSpecError, match="exposure_s"):
            CampaignSpec.parse("parameter=nonsense:1,2")

    def test_bad_faults_value_rejected(self):
        with pytest.raises(CampaignSpecError, match="faults"):
            CampaignSpec.parse("faults=explode:p=0.1")

    def test_workload_parameters_validated(self):
        spec = CampaignSpec.parse("workload=transport:mode=arq+rounds=2")
        assert "transport:mode=arq+rounds=2" in spec.spec()
        with pytest.raises(CampaignSpecError, match="transport"):
            CampaignSpec.parse("workload=transport:mode=telepathy")
        with pytest.raises(CampaignSpecError, match="no parameter"):
            CampaignSpec.parse("workload=link:n=4")

    def test_expansion_is_deterministic(self):
        a = CampaignSpec.parse(QSPEC).expand(scale="quick", seed=7)
        b = CampaignSpec.parse(QSPEC).expand(scale="quick", seed=7)
        assert a == b
        assert [u.index for u in a] == list(range(8))

    def test_unit_seed_depends_only_on_key(self):
        # Adding an axis value must not re-key the units that already existed.
        small = CampaignSpec.parse("parameter=tau:8|heal=on").expand(seed=7)
        large = CampaignSpec.parse("parameter=tau:8|heal=on,off").expand(seed=7)
        by_key = {u.key: u for u in large}
        assert small[0].seed == by_key[small[0].key].seed

    def test_fingerprint_tracks_expansion_inputs(self):
        spec = CampaignSpec.parse(QSPEC)
        assert spec.fingerprint(seed=1) != spec.fingerprint(seed=2)
        assert spec.fingerprint(seed=1) == spec.fingerprint(seed=1)

    def test_seeds_axis_sets_replicates(self):
        units = CampaignSpec.parse("parameter=seeds:2").expand(scale="quick")
        assert units[0].replicates == 2


class TestCoerceSweepValues:
    def test_unknown_key_lists_sweepable(self):
        with pytest.raises(CampaignSpecError) as excinfo:
            coerce_sweep_values("nonsense", ["1"])
        for key in ("tau", "exposure_s", "distance", "seeds"):
            assert key in str(excinfo.value)

    def test_type_coercion(self):
        assert coerce_sweep_values("tau", ["8", "12"]) == (8, 12)
        assert coerce_sweep_values("distance", ["1.5"]) == (1.5,)

    def test_bad_type_reported(self):
        with pytest.raises(CampaignSpecError, match="must be int"):
            coerce_sweep_values("tau", ["banana"])

    def test_range_checks(self):
        with pytest.raises(CampaignSpecError, match=">= 1"):
            coerce_sweep_values("seeds", ["0"])
        with pytest.raises(CampaignSpecError, match="> 0"):
            coerce_sweep_values("distance", ["-1"])


class TestJournal:
    def test_append_read_round_trip(self, tmp_path):
        journal = CampaignJournal(tmp_path / "j.jsonl")
        assert not journal.exists
        journal.append({"event": "campaign", "format": "repro.campaign/1"})
        journal.append({"event": "queued", "unit": "k", "index": 0})
        contents = journal.read()
        assert journal.exists
        assert not contents.torn_tail
        assert [r["event"] for r in contents.records] == ["campaign", "queued"]

    def test_torn_final_line_is_tolerated(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = CampaignJournal(path)
        journal.append({"event": "campaign", "format": "repro.campaign/1"})
        journal.append({"event": "queued", "unit": "k", "index": 0})
        text = path.read_text()
        path.write_text(text + '{"event":"leased","unit":"k"')  # no newline, torn
        contents = journal.read()
        assert contents.torn_tail
        assert [r["event"] for r in contents.records] == ["campaign", "queued"]

    def test_mid_file_corruption_raises(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_text(
            '{"event":"campaign","format":"repro.campaign/1"}\n'
            "{torn mid-file\n"
            '{"event":"queued","unit":"k","index":0}\n'
        )
        with pytest.raises(CampaignJournalError, match="line 2"):
            CampaignJournal(path).read()

    def test_missing_header_raises(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_text('{"event":"queued","unit":"k","index":0}\n')
        with pytest.raises(CampaignJournalError, match="header"):
            CampaignJournal(path).read()

    def test_empty_journal_raises(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_text("")
        with pytest.raises(CampaignJournalError, match="empty"):
            CampaignJournal(path).read()


def _queue_for(keys):
    from repro.campaign.queue import UnitState

    return QueueState(
        units={key: UnitState(key=key, index=index) for index, key in enumerate(keys)}
    )


class TestQueue:
    def test_lifecycle_replay(self):
        state = _queue_for(["a", "b"])
        state.apply({"event": "leased", "unit": "a", "worker": "m1", "expires": 10.0})
        result = UnitResult(index=0, key="a", ok=True, row={"x": 1.0})
        state.apply({"event": "done", "unit": "a", "result": result.as_dict()})
        assert state.units["a"].status is UnitStatus.DONE
        assert state.results()["a"].row == {"x": 1.0}
        assert state.counts() == {"queued": 1, "leased": 0, "done": 1, "failed": 0}

    def test_done_is_first_wins(self):
        state = _queue_for(["a"])
        first = UnitResult(index=0, key="a", ok=True, row={"x": 1.0})
        second = UnitResult(index=0, key="a", ok=True, row={"x": 2.0})
        state.apply({"event": "done", "unit": "a", "result": first.as_dict()})
        state.apply({"event": "done", "unit": "a", "result": second.as_dict()})
        assert state.results()["a"].row == {"x": 1.0}

    def test_lease_expiry_and_foreign_owner(self):
        state = _queue_for(["a"])
        state.apply({"event": "leased", "unit": "a", "worker": "dead", "expires": 1e12})
        # A foreign (dead) incarnation's lease is runnable immediately...
        assert [e.key for e in state.runnable(0.0, "me", 3)] == ["a"]
        state.apply({"event": "leased", "unit": "a", "worker": "me", "expires": 100.0})
        # ...our own live lease is not...
        assert state.runnable(50.0, "me", 3) == []
        # ...until it expires.
        assert [e.key for e in state.runnable(200.0, "me", 3)] == ["a"]

    def test_failed_attempts_budget(self):
        state = _queue_for(["a"])
        state.apply({"event": "failed", "unit": "a", "error": "boom", "attempt": 1})
        assert [e.key for e in state.runnable(0.0, "me", 2)] == ["a"]
        state.apply({"event": "failed", "unit": "a", "error": "boom", "attempt": 2})
        assert state.runnable(0.0, "me", 2) == []
        assert [e.key for e in state.exhausted(2)] == ["a"]

    def test_unknown_unit_rejected(self):
        state = _queue_for(["a"])
        with pytest.raises(CampaignQueueError, match="unknown unit"):
            state.apply({"event": "queued", "unit": "zzz", "index": 9})


class TestExecuteUnit:
    def test_invalid_cell_is_nonretryable(self):
        unit = CampaignSpec.parse("parameter=tau:11").expand(scale="quick")[0]
        result = execute_unit(unit)
        assert not result.ok and not result.retryable
        assert "tau" in result.error

    def test_result_round_trips_through_json(self):
        unit = CampaignSpec.parse("parameter=tau:8").expand(scale="quick")[0]
        result = execute_unit(unit)
        clone = UnitResult.from_dict(json.loads(json.dumps(result.as_dict())))
        assert clone == result


class TestDeterminism:
    """The campaign determinism contract (ISSUE acceptance criteria)."""

    def test_workers_do_not_change_the_report(self, journaled_run, parallel_run):
        serial, _ = journaled_run
        assert parallel_run.report.metrics_json() == serial.report.metrics_json()
        assert parallel_run.report.report_json() == serial.report.report_json()

    def test_faulted_units_are_covered(self, journaled_run):
        outcome, _ = journaled_run
        faulted = [r for r in outcome.report.rows if "drop" in r["key"]]
        assert len(faulted) == 4
        assert all(r["status"] == "ok" for r in faulted)

    def test_campaign_counters_in_metrics(self, journaled_run):
        outcome, _ = journaled_run
        metrics = json.loads(outcome.report.metrics_json())
        assert metrics["campaign.units"]["value"] == 8
        assert metrics["campaign.units_ok"]["value"] == 8


class TestResume:
    def test_fresh_run_refuses_existing_journal(self, journaled_run):
        _, path = journaled_run
        master = CampaignMaster(QSPEC, journal=CampaignJournal(path), scale="quick")
        with pytest.raises(CampaignJournalError, match="resume"):
            master.run()

    def test_resume_refuses_foreign_fingerprint(self, journaled_run, tmp_path):
        _, path = journaled_run
        copy = tmp_path / "journal.jsonl"
        shutil.copy(path, copy)
        master = CampaignMaster(
            QSPEC,
            journal=CampaignJournal(copy),
            scale="quick",
            seed=99,  # different expansion than the journal records
        )
        with pytest.raises(CampaignJournalError, match="fingerprint"):
            master.run(resume=True)

    def test_truncated_journal_resumes_byte_identical(self, journaled_run, tmp_path):
        outcome, path = journaled_run
        lines = path.read_text().splitlines(keepends=True)
        done = [i for i, line in enumerate(lines) if '"event":"done"' in line]
        # Keep everything up to (and including) the third completion --
        # the shape a SIGKILL between appends leaves behind.
        copy = tmp_path / "journal.jsonl"
        copy.write_text("".join(lines[: done[2] + 1]))
        master = CampaignMaster.resume(CampaignJournal(copy), workers=1)
        resumed = master.run(resume=True)
        assert resumed.stats.reused == 3
        assert resumed.stats.executed == 5
        assert resumed.report.metrics_json() == outcome.report.metrics_json()
        assert resumed.report.report_json() == outcome.report.report_json()

    def test_torn_final_line_resumes_cleanly(self, journaled_run, tmp_path):
        """Regression: a crash-torn last record must not poison resume."""
        outcome, path = journaled_run
        lines = path.read_text().splitlines(keepends=True)
        done = [i for i, line in enumerate(lines) if '"event":"done"' in line]
        kept = lines[: done[1] + 1]
        torn = lines[done[2]][: len(lines[done[2]]) // 2]  # half a done record
        copy = tmp_path / "journal.jsonl"
        copy.write_text("".join(kept) + torn)
        master = CampaignMaster.resume(CampaignJournal(copy), workers=1)
        resumed = master.run(resume=True)
        assert resumed.stats.torn_tail
        assert resumed.stats.reused == 2  # the torn completion does not count
        assert resumed.report.metrics_json() == outcome.report.metrics_json()
        assert resumed.report.report_json() == outcome.report.report_json()

    def test_resume_at_workers_4_matches(self, journaled_run, tmp_path):
        outcome, path = journaled_run
        lines = path.read_text().splitlines(keepends=True)
        done = [i for i, line in enumerate(lines) if '"event":"done"' in line]
        copy = tmp_path / "journal.jsonl"
        copy.write_text("".join(lines[: done[3] + 1]))
        master = CampaignMaster.resume(CampaignJournal(copy), workers=4)
        resumed = master.run(resume=True)
        assert resumed.report.metrics_json() == outcome.report.metrics_json()
        assert resumed.report.report_json() == outcome.report.report_json()

    def test_journal_views(self, journaled_run):
        outcome, path = journaled_run
        snapshot = journal_status(CampaignJournal(path))
        assert snapshot["complete"] is True
        assert snapshot["counts"]["done"] == 8
        rebuilt = report_from_journal(CampaignJournal(path))
        assert rebuilt.report_json() == outcome.report.report_json()

    def test_partial_journal_reports_missing_rows(self, journaled_run, tmp_path):
        _, path = journaled_run
        lines = path.read_text().splitlines(keepends=True)
        done = [i for i, line in enumerate(lines) if '"event":"done"' in line]
        copy = tmp_path / "journal.jsonl"
        copy.write_text("".join(lines[: done[0] + 1]))
        report = report_from_journal(CampaignJournal(copy))
        counts = report.counts()
        assert counts["ok"] == 1 and counts["missing"] == 7


class TestRetries:
    def test_transient_crash_is_retried(self, monkeypatch):
        from repro.campaign import master as master_module
        from repro.campaign.units import execute_unit as real_execute

        crashed = []

        def flaky(unit):
            if "tau=12" in unit.key and not crashed:
                crashed.append(unit.key)
                raise RuntimeError("simulated worker crash")
            return real_execute(unit)

        monkeypatch.setattr(master_module, "execute_unit", flaky)
        outcome = CampaignMaster(
            "parameter=tau:8,12", scale="quick", workers=1
        ).run()
        assert crashed  # the crash happened...
        assert outcome.stats.retries == 1
        assert outcome.report.counts()["ok"] == 2  # ...and the retry healed it

    def test_exhausted_budget_reports_failed(self, monkeypatch):
        from repro.campaign import master as master_module
        from repro.campaign.units import execute_unit as real_execute

        def doomed(unit):
            if "tau=12" in unit.key:
                raise RuntimeError("permanent crash")
            return real_execute(unit)

        monkeypatch.setattr(master_module, "execute_unit", doomed)
        outcome = CampaignMaster(
            "parameter=tau:8,12", scale="quick", workers=1, max_attempts=2
        ).run()
        assert outcome.stats.exhausted == 1
        counts = outcome.report.counts()
        assert counts["ok"] == 1 and counts["failed"] == 1
        failed = [r for r in outcome.report.rows if r["status"] == "failed"]
        assert "attempts" in failed[0]["error"]


class TestCampaignCLI:
    def test_run_status_report(self, capsys, tmp_path):
        journal = tmp_path / "j.jsonl"
        report_path = tmp_path / "report.json"
        code = campaign_cli.main(
            [
                "run", "--spec", "parameter=tau:8,11", "--scale", "quick",
                "--journal", str(journal), "--report-out", str(report_path),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "ok=1 invalid=1" in out
        payload = json.loads(report_path.read_text())
        assert payload["format"] == "repro.campaign/1"
        assert campaign_cli.main(["status", "--journal", str(journal)]) == 0
        assert "complete: True" in capsys.readouterr().out
        assert campaign_cli.main(["report", "--journal", str(journal), "--json"]) == 0
        rebuilt = json.loads(capsys.readouterr().out)
        assert rebuilt["rows"] == payload["rows"]

    def test_bad_spec_exits_2(self, capsys):
        assert campaign_cli.main(["run", "--spec", "parameter=zzz:1"]) == 2
        assert "sweepable" in capsys.readouterr().out

    def test_existing_journal_suggests_resume(self, capsys, tmp_path):
        journal = tmp_path / "j.jsonl"
        args = ["run", "--spec", "parameter=tau:8", "--scale", "quick",
                "--journal", str(journal)]
        assert campaign_cli.main(args) == 0
        capsys.readouterr()
        assert campaign_cli.main(args) == 2
        assert "resume" in capsys.readouterr().out

    def test_resume_completed_campaign_is_a_no_op(self, capsys, tmp_path):
        journal = tmp_path / "j.jsonl"
        assert campaign_cli.main(
            ["run", "--spec", "parameter=tau:8", "--scale", "quick",
             "--journal", str(journal)]
        ) == 0
        capsys.readouterr()
        assert campaign_cli.main(["resume", "--journal", str(journal)]) == 0
        assert "ok=1" in capsys.readouterr().out
