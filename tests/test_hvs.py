"""Human-vision substrate: CFF, temporal filtering, phantom array, scoring."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import InFrameConfig
from repro.core.pipeline import InFrameSender
from repro.display.panel import DisplayPanel
from repro.display.scheduler import DisplayTimeline
from repro.hvs.cff import CFF_RANGE_HZ, critical_flicker_frequency
from repro.hvs.flicker import FlickerPredictor, SubjectProfile
from repro.hvs.perception import perceived_frame, perception_artifacts
from repro.hvs.phantom import beam_size_factor, duty_cycle_factor, phantom_array_energy
from repro.hvs.temporal import (
    flicker_spectrum,
    luminance_normalizer,
    perceived_flicker_energy,
    sensitivity_weight,
)
from repro.video.source import ArrayVideoSource
from repro.video.synthetic import pure_color_video


class TestCFF:
    def test_in_literature_range_at_office_luminance(self):
        cff = critical_flicker_frequency(100.0)
        assert 40.0 <= cff <= 50.0

    def test_ferry_porter_monotone(self):
        assert critical_flicker_frequency(200.0) > critical_flicker_frequency(20.0)

    def test_clamped_at_extremes(self):
        lo, hi = CFF_RANGE_HZ
        assert critical_flicker_frequency(1e-9) == lo
        assert critical_flicker_frequency(1e12) == hi

    def test_subject_offset_applied(self):
        base = critical_flicker_frequency(100.0)
        assert critical_flicker_frequency(100.0, offset_hz=3.0) == pytest.approx(base + 3.0)

    def test_vectorised(self):
        out = critical_flicker_frequency(np.array([10.0, 100.0]))
        assert out.shape == (2,)
        assert out[1] > out[0]


class TestSpectrum:
    def test_pure_tone_recovered(self):
        fs = 480.0
        t = np.arange(480) / fs
        wave = 100.0 + 7.0 * np.sin(2 * np.pi * 30.0 * t)
        freqs, amps = flicker_spectrum(wave, fs)
        peak = freqs[np.argmax(amps)]
        assert peak == pytest.approx(30.0, abs=1.5)
        assert amps.max() == pytest.approx(7.0, rel=0.1)

    def test_dc_excluded(self):
        wave = np.full(64, 100.0)
        _, amps = flicker_spectrum(wave, 480.0)
        assert np.all(amps < 1e-9)

    def test_rejects_short_waveform(self):
        with pytest.raises(ValueError):
            flicker_spectrum(np.ones(3), 480.0)


class TestSensitivityWeight:
    def test_passband_near_unity(self):
        weight = sensitivity_weight(np.array([8.0]), 100.0)
        assert weight[0] > 0.8

    def test_above_cff_attenuated(self):
        weight = sensitivity_weight(np.array([60.0]), 100.0)
        assert weight[0] < 0.05

    def test_very_low_frequency_attenuated(self):
        low = sensitivity_weight(np.array([0.2]), 100.0)
        mid = sensitivity_weight(np.array([8.0]), 100.0)
        assert low[0] < mid[0]

    def test_brightness_raises_cff_tail(self):
        dim = sensitivity_weight(np.array([45.0]), 5.0)
        bright = sensitivity_weight(np.array([45.0]), 300.0)
        assert bright[0] > dim[0]


class TestFlickerEnergy:
    def test_fused_carrier_scores_near_zero(self):
        fs = 480.0
        t = np.arange(480) / fs
        fused = 100.0 + 10.0 * np.sign(np.sin(2 * np.pi * 60.0 * t))
        visible = 100.0 + 10.0 * np.sign(np.sin(2 * np.pi * 15.0 * t))
        assert perceived_flicker_energy(fused, fs) < 0.01 * perceived_flicker_energy(
            visible, fs
        )

    def test_energy_scales_with_amplitude_squared(self):
        fs = 480.0
        t = np.arange(480) / fs
        small = 100.0 + 2.0 * np.sin(2 * np.pi * 15.0 * t)
        large = 100.0 + 8.0 * np.sin(2 * np.pi * 15.0 * t)
        ratio = perceived_flicker_energy(large, fs) / perceived_flicker_energy(small, fs)
        assert ratio == pytest.approx(16.0, rel=0.15)

    def test_subject_gain(self):
        fs = 480.0
        t = np.arange(480) / fs
        wave = 100.0 + 5.0 * np.sin(2 * np.pi * 15.0 * t)
        base = perceived_flicker_energy(wave, fs)
        boosted = perceived_flicker_energy(wave, fs, sensitivity_gain=2.0)
        assert boosted == pytest.approx(4.0 * base, rel=1e-6)

    def test_zero_luminance_returns_zero(self):
        assert perceived_flicker_energy(np.zeros(64), 480.0) == 0.0

    def test_normalizer_reference_point(self):
        assert float(luminance_normalizer(100.0)) == pytest.approx(100.0)

    def test_normalizer_sublinear(self):
        ratio = float(luminance_normalizer(400.0)) / float(luminance_normalizer(100.0))
        assert 1.0 < ratio < 4.0


class TestPhantom:
    def test_beam_factor_decreases_with_size(self):
        assert beam_size_factor(1) > beam_size_factor(4) > beam_size_factor(16)

    def test_duty_cycle_factor_decreases(self):
        assert duty_cycle_factor(0.1) > duty_cycle_factor(0.9)

    def test_sharp_transition_scores_higher_than_smooth(self):
        fs = 480.0
        n = 480
        sharp = np.zeros(n)
        sharp[n // 2 :] = 5.0
        smooth = 5.0 / (1 + np.exp(-(np.arange(n) - n / 2) / 20.0))
        e_sharp = phantom_array_energy(sharp, fs, 100.0)
        e_smooth = phantom_array_energy(smooth, fs, 100.0)
        assert e_sharp > 3.0 * e_smooth

    def test_rejects_bad_duty_cycle(self):
        with pytest.raises(ValueError):
            duty_cycle_factor(0.0)

    def test_rejects_short_envelope(self):
        with pytest.raises(ValueError):
            phantom_array_energy(np.ones(1), 480.0, 100.0)


def _stimulus(delta, tau=12, value=127.0):
    config = InFrameConfig(
        element_pixels=2, pixels_per_block=4, block_rows=8, block_cols=12,
        amplitude=delta, tau=tau,
    )
    video = pure_color_video(80, 112, value, n_frames=15)
    return InFrameSender(config, video).timeline()


class TestFlickerPredictor:
    def test_zero_modulation_scores_zero(self):
        predictor = FlickerPredictor(grid=(8, 12))
        report = predictor.report(_stimulus(0.0), duration_s=0.25)
        assert report.score < 0.2

    def test_score_monotone_in_amplitude(self):
        predictor = FlickerPredictor(grid=(8, 12))
        scores = [
            predictor.report(_stimulus(d), duration_s=0.25).score for d in (10.0, 30.0, 60.0)
        ]
        assert scores[0] < scores[1] < scores[2]

    def test_longer_tau_scores_lower(self):
        predictor = FlickerPredictor(grid=(8, 12))
        fast = predictor.report(_stimulus(30.0, tau=8), duration_s=0.4).score
        slow = predictor.report(_stimulus(30.0, tau=20), duration_s=0.4).score
        assert slow < fast

    def test_sensitive_subject_scores_higher(self):
        predictor = FlickerPredictor(grid=(8, 12))
        normal = predictor.report(_stimulus(30.0), duration_s=0.25).score
        keen = predictor.report(
            _stimulus(30.0), duration_s=0.25, subject=SubjectProfile(sensitivity_gain=2.0)
        ).score
        assert keen > normal

    def test_report_fields(self):
        predictor = FlickerPredictor(grid=(8, 12))
        report = predictor.report(_stimulus(20.0), duration_s=0.25)
        assert 0.0 <= report.score <= 4.0
        assert report.region_energies.shape == (8, 12)
        assert report.total_energy == pytest.approx(
            report.flicker_energy + report.phantom_energy
        )

    def test_waveform_grid_mismatch_rejected(self):
        predictor = FlickerPredictor(grid=(4, 4))
        with pytest.raises(ValueError):
            predictor.report_from_waveforms(np.zeros((2, 2, 64)), 480.0, 60.0)

    @given(st.floats(min_value=1e-8, max_value=10.0))
    @settings(max_examples=30)
    def test_score_range_property(self, energy):
        score = FlickerPredictor.score_from_energy(energy)
        assert 0.0 <= score <= 4.0

    def test_score_monotone_in_energy(self):
        energies = np.logspace(-6, 0, 12)
        scores = [FlickerPredictor.score_from_energy(e) for e in energies]
        assert all(a <= b for a, b in zip(scores, scores[1:]))

    def test_envelope_estimator_recovers_square_amplitude(self):
        fs = 480.0
        t = np.arange(960) / fs
        carrier = 8.0 * np.sign(np.sin(2 * np.pi * 60.0 * t))
        wave = 100.0 + carrier
        envelope = FlickerPredictor.estimate_envelope(wave, fs, 60.0)
        middle = envelope[200:-200]
        # The carrier is square: RMS equals the amplitude.
        assert float(np.median(middle)) == pytest.approx(8.0, rel=0.2)


class TestPerception:
    def test_complementary_stream_fuses_to_video(self):
        # At the paper's delta = 20 the perceived field matches the plain
        # video to within a few percent Weber.  The residual is physical:
        # complementarity holds in pixel values, and the display gamma's
        # convexity leaves a small static DC brightening of 1-Blocks
        # (~ gamma curvature * delta^2), present in the paper's design too.
        timeline = _stimulus(20.0)
        video_frame = pure_color_video(80, 112, 127.0, n_frames=1).frame(0)
        metrics = perception_artifacts(timeline, video_frame, t=0.15)
        assert metrics["max_weber"] < 0.06
        assert metrics["psnr_db"] > 30.0

    def test_gamma_convexity_residual_grows_with_amplitude(self):
        video_frame = pure_color_video(80, 112, 127.0, n_frames=1).frame(0)
        small = perception_artifacts(_stimulus(10.0), video_frame, t=0.15)
        large = perception_artifacts(_stimulus(40.0), video_frame, t=0.15)
        # DC residual scales like delta^2 (second-order gamma term).
        assert large["max_error"] > 8.0 * small["max_error"]

    def test_naive_stream_leaves_artifacts(self):
        # Non-complementary modulation: + every frame.
        config = InFrameConfig(
            element_pixels=2, pixels_per_block=4, block_rows=8, block_cols=12,
            amplitude=40.0, tau=12,
        )
        video = pure_color_video(80, 112, 127.0, n_frames=15)
        sender = InFrameSender(config, video)

        class AlwaysPlus:
            n_frames = sender.stream.n_frames

            def frame(self, i):
                return sender.stream.frame(2 * (i // 2))  # always the + frame

        timeline = DisplayTimeline(sender.panel, AlwaysPlus())
        metrics = perception_artifacts(timeline, video.frame(0), t=0.15)
        assert metrics["max_weber"] > 0.1

    def test_perceived_frame_shape(self):
        timeline = _stimulus(20.0)
        frame = perceived_frame(timeline, 0.1)
        assert frame.shape == (80, 112)

    def test_shape_mismatch_rejected(self):
        timeline = _stimulus(20.0)
        with pytest.raises(ValueError):
            perception_artifacts(timeline, np.zeros((4, 4)), t=0.1)
