"""Validation helpers in repro._util."""

from __future__ import annotations

import numpy as np
import pytest

from repro._util import (
    check_fraction,
    check_frame,
    check_in_range,
    check_positive,
    check_positive_int,
    stable_seed,
)


class TestCheckPositive:
    def test_accepts_positive(self):
        assert check_positive(1.5, "x") == 1.5

    @pytest.mark.parametrize("bad", [0, -1, float("inf"), float("nan")])
    def test_rejects_non_positive_and_non_finite(self, bad):
        with pytest.raises(ValueError):
            check_positive(bad, "x")

    def test_rejects_non_number(self):
        with pytest.raises(TypeError):
            check_positive("3", "x")


class TestCheckPositiveInt:
    def test_accepts_one(self):
        assert check_positive_int(1, "n") == 1

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            check_positive_int(0, "n")

    def test_rejects_bool(self):
        with pytest.raises(TypeError):
            check_positive_int(True, "n")

    def test_rejects_float(self):
        with pytest.raises(TypeError):
            check_positive_int(2.0, "n")

    def test_accepts_numpy_integer(self):
        assert check_positive_int(np.int64(5), "n") == 5


class TestCheckInRange:
    def test_bounds_inclusive(self):
        assert check_in_range(0.0, "x", 0.0, 1.0) == 0.0
        assert check_in_range(1.0, "x", 0.0, 1.0) == 1.0

    def test_rejects_outside(self):
        with pytest.raises(ValueError):
            check_in_range(1.01, "x", 0.0, 1.0)

    def test_fraction_alias(self):
        assert check_fraction(0.5, "f") == 0.5
        with pytest.raises(ValueError):
            check_fraction(-0.1, "f")


class TestCheckFrame:
    def test_accepts_grayscale(self):
        frame = check_frame(np.zeros((4, 4)))
        assert frame.dtype == np.float32

    def test_accepts_color(self):
        assert check_frame(np.zeros((4, 4, 3))).shape == (4, 4, 3)

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            check_frame(np.zeros(4))

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            check_frame(np.zeros((0, 4)))

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            check_frame(np.full((2, 2), 256.0))
        with pytest.raises(ValueError):
            check_frame(np.full((2, 2), -1.0))

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            check_frame(np.full((2, 2), np.nan))

    def test_rejects_non_numeric(self):
        with pytest.raises(TypeError):
            check_frame(np.full((2, 2), "x"))

    def test_float_rounding_tolerance(self):
        # Values a hair outside [0, 255] from float arithmetic are fine.
        assert check_frame(np.full((2, 2), 255.0005)).max() > 255.0 - 1


class TestStableSeed:
    def test_process_stable_values(self):
        # Pinned: stable_seed must never depend on PYTHONHASHSEED, so the
        # exact values are part of the contract (changing them silently
        # re-seeds every experiment stream derived from string keys).
        assert stable_seed(1) == 1803989619
        assert stable_seed("a") == 3611923103
        assert stable_seed("fig6-left", 20.0, 60) == 4209608712

    def test_distinct_keys_distinct_seeds(self):
        seeds = {stable_seed(k) for k in ("a", "b", ("a",), 1, 1.0, None)}
        assert len(seeds) == 6

    def test_order_matters(self):
        assert stable_seed("a", "b") != stable_seed("b", "a")

    def test_range_is_32_bit(self):
        for key in range(50):
            assert 0 <= stable_seed(key) < 2**32

    def test_requires_a_part(self):
        with pytest.raises(ValueError):
            stable_seed()


class TestRngFor:
    def test_same_key_same_stream(self):
        from repro.analysis.experiments import rng_for

        a = rng_for("experiment", 3).random(8)
        b = rng_for("experiment", 3).random(8)
        assert np.array_equal(a, b)
        c = rng_for("experiment", 4).random(8)
        assert not np.array_equal(a, c)
