"""End-to-end integration: multiplex -> display -> capture -> decode.

These tests run the whole loop at a reduced scale and assert the
qualitative properties the paper reports, not exact numbers.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.camera.capture import CameraModel
from repro.core.config import InFrameConfig
from repro.core.framing import PayloadSchedule, PseudoRandomSchedule
from repro.core.pipeline import InFrameReceiver, InFrameSender, run_link
from repro.video.synthetic import pure_color_video, sunrise_video


@pytest.fixture(scope="module")
def link_config() -> InFrameConfig:
    """A mid-size config with the paper's p = 4 (pattern survives capture)."""
    return InFrameConfig(
        element_pixels=4, pixels_per_block=3, block_rows=16, block_cols=24,
        amplitude=20.0, tau=12,
    )


@pytest.fixture(scope="module")
def link_camera() -> CameraModel:
    return CameraModel(width=384, height=216)


@pytest.fixture(scope="module")
def gray_run(link_config, link_camera):
    video = pure_color_video(324, 576, 127.0, n_frames=24)
    return run_link(link_config, video, camera=link_camera, seed=3)


class TestGrayLink:
    def test_high_bit_accuracy(self, gray_run):
        assert gray_run.stats.bit_accuracy > 0.9

    def test_availability_and_errors(self, gray_run):
        assert gray_run.stats.available_gob_ratio > 0.6
        assert gray_run.stats.gob_error_rate < 0.15

    def test_throughput_positive_and_bounded(self, gray_run, link_config):
        assert 0 < gray_run.stats.throughput_bps <= link_config.raw_bit_rate_bps

    def test_decoded_frames_cover_stream(self, gray_run):
        indices = [d.index for d in gray_run.decoded]
        assert indices == sorted(indices)
        assert len(indices) >= 4

    def test_run_is_deterministic(self, link_config, link_camera):
        video = pure_color_video(324, 576, 127.0, n_frames=12)
        a = run_link(link_config, video, camera=link_camera, seed=7)
        b = run_link(link_config, video, camera=link_camera, seed=7)
        assert a.stats.bit_accuracy == b.stats.bit_accuracy

    def test_seed_changes_noise_realisation(self, link_config, link_camera):
        video = pure_color_video(324, 576, 127.0, n_frames=12)
        a = run_link(link_config, video, camera=link_camera, seed=1)
        b = run_link(link_config, video, camera=link_camera, seed=2)
        assert not np.array_equal(a.captures[0].pixels, b.captures[0].pixels)


class TestContentDependence:
    def test_textured_video_degrades_channel(self, link_config, link_camera):
        gray = pure_color_video(324, 576, 127.0, n_frames=24)
        textured = sunrise_video(324, 576, n_frames=24, grain_std=10.0)
        stats_gray = run_link(link_config, gray, camera=link_camera, seed=3).stats
        stats_tex = run_link(link_config, textured, camera=link_camera, seed=3).stats
        assert stats_tex.bit_accuracy < stats_gray.bit_accuracy
        assert stats_tex.available_gob_ratio <= stats_gray.available_gob_ratio + 0.02

    def test_larger_amplitude_helps_textured_content(self, link_config, link_camera):
        textured = sunrise_video(324, 576, n_frames=24, grain_std=10.0)
        weak = run_link(link_config, textured, camera=link_camera, seed=3).stats
        strong_config = link_config.with_updates(amplitude=35.0)
        strong = run_link(strong_config, textured, camera=link_camera, seed=3).stats
        assert strong.bit_accuracy > weak.bit_accuracy


class TestPayloadDelivery:
    def test_payload_roundtrip_over_camera_link(self, link_config, link_camera):
        payload = b"InFrame end-to-end payload over the simulated optical link!"
        video = pure_color_video(324, 576, 127.0, n_frames=48)
        schedule = PayloadSchedule(link_config, payload, rs_n=40, rs_k=16)
        run = run_link(
            link_config, video, camera=link_camera, schedule=schedule, seed=5
        )
        received = run.receiver.assemble_payload(run.decoded)
        assert received == payload

    def test_receiver_without_plan_rejects_assembly(self, link_config, link_camera):
        video = pure_color_video(324, 576, 127.0, n_frames=12)
        run = run_link(link_config, video, camera=link_camera, seed=5)
        with pytest.raises(ValueError):
            run.receiver.assemble_payload(run.decoded)


class TestRunLinkValidation:
    def test_stream_too_short(self, link_config, link_camera):
        video = pure_color_video(324, 576, 127.0, n_frames=1)
        with pytest.raises(ValueError):
            run_link(link_config, video, camera=link_camera)

    def test_panel_video_mismatch(self, link_config):
        from repro.display.panel import DisplayPanel

        video = pure_color_video(324, 576, 127.0, n_frames=8)
        panel = DisplayPanel(width=100, height=100)
        with pytest.raises(ValueError):
            InFrameSender(link_config, video, panel=panel)

    def test_refresh_mismatch(self, link_config):
        from repro.display.panel import DisplayPanel

        video = pure_color_video(324, 576, 127.0, n_frames=8)
        panel = DisplayPanel(width=576, height=324, refresh_hz=60.0)
        with pytest.raises(ValueError):
            InFrameSender(link_config, video, panel=panel)

    def test_default_camera_auto_exposed(self, link_config):
        video = pure_color_video(324, 576, 127.0, n_frames=12)
        run = run_link(link_config, video, seed=0, n_camera_frames=10)
        # The default paper camera is auto-exposed: captures are not saturated.
        assert float(run.captures[0].pixels.max()) < 255.0
