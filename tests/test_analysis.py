"""Analysis harness: simulated user study, experiment scales, reporting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.experiments import (
    ExperimentScale,
    PAPER_FIG6_LEFT,
    PAPER_FIG6_RIGHT,
    PAPER_FIG7,
    fig7_conditions,
    flicker_config,
    flicker_timeline,
)
from repro.analysis.reporting import format_series, format_table, paper_vs_measured
from repro.analysis.userstudy import SimulatedPanel


class TestSimulatedPanel:
    def test_panel_composition_is_seeded(self):
        a = SimulatedPanel(seed=8)
        b = SimulatedPanel(seed=8)
        assert [s.cff_offset_hz for s in a.subjects] == [s.cff_offset_hz for s in b.subjects]

    def test_eight_subjects_with_experts(self):
        panel = SimulatedPanel()
        assert len(panel.subjects) == 8
        gains = sorted(s.sensitivity_gain for s in panel.subjects)
        assert gains[-1] > gains[0]

    def test_expert_count_validated(self):
        with pytest.raises(ValueError):
            SimulatedPanel(n_subjects=4, n_experts=5)

    def test_study_is_deterministic(self):
        timeline = flicker_timeline(20.0, 12, 127.0, n_video_frames=8)
        a = SimulatedPanel().study(timeline, duration_s=0.2, stimulus_seed=3)
        b = SimulatedPanel().study(timeline, duration_s=0.2, stimulus_seed=3)
        assert a.scores == b.scores

    def test_ratings_are_integers_in_scale(self):
        timeline = flicker_timeline(30.0, 12, 127.0, n_video_frames=8)
        result = SimulatedPanel().study(timeline, duration_s=0.2)
        assert all(score == int(score) and 0 <= score <= 4 for score in result.scores)

    def test_satisfactory_for_paper_settings(self):
        timeline = flicker_timeline(20.0, 12, 127.0, n_video_frames=8)
        result = SimulatedPanel().study(timeline, duration_s=0.2)
        assert result.satisfactory
        assert result.mean_score < 1.0

    def test_stronger_amplitude_scores_higher(self):
        panel = SimulatedPanel()
        low = panel.study(flicker_timeline(20.0, 12, 127.0, n_video_frames=8), duration_s=0.2)
        high = panel.study(flicker_timeline(50.0, 12, 127.0, n_video_frames=8), duration_s=0.2)
        assert high.mean_score > low.mean_score


class TestExperimentScale:
    def test_benchmark_scale_ratio_matches_paper(self):
        scale = ExperimentScale.benchmark()
        assert scale.camera_height / scale.video_height == pytest.approx(2 / 3)
        assert scale.camera_width / scale.video_width == pytest.approx(2 / 3)

    def test_full_scale_is_paper_geometry(self):
        scale = ExperimentScale.full()
        assert (scale.video_width, scale.video_height) == (1920, 1080)
        assert (scale.camera_width, scale.camera_height) == (1280, 720)

    def test_config_keeps_bit_budget(self):
        config = ExperimentScale.benchmark().config()
        assert config.bits_per_frame == 1125

    def test_videos_by_name(self):
        scale = ExperimentScale.quick()
        assert float(scale.video("gray").frame(0).mean()) == 127.0
        assert float(scale.video("dark-gray").frame(0).mean()) == 180.0
        assert scale.video("video").n_frames == scale.n_video_frames
        with pytest.raises(ValueError):
            scale.video("cats")

    def test_fig7_condition_grid(self):
        conditions = fig7_conditions()
        assert len(conditions) == 12
        assert ("gray", 20.0, 10) in conditions

    def test_paper_reference_tables_complete(self):
        for video in ("gray", "dark-gray", "video"):
            table = PAPER_FIG7[video]["throughput_kbps"]
            assert set(table) == {(20, 10), (20, 12), (20, 14), (30, 12)}
        assert set(PAPER_FIG6_RIGHT) == {10, 12, 14}
        assert set(PAPER_FIG6_LEFT) == {20, 50}

    def test_flicker_config_fits_panel(self):
        config = flicker_config(20.0, 12)
        assert config.data_height_px <= 240
        assert config.data_width_px <= 400


class TestReporting:
    def test_format_table_alignment(self):
        table = format_table(["a", "bb"], [["1", "2"], ["333", "4"]], title="T")
        lines = table.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 5

    def test_format_table_pads_ragged_rows(self):
        table = format_table(["x", "y"], [["only-x"]])
        assert "only-x" in table

    def test_format_series(self):
        out = format_series("S", [1, 2], [3.0, 4.0], x_label="t", y_label="v")
        assert "S" in out and "t" in out and "4.0" in out

    def test_format_series_length_mismatch(self):
        with pytest.raises(ValueError):
            format_series("S", [1], [1, 2])

    def test_paper_vs_measured(self):
        line = paper_vs_measured("tput", 10.0, 11.0, unit=" kbps")
        assert "paper=10.00 kbps" in line and "x1.10" in line

    def test_paper_vs_measured_without_reference(self):
        assert "n/a" in paper_vs_measured("tput", None, 11.0)
