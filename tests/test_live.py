"""Live telemetry: time-series rings, watch folding, profiler, perf gate.

The load-bearing property is *separation*: the live side-channel
(:mod:`repro.obs.live`) is wall-clock-stamped by construction, so
enabling it -- collector, snapshot stream, both exporters, sampling
profiler -- must leave the exact-merge artifact (``metrics_json()`` /
``work_json()``) byte-identical at any worker count.
"""

from __future__ import annotations

import io
import json
import time

import pytest

from repro.camera.capture import CameraModel
from repro.campaign.supervise import JournalTail, LeaseHealth, SupervisePolicy
from repro.core.pipeline import run_link
from repro.faults import FaultPlan
from repro.obs import Telemetry
from repro.obs.live import (
    LIVE_FORMAT,
    LiveCollector,
    TimeSeries,
    install_live,
    live_collector,
    parse_prometheus,
    read_snapshots,
    record_live,
    render_prometheus,
)
from repro.obs.profile import ProfileReport, SamplingProfiler, stage_of
from repro.tools import perf as perf_tool
from repro.tools import watch as watch_tool
from repro.tools.perf import (
    BENCH_SCHEMA,
    PERF_FORMAT,
    baseline_for,
    bench_envelope,
    compare,
    flatten_metrics,
    metric_direction,
    normalize_bench,
    read_trajectory,
)
from repro.tools.watch import (
    WatchState,
    feed_snapshots,
    render_frame,
    sparkline,
)


class TestTimeSeries:
    def test_ring_overwrites_oldest(self):
        series = TimeSeries("x", capacity=3)
        for i in range(5):
            series.record(float(i), t=float(i))
        assert len(series) == 3
        assert series.points() == [(2.0, 2.0), (3.0, 3.0), (4.0, 4.0)]
        assert series.values() == [2.0, 3.0, 4.0]

    def test_latest_and_latest_time(self):
        series = TimeSeries("x")
        assert series.latest() is None
        assert series.latest_time() is None
        series.record(7.0, t=100.0)
        series.record(9.0, t=101.0)
        assert series.latest() == 9.0
        assert series.latest_time() == 101.0

    def test_records_are_wall_stamped_by_default(self):
        series = TimeSeries("x")
        before = time.time()
        series.record(1.0)
        after = time.time()
        stamp = series.latest_time()
        assert stamp is not None and before <= stamp <= after

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError, match="capacity"):
            TimeSeries("x", capacity=0)


class TestLiveCollector:
    def _collector(self, **kwargs):
        ticks = iter(float(i) for i in range(1, 1000))
        return LiveCollector(clock=lambda: next(ticks), **kwargs)

    def test_record_and_names(self):
        collector = self._collector()
        collector.record("b.two", 2.0)
        collector.record("a.one", 1.0)
        assert collector.names() == ["a.one", "b.two"]
        assert collector.series("a.one").latest() == 1.0

    def test_snapshot_shape_and_seq(self):
        collector = self._collector()
        collector.record("x", 5.0)
        first = collector.snapshot()
        second = collector.snapshot()
        assert first["format"] == LIVE_FORMAT
        assert (first["seq"], second["seq"]) == (0, 1)
        assert first["values"] == {"x": 5.0}
        assert isinstance(first["t"], float)

    def test_attach_samples_registry_readonly(self):
        collector = self._collector()
        telemetry = Telemetry(track="t")
        telemetry.metrics.counter("decode.frames").inc(3)
        telemetry.metrics.gauge("exec.slots").set(4)
        telemetry.metrics.histogram("noise", edges=(0.0, 1.0)).observe(0.5)
        before = telemetry.metrics.as_dict()
        collector.attach(telemetry.metrics, prefix="link.")
        snap = collector.snapshot()
        values = snap["values"]
        assert values["link.decode.frames"] == 3.0
        assert values["link.exec.slots"] == 4.0
        assert values["link.noise"] == 1.0  # histograms sample their count
        assert telemetry.metrics.as_dict() == before  # never written

    def test_attach_same_prefix_replaces(self):
        collector = self._collector()
        a, b = Telemetry(track="a"), Telemetry(track="b")
        a.metrics.counter("n").inc(1)
        b.metrics.counter("n").inc(10)
        collector.attach(a.metrics)
        collector.attach(b.metrics)
        assert collector.snapshot()["values"]["n"] == 10.0

    def test_probe_sampled_every_snapshot(self):
        collector = self._collector()
        collector.add_probe(lambda: {"probe.x": 1.5})
        collector.snapshot()
        collector.snapshot()
        assert collector.series("probe.x").values() == [1.5, 1.5]

    def test_jsonl_stream_round_trip(self, tmp_path):
        path = tmp_path / "live.jsonl"
        collector = self._collector(snapshot_path=str(path))
        collector.record("x", 1.0)
        collector.snapshot()
        collector.record("x", 2.0)
        collector.snapshot()
        # A torn final line and a foreign line are both skipped.
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"format":"other/1","values":{}}\n')
            handle.write('{"format":"repro.obs.live/1","seq":9')
        with open(path, encoding="utf-8") as handle:
            records = read_snapshots(handle)
        assert [r["seq"] for r in records] == [0, 1]
        assert records[1]["values"]["x"] == 2.0

    def test_write_snapshot_swallows_oserror(self, tmp_path):
        collector = LiveCollector(snapshot_path=str(tmp_path / "no" / "dir.jsonl"))
        collector.record("x", 1.0)
        collector.snapshot()  # must not raise
        assert collector.snapshots == 1

    def test_background_sampler_snapshots_until_stopped(self):
        collector = LiveCollector(interval_s=0.01)
        collector.record("x", 1.0)
        with collector:
            time.sleep(0.05)
        assert collector.snapshots >= 2  # loop plus the final stop() snapshot

    def test_rejects_nonpositive_interval(self):
        with pytest.raises(ValueError, match="interval_s"):
            LiveCollector(interval_s=0.0)


class TestPrometheusExposition:
    def test_render_parse_round_trip(self):
        collector = LiveCollector()
        collector.record("engine.items_done", 12.0, t=100.0)
        collector.record("serve.delivery-rate", 0.75, t=100.5)
        text = render_prometheus(collector)
        assert text.startswith(f"# {LIVE_FORMAT}")
        assert "# TYPE repro_live_engine_items_done gauge" in text
        assert parse_prometheus(text) == {
            "engine.items_done": 12.0,
            "serve.delivery-rate": 0.75,
        }

    def test_samples_carry_millisecond_timestamps(self):
        collector = LiveCollector()
        collector.record("x", 1.0, t=2.5)
        sample = [
            line
            for line in render_prometheus(collector).splitlines()
            if not line.startswith("#")
        ]
        assert sample == ['repro_live_x{series="x"} 1 2500']

    def test_empty_series_are_omitted(self):
        collector = LiveCollector()
        collector.series("never.recorded")
        assert parse_prometheus(render_prometheus(collector)) == {}

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError, match="unparseable"):
            parse_prometheus("not a sample line\n")


class TestInstallation:
    def test_record_live_is_noop_without_collector(self):
        assert live_collector() is None
        record_live("x", 1.0)  # must not raise

    def test_install_records_and_returns_previous(self):
        collector = LiveCollector()
        assert install_live(collector) is None
        try:
            record_live("x", 3.0)
            assert collector.series("x").latest() == 3.0
        finally:
            assert install_live(None) is collector
        assert live_collector() is None


class TestSamplingProfiler:
    def test_thread_mode_samples_a_busy_loop(self):
        profiler = SamplingProfiler(interval_s=0.001)
        with profiler:
            deadline = time.perf_counter() + 0.08
            while time.perf_counter() < deadline:
                sum(range(200))
        report = profiler.report()
        assert report.samples > 0
        assert report.duration_s > 0.0
        assert sum(report.by_stage.values()) == report.samples

    def test_collapsed_stack_format(self):
        report = ProfileReport(
            samples=3,
            duration_s=0.1,
            interval_s=0.005,
            stacks={("m:a", "m:b"): 2, ("m:a",): 1},
            by_stage={"other": 3},
        )
        assert report.collapsed() == ["m:a 1", "m:a;m:b 2"]
        assert report.stage_fractions() == {"other": 1.0}
        payload = report.as_dict()
        assert payload["format"] == "repro.obs.profile/1"
        assert payload["stacks"] == {"m:a": 1, "m:a;m:b": 2}

    def test_write_collapsed(self, tmp_path):
        report = ProfileReport(
            samples=1, duration_s=0.0, interval_s=0.005, stacks={("m:f",): 1}
        )
        path = tmp_path / "profile.folded"
        report.write_collapsed(str(path))
        assert path.read_text() == "m:f 1\n"

    def test_stage_bucketing_innermost_wins(self):
        assert stage_of(("mod:main", "pipeline:render_frame")) == "render"
        assert stage_of(("pipeline:render_frame", "camera:capture_frame")) == "observe"
        assert stage_of(("mod:main", "mod:helper")) == "other"

    def test_empty_report_summary(self):
        profiler = SamplingProfiler()
        report = profiler.report()
        assert report.stage_fractions() == {}
        assert "0 samples" in report.summary()

    def test_parameter_validation(self):
        with pytest.raises(ValueError, match="interval_s"):
            SamplingProfiler(interval_s=0.0)
        with pytest.raises(ValueError, match="mode"):
            SamplingProfiler(mode="hardware")


class TestLiveByteIdentity:
    """The acceptance gate: the side-channel never perturbs exact merges."""

    def _run(self, config, video, workers, faulted):
        faults = (
            FaultPlan.parse("drop:p=0.2;flip:at=0.5", seed=21) if faulted else None
        )
        return run_link(
            config,
            video,
            camera=CameraModel(width=75, height=54),
            seed=4,
            workers=workers,
            faults=faults,
            heal=True if faulted else None,
        )

    @pytest.mark.parametrize("faulted", [False, True])
    def test_metrics_identical_with_full_live_stack(
        self, tmp_path, small_config, small_video, faulted
    ):
        baseline = self._run(small_config, small_video, None, faulted)

        collector = LiveCollector(
            interval_s=0.02, snapshot_path=str(tmp_path / "live.jsonl")
        )
        profiler = SamplingProfiler(interval_s=0.002)
        install_live(collector)
        try:
            with collector, profiler:
                serial = self._run(small_config, small_video, None, faulted)
                parallel = self._run(small_config, small_video, 4, faulted)
        finally:
            install_live(None)
        # Both exporters run over the collected state.
        exposition = render_prometheus(collector)
        parse_prometheus(exposition)
        with open(tmp_path / "live.jsonl", encoding="utf-8") as handle:
            snapshots = read_snapshots(handle)
        assert snapshots and all(s["format"] == LIVE_FORMAT for s in snapshots)

        assert serial.telemetry.metrics_json() == parallel.telemetry.metrics_json()
        assert serial.telemetry.metrics_json() == baseline.telemetry.metrics_json()
        assert serial.telemetry.span_counts("work") == parallel.telemetry.span_counts(
            "work"
        )

    def test_run_link_populates_live_series(self, small_config, small_video):
        collector = LiveCollector()
        install_live(collector)
        try:
            self._run(small_config, small_video, None, False)
            collector.snapshot()
        finally:
            install_live(None)
        names = collector.names()
        assert "engine.items_done" in names
        assert any(name.startswith("link.") for name in names)


def _journal_lines(now: float) -> list[str]:
    """A synthetic mid-flight campaign journal (one stuck, one live lease)."""
    records = [
        {
            "event": "campaign",
            "format": "repro.campaign/1",
            "spec": "tau-sweep",
            "scale": "quick",
            "seed": 7,
            "units": 4,
            "max_attempts": 2,
        },
        {"event": "master", "incarnation": 1},
        {"event": "queued", "unit": "u0", "index": 0},
        {"event": "queued", "unit": "u1", "index": 1},
        {"event": "queued", "unit": "u2", "index": 2},
        {"event": "queued", "unit": "u3", "index": 3},
        # u0: healthy lease, fresh heartbeat.
        {
            "event": "leased", "unit": "u0", "index": 0, "worker": "w1",
            "fence": 1, "granted": now - 3.0, "expires": now + 600.0,
        },
        {
            "event": "heartbeat", "unit": "u0", "index": 0, "fence": 1,
            "seq": 2, "t": now - 0.5,
        },
        # u1: leased 20 s ago, heartbeats stopped 20 s ago -> STUCK.
        {
            "event": "leased", "unit": "u1", "index": 1, "worker": "w2",
            "fence": 2, "granted": now - 25.0, "expires": now + 600.0,
        },
        {
            "event": "heartbeat", "unit": "u1", "index": 1, "fence": 2,
            "seq": 0, "t": now - 20.0,
        },
        # A heartbeat for a fenced-off lease must be ignored.
        {
            "event": "heartbeat", "unit": "u1", "index": 1, "fence": 1,
            "seq": 99, "t": now,
        },
        {"event": "done", "unit": "u2", "fence": 3, "result": {"index": 2}},
        {
            "event": "quarantined", "unit": "u3", "reclaims": 3, "deaths": 1,
            "error": "poison unit",
        },
    ]
    return [json.dumps(r, sort_keys=True) for r in records]


class TestWatchState:
    def _fed(self, now):
        state = WatchState()
        state.feed([json.loads(line) for line in _journal_lines(now)])
        return state

    def test_fold_counts_and_header(self):
        now = time.time()
        state = self._fed(now)
        assert state.header is not None and state.header["spec"] == "tau-sweep"
        assert state.counts() == {
            "queued": 0, "leased": 2, "done": 1, "failed": 0, "quarantined": 1,
        }
        assert [v.key for v in state.leased()] == ["u0", "u1"]
        assert not state.complete

    def test_stuck_lease_classified_within_policy_window(self):
        now = time.time()
        state = self._fed(now)
        policy = SupervisePolicy.resolve(heartbeat_s=1.0, stuck_after_s=4.0)
        healths = {v.key: v.health(now, policy) for v in state.leased()}
        assert healths["u0"] is LeaseHealth.LIVE
        assert healths["u1"] is LeaseHealth.STUCK

    def test_fenced_off_heartbeat_ignored(self):
        state = self._fed(time.time())
        assert state.units["u1"].beat_seq == 0  # not the fence-1 seq 99

    def test_failed_respects_max_attempts(self):
        state = WatchState()
        state.feed([json.loads(line) for line in _journal_lines(time.time())])
        state.feed([
            {"event": "failed", "unit": "u0", "fence": 1, "kind": "crash",
             "attempt": 1, "error": "boom"},
        ])
        assert state.units["u0"].status == "queued"  # 1 < max_attempts=2
        state.feed([
            {"event": "failed", "unit": "u0", "fence": 1, "kind": "crash",
             "attempt": 2, "error": "boom"},
        ])
        assert state.units["u0"].status == "failed"

    def test_complete_on_drain_or_terminal_units(self):
        state = WatchState()
        assert not state.complete
        state.feed([{"event": "drained", "incarnation": 1, "outstanding": 0}])
        assert state.complete

    def test_unknown_events_ignored(self):
        state = WatchState()
        state.feed([{"event": "futuristic", "unit": "u9"}])
        assert state.units == {}


class TestSparkline:
    def test_scales_min_to_max(self):
        line = sparkline([0.0, 1.0, 2.0, 3.0])
        assert len(line) == 4
        assert line[0] == "▁" and line[-1] == "█"

    def test_flat_and_empty(self):
        assert sparkline([]) == ""
        assert sparkline([5.0, 5.0, 5.0]) == "▁▁▁"

    def test_window_clips_to_width(self):
        assert len(sparkline(list(range(100)), width=8)) == 8


class TestRenderFrame:
    def test_frame_shows_stuck_lease_and_poison(self):
        now = time.time()
        state = WatchState()
        state.feed([json.loads(line) for line in _journal_lines(now)])
        collector = LiveCollector()
        feed_snapshots(
            collector,
            [{"format": LIVE_FORMAT, "seq": 0, "t": now,
              "values": {"campaign.leases.stuck": 1.0}}],
        )
        policy = SupervisePolicy.resolve(heartbeat_s=1.0, stuck_after_s=4.0)
        frame = render_frame(state, collector, now=now, policy=policy, skipped=1)
        assert "campaign: tau-sweep" in frame
        assert "queued=0 leased=2 done=1 failed=0 quarantined=1" in frame
        assert "STUCK" in frame and "LIVE" in frame
        assert "[poison] u3" in frame and "poison unit" in frame
        assert "campaign.leases.stuck" in frame
        assert "1 torn/foreign lines skipped" in frame

    def test_frame_without_any_data(self):
        frame = render_frame(
            WatchState(),
            LiveCollector(),
            now=0.0,
            policy=SupervisePolicy.resolve(),
        )
        assert "waiting for journal/snapshot data" in frame

    def test_feed_snapshots_skips_foreign_records(self):
        collector = LiveCollector()
        folded = feed_snapshots(
            collector,
            [
                {"format": "other/9", "values": {"x": 1.0}},
                {"format": LIVE_FORMAT, "seq": 0, "t": 1.0, "values": "torn"},
                {"format": LIVE_FORMAT, "seq": 1, "t": 2.0,
                 "values": {"x": 3.0, "label": "skipped"}},
            ],
        )
        assert folded == 1
        assert collector.names() == ["x"]
        assert collector.series("x").points() == [(2.0, 3.0)]


class TestWatchTailUnderConcurrentAppends:
    """Satellite: the watcher tolerates journals being appended this instant."""

    def _torn(self, line: str) -> str:
        # The same half-line shape the chaos ``tear:`` injector writes.
        return line[: max(1, (len(line) - 1) // 2)]

    def test_torn_final_line_is_picked_up_next_poll(self, tmp_path):
        now = time.time()
        lines = _journal_lines(now)
        path = tmp_path / "j.jsonl"
        path.write_text("\n".join(lines[:4]) + "\n" + self._torn(lines[4] + "\n"))
        tail = JournalTail(path)
        state = WatchState()
        state.feed(tail.poll())
        assert len(state.units) == 2  # u2's queued line is still torn
        # The writer finishes the line and keeps appending.
        with open(path, "a", encoding="utf-8") as handle:
            rest = (lines[4] + "\n")[len(self._torn(lines[4] + "\n")):]
            handle.write(rest)
            for line in lines[5:]:
                handle.write(line + "\n")
        state.feed(tail.poll())
        assert len(state.units) == 4
        assert state.counts()["quarantined"] == 1
        assert tail.skipped == 0

    def test_torn_midfile_heartbeat_skipped_not_fatal(self, tmp_path):
        now = time.time()
        lines = _journal_lines(now)
        beat = json.dumps(
            {"event": "heartbeat", "unit": "u0", "index": 0, "fence": 1,
             "seq": 3, "t": now},
            sort_keys=True,
        )
        path = tmp_path / "j.jsonl"
        # A crashed worker left half a heartbeat *mid-file* (the next
        # append started a fresh line after it).
        path.write_text(
            "\n".join(lines[:8]) + "\n" + self._torn(beat) + "\n"
            + "\n".join(lines[8:]) + "\n"
        )
        tail = JournalTail(path)
        state = WatchState()
        state.feed(tail.poll())
        assert tail.skipped == 1
        assert len(state.units) == 4
        assert state.units["u0"].beat_seq == 2  # the torn beat never landed

    def test_watch_once_cli_renders_and_exports(self, tmp_path, capsys):
        now = time.time()
        journal = tmp_path / "j.jsonl"
        journal.write_text("\n".join(_journal_lines(now)) + "\n")
        snapshots = tmp_path / "live.jsonl"
        snapshots.write_text(
            json.dumps({"format": LIVE_FORMAT, "seq": 0, "t": now,
                        "values": {"engine.items_done": 5.0}})
            + "\n"
        )
        prom = tmp_path / "metrics.prom"
        code = watch_tool.main([
            "--journal", str(journal),
            "--snapshots", str(snapshots),
            "--once",
            "--stuck-after", "4.0",
            "--prometheus-out", str(prom),
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "campaign: tau-sweep" in out
        assert "STUCK" in out
        assert "engine.items_done" in out
        assert parse_prometheus(prom.read_text()) == {"engine.items_done": 5.0}

    def test_watch_requires_a_stream(self, capsys):
        with pytest.raises(SystemExit):
            watch_tool.main(["--once"])


class TestPerfEnvelope:
    def test_bench_envelope_merges_in_place(self):
        record = {"runs": [{"workers": 1, "elapsed_s": 2.0}], "note": "x"}
        out = bench_envelope(record, bench="runtime", quick=True)
        assert out is record
        assert record["schema"] == BENCH_SCHEMA
        assert record["bench"] == "runtime" and record["quick"] is True
        assert record["usable_cpus"] >= 1
        assert record["metrics"] == {"runs.0.elapsed_s": 2.0, "runs.0.workers": 1.0}
        assert record["note"] == "x"  # existing keys untouched

    def test_flatten_skips_bools_strings_and_envelope(self):
        flat = flatten_metrics({
            "schema": BENCH_SCHEMA,
            "bench": "x",
            "quick": True,
            "usable_cpus": 8,
            "ok": True,
            "label": "fast",
            "nested": {"a": 1, "b": [2.5, {"c": 3}]},
        })
        assert flat == {"nested.a": 1.0, "nested.b.0": 2.5, "nested.b.1.c": 3.0}

    def test_normalize_legacy_payload_from_filename(self):
        record = normalize_bench(
            {"overhead_ratio": 1.01}, source="bench_telemetry_overhead.json"
        )
        assert record["bench"] == "telemetry_overhead"
        assert record["quick"] is False
        record = normalize_bench({"n": 1}, source="bench_campaign_quick.json")
        assert record["bench"] == "campaign" and record["quick"] is True

    def test_normalize_enveloped_payload_passes_through(self):
        payload = bench_envelope({"elapsed_s": 1.0}, bench="serve", quick=False)
        record = normalize_bench(dict(payload), source="bench_other.json")
        assert record["bench"] == "serve" and record["quick"] is False


class TestMetricDirection:
    @pytest.mark.parametrize(
        ("name", "expected"),
        [
            ("runs.0.elapsed_s", "lower"),
            ("overhead_ratio", "lower"),
            ("telemetry.per_field_s", "lower"),
            ("fleet.deaths", "lower"),
            ("frames_per_s", "higher"),
            ("runs.2.speedup_vs_serial", "higher"),
            ("fleet.delivery_rate", "higher"),
            ("goodput_kbps", "higher"),
            ("rerender.reuse_ratio", "higher"),
            ("runs.0.workers", None),
            ("units", None),
        ],
    )
    def test_direction_inference(self, name, expected):
        assert metric_direction(name) == expected


class TestPerfGate:
    def _results_dir(self, tmp_path, elapsed=2.0, rate=10.0):
        results = tmp_path / "results"
        results.mkdir(exist_ok=True)
        record = bench_envelope(
            {"runs": [{"elapsed_s": elapsed, "frames_per_s": rate}]},
            bench="runtime",
            quick=True,
        )
        (results / "bench_runtime_quick.json").write_text(json.dumps(record))
        return results

    def _cli(self, *argv):
        return perf_tool.main(list(argv))

    def test_ingest_then_check_passes_on_identical_results(self, tmp_path, capsys):
        results = self._results_dir(tmp_path)
        trajectory = tmp_path / "perf_trajectory.json"
        assert self._cli(
            "ingest", "--results", str(results), "--trajectory", str(trajectory)
        ) == 0
        payload = read_trajectory(trajectory)
        assert payload["format"] == PERF_FORMAT
        assert len(payload["runs"]) == 1
        assert self._cli(
            "check", "--results", str(results), "--trajectory", str(trajectory)
        ) == 0
        assert "no directional metric past its budget" in capsys.readouterr().out

    def test_check_fails_on_injected_regression(self, tmp_path, capsys):
        results = self._results_dir(tmp_path)
        trajectory = tmp_path / "perf_trajectory.json"
        self._cli("ingest", "--results", str(results), "--trajectory", str(trajectory))
        # A 30% slowdown on a lower-is-better metric trips the 20% budget.
        self._results_dir(tmp_path, elapsed=2.0 * 1.3)
        assert self._cli(
            "check", "--results", str(results), "--trajectory", str(trajectory)
        ) == 1
        out = capsys.readouterr().out
        assert "REGRESSED runs.0.elapsed_s" in out

    def test_rate_drop_regresses_downward(self, tmp_path, capsys):
        results = self._results_dir(tmp_path)
        trajectory = tmp_path / "perf_trajectory.json"
        self._cli("ingest", "--results", str(results), "--trajectory", str(trajectory))
        self._results_dir(tmp_path, rate=10.0 * 0.6)
        assert self._cli(
            "check", "--results", str(results), "--trajectory", str(trajectory)
        ) == 1
        assert "REGRESSED runs.0.frames_per_s" in capsys.readouterr().out

    def test_metric_threshold_override_widens_budget(self, tmp_path, capsys):
        results = self._results_dir(tmp_path)
        trajectory = tmp_path / "perf_trajectory.json"
        self._cli("ingest", "--results", str(results), "--trajectory", str(trajectory))
        self._results_dir(tmp_path, elapsed=2.0 * 1.3)
        assert self._cli(
            "check", "--results", str(results), "--trajectory", str(trajectory),
            "--metric-threshold", "elapsed_s=0.5",
        ) == 0
        capsys.readouterr()

    def test_check_without_baseline_passes(self, tmp_path, capsys):
        results = self._results_dir(tmp_path)
        trajectory = tmp_path / "perf_trajectory.json"
        assert self._cli(
            "check", "--results", str(results), "--trajectory", str(trajectory)
        ) == 0
        assert "no baseline yet" in capsys.readouterr().out

    def test_check_json_report_shape(self, tmp_path, capsys):
        results = self._results_dir(tmp_path)
        trajectory = tmp_path / "perf_trajectory.json"
        self._cli("ingest", "--results", str(results), "--trajectory", str(trajectory))
        capsys.readouterr()
        assert self._cli(
            "check", "--results", str(results), "--trajectory", str(trajectory),
            "--json",
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["format"] == PERF_FORMAT
        assert payload["checks"][0]["bench"] == "runtime"
        assert payload["checks"][0]["regressions"] == []

    def test_show_summarizes_runs(self, tmp_path, capsys):
        results = self._results_dir(tmp_path)
        trajectory = tmp_path / "perf_trajectory.json"
        self._cli("ingest", "--results", str(results), "--trajectory", str(trajectory))
        capsys.readouterr()
        assert self._cli("show", "--trajectory", str(trajectory)) == 0
        assert "runtime/quick" in capsys.readouterr().out

    def test_bad_trajectory_format_is_an_error(self, tmp_path, capsys):
        trajectory = tmp_path / "perf_trajectory.json"
        trajectory.write_text(json.dumps({"format": "repro.perf/99", "runs": []}))
        assert self._cli("show", "--trajectory", str(trajectory)) == 2
        assert "error:" in capsys.readouterr().out

    def test_rolling_baseline_windows_recent_runs(self):
        trajectory = {
            "format": PERF_FORMAT,
            "runs": [
                {"bench": "b", "quick": True, "metrics": {"elapsed_s": value}}
                for value in (100.0, 2.0, 4.0)
            ],
        }
        assert baseline_for(trajectory, "b", True, window=2) == {"elapsed_s": 3.0}

    def test_compare_skips_zero_baseline_and_undirected(self):
        rows = compare(
            {"elapsed_s": 2.0, "workers": 9.0, "zero": 5.0},
            {"elapsed_s": 1.0, "workers": 1.0, "zero": 0.0},
            threshold=0.2,
        )
        by_metric = {row["metric"]: row for row in rows}
        assert "zero" not in by_metric
        assert by_metric["elapsed_s"]["regressed"] is True
        assert by_metric["workers"]["regressed"] is False
        assert by_metric["workers"]["direction"] is None
