"""Perspective capture geometry: homographies, warps, tilted views."""

from __future__ import annotations

import numpy as np
import pytest
from dataclasses import replace

from repro.camera.capture import CameraModel
from repro.camera.geometry import (
    PerspectiveView,
    apply_homography,
    homography_from_points,
    warp_image,
    warp_labels,
)


class TestHomography:
    def test_identity_from_matching_points(self):
        pts = np.array([[0, 0], [10, 0], [10, 10], [0, 10]], dtype=float)
        h = homography_from_points(pts, pts)
        assert np.allclose(h, np.eye(3), atol=1e-9)

    def test_translation(self):
        src = np.array([[0, 0], [10, 0], [10, 10], [0, 10]], dtype=float)
        dst = src + np.array([5.0, 7.0])
        h = homography_from_points(src, dst)
        mapped = apply_homography(h, np.array([[2.0, 3.0]]))
        assert np.allclose(mapped, [[7.0, 10.0]])

    def test_scale(self):
        src = np.array([[0, 0], [10, 0], [10, 10], [0, 10]], dtype=float)
        h = homography_from_points(src, src * 2.0)
        mapped = apply_homography(h, np.array([[4.0, 5.0]]))
        assert np.allclose(mapped, [[8.0, 10.0]])

    def test_projective_consistency_at_corners(self):
        src = np.array([[0, 0], [100, 0], [100, 60], [0, 60]], dtype=float)
        dst = np.array([[10, 5], [90, 15], [85, 70], [5, 55]], dtype=float)
        h = homography_from_points(src, dst)
        assert np.allclose(apply_homography(h, src), dst, atol=1e-6)

    def test_degenerate_points_rejected(self):
        collinear = np.array([[0, 0], [1, 1], [2, 2], [3, 3]], dtype=float)
        with pytest.raises(ValueError):
            homography_from_points(collinear, collinear)

    def test_wrong_shape_rejected(self):
        with pytest.raises(ValueError):
            homography_from_points(np.zeros((3, 2)), np.zeros((4, 2)))


class TestWarps:
    def test_identity_warp_preserves_image(self):
        image = np.random.default_rng(0).uniform(0, 255, (20, 30)).astype(np.float32)
        out = warp_image(image, np.eye(3), (20, 30))
        assert np.allclose(out, image, atol=0.5)

    def test_background_fills_outside(self):
        image = np.full((10, 10), 200.0, np.float32)
        # Shift the image far right: left half of output is background.
        h = homography_from_points(
            np.array([[0, 0], [9, 0], [9, 9], [0, 9]], dtype=float),
            np.array([[20, 0], [29, 0], [29, 9], [20, 9]], dtype=float),
        )
        out = warp_image(image, h, (10, 30), background=3.0)
        assert float(out[5, 5]) == pytest.approx(3.0)
        assert float(out[5, 25]) == pytest.approx(200.0, abs=1.0)

    def test_label_warp_nearest_and_fill(self):
        labels = np.arange(12, dtype=np.int32).reshape(3, 4)
        out = warp_labels(labels, np.eye(3), (3, 4))
        assert np.array_equal(out, labels)
        shifted = warp_labels(labels, np.eye(3), (5, 6))
        assert shifted[4, 5] == -1


class TestPerspectiveView:
    def test_fronto_parallel_full_fill(self):
        view = PerspectiveView.fronto_parallel(30, 40, fill=1.0)
        assert view.corners[0] == (0.0, 0.0)
        assert view.corners[2] == (40.0, 30.0)

    def test_tilted_zero_angles_is_symmetric(self):
        view = PerspectiveView.tilted(30, 40, yaw_deg=0.0, fill=0.8)
        xs = [c[0] for c in view.corners]
        assert xs[0] == pytest.approx(40 - xs[1], abs=1e-6)

    def test_yaw_foreshortens_one_side(self):
        view = PerspectiveView.tilted(30, 40, yaw_deg=30.0, fill=0.8)
        (tl, tr, br, bl) = view.corners
        left_height = bl[1] - tl[1]
        right_height = br[1] - tr[1]
        assert abs(left_height - right_height) > 0.5  # trapezoid, not rectangle

    def test_homography_maps_display_corners_to_quad(self):
        view = PerspectiveView.tilted(30, 40, yaw_deg=20.0)
        h = view.homography(60, 80)
        corners = apply_homography(
            h, np.array([[0, 0], [79, 0], [79, 59], [0, 59]], dtype=float)
        )
        assert np.allclose(corners, np.asarray(view.corners), atol=1e-6)

    def test_angle_bounds(self):
        with pytest.raises(ValueError):
            PerspectiveView.tilted(30, 40, yaw_deg=80.0)

    def test_corner_count_validated(self):
        with pytest.raises(ValueError):
            PerspectiveView(corners=((0.0, 0.0), (1.0, 0.0)))


class TestTiltedCapture:
    def test_tilted_capture_shows_trapezoid(self):
        from repro.display.panel import DisplayPanel
        from repro.display.scheduler import DisplayTimeline
        from repro.video.source import ArrayVideoSource

        frames = np.full((8, 30, 40), 220.0, dtype=np.float32)
        panel = DisplayPanel(width=40, height=30, refresh_hz=120.0)
        timeline = DisplayTimeline(panel, ArrayVideoSource(frames, fps=120.0))
        view = PerspectiveView.tilted(60, 80, yaw_deg=35.0, fill=0.8)
        camera = CameraModel(
            width=80, height=60, view=view, background_luminance=0.0,
            timing_jitter_s=0.0,
        )
        capture = camera.capture_frame(timeline, 0, rng=None)
        bright = capture.pixels > 50
        # Foreshortening: the bright columns' vertical extents differ
        # between the left and right edges of the quad.
        cols = np.flatnonzero(bright.any(axis=0))
        left_extent = int(bright[:, cols[2]].sum())
        right_extent = int(bright[:, cols[-3]].sum())
        assert left_extent != right_extent

    def test_tilted_link_decodes(self):
        from repro.core.config import InFrameConfig
        from repro.core.pipeline import run_link
        from repro.video.synthetic import pure_color_video

        config = InFrameConfig(
            element_pixels=4, pixels_per_block=3, block_rows=16, block_cols=24,
            amplitude=20.0, tau=12,
        )
        video = pure_color_video(324, 576, 127.0, n_frames=18)
        view = PerspectiveView.tilted(216, 384, yaw_deg=25.0, fill=0.9)
        camera = CameraModel(width=384, height=216, view=view)
        stats = run_link(config, video, camera=camera, seed=3).stats
        assert stats.bit_accuracy > 0.9
