"""Cross-module property tests: invariants over random configurations.

Hypothesis drives the whole codec (no camera in the loop, so these stay
fast) and checks the invariants the system's correctness rests on:

* complementarity of every displayed pair, for any config and content;
* fused pixel-value average equals the video exactly (plus the documented
  compensation shift);
* GOB coding round-trips for both codes and arbitrary grid sizes;
* the decoder on noiseless, perfectly-sampled captures is exact.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.config import InFrameConfig
from repro.core.framing import PseudoRandomSchedule
from repro.core.multiplexer import MultiplexedStream
from repro.core.parity import data_bits_to_grid, grid_to_data_bits
from repro.video.synthetic import pure_color_video


@st.composite
def small_configs(draw):
    """Random small-but-valid InFrame configs."""
    gob_size = draw(st.sampled_from([2, 3]))
    gob_code = draw(st.sampled_from(["xor", "hamming84"])) if gob_size == 3 else "xor"
    block_rows = gob_size * draw(st.integers(min_value=1, max_value=3))
    block_cols = gob_size * draw(st.integers(min_value=1, max_value=4))
    return InFrameConfig(
        element_pixels=draw(st.sampled_from([1, 2, 3])),
        pixels_per_block=draw(st.sampled_from([2, 3, 4])),
        gob_size=gob_size,
        gob_code=gob_code,
        block_rows=block_rows,
        block_cols=block_cols,
        amplitude=draw(st.sampled_from([5.0, 20.0, 45.0])),
        tau=draw(st.sampled_from([4, 8, 12])),
        waveform=draw(st.sampled_from(["srrc", "linear", "stair"])),
        gamma_compensation=draw(st.booleans()),
    )


class TestCodecInvariants:
    @given(config=small_configs(), value=st.floats(min_value=0.0, max_value=255.0),
           seed=st.integers(0, 10**6))
    @settings(max_examples=40, deadline=None)
    def test_every_pair_fuses_to_base(self, config, value, seed):
        height = config.data_height_px + 4
        width = config.data_width_px + 6
        video = pure_color_video(height, width, value, n_frames=2)
        stream = MultiplexedStream(
            config, video, PseudoRandomSchedule(config, seed=seed)
        )
        for pair_start in range(0, min(stream.n_frames - 1, 6), 2):
            plus = stream.frame(pair_start)
            minus = stream.frame(pair_start + 1)
            base = (plus + minus) / 2.0
            # Both frames in range...
            assert plus.min() >= 0.0 and plus.max() <= 255.0
            assert minus.min() >= 0.0 and minus.max() <= 255.0
            # ...and each pair fuses exactly to its base field: the plain
            # video without compensation, or V + c(t) with it (c rides the
            # envelope during transitions, so it may differ across pairs).
            if not config.gamma_compensation:
                assert np.allclose(base, video.frame(0), atol=1e-3)
            else:
                assert float(base.max()) <= 255.0
                assert np.all(base <= video.frame(0) + 1e-3)  # c <= 0

    @given(config=small_configs(), seed=st.integers(0, 10**6))
    @settings(max_examples=40, deadline=None)
    def test_gob_roundtrip_any_config(self, config, seed):
        rng = np.random.default_rng(seed)
        bits = rng.random(config.bits_per_frame) < 0.5
        grid = data_bits_to_grid(bits, config)
        assert np.array_equal(grid_to_data_bits(grid, config), bits)

    @given(config=small_configs())
    @settings(max_examples=40, deadline=None)
    def test_bit_budget_consistency(self, config):
        assert config.bits_per_frame == config.n_gobs * config.bits_per_gob
        assert config.raw_bit_rate_bps == pytest.approx(
            config.bits_per_frame * config.refresh_hz / config.tau
        )

    @given(config=small_configs(), seed=st.integers(0, 10**6))
    @settings(max_examples=20, deadline=None)
    def test_noiseless_ideal_decoder_is_exact(self, config, seed):
        """A perfect receiver (display-resolution capture, no channel)
        must recover every bit from the stable phase of a cycle."""
        from repro.camera.capture import CapturedFrame
        from repro.core.decoder import InFrameDecoder

        height = config.data_height_px + 4
        width = config.data_width_px + 6
        # Amplitude 5 on mid gray never clips; skip hamming spare-block
        # subtleties are handled by the decoder itself.
        video = pure_color_video(height, width, 127.0, n_frames=2)
        stream = MultiplexedStream(
            config, video, PseudoRandomSchedule(config, seed=seed)
        )
        truth = stream.ground_truth(0)
        # The paper's texture correction subtracts the frame-mean noise, so
        # a *constant* bit grid (possible only on these toy 2x2 grids, never
        # on the paper's 30x50) is inherently ambiguous to the relative
        # threshold.  Both bit values present is a design precondition.
        assume(bool(truth.min() != truth.max()))
        decoder = InFrameDecoder(config, stream.geometry, height, width, inset=0.25)
        t = 0.5 / config.refresh_hz  # mid first displayed frame (stable phase)
        capture = CapturedFrame(
            pixels=stream.frame(0), index=0, start_time_s=0.0, mid_exposure_s=t
        )
        decoded = decoder.decode([capture])
        assert len(decoded) == 1
        assert np.array_equal(decoded[0].bits, stream.ground_truth(0))


class TestFailureInjection:
    def test_saturated_capture_yields_no_confident_bits(self, small_config, small_geometry):
        from repro.core.decoder import InFrameDecoder

        decoder = InFrameDecoder(small_config, small_geometry, 54, 75)
        white = np.full((54, 75), 255.0, dtype=np.float32)
        noise = decoder.block_noise_map(white)
        assert float(np.abs(noise).max()) < 1e-6

    def test_black_video_carries_nothing(self, small_config, small_camera):
        # Zero headroom: the encoder cannot modulate at all.
        from repro.core.pipeline import run_link

        video = pure_color_video(80, 112, 0.0, n_frames=12)
        run = run_link(small_config, video, camera=small_camera, seed=1)
        assert run.stats.bit_accuracy < 0.7  # nothing transmitted: chance-ish

    def test_random_garbage_capture_low_availability(self, small_config, small_geometry, rng):
        from repro.camera.capture import CapturedFrame
        from repro.core.decoder import InFrameDecoder

        decoder = InFrameDecoder(small_config, small_geometry, 54, 75)
        garbage = rng.uniform(0, 255, (54, 75)).astype(np.float32)
        capture = CapturedFrame(
            pixels=garbage, index=0, start_time_s=0.0, mid_exposure_s=0.004
        )
        decoded = decoder.decode([capture])
        # Uniform noise has no bimodal structure: most GOBs unavailable or
        # parity-rejected.
        frame = decoded[0]
        trustworthy = frame.gob_available & frame.gob_parity_ok
        assert float(trustworthy.mean()) < 0.7

    def test_decoder_survives_constant_capture(self, small_config, small_geometry):
        from repro.camera.capture import CapturedFrame
        from repro.core.decoder import InFrameDecoder

        decoder = InFrameDecoder(small_config, small_geometry, 54, 75)
        flat = np.full((54, 75), 127.0, dtype=np.float32)
        capture = CapturedFrame(
            pixels=flat, index=0, start_time_s=0.0, mid_exposure_s=0.004
        )
        decoded = decoder.decode([capture])
        assert decoded[0].available_ratio == 0.0  # zero spread -> no confidence
