"""Fault injection, self-healing decode and degradation-aware transport."""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.camera.capture import CameraModel, CapturedFrame
from repro.core.decoder import HealingReport, InFrameDecoder
from repro.core.pipeline import InFrameSender, run_link, run_transport_link
from repro.faults import (
    CompiledFaults,
    FaultInjectedCamera,
    FaultPlan,
    InjectionLog,
    PacketFaults,
    apply_stream_faults,
)
from repro.faults.report import DegradationReport
from repro.transport.arq import ArqReceiver, ArqSender
from repro.transport.packet import PacketType, build_packet
from repro.video.synthetic import pure_color_video


class TestFaultPlanParsing:
    def test_parse_kinds_and_params(self):
        plan = FaultPlan.parse("drop:p=0.2,burst=3;flip:at=0.4,frames=5", seed=7)
        kinds = [spec.kind for spec in plan.faults]
        assert kinds == ["drop", "flip"]
        drop = plan.by_kind("drop")[0]
        assert drop["p"] == pytest.approx(0.2)
        assert drop["burst"] == pytest.approx(3)
        flip = plan.by_kind("flip")[0]
        assert flip["at"] == pytest.approx(0.4)
        assert flip["frames"] == pytest.approx(5)

    def test_defaults_fill_missing_params(self):
        plan = FaultPlan.parse("drop", seed=0)
        assert plan.by_kind("drop")[0]["p"] == pytest.approx(0.10)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault"):
            FaultPlan.parse("meteor:p=1.0", seed=0)

    def test_unknown_param_rejected(self):
        with pytest.raises(ValueError, match="has no parameter"):
            FaultPlan.parse("drop:q=0.5", seed=0)

    def test_empty_spec_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan.parse("", seed=0)

    def test_compile_is_deterministic(self):
        kwargs = dict(n_captures=24, fps=30.0, duration_s=0.8, refresh_hz=120.0)
        a = FaultPlan.parse("drop:p=0.3;jitter:std=2e-3", seed=5).compile(**kwargs)
        b = FaultPlan.parse("drop:p=0.3;jitter:std=2e-3", seed=5).compile(**kwargs)
        assert np.array_equal(a.dropped, b.dropped)
        assert np.array_equal(a.time_offset_s, b.time_offset_s)

    def test_for_round_keeps_deterministic_events(self):
        plan = FaultPlan.parse("drop:p=0.3;flip:at=0.5;blackout:at=0.5,dur=0.2", seed=5)
        kwargs = dict(n_captures=24, fps=30.0, duration_s=0.8, refresh_hz=120.0)
        r1 = plan.for_round(1).compile(**kwargs)
        r2 = plan.for_round(2).compile(**kwargs)
        # The flip and blackout stay put; the random drops re-randomise.
        assert np.array_equal(r1.time_offset_s, r2.time_offset_s)
        assert r1.blackouts == r2.blackouts
        assert not np.array_equal(r1.dropped, r2.dropped)
        # Same round index -> identical tables.
        r1b = plan.for_round(1).compile(**kwargs)
        assert np.array_equal(r1.dropped, r1b.dropped)

    def test_for_receiver_reseeds_but_keeps_structure(self):
        plan = FaultPlan.parse("drop:p=0.3;blackout:at=0.5,dur=0.2", seed=5)
        kwargs = dict(n_captures=24, fps=30.0, duration_s=0.8, refresh_hz=120.0)
        assert plan.for_receiver(0) is plan
        a = plan.for_receiver(1)
        b = plan.for_receiver(2)
        assert a.seed != b.seed != plan.seed
        assert a.spec() == b.spec() == plan.spec()
        # Deterministic events stay put; random draws diverge per receiver.
        ca, cb = a.compile(**kwargs), b.compile(**kwargs)
        assert ca.blackouts == cb.blackouts
        assert not np.array_equal(ca.dropped, cb.dropped)

    def test_compile_origin_shifts_onsets_to_absolute_time(self):
        plan = FaultPlan.parse(
            "flip:at=0.5;exposure:at=0.25,gain=0.7;blackout:at=0.5,dur=0.2;"
            "drift:ppm=100",
            seed=5,
        )
        kwargs = dict(n_captures=24, fps=30.0, duration_s=0.8, refresh_hz=120.0)
        base = plan.compile(**kwargs)
        shifted = plan.compile(**kwargs, origin_s=2.0)
        # Every onset moves by exactly the origin: a mid-stream joiner's
        # faults land inside the window it actually watches.
        assert shifted.flip_times_s[0] == pytest.approx(base.flip_times_s[0] + 2.0)
        assert shifted.exposure_steps[0][0] == pytest.approx(
            base.exposure_steps[0][0] + 2.0
        )
        assert shifted.blackouts[0][0] == pytest.approx(base.blackouts[0][0] + 2.0)
        assert shifted.blackouts[0][1] == pytest.approx(base.blackouts[0][1] + 2.0)
        # Drift accumulates over time-since-join, not absolute time, so
        # the flip-free part of the offset table is origin-invariant.
        drift_only = FaultPlan.parse("drift:ppm=100", seed=5)
        assert np.allclose(
            drift_only.compile(**kwargs).time_offset_s,
            drift_only.compile(**kwargs, origin_s=2.0).time_offset_s,
        )


class TestStreamInjection:
    def _observed(self, small_config, small_sender, n=12, seed=0):
        camera = CameraModel(width=75, height=54)
        decoder = InFrameDecoder(small_config, small_sender.geometry, 54, 75)
        timeline = small_sender.timeline()
        rng = np.random.default_rng(seed)
        captures = [
            camera.capture_frame(timeline, i, rng=rng) for i in range(n)
        ]
        observations = [decoder.observe(c) for c in captures]
        return captures, observations

    def test_drops_counted_and_removed(self, small_config, small_sender):
        captures, observations = self._observed(small_config, small_sender)
        plan = FaultPlan.parse("drop:p=0.5", seed=9)
        compiled = plan.compile(
            n_captures=len(captures), fps=30.0, duration_s=0.4, refresh_hz=120.0
        )
        kept_c, kept_o, log = apply_stream_faults(compiled, captures, observations)
        assert log.dropped_captures == len(captures) - len(kept_c)
        assert log.dropped_captures > 0
        assert len(kept_c) == len(kept_o)

    def test_duplicates_extend_stream(self, small_config, small_sender):
        captures, observations = self._observed(small_config, small_sender)
        plan = FaultPlan.parse("dup:p=0.5", seed=9)
        compiled = plan.compile(
            n_captures=len(captures), fps=30.0, duration_s=0.4, refresh_hz=120.0
        )
        kept_c, kept_o, log = apply_stream_faults(compiled, captures, observations)
        # A duplicate is a stuck frame: the stream length is unchanged
        # but the previous capture's content lands twice.
        assert len(kept_c) == len(captures)
        assert log.duplicated_captures > 0
        stuck = [
            i
            for i in range(1, len(kept_c))
            if np.array_equal(kept_c[i].pixels, kept_c[i - 1].pixels)
        ]
        assert len(stuck) >= log.duplicated_captures

    def test_blackout_darkens_captures(self, small_config, small_sender):
        captures, _ = self._observed(small_config, small_sender)
        plan = FaultPlan.parse("blackout:at=0.0,dur=1.0", seed=0)
        compiled = plan.compile(
            n_captures=len(captures), fps=30.0, duration_s=0.4, refresh_hz=120.0
        )
        camera = FaultInjectedCamera(
            CameraModel(width=75, height=54), compiled
        )
        timeline = small_sender.timeline()
        frame = camera.capture_frame(timeline, 0, rng=np.random.default_rng(0))
        assert float(frame.pixels.mean()) < 40.0

    def test_injected_camera_keeps_nominal_timestamps(
        self, small_config, small_sender
    ):
        plan = FaultPlan.parse("flip:at=0.0,frames=3", seed=0)
        compiled = plan.compile(
            n_captures=12, fps=30.0, duration_s=0.4, refresh_hz=120.0
        )
        base = CameraModel(width=75, height=54)
        faulty = FaultInjectedCamera(base, compiled)
        timeline = small_sender.timeline()
        clean = base.capture_frame(timeline, 2, rng=np.random.default_rng(1))
        shifted = faulty.capture_frame(timeline, 2, rng=np.random.default_rng(1))
        # The shifted capture reports the nominal clock but saw content
        # from 3 display frames later.
        assert shifted.mid_exposure_s == pytest.approx(clean.mid_exposure_s)
        assert not np.array_equal(shifted.pixels, clean.pixels)


class TestLinkDeterminism:
    @pytest.mark.parametrize("workers", [None, 4])
    def test_same_plan_same_run(self, small_config, small_video, workers):
        camera = CameraModel(width=75, height=54)
        runs = []
        for _ in range(2):
            plan = FaultPlan.parse(
                "drop:p=0.2;flip:at=0.5;exposure:at=0.6,gain=0.7", seed=21
            )
            runs.append(
                run_link(
                    small_config,
                    small_video,
                    camera=camera,
                    seed=4,
                    workers=workers,
                    faults=plan,
                    heal=True,
                )
            )
        a, b = runs
        assert a.stats == b.stats
        assert all(
            np.array_equal(x.pixels, y.pixels)
            for x, y in zip(a.captures, b.captures)
        )
        assert a.degradation.injected == b.degradation.injected

    def test_workers_match_serial_bit_exactly(self, small_config, small_video):
        camera = CameraModel(width=75, height=54)

        def one(workers):
            plan = FaultPlan.parse(
                "drop:p=0.2;flip:at=0.5;blackout:at=0.7,dur=0.1", seed=21
            )
            return run_link(
                small_config,
                small_video,
                camera=camera,
                seed=4,
                workers=workers,
                faults=plan,
                heal=True,
            )

        serial, parallel = one(None), one(4)
        assert serial.stats == parallel.stats
        assert len(serial.captures) == len(parallel.captures)
        assert all(
            np.array_equal(x.pixels, y.pixels)
            for x, y in zip(serial.captures, parallel.captures)
        )
        assert serial.degradation.injected == parallel.degradation.injected
        assert (
            serial.degradation.healing.resyncs
            == parallel.degradation.healing.resyncs
        )


class TestSelfHealingDecode:
    # An 8 ms exposure straddles 120 Hz display-frame transitions, so a
    # clock slip actually corrupts the integrated pair energies; at the
    # camera default (2 ms) every capture sits inside one display frame
    # and slips are harmless -- there would be nothing to heal.
    def _sender(self, small_config):
        video = pure_color_video(80, 112, 127.0, n_frames=30)
        return InFrameSender(small_config, video)

    def _slipped_captures(self, sender, n, slip_s, onset_s, seed=2):
        camera = CameraModel(width=75, height=54, exposure_s=0.008)
        timeline = sender.timeline()
        captures = camera.capture_sequence(timeline, n, rng=np.random.default_rng(seed))
        # The camera clock slips at the onset: captures keep their nominal
        # stamps but the content comes from slip_s later.
        out = []
        for c in captures:
            if c.mid_exposure_s < onset_s:
                out.append(c)
            else:
                out.append(
                    CapturedFrame(
                        pixels=c.pixels,
                        index=c.index,
                        start_time_s=c.start_time_s - slip_s,
                        mid_exposure_s=c.mid_exposure_s - slip_s,
                    )
                )
        return out

    @staticmethod
    def _accuracy(sender, frames):
        total = correct = 0
        for frame in frames:
            k = min(frame.index, sender.stream.n_data_frames - 1)
            truth = sender.stream.ground_truth(k)
            correct += int((frame.bits == truth).sum())
            total += truth.size
        return correct / max(total, 1)

    def test_healed_beats_plain_after_slip(self, small_config):
        sender = self._sender(small_config)
        decoder = InFrameDecoder(small_config, sender.geometry, 54, 75)
        slip = 5 / small_config.refresh_hz
        captures = self._slipped_captures(sender, 28, slip, onset_s=0.40)
        plain = decoder.decode(captures)
        healed, report = decoder.decode_healed(captures)
        assert report.n_resyncs >= 1
        assert self._accuracy(sender, healed) > self._accuracy(sender, plain) + 0.05

    def test_sub_pair_slip_needs_no_healing(self, small_config):
        # A slip smaller than one pair cycle does not desync this PHY:
        # polarity comes from the pair energies themselves and tau-frame
        # redundancy absorbs the shift.  Healing must stay quiet.
        sender = self._sender(small_config)
        decoder = InFrameDecoder(small_config, sender.geometry, 54, 75)
        slip = 2 / small_config.refresh_hz
        captures = self._slipped_captures(sender, 28, slip, onset_s=0.40)
        plain = decoder.decode(captures)
        healed, report = decoder.decode_healed(captures)
        assert report.n_resyncs == 0
        assert self._accuracy(sender, healed) == pytest.approx(
            self._accuracy(sender, plain), abs=1e-9
        )

    def test_healed_matches_plain_on_clean_stream(self, small_config, small_video):
        sender = InFrameSender(small_config, small_video)
        decoder = InFrameDecoder(small_config, sender.geometry, 54, 75)
        camera = CameraModel(width=75, height=54)
        captures = camera.capture_sequence(
            sender.timeline(), 18, rng=np.random.default_rng(3)
        )
        plain = decoder.decode(captures)
        healed, report = decoder.decode_healed(captures)
        assert report.n_resyncs == 0
        assert len(healed) == len(plain)
        for a, b in zip(healed, plain):
            assert np.array_equal(a.bits, b.bits)

    def test_gain_segmentation_excludes_blackout(self, small_config, small_video):
        sender = InFrameSender(small_config, small_video)
        decoder = InFrameDecoder(small_config, sender.geometry, 54, 75)
        camera = CameraModel(width=75, height=54)
        captures = camera.capture_sequence(
            sender.timeline(), 18, rng=np.random.default_rng(3)
        )
        dark = [
            CapturedFrame(
                pixels=c.pixels * 0.05,
                index=c.index,
                start_time_s=c.start_time_s,
                mid_exposure_s=c.mid_exposure_s,
            )
            if 6 <= i < 12
            else c
            for i, c in enumerate(captures)
        ]
        _, report = decoder.decode_healed(dark)
        assert report.excluded_captures >= 5
        assert any(seg.blackout for seg in report.segments)

    def test_empty_and_tiny_streams(self, small_config, small_geometry):
        decoder = InFrameDecoder(small_config, small_geometry, 54, 75)
        frames, report = decoder.decide_observations_healed([])
        assert frames == [] and report.windows == 0

    @settings(max_examples=8, deadline=None, derandomize=True)
    @given(slip_frames=st.integers(min_value=4, max_value=6))
    def test_relock_found_for_every_phase_offset(self, slip_frames):
        # Every offset big enough to desync the decoder (>= 2 pair
        # cycles; smaller slips are absorbed by the PHY, see
        # test_sub_pair_slip_needs_no_healing) must be re-locked.
        # Rebuilt per example (hypothesis forbids function-scoped fixtures).
        from repro.core.config import InFrameConfig

        config = InFrameConfig(
            element_pixels=2, pixels_per_block=4, block_rows=8, block_cols=12,
            amplitude=20.0, tau=12,
        )
        video = pure_color_video(80, 112, 127.0, n_frames=30)
        sender = InFrameSender(config, video)
        decoder = InFrameDecoder(config, sender.geometry, 54, 75)
        slip = slip_frames / config.refresh_hz
        captures = TestSelfHealingDecode()._slipped_captures(
            sender, 28, slip, onset_s=0.40
        )
        _, report = decoder.decode_healed(captures)
        assert report.n_resyncs >= 1
        # The adopted phase undoes the slip up to a whole pair cycle
        # (2 display frames) -- a pair-cycle offset decodes identically.
        pair_cycle = 2.0 / config.refresh_hz
        final = report.resyncs[-1].phase_after_s
        residual = (final - (-slip)) % pair_cycle
        residual = min(residual, pair_cycle - residual)
        assert residual <= 0.25 * pair_cycle


class TestSyncEdgeCases:
    def _captures(self, sender, n, seed=0, exposure_s=1 / 500):
        camera = CameraModel(
            width=75, height=54, readout_s=0.004, exposure_s=exposure_s
        )
        return camera.capture_sequence(
            sender.timeline(), n, rng=np.random.default_rng(seed)
        )

    def test_synchronized_on_truncated_stream(self, small_config, small_video):
        sender = InFrameSender(small_config, small_video)
        decoder = InFrameDecoder(small_config, sender.geometry, 54, 75)
        captures = self._captures(sender, 3)
        blind = decoder.synchronized(captures)
        cycle = small_config.tau / small_config.refresh_hz
        assert 0.0 <= blind.clock_phase_s < cycle

    def test_synchronized_on_odd_length_stream(self, small_config, small_video):
        sender = InFrameSender(small_config, small_video)
        decoder = InFrameDecoder(small_config, sender.geometry, 54, 75)
        captures = self._captures(sender, 7)
        blind = decoder.synchronized(captures)
        decoded = blind.decode(captures)
        assert decoded  # a truncated odd stream still yields frames

    def test_estimate_cycle_phase_requires_three(self, small_config, small_video):
        from repro.core.decoder import estimate_cycle_phase

        sender = InFrameSender(small_config, small_video)
        decoder = InFrameDecoder(small_config, sender.geometry, 54, 75)
        captures = self._captures(sender, 2)
        with pytest.raises(ValueError):
            estimate_cycle_phase(captures, decoder)

    def test_healed_decode_on_odd_truncated_stream(self, small_config, small_video):
        sender = InFrameSender(small_config, small_video)
        decoder = InFrameDecoder(small_config, sender.geometry, 54, 75)
        for n in (3, 5, 7):
            frames, report = decoder.decode_healed(self._captures(sender, n))
            assert report.windows >= 1
            assert isinstance(frames, list)


class TestArqReceiverHardening:
    def _packets(self, payload=b"0123456789abcdef", chunk=4, session_id=1):
        return ArqSender(payload, chunk, session_id=session_id)

    def test_foreign_session_ignored(self):
        sender = self._packets(session_id=1)
        intruder = self._packets(payload=b"xxxxyyyy", session_id=2)
        receiver = ArqReceiver()
        assert receiver.receive(sender.packet(0))
        assert not receiver.receive(intruder.packet(0))
        assert receiver.n_foreign == 1
        assert receiver.received_bytes == 4

    def test_total_len_mismatch_is_foreign(self):
        receiver = ArqReceiver()
        assert receiver.receive(self._packets().packet(0))
        liar = build_packet(PacketType.DATA, 1, 4, b"zzzz", 9999)
        assert not receiver.receive(liar)
        assert receiver.n_foreign == 1

    def test_duplicates_counted_once(self):
        sender = self._packets()
        receiver = ArqReceiver()
        assert receiver.receive(sender.packet(1))
        assert not receiver.receive(sender.packet(1))
        assert receiver.n_duplicate == 1
        assert receiver.received_bytes == 4

    def test_out_of_range_seq_dropped(self):
        sender = self._packets()
        receiver = ArqReceiver()
        assert receiver.receive(sender.packet(0))
        rogue = build_packet(PacketType.DATA, 1, 1000, b"zz", len(sender.payload))
        assert not receiver.receive(rogue)
        assert receiver.n_out_of_range == 1
        overhang = build_packet(
            PacketType.DATA, 1, len(sender.payload) - 1, b"zzzz", len(sender.payload)
        )
        assert not receiver.receive(overhang)
        assert receiver.n_out_of_range == 2

    def test_garbage_never_raises(self):
        receiver = ArqReceiver()
        for raw in (b"", b"\x00" * 3, b"not a packet at all", bytes(range(64))):
            assert receiver.receive(raw) is False
        assert receiver.n_rejected == 4


class TestPacketFaults:
    def test_inactive_by_default(self):
        pf = PacketFaults(seed=1)
        assert not pf.active
        raws = [b"abcdef" * 3]
        out, corrupted, truncated = pf.apply(raws)
        assert out == raws and corrupted == 0 and truncated == 0

    def test_corruption_is_deterministic(self):
        raws = [bytes(range(32)) for _ in range(8)]
        a = PacketFaults(seed=3, corrupt_p=0.5).apply(raws, round_index=2)
        b = PacketFaults(seed=3, corrupt_p=0.5).apply(raws, round_index=2)
        assert a == b
        assert a[1] > 0  # some packet corrupted at p=0.5 over 8 packets
        assert any(x != y for x, y in zip(a[0], raws))

    def test_truncation_shortens(self):
        raws = [bytes(range(32)) for _ in range(8)]
        out, _, truncated = PacketFaults(seed=3, truncate_p=0.9).apply(raws)
        assert truncated > 0
        assert any(len(x) < 32 for x in out)


class TestDegradationReport:
    def test_merge_link_reports(self):
        a = DegradationReport(
            injected=InjectionLog(dropped_captures=2),
            healing=HealingReport(windows=3),
        )
        b = DegradationReport(
            injected=InjectionLog(dropped_captures=1, blackout_captures=4),
            healing=HealingReport(windows=2, relock_attempts=1),
        )
        merged = DegradationReport.merge_link_reports(
            [a, None, b], total_bytes=100, delivered_bytes=40, partial=True
        )
        assert merged.injected.dropped_captures == 3
        assert merged.injected.blackout_captures == 4
        assert merged.healing.windows == 5
        assert merged.recovered_ratio == pytest.approx(0.4)

    def test_summary_states(self):
        complete = DegradationReport(total_bytes=10, delivered_bytes=10)
        partial = DegradationReport(total_bytes=10, delivered_bytes=4, partial=True)
        failed = DegradationReport(total_bytes=10, delivered_bytes=0)
        assert "complete" in complete.summary()
        assert "PARTIAL" in partial.summary()
        assert "FAILED" in failed.summary()
        assert DegradationReport().summary() == "faults: none injected"


class TestTransportDegradation:
    @pytest.fixture(scope="class")
    def phy(self):
        scale = dataclasses.replace(
            __import__(
                "repro.analysis.experiments", fromlist=["ExperimentScale"]
            ).ExperimentScale.quick(),
            n_video_frames=24,
        )
        return scale

    def test_retry_budget_reported(self, phy):
        config = phy.config(amplitude=30.0, tau=12)
        payload = bytes(range(96))
        plan = FaultPlan.parse("drop:p=0.3", seed=11)
        run = run_transport_link(
            config,
            phy.video("gray"),
            payload,
            mode="arq",
            camera=phy.camera(),
            seed=3,
            max_rounds=4,
            faults=plan,
            retry_budget=0,
        )
        d = run.degradation
        assert d is not None
        assert d.total_bytes == len(payload)
        assert 0 <= d.delivered_bytes <= len(payload)
        if run.payload != payload:
            assert run.arq_stats.budget_exhausted

    def test_deadline_ends_session(self, phy):
        config = phy.config(amplitude=30.0, tau=12)
        payload = bytes(range(96))
        plan = FaultPlan.parse("drop:p=0.6", seed=11)
        run = run_transport_link(
            config,
            phy.video("gray"),
            payload,
            mode="arq",
            camera=phy.camera(),
            seed=3,
            max_rounds=6,
            faults=plan,
            deadline_s=1e-9,
        )
        # One forward pass always happens; the deadline stops retries.
        assert run.arq_stats.rounds <= 2
        if run.payload != payload:
            assert run.arq_stats.deadline_hit
