"""Shared fixtures for the test suite.

Tests run at deliberately small spatial scales so the full suite stays
fast; the channel physics is resolution-independent (see DESIGN.md), and
the slow full-scale paths are covered by the benchmarks.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.camera.capture import CameraModel
from repro.core.config import InFrameConfig
from repro.core.framing import PseudoRandomSchedule
from repro.core.geometry import FrameGeometry
from repro.core.pipeline import InFrameSender
from repro.display.panel import DisplayPanel
from repro.video.synthetic import pure_color_video


@pytest.fixture
def small_config() -> InFrameConfig:
    """A small but structurally paper-shaped config: 8x12 Blocks of 8 px."""
    return InFrameConfig(
        element_pixels=2,
        pixels_per_block=4,
        block_rows=8,
        block_cols=12,
        amplitude=20.0,
        tau=12,
    )


@pytest.fixture
def small_geometry(small_config) -> FrameGeometry:
    """Geometry placing the small grid in a 80x112 frame (margins 8/8)."""
    return FrameGeometry(small_config, 80, 112)


@pytest.fixture
def small_video(small_config):
    """A gray clip matching the small geometry."""
    return pure_color_video(80, 112, 127.0, n_frames=12)


@pytest.fixture
def small_sender(small_config, small_video) -> InFrameSender:
    """A full sender over the small setup."""
    return InFrameSender(small_config, small_video)


@pytest.fixture
def small_camera() -> CameraModel:
    """A camera at 2/3 of the small panel resolution."""
    return CameraModel(width=75, height=54, readout_s=0.008)


@pytest.fixture
def rng() -> np.random.Generator:
    """A fixed-seed generator."""
    return np.random.default_rng(1234)


@pytest.fixture
def small_panel() -> DisplayPanel:
    """A small 120 Hz panel."""
    return DisplayPanel(width=112, height=80, refresh_hz=120.0)
