"""DET004 fixture: exec-scoped metric values crossing into work scope.

Gauges default to exec scope (execution-substrate numbers -- pool
sizes, shm occupancy); folding their values into a work-scoped counter
or a ``UnitResult`` makes the "work" output vary with worker count.
"""

from __future__ import annotations

from typing import Any

from repro.campaign.units import UnitResult


def fold(registry: Any) -> None:
    pool_size = registry.gauge("exec.pool_size")
    decoded = registry.counter("work.decoded")
    decoded.inc(pool_size.value)


def report(registry: Any, index: int, key: str) -> UnitResult:
    peak = registry.gauge("exec.shm_peak")
    return UnitResult(
        index=index,
        key=key,
        ok=True,
        error=None,
        metrics={"peak": peak.value},
    )
