"""Fixture: paired resource lifecycles (no RES findings expected)."""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from multiprocessing.shared_memory import SharedMemory


def probe_segment() -> bool:
    """Creation paired with close/unlink in the same function."""
    try:
        segment = SharedMemory(create=True, size=16)
    except OSError:
        return False
    segment.close()
    segment.unlink()
    return True


def run_with_finally(size: int) -> None:
    """Creation released in a finally block."""
    segment = SharedMemory(create=True, size=size)
    try:
        segment.buf[0] = 1
    finally:
        segment.close()
        segment.unlink()


def pooled_work() -> list[int]:
    """A with statement owns the executor."""
    with ProcessPoolExecutor(max_workers=2) as executor:
        return list(executor.map(abs, [-1, -2]))


class SegmentOwner:
    """A class owning the segment through its close() method."""

    def __init__(self, size: int) -> None:
        self._segment = SharedMemory(create=True, size=size)

    def close(self) -> None:
        self._segment.close()
        self._segment.unlink()
