"""Fixture: uint8 wraparound hazards (DT001 and DT002 expected)."""

from __future__ import annotations

import numpy as np


def wrapping_add(frame: np.ndarray, delta: int) -> np.ndarray:
    """DT001: +delta on a uint8 array wraps past 255."""
    pixels = np.asarray(frame, dtype=np.uint8)
    return pixels + delta


def unclipped_cast(frame: np.ndarray, delta: float) -> np.ndarray:
    """DT002: arithmetic cast straight to uint8 without a clip."""
    return (frame + delta).astype(np.uint8)
