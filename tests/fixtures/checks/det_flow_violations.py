"""DET003 fixture: a dict view threaded through two helper functions.

The view is created in ``_keys_of``, passed back through ``_visible``,
and only then serialized -- the finding must still anchor at the dumps
argument with the full inter-procedural trace.
"""

from __future__ import annotations

import json
from collections.abc import Iterable


def _keys_of(table: dict[str, float]) -> Iterable[str]:
    return table.keys()


def _visible(table: dict[str, float]) -> Iterable[str]:
    return _keys_of(table)


def layout_json(table: dict[str, float]) -> str:
    return json.dumps(list(_visible(table)))
