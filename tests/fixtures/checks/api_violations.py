"""Fixture: incomplete public annotations (API001 expected)."""

from __future__ import annotations


def missing_return(value: int):  # noqa: ANN201
    """API001: no return annotation."""
    return value * 2


def missing_param(value) -> int:  # noqa: ANN001
    """API001: unannotated parameter."""
    return int(value)


class Gadget:
    """Methods are public surface too."""

    def __init__(self, size):  # noqa: ANN001
        """API001: unannotated __init__ parameter."""
        self.size = size
