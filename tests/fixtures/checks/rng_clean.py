"""Fixture: seed-disciplined randomness (no RNG findings expected)."""

from __future__ import annotations

import numpy as np


def draw_noise(rng: np.random.Generator, std: float) -> np.ndarray:
    """Draws flow through an explicitly threaded, typed Generator."""
    return rng.normal(0.0, std, size=(4, 4))


def make_stream(seed: int) -> np.random.Generator:
    """Seeded construction at an API boundary is the sanctioned pattern."""
    return np.random.default_rng((seed, 0x5EED))


def spawned(seed: int, index: int) -> np.random.Generator:
    """SeedSequence spawn keys give independent per-item streams."""
    return np.random.default_rng(np.random.SeedSequence(seed, spawn_key=(index,)))
