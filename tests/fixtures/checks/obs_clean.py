"""Clean fixture for the OBS001 library-print rule."""

from __future__ import annotations


def report_through_telemetry(registry: object, n: int) -> dict[str, int]:
    """Library code reports by returning data, not by printing it."""
    formatted = f"processed {n} items"  # building a string is fine
    return {"items": n, "message_len": len(formatted)}


def suppressed_print(n: int) -> None:
    """An explicitly waived print stays allowed (per-line pragma)."""
    print(n)  # checks: ignore[OBS001] debugging aid kept on purpose
