"""Fixture: fully annotated public surface (no API findings expected)."""

from __future__ import annotations


class Widget:
    """A class with annotated public methods."""

    def __init__(self, size: int) -> None:
        self.size = size

    def scaled(self, factor: float) -> float:
        """Scale the widget."""
        return self.size * factor

    def _private_helper(self, x):  # noqa: ANN001, ANN202
        # Private members are outside the public typing contract.
        return x


def top_level(value: int, *extras: int, flag: bool = False) -> int:
    """An annotated module-level function."""

    def nested(helper_arg):  # noqa: ANN001, ANN202
        # Nested helpers are local, not public surface.
        return helper_arg

    return nested(value) + sum(extras) + int(flag)
