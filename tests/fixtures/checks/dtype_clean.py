"""Fixture: wrap-safe uint8 frame math (no DT findings expected)."""

from __future__ import annotations

import numpy as np


def modulate(frame: np.ndarray, delta: int) -> np.ndarray:
    """The sanctioned idiom: widen, add, clip, cast back."""
    wide = frame.astype(np.int16) + delta
    return np.clip(wide, 0, 255).astype(np.uint8)


def pack_bits(bits: np.ndarray) -> bytes:
    """Casting a 0/1 array for packbits involves no arithmetic."""
    return np.packbits(bits.astype(np.uint8)).tobytes()


def table_lookup(table: np.ndarray, a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Arithmetic inside a subscript index is not uint8 math."""
    return table[a.astype(np.int32) + b.astype(np.int32)].astype(np.uint8)
