"""DET002 fixture: wall-clock values reaching bit-identity sinks.

A work-scoped counter fed a ``time.time()`` value and a ``*_json``
canonical output stamped with ``perf_counter`` -- both vary run to run,
so both must be flagged.
"""

from __future__ import annotations

import json
import time
from typing import Any


def fold_metrics(registry: Any, frames: int) -> None:
    decoded = registry.counter("decode.frames")
    started = time.time()
    decoded.inc(started)


def report_json(results: list[dict[str, float]]) -> str:
    stamp = time.perf_counter()
    return json.dumps({"results": results, "generated_at": stamp})
