"""Fixture: every RNG rule violated once (RNG001..RNG005 expected)."""

from __future__ import annotations

import random

import numpy as np


def global_numpy_draw(shape: tuple[int, int]) -> np.ndarray:
    """RNG001: module-global numpy state."""
    return np.random.normal(0.0, 1.0, size=shape)


def stdlib_draw() -> float:
    """RNG002: stdlib random is process-global state."""
    return random.random()


def unseeded_stream() -> np.random.Generator:
    """RNG003: entropy-seeded generator, unreproducible by construction."""
    return np.random.default_rng()


def untyped_param(rng) -> float:  # noqa: ANN001
    """RNG004: generator parameter without a Generator annotation."""
    return float(rng.random())


def hash_seeded(key: str) -> np.random.Generator:
    """RNG005: hash() is salted per process."""
    return np.random.default_rng(hash(key) % (2**32))
