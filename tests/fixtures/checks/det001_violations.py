"""DET001 fixture: worker-executed RNGs that break seed discipline.

Every function here is marked worker-scope; none of the generators
derive from a spawn-keyed SeedSequence argument, so each construction
must be flagged.  (The unseeded case also trips RNG003 -- the two rules
see different halves of the same bug.)
"""

from __future__ import annotations

import numpy as np


def constant_seed(seed: int) -> float:  # checks: worker-scope
    rng = np.random.default_rng(12345)
    return float(rng.normal())


def fresh_entropy(seed: int) -> float:  # checks: worker-scope
    rng = np.random.default_rng()
    return float(rng.normal())


def raw_bitgen(seed: int) -> float:  # checks: worker-scope
    rng = np.random.Generator(np.random.PCG64(99))
    return float(rng.normal())
