"""OBS002 fixture: live time-series reads crossing into work scope.

Live snapshot points are wall-clock-stamped by construction, so any
flow into a work-scoped counter, a ``UnitResult``, or a canonical
``*_json`` output trades byte-identity for a number that depends on
when the watcher looked.
"""

from __future__ import annotations

import json
from typing import Any

from repro.campaign.units import UnitResult
from repro.obs.live import TimeSeries, live_collector


def fold(registry: Any, collector: Any) -> None:
    throughput = collector.series("engine.items_done")
    decoded = registry.counter("work.decoded")
    decoded.inc(throughput.latest())


def report(index: int, key: str) -> UnitResult:
    series = TimeSeries("unit.progress")
    return UnitResult(
        index=index,
        key=key,
        ok=True,
        error=None,
        metrics={"progress": series.latest()},
    )


def progress_json() -> str:
    collector = live_collector()
    snapshot = collector.snapshot()
    return json.dumps(snapshot, sort_keys=True)
