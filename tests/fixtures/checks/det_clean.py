"""Clean determinism fixture: every sanctioned pattern for DET001-004.

Each function below is the blessed counterpart of a violating fixture:
spawn-keyed RNG derivation, the ``sorted()`` sanitizer, the canonical
dict-comprehension + ``sort_keys=True`` shape, exec-to-exec metric
flow, wall-clock use outside the contract, and the ``exec-scope``
pragma for deliberately substrate-scoped output.  None of these may
produce a finding.
"""

from __future__ import annotations

import json
import time
from typing import Any

import numpy as np

from repro.runtime.scheduler import spawn_rng


def work(seed: int, item: int) -> float:  # checks: worker-scope
    rng = spawn_rng(seed, item)
    return float(rng.normal())


def work_explicit(seed: int, item: int) -> float:  # checks: worker-scope
    rng = np.random.default_rng(np.random.SeedSequence(seed, spawn_key=(item,)))
    return float(rng.normal())


def work_derived(seed: int) -> float:  # checks: worker-scope
    rng = np.random.default_rng((seed, 0xFEED))
    return float(rng.normal())


def metrics_json(metrics: dict[str, float]) -> str:
    names = sorted({name for name in metrics})
    return json.dumps({name: metrics[name] for name in names}, sort_keys=True)


def work_json(payloads: dict[str, dict[str, float]]) -> str:
    work_only = {name: payload for name, payload in payloads.items()}
    return json.dumps(work_only, sort_keys=True, separators=(",", ":"))


def fold_exec(registry: Any, slots: int) -> None:
    pool = registry.gauge("exec.shm_slots")
    pool.set(slots)
    mirror = registry.gauge("exec.shm_slots_copy")
    mirror.set(pool.value)


def measure(loops: int) -> float:
    start = time.perf_counter()
    for _ in range(loops):
        pass
    return time.perf_counter() - start


def timings_json(spans: list[dict[str, float]]) -> str:  # checks: exec-scope
    return json.dumps({"captured_at": time.time(), "spans": spans})
