"""DET001 fixture: module-level RNG state read from dispatched code.

``simulate`` is discovered as worker-scoped from the ``pool.map``
dispatch site (no pragma needed); the module-global generator it reads
is re-created per process, so draws depend on work distribution.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor

import numpy as np

_SHARED_RNG = np.random.default_rng(7)


def simulate(item: int) -> float:
    return float(_SHARED_RNG.normal() + item)


def run(items: list[int]) -> list[float]:
    with ProcessPoolExecutor() as pool:
        return list(pool.map(simulate, items))
