"""Clean OBS002 fixture: sanctioned live time-series flows.

Live points may feed exec-scoped gauges (exec-to-exec flow), the live
side-channel's own exporters, or an explicitly ``exec-scope``-pragma'd
output; none of these touches the exact-merge contract.
"""

from __future__ import annotations

import json
from typing import Any

from repro.obs.live import TimeSeries


def mirror_exec(registry: Any, collector: Any) -> None:
    throughput = collector.series("engine.items_done")
    mirror = registry.gauge("exec.items_done_mirror")
    mirror.set(throughput.latest())


def record_progress(series: TimeSeries, value: float) -> None:
    series.record(value)


def stream_json(collector: Any) -> str:  # checks: exec-scope
    snapshot = collector.snapshot()
    return json.dumps(snapshot, sort_keys=True)
