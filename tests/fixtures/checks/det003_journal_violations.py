"""DET003 fixture: set-ordered data written into a journal done record.

``done`` records must be byte-identical on resume; ``list(raised)``
snapshots a set's arbitrary iteration order into one.
"""

from __future__ import annotations

from typing import Any


def record_done(journal: Any, key: str, flags: dict[str, bool]) -> None:
    raised = {name for name, value in flags.items() if value}
    journal.append({"event": "done", "unit": key, "flags": list(raised)})
