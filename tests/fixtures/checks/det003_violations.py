"""DET003 fixture: unordered iteration feeding canonical JSON.

``metrics_json`` serializes a list built from a set (arbitrary order
across processes); ``summary_json`` iterates a dict view straight into
its canonical output.  Neither passes through ``sorted``.
"""

from __future__ import annotations

import json


def metrics_json(rows: list[dict[str, float]]) -> str:
    names = {name for row in rows for name in row}
    ordered = [name for name in names]
    return json.dumps({"names": ordered})


def summary_json(table: dict[str, float]) -> str:
    lines = []
    for key, value in table.items():
        lines.append(f"{key}={value}")
    return json.dumps(lines)
