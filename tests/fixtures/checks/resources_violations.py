"""Fixture: leaked resources (RES001 and RES002 expected)."""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from multiprocessing.shared_memory import SharedMemory


def leak_segment(size: int) -> SharedMemory:
    """RES001: the segment outlives the process if the caller forgets it."""
    segment = SharedMemory(create=True, size=size)
    segment.buf[0] = 1
    return segment


def leak_pool(items: list[int]) -> list[int]:
    """RES002: no shutdown on any path."""
    executor = ProcessPoolExecutor(max_workers=2)
    return list(executor.map(abs, items))
