"""DET002 fixture: a wall-clock read threaded through two helpers.

The taint enters at ``time.perf_counter()`` inside ``_now``, flows back
through ``_elapsed_since``, and lands in both a journal ``done`` record
and a ``UnitResult`` -- the inter-procedural case ``--explain DET002``
must render as a full source-to-sink path.
"""

from __future__ import annotations

import time
from typing import Any

from repro.campaign.units import UnitResult


def _now() -> float:
    return time.perf_counter()


def _elapsed_since(start: float) -> float:
    return _now() - start


def finish(index: int, key: str, start: float, journal: Any) -> UnitResult:
    elapsed = _elapsed_since(start)
    journal.append({"event": "done", "unit": key, "elapsed_s": elapsed})
    return UnitResult(
        index=index,
        key=key,
        ok=True,
        error=None,
        metrics={"elapsed_s": elapsed},
    )
