"""Clean resource fixture: release paths that live in called helpers.

Before the dataflow upgrade RES001/RES002 only looked inside the
creating function's own body, so extracting a ``_teardown`` helper
tripped them.  The cross-function closure must now see these releases.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from multiprocessing.shared_memory import SharedMemory


def _teardown(segment: SharedMemory) -> None:
    segment.close()
    segment.unlink()


def roundtrip(payload: bytes) -> bytes:
    segment = SharedMemory(create=True, size=len(payload))
    try:
        segment.buf[: len(payload)] = payload
        return bytes(segment.buf[: len(payload)])
    finally:
        _teardown(segment)


def _stop(pool: ProcessPoolExecutor) -> None:
    pool.shutdown(wait=True)


def run_all(jobs: int) -> int:
    pool = ProcessPoolExecutor(max_workers=jobs)
    count = len(list(pool.map(str, range(jobs))))
    _stop(pool)
    return count
