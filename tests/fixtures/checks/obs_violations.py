"""Violating fixture for the OBS001 library-print rule."""

from __future__ import annotations


def prints_progress(n: int) -> int:
    """OBS001: library code writing progress to stdout."""
    print(f"processed {n} items")
    return n


class Worker:
    def run(self, items: list[int]) -> int:
        total = 0
        for item in items:
            total += item
            print("item done", item)  # OBS001 inside a method too
        return total
