"""The parallel execution engine: scheduling, shared memory, robustness.

The load-bearing guarantees tested here:

* **Determinism** -- ``run_link(workers=4)`` produces *bit-identical*
  captures, verdicts and stats to ``workers=1`` (spawn-keyed per-capture
  RNG streams, order-independent assembly).
* **Robustness** -- a worker process dying breaks the pool; the engine
  rebuilds it a bounded number of times and then completes the work
  in-process, so callers always get their results.
* **Resource hygiene** -- the shared-memory pool recycles slots and
  survives exhaustion/double-release misuse loudly.
"""

from __future__ import annotations

import multiprocessing
import os
import time

import numpy as np
import pytest

from repro.analysis.experiments import ExperimentScale
from repro.core.pipeline import run_link
from repro.runtime import (
    ExecutionEngine,
    RuntimeReport,
    SharedFramePool,
    StageTimers,
    plan_chunks,
    shared_memory_available,
    spawn_rng,
)
from repro.runtime.engine import resolve_start_method
from repro.runtime.profiler import StageTiming


# ----------------------------------------------------------------------
# Scheduler
# ----------------------------------------------------------------------
class TestPlanChunks:
    def test_covers_range_exactly_without_overlap(self):
        chunks = plan_chunks(23, n_chunks=5, start=7)
        items = [i for c in chunks for i in c.items]
        assert items == list(range(7, 30))

    def test_sizes_differ_by_at_most_one(self):
        sizes = [len(c) for c in plan_chunks(23, n_chunks=5)]
        assert max(sizes) - min(sizes) <= 1
        assert sum(sizes) == 23

    def test_chunk_size_variant(self):
        chunks = plan_chunks(10, chunk_size=4)
        assert [len(c) for c in chunks] == [4, 3, 3]

    def test_more_chunks_than_items_collapses(self):
        assert len(plan_chunks(3, n_chunks=8)) == 3

    def test_rejects_both_arguments(self):
        with pytest.raises(ValueError):
            plan_chunks(10, n_chunks=2, chunk_size=3)

    def test_plan_is_deterministic(self):
        assert plan_chunks(17, n_chunks=4, seed=9) == plan_chunks(17, n_chunks=4, seed=9)


class TestSpawnRng:
    def test_same_key_same_stream(self):
        a = spawn_rng(3, 5).standard_normal(8)
        b = spawn_rng(3, 5).standard_normal(8)
        assert np.array_equal(a, b)

    def test_distinct_keys_distinct_streams(self):
        a = spawn_rng(3, 5).standard_normal(8)
        b = spawn_rng(3, 6).standard_normal(8)
        assert not np.array_equal(a, b)

    def test_chunk_item_rng_matches_direct_spawn(self):
        chunk = plan_chunks(10, n_chunks=2, seed=11)[1]
        item = chunk.start
        assert np.array_equal(
            chunk.item_rng(item).standard_normal(4),
            spawn_rng(11, item).standard_normal(4),
        )

    def test_item_outside_chunk_rejected(self):
        chunk = plan_chunks(10, n_chunks=2, seed=11)[0]
        with pytest.raises(ValueError):
            chunk.item_rng(chunk.stop)


# ----------------------------------------------------------------------
# Shared-memory pool
# ----------------------------------------------------------------------
@pytest.mark.skipif(not shared_memory_available(), reason="no shared memory here")
class TestSharedFramePool:
    def test_roundtrip(self):
        with SharedFramePool((4, 6), np.float32, n_slots=2) as pool:
            frame = np.arange(24, dtype=np.float32).reshape(4, 6)
            ref = pool.acquire()
            pool.write(ref, frame)
            assert np.array_equal(pool.read(ref), frame)

    def test_slots_recycle(self):
        with SharedFramePool((2, 2), np.float32, n_slots=1) as pool:
            ref = pool.acquire()
            assert pool.n_free == 0
            pool.release(ref)
            assert pool.n_free == 1
            pool.acquire()  # usable again

    def test_exhaustion_raises(self):
        with SharedFramePool((2, 2), np.float32, n_slots=1) as pool:
            pool.acquire()
            with pytest.raises(RuntimeError, match="exhausted"):
                pool.acquire()

    def test_double_release_rejected(self):
        with SharedFramePool((2, 2), np.float32, n_slots=2) as pool:
            ref = pool.acquire()
            pool.release(ref)
            with pytest.raises(ValueError, match="twice"):
                pool.release(ref)

    def test_shape_mismatch_rejected(self):
        with SharedFramePool((2, 2), np.float32, n_slots=1) as pool:
            ref = pool.acquire()
            with pytest.raises(ValueError, match="fit"):
                pool.write(ref, np.zeros((3, 3), dtype=np.float32))

    def test_read_copy_survives_slot_reuse(self):
        with SharedFramePool((2, 2), np.float32, n_slots=1) as pool:
            ref = pool.acquire()
            pool.write(ref, np.full((2, 2), 5.0, dtype=np.float32))
            copied = pool.read(ref, copy=True)
            pool.release(ref)
            ref2 = pool.acquire()
            pool.write(ref2, np.zeros((2, 2), dtype=np.float32))
            assert np.all(copied == 5.0)


class TestSharedFramePoolRefcounts:
    def test_retain_defers_recycling_until_last_release(self):
        with SharedFramePool((2, 2), np.float32, n_slots=1) as pool:
            ref = pool.acquire()
            assert pool.refcount(ref) == 1
            pool.retain(ref)
            pool.retain(ref)
            assert pool.refcount(ref) == 3
            pool.release(ref)
            pool.release(ref)
            assert pool.n_free == 0  # still one reader holding on
            pool.release(ref)
            assert pool.n_free == 1
            assert pool.refcount(ref) == 0

    def test_retain_of_free_slot_rejected(self):
        with SharedFramePool((2, 2), np.float32, n_slots=1) as pool:
            ref = pool.acquire()
            pool.release(ref)
            with pytest.raises(ValueError, match="acquire it before retaining"):
                pool.retain(ref)

    def test_release_past_zero_rejected(self):
        with SharedFramePool((2, 2), np.float32, n_slots=2) as pool:
            ref = pool.acquire()
            pool.retain(ref)
            pool.release(ref)
            pool.release(ref)
            with pytest.raises(ValueError, match="released twice"):
                pool.release(ref)

    def test_out_of_range_slot_rejected(self):
        from repro.runtime.shm import SlotRef

        with SharedFramePool((2, 2), np.float32, n_slots=1) as pool:
            bogus = SlotRef(slot=5, shape=(2, 2), dtype="<f4")
            with pytest.raises(ValueError, match="outside pool"):
                pool.refcount(bogus)

    def test_concurrent_readers_of_one_slot(self):
        # The broadcast-session pattern: one writer fills a slot once,
        # many readers pin it (retain), read zero-copy, and release.
        # The slot must never recycle while any reader holds it, and
        # every reader must see the written bytes intact.
        import threading

        with SharedFramePool((16, 16), np.float32, n_slots=1) as pool:
            frame = np.arange(256, dtype=np.float32).reshape(16, 16)
            ref = pool.acquire()
            pool.write(ref, frame)

            n_readers = 8
            start = threading.Barrier(n_readers)
            errors: list[str] = []
            mid_read_free: list[int] = []

            def read_slot() -> None:
                start.wait()
                pool.retain(ref)
                try:
                    view = pool.read(ref, copy=False)
                    if not np.array_equal(view, frame):
                        errors.append("reader saw torn data")
                    mid_read_free.append(pool.n_free)
                finally:
                    pool.release(ref)

            threads = [threading.Thread(target=read_slot) for _ in range(n_readers)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()

            assert errors == []
            assert mid_read_free == [0] * n_readers  # never recycled mid-read
            assert pool.refcount(ref) == 1  # only the writer's reference left
            pool.release(ref)
            assert pool.n_free == 1


# ----------------------------------------------------------------------
# Engine
# ----------------------------------------------------------------------
def _square(item, context):
    return item * item + (context or 0)


def _crash_in_worker(item, context):
    """Dies hard inside pool workers; succeeds in the parent process."""
    if item == "bomb" and multiprocessing.parent_process() is not None:
        os._exit(13)
    return f"ok:{item}"


def _raise_value_error(item, context):
    raise ValueError(f"bad item {item}")


def _sleep_if_slow(item, context):
    if item == "slow":
        time.sleep(2.0)
    return f"ok:{item}"


def _die_in_pool(item, context):
    """Dies hard inside pool workers for every item."""
    if multiprocessing.parent_process() is not None:
        os._exit(13)
    return f"ok:{item}"


class TestExecutionEngine:
    def test_serial_map(self):
        engine = ExecutionEngine(workers=1)
        assert engine.map(_square, [1, 2, 3], context=10) == [11, 14, 19]
        assert engine.stats.mode == "serial"

    @pytest.mark.skipif(
        resolve_start_method() is None, reason="no multiprocessing here"
    )
    def test_parallel_map_matches_serial(self):
        serial = ExecutionEngine(workers=1).map(_square, list(range(9)))
        parallel = ExecutionEngine(workers=3).map(_square, list(range(9)))
        assert parallel == serial

    def test_on_result_sees_every_item(self):
        seen = {}
        ExecutionEngine(workers=1).map(
            _square, [2, 4], on_result=lambda i, r: seen.setdefault(i, r)
        )
        assert seen == {0: 4, 1: 16}

    def test_prepare_replaces_item(self):
        engine = ExecutionEngine(workers=1)
        out = engine.map(_square, [1, 2], prepare=lambda i, item: item + 1)
        assert out == [4, 9]

    @pytest.mark.skipif(
        resolve_start_method() is None, reason="no multiprocessing here"
    )
    def test_worker_crash_retries_then_falls_back_serial(self):
        engine = ExecutionEngine(workers=2, max_retries=1)
        out = engine.map(_crash_in_worker, ["a", "bomb", "b"])
        assert out == ["ok:a", "ok:bomb", "ok:b"]
        assert engine.stats.mode == "serial-fallback"
        assert engine.stats.crashes >= 1
        assert engine.stats.retries == 1
        assert engine.stats.serial_items >= 1

    @pytest.mark.skipif(
        resolve_start_method() is None, reason="no multiprocessing here"
    )
    def test_worker_crash_without_fallback_raises(self):
        from concurrent.futures.process import BrokenProcessPool

        engine = ExecutionEngine(workers=2, max_retries=0, fallback_serial=False)
        with pytest.raises(BrokenProcessPool):
            engine.map(_crash_in_worker, ["bomb"] * 2 + ["c"])

    def test_ordinary_exception_propagates_unretried(self):
        engine = ExecutionEngine(workers=1)
        with pytest.raises(ValueError, match="bad item"):
            engine.map(_raise_value_error, [1])

    @pytest.mark.skipif(
        resolve_start_method() is None, reason="no multiprocessing here"
    )
    def test_tick_abandons_stuck_items(self):
        abandoned = []
        engine = ExecutionEngine(workers=2)
        out = engine.map(
            _sleep_if_slow,
            ["slow", "a", "b"],
            tick=lambda inflight: [i for i in inflight if i == 0],
            tick_interval_s=0.05,
            on_abandon=lambda i, reason: abandoned.append((i, reason)),
        )
        assert out[0] is None  # the stuck item's result is discarded
        assert out[1:] == ["ok:a", "ok:b"]
        assert abandoned == [(0, "tick")]
        assert engine.stats.abandoned_items == [0]

    def test_serial_tick_runs_between_items(self):
        ticks = []
        engine = ExecutionEngine(workers=1)
        out = engine.map(
            _square, [1, 2, 3], tick=lambda inflight: ticks.append(inflight) or []
        )
        assert out == [1, 4, 9]
        assert ticks == [(), (), ()]  # once per item, nothing abandonable

    def test_dispatch_gate_halts_remaining_items(self):
        calls = []
        engine = ExecutionEngine(workers=1)
        out = engine.map(
            _square,
            [1, 2, 3, 4],
            dispatch_gate=lambda: calls.append(None) or len(calls) <= 2,
        )
        assert out == [1, 4, None, None]
        assert engine.stats.undispatched_items == [2, 3]

    @pytest.mark.skipif(
        resolve_start_method() is None, reason="no multiprocessing here"
    )
    def test_crash_budget_abandons_instead_of_serial_fallback(self):
        abandoned = []
        engine = ExecutionEngine(workers=2, max_retries=4)
        # Two items: a single item would take the serial shortcut and
        # never exercise the pool crash budget.
        out = engine.map(
            _die_in_pool,
            ["x", "y"],
            on_abandon=lambda i, reason: abandoned.append((i, reason)),
            abandon_after_crashes=1,
        )
        assert out == [None, None]
        assert sorted(abandoned) == [(0, "crash"), (1, "crash")]
        assert sorted(engine.stats.abandoned_items) == [0, 1]
        assert engine.stats.mode == "parallel"  # no serial fallback ran
        assert engine.stats.serial_items == 0
        assert all(
            engine.stats.crash_counts[index] == 1 for index in (0, 1)
        )


# ----------------------------------------------------------------------
# Profiler
# ----------------------------------------------------------------------
class TestProfiler:
    def test_stage_timers_merge(self):
        a, b = StageTimers(), StageTimers()
        with a.stage("render"):
            pass
        with b.stage("render"):
            pass
        with b.stage("decide"):
            pass
        a.merge(b)
        merged = a.as_dict()
        assert merged["render"]["calls"] == 2
        assert merged["decide"]["calls"] == 1

    def test_report_rates_and_merge(self):
        r1 = RuntimeReport(
            mode="parallel", workers=2, chunks=2, frames=10, bits=800, elapsed_s=2.0
        )
        r2 = RuntimeReport(
            mode="parallel", workers=2, chunks=1, frames=5, bits=400, elapsed_s=1.0
        )
        assert r1.frames_per_s == pytest.approx(5.0)
        merged = RuntimeReport.merge([r1, r2])
        assert merged.frames == 15
        assert merged.bits == 1200
        assert merged.elapsed_s == pytest.approx(3.0)
        assert merged.mode == "parallel"
        assert "frames_per_s" in merged.as_dict()

    def test_merge_empty_is_none(self):
        assert RuntimeReport.merge([]) is None

    def test_stage_timing_add_accumulates(self):
        timing = StageTiming()
        timing.add(1.5, 0.5)
        timing.add(0.5, 0.25, calls=3)
        assert timing.wall_s == pytest.approx(2.0)
        assert timing.cpu_s == pytest.approx(0.75)
        assert timing.calls == 4
        assert timing.as_dict() == {"wall_s": 2.0, "cpu_s": 0.75, "calls": 4}

    def test_merge_dict_form_tolerates_partial_entries(self):
        timers = StageTimers()
        timers.merge(
            {
                "render": {"wall_s": 1.0, "cpu_s": 0.5, "calls": 2},
                "observe": {"wall_s": 0.25},  # cpu_s and calls default to zero
                "decide": {"calls": 1, "queue_depth": 7},  # extra keys ignored
            }
        )
        merged = timers.as_dict()
        assert merged["render"] == {"wall_s": 1.0, "cpu_s": 0.5, "calls": 2}
        assert merged["observe"] == {"wall_s": 0.25, "cpu_s": 0.0, "calls": 0}
        assert merged["decide"] == {"wall_s": 0.0, "cpu_s": 0.0, "calls": 1}
        assert "queue_depth" not in merged["decide"]


# ----------------------------------------------------------------------
# End-to-end determinism: the headline contract
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def quick_setup():
    scale = ExperimentScale.quick()
    return scale, scale.config(amplitude=20.0, tau=12)


class TestParallelDeterminism:
    @pytest.mark.skipif(
        resolve_start_method() is None, reason="no multiprocessing here"
    )
    def test_workers4_bit_identical_to_serial(self, quick_setup):
        scale, config = quick_setup
        serial = run_link(
            config, scale.video("gray"), camera=scale.camera(), seed=1, workers=1
        )
        parallel = run_link(
            config, scale.video("gray"), camera=scale.camera(), seed=1, workers=4
        )
        assert serial.stats == parallel.stats
        assert len(serial.captures) == len(parallel.captures)
        for a, b in zip(serial.captures, parallel.captures):
            assert a.index == b.index
            assert a.start_time_s == b.start_time_s
            assert np.array_equal(a.pixels, b.pixels)
        for a, b in zip(serial.decoded, parallel.decoded):
            assert a.index == b.index
            assert np.array_equal(a.bits, b.bits)
            assert np.array_equal(a.noise_map, b.noise_map)
            assert a.threshold == b.threshold

    def test_default_workers_none_equals_workers1(self, quick_setup):
        scale, config = quick_setup
        default = run_link(config, scale.video("gray"), camera=scale.camera(), seed=2)
        explicit = run_link(
            config, scale.video("gray"), camera=scale.camera(), seed=2, workers=1
        )
        assert default.stats == explicit.stats
        assert all(
            np.array_equal(a.pixels, b.pixels)
            for a, b in zip(default.captures, explicit.captures)
        )

    def test_runtime_report_attached(self, quick_setup):
        scale, config = quick_setup
        run = run_link(config, scale.video("gray"), camera=scale.camera(), seed=1)
        report = run.runtime
        assert report is not None
        assert report.mode == "serial"
        assert report.frames == len(run.captures)
        assert report.frames_per_s > 0
        assert {"render", "observe", "decide", "score"} <= set(report.stages)
