"""Regression pins: the reproduction's key numbers, with loose bounds.

These tests guard the calibrated behaviour against accidental drift when
modules are edited.  Bounds are deliberately loose (the exact values live
in EXPERIMENTS.md); a failure here means the *character* of a result
changed, not a tenth of a kbps.

Everything runs at the quick scale to stay fast.
"""

from __future__ import annotations

import pytest

from repro.analysis.experiments import ExperimentScale, flicker_timeline
from repro.analysis.userstudy import SimulatedPanel
from repro.core.pipeline import run_link
from repro.hvs.flicker import FlickerPredictor


@pytest.fixture(scope="module")
def quick():
    return ExperimentScale.quick()


@pytest.fixture(scope="module")
def gray_stats(quick):
    config = quick.config(amplitude=20.0, tau=12)
    return run_link(config, quick.video("gray"), camera=quick.camera(), seed=1).stats


@pytest.fixture(scope="module")
def video_stats(quick):
    config = quick.config(amplitude=20.0, tau=12)
    return run_link(config, quick.video("video"), camera=quick.camera(), seed=1).stats


class TestChannelRegression:
    def test_gray_channel_band(self, gray_stats):
        # Paper band: ~10.5 kbps at tau=12 on pure gray.
        assert 8.0 < gray_stats.throughput_kbps < 12.5
        assert gray_stats.available_gob_ratio > 0.85
        assert gray_stats.gob_error_rate < 0.08

    def test_video_clearly_harder_than_gray(self, gray_stats, video_stats):
        assert video_stats.throughput_kbps < gray_stats.throughput_kbps
        assert video_stats.gob_error_rate > gray_stats.gob_error_rate

    def test_rate_scales_inversely_with_tau(self, quick):
        fast = run_link(
            quick.config(amplitude=20.0, tau=10), quick.video("gray"),
            camera=quick.camera(), seed=1,
        ).stats
        slow = run_link(
            quick.config(amplitude=20.0, tau=14), quick.video("gray"),
            camera=quick.camera(), seed=1,
        ).stats
        assert fast.throughput_kbps > slow.throughput_kbps


class TestPerceptionRegression:
    def test_paper_operating_point_imperceptible(self):
        report = FlickerPredictor().report(
            flicker_timeline(20.0, 12, 127.0, n_video_frames=10), duration_s=0.3
        )
        assert report.score < 1.0

    def test_large_amplitude_visible(self):
        report = FlickerPredictor().report(
            flicker_timeline(50.0, 12, 127.0, n_video_frames=10), duration_s=0.3
        )
        assert 1.0 < report.score < 2.7

    def test_panel_statistics_stable(self):
        result = SimulatedPanel().study(
            flicker_timeline(20.0, 12, 127.0, n_video_frames=10), duration_s=0.3
        )
        assert result.mean_score < 1.0
        assert result.std_score < 1.0
