"""Video substrate: sources, synthetic generators, clip persistence."""

from __future__ import annotations

import numpy as np
import pytest

from repro.video.io import load_clip, save_clip
from repro.video.source import ArrayVideoSource, ConstantVideoSource, FunctionVideoSource
from repro.video.synthetic import (
    checker_texture_video,
    gradient_video,
    moving_bars_video,
    noise_video,
    pure_color_video,
    sunrise_video,
)


class TestConstantSource:
    def test_frame_values(self):
        source = ConstantVideoSource(8, 10, 127.0, n_frames=3)
        assert np.all(source.frame(0) == 127.0)
        assert source.frame(0).shape == (8, 10)

    def test_index_bounds(self):
        source = ConstantVideoSource(8, 10, 0.0, n_frames=3)
        with pytest.raises(IndexError):
            source.frame(3)
        with pytest.raises(IndexError):
            source.frame(-1)

    def test_rejects_out_of_range_value(self):
        with pytest.raises(ValueError):
            ConstantVideoSource(8, 10, 300.0)

    def test_duration(self):
        source = ConstantVideoSource(8, 10, 0.0, fps=30.0, n_frames=60)
        assert source.duration_s == pytest.approx(2.0)


class TestArraySource:
    def test_roundtrip(self):
        frames = np.random.default_rng(0).uniform(0, 255, (4, 6, 8)).astype(np.float32)
        source = ArrayVideoSource(frames, fps=30.0)
        assert source.n_frames == 4
        assert np.array_equal(source.frame(2), frames[2])

    def test_rejects_wrong_ndim(self):
        with pytest.raises(ValueError):
            ArrayVideoSource(np.zeros((4, 6)))

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            ArrayVideoSource(np.full((2, 4, 4), 300.0))


class TestFunctionSource:
    def test_render_called_and_cached(self):
        calls = []

        def render(index):
            calls.append(index)
            return np.zeros((4, 4), dtype=np.float32)

        source = FunctionVideoSource(4, 4, render, n_frames=4)
        source.frame(1)
        source.frame(1)
        assert calls == [1]

    def test_shape_mismatch_rejected(self):
        source = FunctionVideoSource(4, 4, lambda i: np.zeros((5, 5), np.float32), n_frames=2)
        with pytest.raises(ValueError):
            source.frame(0)


class TestSyntheticGenerators:
    def test_pure_color(self):
        assert float(pure_color_video(8, 8, 180.0).frame(0).mean()) == 180.0

    def test_gradient_spans_range(self):
        source = gradient_video(8, 32, low=10.0, high=240.0)
        frame = source.frame(0)
        assert float(frame.min()) == pytest.approx(10.0)
        assert float(frame.max()) == pytest.approx(240.0)

    def test_gradient_vertical(self):
        frame = gradient_video(32, 8, horizontal=False).frame(0)
        assert np.all(np.diff(frame[:, 0]) >= 0)

    def test_noise_video_is_deterministic(self):
        a = noise_video(8, 8, seed=3).frame(2)
        b = noise_video(8, 8, seed=3).frame(2)
        assert np.array_equal(a, b)

    def test_noise_video_static_mode(self):
        source = noise_video(8, 8, static=True)
        assert np.array_equal(source.frame(0), source.frame(5))

    def test_noise_video_dynamic_mode(self):
        source = noise_video(8, 8, static=False)
        assert not np.array_equal(source.frame(0), source.frame(5))

    def test_moving_bars_move(self):
        source = moving_bars_video(8, 64, bar_width=8, speed_px_per_frame=4.0)
        assert not np.array_equal(source.frame(0), source.frame(1))

    def test_checker_texture_alternates(self):
        frame = checker_texture_video(8, 8, cell=2, low=10.0, high=200.0).frame(0)
        assert frame[0, 0] != frame[0, 2]

    def test_sunrise_properties(self):
        source = sunrise_video(60, 90, n_frames=10)
        first, last = source.frame(0), source.frame(9)
        assert first.shape == (60, 90)
        # The scene brightens as the sun rises.
        assert float(last.mean()) > float(first.mean())
        # The sun disc saturates by the end.
        assert float(last.max()) == 255.0
        # Determinism.
        assert np.array_equal(source.frame(5), sunrise_video(60, 90, n_frames=10).frame(5))

    def test_sunrise_grain_control(self):
        smooth = sunrise_video(60, 90, n_frames=4, grain_std=0.0).frame(1)
        grainy = sunrise_video(60, 90, n_frames=4, grain_std=8.0).frame(1)
        # Grain raises high-frequency energy.
        hf = lambda img: float(np.abs(np.diff(img, axis=1)).mean())
        assert hf(grainy) > hf(smooth) + 1.0


class TestClipIO:
    def test_roundtrip(self, tmp_path):
        source = sunrise_video(24, 32, n_frames=5)
        path = tmp_path / "clip.npz"
        save_clip(path, source)
        loaded = load_clip(path)
        assert loaded.n_frames == 5
        assert loaded.fps == source.fps
        assert np.allclose(loaded.frame(3), source.frame(3))

    def test_rejects_non_clip_archive(self, tmp_path):
        path = tmp_path / "other.npz"
        np.savez(path, stuff=np.zeros(3))
        with pytest.raises(ValueError):
            load_clip(path)

    def test_rejects_future_version(self, tmp_path):
        path = tmp_path / "future.npz"
        np.savez(
            path,
            frames=np.zeros((1, 2, 2), np.float32),
            fps=np.float64(30.0),
            version=np.int64(99),
        )
        with pytest.raises(ValueError):
            load_clip(path)
