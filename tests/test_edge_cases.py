"""Edge cases and less-travelled paths across modules."""

from __future__ import annotations

import numpy as np
import pytest

from repro.camera.capture import CameraModel
from repro.channel.impairments import AmbientLight, ChannelImpairments
from repro.channel.link import ScreenCameraLink, _PedestalTimeline
from repro.core.config import InFrameConfig
from repro.core.framing import PseudoRandomSchedule, ZeroSchedule
from repro.core.multiplexer import MultiplexedStream
from repro.core.pipeline import InFrameSender
from repro.display.gamma import GammaCurve
from repro.display.panel import DisplayPanel
from repro.display.scheduler import DisplayTimeline
from repro.video.source import ArrayVideoSource
from repro.video.synthetic import gradient_video, pure_color_video


class TestSchedulerEdges:
    def _timeline(self, n=80, response=0.002):
        rng = np.random.default_rng(0)
        frames = rng.uniform(40, 200, (n, 6, 8)).astype(np.float32)
        panel = DisplayPanel(width=8, height=6, refresh_hz=120.0, response_time_s=response)
        return DisplayTimeline(panel, ArrayVideoSource(frames, fps=120.0))

    def test_far_backward_jump_rewarm(self):
        timeline = self._timeline()
        late = float(timeline.luminance_at(0.6).mean())
        early = float(timeline.luminance_at(0.05).mean())
        late_again = float(timeline.luminance_at(0.6).mean())
        assert late == pytest.approx(late_again, rel=1e-4)
        assert early != late or True  # early value must simply not crash

    def test_integrate_beyond_stream_holds_last_frame(self):
        timeline = self._timeline(n=8, response=0.0)
        beyond = timeline.integrate(timeline.duration_s + 0.01, timeline.duration_s + 0.02)
        last = timeline.luminance_at(timeline.duration_s - 1e-5)
        assert np.allclose(beyond, last, rtol=0.02)

    def test_latch_time(self):
        timeline = self._timeline(n=8)
        assert timeline.latch_time(3) == pytest.approx(3 / 120)

    def test_avg_cache_eviction_consistent(self):
        timeline = self._timeline(n=80)
        first = timeline.frame_average_luminance(2).copy()
        for index in range(3, 60):  # churn the cache far past its size
            timeline.frame_average_luminance(index)
        again = timeline.frame_average_luminance(2)
        assert np.allclose(first, again)


class TestGammaEdges:
    def test_curvature_positive_for_convex_curve(self):
        curve = GammaCurve(gamma=2.2)
        assert float(curve.local_curvature(127.0)) > 0.0

    def test_curvature_matches_numeric_second_derivative(self):
        curve = GammaCurve()
        v, eps = 127.0, 0.5
        numeric = (
            float(curve.to_luminance(v + eps))
            - 2 * float(curve.to_luminance(v))
            + float(curve.to_luminance(v - eps))
        ) / eps**2
        assert float(curve.local_curvature(v)) == pytest.approx(numeric, rel=1e-2)


class TestPedestalTimeline:
    def test_all_accessors_shifted(self, small_config, small_video):
        sender = InFrameSender(small_config, small_video)
        inner = sender.timeline()
        pedestal = 7.5
        shifted = _PedestalTimeline(inner, pedestal)
        assert shifted.n_frames == inner.n_frames
        assert shifted.duration_s == inner.duration_s
        t = 0.05
        assert np.allclose(
            shifted.luminance_at(t), inner.luminance_at(t) + np.float32(pedestal)
        )
        assert np.allclose(
            shifted.integrate(0.01, 0.03), inner.integrate(0.01, 0.03) + np.float32(pedestal)
        )
        assert np.allclose(
            shifted.frame_average_luminance(2),
            inner.frame_average_luminance(2) + np.float32(pedestal),
        )


class TestConfigEdges:
    def test_display_frames_alias(self):
        config = InFrameConfig(tau=10)
        assert config.display_frames_per_data_frame() == 10

    def test_gob_size_three_xor_bit_budget(self):
        config = InFrameConfig(
            element_pixels=2, pixels_per_block=2, gob_size=3,
            block_rows=6, block_cols=9, tau=12,
        )
        assert config.bits_per_gob == 8
        assert config.bits_per_frame == 48  # 6 GOBs x 8 bits

    def test_scaled_validation_still_runs(self):
        with pytest.raises(ValueError):
            InFrameConfig(tau=10).scaled(-1.0)


class TestMultiplexerEdges:
    def test_gradient_content_never_leaves_range(self, small_config):
        video = gradient_video(80, 112, low=0.0, high=255.0, n_frames=3)
        stream = MultiplexedStream(small_config, video, PseudoRandomSchedule(small_config))
        for t in range(8):
            frame = stream.frame(t)
            assert frame.min() >= 0.0 and frame.max() <= 255.0

    def test_gamma_compensated_stream_stays_complementary_about_base(self, small_config):
        config = small_config.with_updates(gamma_compensation=True, amplitude=30.0)
        video = pure_color_video(80, 112, 127.0, n_frames=3)
        stream = MultiplexedStream(config, video, PseudoRandomSchedule(config))
        pair_mean = (stream.frame(0) + stream.frame(1)) / 2.0
        # Pair mean equals V + c <= V (c is the negative convexity shift).
        assert float(pair_mean.max()) <= 127.0 + 1e-4
        assert float(pair_mean.min()) >= 127.0 - 6.0  # c ~ -(gamma-1) M^2 / 2v


class TestLinkEdges:
    def test_budget_extreme_operating_points(self):
        link = ScreenCameraLink(
            DisplayPanel(width=16, height=12), CameraModel(width=8, height=6)
        ).auto_exposed()
        dim = link.budget(operating_pixel_value=5.0)
        bright = link.budget(operating_pixel_value=250.0)
        assert np.isfinite(dim.snr_at_delta_20)
        assert np.isfinite(bright.snr_at_delta_20)

    def test_zero_ambient_contrast_loss(self):
        link = ScreenCameraLink(
            DisplayPanel(width=16, height=12),
            CameraModel(width=8, height=6),
            ChannelImpairments(ambient=AmbientLight(0.0)),
        )
        assert link.budget().ambient_contrast_loss == 0.0


class TestZeroScheduleStream:
    def test_zero_schedule_timeline_is_static_per_video_frame(self, small_config):
        video = pure_color_video(80, 112, 127.0, n_frames=3)
        stream = MultiplexedStream(small_config, video, ZeroSchedule(small_config))
        assert np.array_equal(stream.frame(0), stream.frame(1))
        assert np.array_equal(stream.frame(0), stream.frame(7))
