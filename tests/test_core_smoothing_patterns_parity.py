"""Smoothing waveforms, modulation patterns, and GOB parity."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import InFrameConfig
from repro.core.geometry import FrameGeometry
from repro.core.parity import (
    apply_parity_grid,
    check_parity_grid,
    data_bits_to_grid,
    grid_to_data_bits,
)
from repro.core.patterns import (
    chessboard_pixel_mask,
    pattern_field,
    random_pixel_mask,
    stripes_pixel_mask,
)
from repro.core.smoothing import (
    SmoothingWaveform,
    envelope_pair,
    omega_01,
    omega_10,
    transition_profile,
)


class TestOmega:
    @pytest.mark.parametrize("kind", ["srrc", "linear", "stair"])
    def test_endpoints(self, kind):
        assert float(omega_10(0.0, kind)) == pytest.approx(1.0)
        assert float(omega_10(1.0, kind)) == pytest.approx(0.0)
        assert float(omega_01(0.0, kind)) == pytest.approx(0.0)
        assert float(omega_01(1.0, kind)) == pytest.approx(1.0)

    def test_srrc_constant_power(self):
        x = np.linspace(0, 1, 33)
        total = np.asarray(omega_10(x, "srrc")) ** 2 + np.asarray(omega_01(x, "srrc")) ** 2
        assert np.allclose(total, 1.0)

    def test_linear_sums_to_one(self):
        x = np.linspace(0, 1, 33)
        total = np.asarray(omega_10(x, "linear")) + np.asarray(omega_01(x, "linear"))
        assert np.allclose(total, 1.0)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            omega_10(0.5, "cubic")
        with pytest.raises(ValueError):
            omega_01(0.5, "cubic")

    @given(st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=50)
    def test_monotonicity(self, x):
        assert float(omega_10(x, "srrc")) >= float(omega_10(min(x + 0.01, 1.0), "srrc"))
        assert float(omega_01(x, "srrc")) <= float(omega_01(min(x + 0.01, 1.0), "srrc"))

    def test_envelope_pair_matches_functions(self):
        down, up = envelope_pair(0.3, "linear")
        assert down == pytest.approx(0.7)
        assert up == pytest.approx(0.3)


class TestSmoothingWaveform:
    def test_rejects_odd_tau(self):
        with pytest.raises(ValueError):
            SmoothingWaveform(7)

    def test_rejects_bad_kind(self):
        with pytest.raises(ValueError):
            SmoothingWaveform(12, "bezier")

    def test_first_half_fully_stable(self):
        waveform = SmoothingWaveform(12)
        for step in range(6):
            assert waveform.factors(step) == (1.0, 0.0)

    def test_last_step_fully_switched(self):
        waveform = SmoothingWaveform(12)
        current, nxt = waveform.factors(11)
        assert current == pytest.approx(0.0)
        assert nxt == pytest.approx(1.0)

    def test_pairs_share_identical_factors(self):
        # The envelope must never change within a complementary pair, or
        # the pair stops fusing to the plain video.
        waveform = SmoothingWaveform(12)
        for pair in range(6):
            assert waveform.factors(2 * pair) == waveform.factors(2 * pair + 1)

    def test_step_bounds(self):
        waveform = SmoothingWaveform(10)
        with pytest.raises(ValueError):
            waveform.factors(10)
        with pytest.raises(ValueError):
            waveform.factors(-1)

    def test_tau_2_never_transitions(self):
        waveform = SmoothingWaveform(2)
        assert waveform.factors(0) == (1.0, 0.0)
        assert waveform.factors(1) == (1.0, 0.0)

    def test_stability_is_current_factor(self):
        waveform = SmoothingWaveform(12)
        assert waveform.stability(8) == waveform.factors(8)[0]

    def test_envelope_samples_constant_for_steady_bits(self):
        waveform = SmoothingWaveform(8)
        samples = waveform.envelope_samples(np.array([1, 1, 1]))
        assert np.allclose(samples, 1.0)

    def test_envelope_samples_transition_reaches_target(self):
        waveform = SmoothingWaveform(8)
        samples = waveform.envelope_samples(np.array([1, 0]))
        assert samples[0] == 1.0
        assert samples[-1] == pytest.approx(0.0, abs=1e-9) or samples[7] < 0.5
        # Second cycle is fully 0.
        assert np.allclose(samples[8:], 0.0)

    @pytest.mark.parametrize("kind", ["srrc", "linear", "stair"])
    def test_transition_profile_monotone_decreasing(self, kind):
        profile = transition_profile(kind, 32)
        assert profile[0] == pytest.approx(1.0)
        assert profile[-1] == pytest.approx(0.0)
        assert np.all(np.diff(profile) <= 1e-12)

    def test_transition_profile_needs_two_samples(self):
        with pytest.raises(ValueError):
            transition_profile("srrc", 1)

    def test_srrc_smoother_than_linear_at_endpoints(self):
        # SRRC's derivative vanishes at the transition start; linear's not.
        srrc = transition_profile("srrc", 101)
        linear = transition_profile("linear", 101)
        assert abs(srrc[1] - srrc[0]) < abs(linear[1] - linear[0])


class TestPatterns:
    def test_chessboard_density_half(self):
        mask = chessboard_pixel_mask(10, 10)
        assert mask.sum() == 50

    def test_chessboard_no_adjacent_equal(self):
        mask = chessboard_pixel_mask(8, 8)
        assert np.all(mask[:, :-1] != mask[:, 1:])
        assert np.all(mask[:-1, :] != mask[1:, :])

    def test_stripes_alternate_columns(self):
        mask = stripes_pixel_mask(4, 8)
        assert np.all(mask[:, 0] == 0) and np.all(mask[:, 1] == 1)

    def test_random_mask_deterministic(self):
        assert np.array_equal(random_pixel_mask(8, 8, seed=5), random_pixel_mask(8, 8, seed=5))

    def test_pattern_field_zero_outside_data_area(self, small_config):
        geometry = FrameGeometry(small_config, 80, 112)
        field = pattern_field(small_config, geometry)
        rows, cols = geometry.data_area_slices()
        outside = field.copy()
        outside[rows, cols] = 0.0
        assert outside.sum() == 0.0

    def test_pattern_field_element_pixel_granularity(self, small_config):
        geometry = FrameGeometry(small_config, 80, 112)
        field = pattern_field(small_config, geometry)
        rows, cols = geometry.data_area_slices()
        area = field[rows, cols]
        p = small_config.element_pixels
        tiled = area.reshape(area.shape[0] // p, p, area.shape[1] // p, p)
        # Every p x p cell is uniform.
        assert np.all(tiled.max(axis=(1, 3)) == tiled.min(axis=(1, 3)))

    def test_pattern_continuous_across_blocks(self, small_config):
        geometry = FrameGeometry(small_config, 80, 112)
        field = pattern_field(small_config, geometry)
        rows, cols = geometry.data_area_slices()
        area = field[rows, cols]
        p = small_config.element_pixels
        cells = area[::p, ::p]
        expected = chessboard_pixel_mask(*cells.shape)
        assert np.array_equal(cells, expected)


class TestParity:
    def test_roundtrip(self, small_config):
        rng = np.random.default_rng(0)
        bits = rng.random(small_config.bits_per_frame) < 0.5
        grid = data_bits_to_grid(bits, small_config)
        assert np.array_equal(grid_to_data_bits(grid, small_config), bits)

    def test_generated_grid_passes_parity(self, small_config):
        rng = np.random.default_rng(1)
        bits = rng.random(small_config.bits_per_frame) < 0.5
        grid = data_bits_to_grid(bits, small_config)
        assert check_parity_grid(grid, small_config).all()

    def test_single_block_flip_detected(self, small_config):
        rng = np.random.default_rng(2)
        bits = rng.random(small_config.bits_per_frame) < 0.5
        grid = data_bits_to_grid(bits, small_config)
        grid[0, 0] = ~grid[0, 0]
        ok = check_parity_grid(grid, small_config)
        assert not ok[0, 0]
        assert ok.sum() == ok.size - 1

    def test_double_flip_in_gob_not_detected(self, small_config):
        # XOR parity is single-error-detecting only; document the limit.
        rng = np.random.default_rng(3)
        bits = rng.random(small_config.bits_per_frame) < 0.5
        grid = data_bits_to_grid(bits, small_config)
        grid[0, 0] = ~grid[0, 0]
        grid[0, 1] = ~grid[0, 1]
        assert check_parity_grid(grid, small_config)[0, 0]

    def test_apply_parity_fixes_parity_blocks(self, small_config):
        rng = np.random.default_rng(4)
        grid = rng.random((small_config.block_rows, small_config.block_cols)) < 0.5
        fixed = apply_parity_grid(grid, small_config)
        assert check_parity_grid(fixed, small_config).all()
        # Data blocks unchanged.
        data_before = grid_to_data_bits(grid, small_config)
        data_after = grid_to_data_bits(fixed, small_config)
        assert np.array_equal(data_before, data_after)

    def test_wrong_bit_count_rejected(self, small_config):
        with pytest.raises(ValueError):
            data_bits_to_grid(np.zeros(5, dtype=bool), small_config)

    def test_wrong_grid_shape_rejected(self, small_config):
        with pytest.raises(ValueError):
            check_parity_grid(np.zeros((3, 3), dtype=bool), small_config)

    @given(st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=30)
    def test_roundtrip_property(self, seed):
        config = InFrameConfig(
            element_pixels=2, pixels_per_block=2, block_rows=4, block_cols=6, tau=12
        )
        bits = np.random.default_rng(seed).random(config.bits_per_frame) < 0.5
        grid = data_bits_to_grid(bits, config)
        assert np.array_equal(grid_to_data_bits(grid, config), bits)
        assert check_parity_grid(grid, config).all()
