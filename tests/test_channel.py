"""Screen->camera channel composition: impairments, link, budget."""

from __future__ import annotations

import numpy as np
import pytest

from repro.camera.capture import CameraModel
from repro.channel.impairments import AmbientLight, ChannelImpairments
from repro.channel.link import ScreenCameraLink
from repro.core.framing import PseudoRandomSchedule
from repro.core.multiplexer import MultiplexedStream
from repro.display.panel import DisplayPanel
from repro.video.synthetic import pure_color_video


class TestAmbientLight:
    def test_reflected_luminance_formula(self):
        ambient = AmbientLight(illuminance_lux=400.0, panel_reflectance=0.04)
        assert ambient.reflected_luminance == pytest.approx(400 * 0.04 / np.pi)

    def test_dark_room(self):
        assert AmbientLight(illuminance_lux=0.0).reflected_luminance == 0.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            AmbientLight(illuminance_lux=-1.0)


class TestImpairments:
    def test_luminance_pedestal(self):
        impairments = ChannelImpairments(ambient=AmbientLight(400.0, 0.04))
        lum = np.full((4, 4), 50.0, np.float32)
        out = impairments.apply_luminance(lum)
        assert float(out.mean()) > 50.0

    def test_no_ambient_is_identity(self):
        impairments = ChannelImpairments(ambient=AmbientLight(0.0))
        lum = np.full((4, 4), 50.0, np.float32)
        assert impairments.apply_luminance(lum) is lum

    def test_extra_noise_applied(self):
        impairments = ChannelImpairments(extra_noise_std=5.0)
        pixels = np.full((32, 32), 100.0, np.float32)
        out = impairments.apply_capture(pixels, np.random.default_rng(0))
        assert out.std() > 2.0
        assert out.min() >= 0 and out.max() <= 255

    def test_extra_noise_skipped_without_rng(self):
        impairments = ChannelImpairments(extra_noise_std=5.0)
        pixels = np.full((4, 4), 100.0, np.float32)
        assert impairments.apply_capture(pixels, None) is pixels


@pytest.fixture
def link(small_config, small_video):
    panel = DisplayPanel(width=112, height=80, refresh_hz=120.0)
    camera = CameraModel(width=75, height=54)
    return ScreenCameraLink(panel, camera).auto_exposed()


class TestScreenCameraLink:
    def test_capture_count_default(self, link, small_config, small_video):
        stream = MultiplexedStream(small_config, small_video, PseudoRandomSchedule(small_config))
        timeline = link.timeline(stream)
        captures = link.capture(timeline, rng=np.random.default_rng(0))
        assert len(captures) == link.camera.frames_covering(timeline)

    def test_short_stream_rejected(self, link, small_config):
        video = pure_color_video(80, 112, 127.0, n_frames=1)
        stream = MultiplexedStream(small_config, video, PseudoRandomSchedule(small_config))
        with pytest.raises(ValueError):
            link.capture(link.timeline(stream))

    def test_ambient_raises_black_level(self, small_config, small_video):
        panel = DisplayPanel(width=112, height=80)
        camera = CameraModel(width=75, height=54)
        dark = ScreenCameraLink(
            panel, camera, ChannelImpairments(ambient=AmbientLight(0.0))
        ).auto_exposed()
        office = ScreenCameraLink(
            panel, camera, ChannelImpairments(ambient=AmbientLight(3000.0, 0.05))
        ).auto_exposed()
        video = pure_color_video(80, 112, 0.0, n_frames=4)
        stream = MultiplexedStream(small_config, video, PseudoRandomSchedule(small_config))
        cap_dark = dark.capture(dark.timeline(stream), n_frames=1)[0]
        cap_office = office.capture(office.timeline(stream), n_frames=1)[0]
        assert float(cap_office.pixels.mean()) > float(cap_dark.pixels.mean()) + 2.0

    def test_budget_fields(self, link):
        budget = link.budget()
        assert budget.counts_per_delta > 0
        assert budget.noise_floor_counts > 0
        assert budget.snr_at_delta_20 > 1.0
        assert 0.0 <= budget.ambient_contrast_loss < 1.0

    def test_budget_snr_improves_with_brighter_operating_point(self, link):
        # Gamma slope grows with level, so one delta unit buys more counts.
        mid = link.budget(operating_pixel_value=127.0)
        bright = link.budget(operating_pixel_value=200.0)
        assert bright.counts_per_delta > mid.counts_per_delta

    def test_budget_ambient_loss_grows_with_lux(self, small_config):
        panel = DisplayPanel(width=112, height=80)
        camera = CameraModel(width=75, height=54)
        quiet = ScreenCameraLink(panel, camera, ChannelImpairments(AmbientLight(10.0)))
        loud = ScreenCameraLink(panel, camera, ChannelImpairments(AmbientLight(5000.0)))
        assert loud.budget().ambient_contrast_loss > quiet.budget().ambient_contrast_loss
