"""Unified telemetry: metrics registry, span tracer, run-level records.

The load-bearing property throughout is *exactness*: merging worker-local
telemetry into the parent in any order must reproduce the serial run's
work-scoped metrics byte for byte (see ``docs/observability.md``).
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.camera.capture import CameraModel
from repro.core.pipeline import run_link, run_transport_link
from repro.faults import FaultPlan
from repro.obs import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    RunTelemetry,
    SpanTracer,
    Telemetry,
)
from repro.obs.metrics import EXEC, WORK
from repro.tools.report import validate_chrome_trace


class TestCounter:
    def test_increments_and_merges_exactly(self):
        a, b = Counter("frames"), Counter("frames")
        a.inc()
        a.inc(4)
        b.inc(7)
        a.merge(b.as_dict())
        assert a.value == 12

    def test_rejects_negative_increment(self):
        with pytest.raises(ValueError, match=">= 0"):
            Counter("frames").inc(-1)

    def test_rejects_unknown_scope(self):
        with pytest.raises(ValueError, match="scope"):
            Counter("frames", scope="galactic")


class TestGauge:
    def test_keeps_running_maximum(self):
        gauge = Gauge("occupancy")
        gauge.set(3)
        gauge.set(9)
        gauge.set(5)
        assert gauge.value == 9.0

    def test_merge_is_max_combine(self):
        a, b = Gauge("occupancy"), Gauge("occupancy")
        a.set(4)
        b.set(11)
        a.merge(b.as_dict())
        assert a.value == 11.0

    def test_merge_ignores_unset_gauge(self):
        a = Gauge("occupancy")
        a.set(4)
        a.merge(Gauge("occupancy").as_dict())
        assert a.value == 4.0


class TestHistogram:
    def test_binning_underflow_and_overflow(self):
        hist = Histogram("noise", edges=(0.0, 1.0, 2.0))
        hist.observe_array([-5.0, 0.5, 1.5, 99.0, 2.0])
        # counts: [< 0, [0, 1), [1, 2), >= 2] -- 2.0 lands in overflow.
        assert hist.counts == [1, 1, 1, 2]
        assert hist.count == 5
        assert hist.min == -5.0
        assert hist.max == 99.0

    def test_edge_value_goes_right(self):
        hist = Histogram("noise", edges=(0.0, 1.0))
        hist.observe(1.0)
        assert hist.counts == [0, 0, 1]

    def test_empty_batch_is_a_no_op(self):
        hist = Histogram("noise", edges=(0.0,))
        hist.observe_array(np.empty(0))
        assert hist.count == 0
        assert hist.min is None

    def test_merge_adds_integer_counts(self):
        a = Histogram("noise", edges=(0.0, 1.0))
        b = Histogram("noise", edges=(0.0, 1.0))
        a.observe_array([0.5, 2.0])
        b.observe_array([-1.0, 0.25, 0.75])
        a.merge(b.as_dict())
        assert a.counts == [1, 3, 1]
        assert a.count == 5
        assert (a.min, a.max) == (-1.0, 2.0)

    def test_merge_rejects_edge_mismatch(self):
        a = Histogram("noise", edges=(0.0, 1.0))
        b = Histogram("noise", edges=(0.0, 2.0))
        with pytest.raises(ValueError, match="edge mismatch"):
            a.merge(b.as_dict())

    def test_rejects_non_increasing_edges(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            Histogram("noise", edges=(0.0, 0.0, 1.0))

    def test_rejects_empty_edges(self):
        with pytest.raises(ValueError, match="at least one"):
            Histogram("noise", edges=())


class TestMetricsRegistry:
    def test_same_name_returns_same_instance(self):
        registry = MetricsRegistry()
        assert registry.counter("frames") is registry.counter("frames")

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("frames")
        with pytest.raises(ValueError, match="is a counter"):
            registry.gauge("frames")

    def test_scope_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("frames", scope=WORK)
        with pytest.raises(ValueError, match="work-scoped"):
            registry.counter("frames", scope=EXEC)

    def test_histogram_edge_reregistration_raises(self):
        registry = MetricsRegistry()
        registry.histogram("noise", edges=(0.0, 1.0))
        with pytest.raises(ValueError, match="different edges"):
            registry.histogram("noise", edges=(0.0, 2.0))

    def test_merge_order_never_matters(self):
        def worker(seed):
            registry = MetricsRegistry()
            rng = np.random.default_rng(seed)
            registry.counter("frames").inc(int(seed) + 1)
            registry.histogram("noise", edges=(-1.0, 0.0, 1.0)).observe_array(
                rng.normal(size=50)
            )
            registry.gauge("peak").set(float(seed))
            return registry.as_dict()

        exports = [worker(seed) for seed in range(5)]
        forward, backward = MetricsRegistry(), MetricsRegistry()
        for payload in exports:
            forward.merge(payload)
        for payload in reversed(exports):
            backward.merge(payload)
        assert forward.work_json() == backward.work_json()
        assert forward.as_dict() == backward.as_dict()

    def test_work_json_excludes_exec_scope(self):
        registry = MetricsRegistry()
        registry.counter("decode.frames", scope=WORK).inc(3)
        registry.counter("exec.chunks", scope=EXEC).inc(8)
        registry.gauge("exec.shm_peak_occupancy").set(4)
        work = json.loads(registry.work_json())
        assert set(work) == {"decode.frames"}

    def test_merge_rejects_unknown_kind(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError, match="unknown metric kind"):
            registry.merge({"x": {"kind": "summary", "scope": "work"}})


class TestSpanTracer:
    def test_nesting_records_parent_ids(self):
        tracer = SpanTracer(track="main")
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
            tracer.event("tick")
        by_name = {record.name: record for record in tracer.records}
        assert by_name["outer"].parent_id is None
        assert by_name["inner"].parent_id == by_name["outer"].span_id
        assert by_name["tick"].parent_id == by_name["outer"].span_id
        assert by_name["tick"].dur_s is None
        assert by_name["inner"].dur_s >= 0.0

    def test_merge_keeps_track_span_id_unique(self):
        parent = SpanTracer(track="main")
        with parent.span("decide"):
            pass
        for chunk in range(2):
            worker = SpanTracer(track=f"chunk-{chunk:03d}")
            with worker.span("render", capture=chunk):
                pass
            parent.merge(worker.export())
        keys = {(r.track, r.span_id) for r in parent.records}
        assert len(keys) == len(parent.records) == 3

    def test_span_attrs_survive_export(self):
        tracer = SpanTracer()
        with tracer.span("render", capture=7, mode="serial"):
            pass
        merged = SpanTracer()
        merged.merge(tracer.export())
        assert merged.records[0].attrs == {"capture": 7, "mode": "serial"}


class TestRunTelemetry:
    def _sample(self):
        telemetry = Telemetry(track="main")
        telemetry.metrics.counter("decode.frames").inc(3)
        telemetry.metrics.histogram("decode.block_noise", edges=(0.0, 1.0)).observe(0.5)
        telemetry.metrics.gauge("exec.shm_slots").set(6)
        with telemetry.tracer.span("decide"):
            telemetry.tracer.event("heal.resync", capture=4)
        return telemetry.finish(meta={"run": "link", "seed": 1})

    def test_json_round_trip(self):
        run = self._sample()
        clone = RunTelemetry.from_dict(json.loads(json.dumps(run.as_dict())))
        assert clone.metrics == run.metrics
        assert clone.spans == run.spans
        assert clone.meta == run.meta
        assert clone.metrics_json() == run.metrics_json()

    def test_from_dict_rejects_other_formats(self):
        with pytest.raises(ValueError, match="unsupported telemetry format"):
            RunTelemetry.from_dict({"format": "repro.obs/99"})

    def test_merge_combines_and_counts_runs(self):
        run = self._sample()
        merged = RunTelemetry.merge([run, None, run])
        assert merged.meta["merged_runs"] == 2
        assert merged.metrics["decode.frames"]["value"] == 6
        assert len(merged.spans) == 4
        assert RunTelemetry.merge([None, None]) is None

    def test_chrome_trace_is_schema_valid(self):
        trace = self._sample().chrome_trace()
        assert validate_chrome_trace(trace) == []
        phases = {event["ph"] for event in trace["traceEvents"]}
        assert phases == {"M", "X", "i"}

    def test_summary_mentions_every_metric(self):
        text = self._sample().summary()
        assert "decode.frames" in text
        assert "decode.block_noise" in text
        assert "exec.shm_slots" in text
        assert "heal.resync" in text
        assert "run=link" in text


class TestHistogramSummary:
    """The ascii-bar block degrades gracefully at the edges."""

    def _summary(self, observations, edges=(0.0, 1.0, 2.0)):
        telemetry = Telemetry(track="main")
        histogram = telemetry.metrics.histogram("decode.noise", edges=edges)
        for value in observations:
            histogram.observe(value)
        return telemetry.finish(meta={}).summary()

    def test_empty_histogram_says_no_samples(self):
        text = self._summary([])
        assert "decode.noise: n=0" in text
        assert "(no samples)" in text
        assert "#" not in text

    def test_single_bucket_gets_a_full_bar(self):
        text = self._summary([0.5])
        assert "n=1 min=0.5 max=0.5" in text
        assert "(no samples)" not in text
        bars = [line for line in text.splitlines() if "#" in line]
        assert len(bars) == 1
        assert bars[0].rstrip().endswith("#" * 24)

    def test_saturated_bucket_keeps_small_buckets_visible(self):
        text = self._summary([0.5] * 1000 + [1.5])
        bars = [line for line in text.splitlines() if "#" in line]
        assert len(bars) == 2
        widths = sorted(line.count("#") for line in bars)
        # The peak bucket saturates the 24-char bar; the 1-count bucket
        # still renders a visible single-hash bar instead of vanishing.
        assert widths == [1, 24]


class TestLinkTelemetry:
    """End-to-end: the pipeline's telemetry honours the determinism contract."""

    def _run(self, config, video, workers, faulted=False):
        camera = CameraModel(width=75, height=54)
        faults = (
            FaultPlan.parse("drop:p=0.2;flip:at=0.5;blackout:at=0.7,dur=0.1", seed=21)
            if faulted
            else None
        )
        return run_link(
            config,
            video,
            camera=camera,
            seed=4,
            workers=workers,
            faults=faults,
            heal=True if faulted else None,
        )

    def test_clean_run_serial_matches_workers(self, small_config, small_video):
        serial = self._run(small_config, small_video, None)
        parallel = self._run(small_config, small_video, 4)
        assert serial.telemetry.metrics_json() == parallel.telemetry.metrics_json()
        assert serial.telemetry.span_counts("work") == parallel.telemetry.span_counts(
            "work"
        )

    def test_faulted_run_serial_matches_workers(self, small_config, small_video):
        serial = self._run(small_config, small_video, None, faulted=True)
        parallel = self._run(small_config, small_video, 4, faulted=True)
        assert serial.telemetry.metrics_json() == parallel.telemetry.metrics_json()
        assert serial.telemetry.span_counts("work") == parallel.telemetry.span_counts(
            "work"
        )

    def test_work_spans_cover_every_stage(self, small_config, small_video):
        run = self._run(small_config, small_video, None)
        counts = run.telemetry.span_counts("work")
        assert counts["render"] == len(run.captures)
        assert counts["observe"] == len(run.captures)
        assert counts["decide"] == 1
        assert counts["score"] == 1

    def test_decode_metrics_match_the_run(self, small_config, small_video):
        run = self._run(small_config, small_video, None)
        metrics = run.telemetry.metrics
        # decode.frames counts every decoded data frame, including the
        # warmup/incomplete ones that run.decoded filters out for scoring.
        assert metrics["decode.frames"]["value"] >= len(run.decoded)
        assert metrics["decode.observations"]["value"] == len(run.captures)
        noise = metrics["decode.block_noise"]
        blocks_per_frame = small_config.block_rows * small_config.block_cols
        assert noise["count"] == len(run.captures) * blocks_per_frame

    def test_faulted_run_records_healing(self, small_config, small_video):
        run = self._run(small_config, small_video, None, faulted=True)
        healing = run.degradation.healing
        metrics = run.telemetry.metrics
        assert metrics["heal.windows"]["value"] == healing.windows
        assert metrics["heal.resyncs"]["value"] == healing.n_resyncs
        assert metrics["faults.dropped_captures"]["value"] == (
            run.degradation.injected.dropped_captures
        )
        resync_events = [s for s in run.telemetry.spans if s.name == "heal.resync"]
        assert len(resync_events) == healing.n_resyncs

    def test_collect_telemetry_off_leaves_run_bare(self, small_config, small_video):
        camera = CameraModel(width=75, height=54)
        run = run_link(
            small_config, small_video, camera=camera, seed=4, collect_telemetry=False
        )
        assert run.telemetry is None

    def test_meta_records_execution_shape(self, small_config, small_video):
        run = self._run(small_config, small_video, 4)
        meta = run.telemetry.meta
        assert meta["run"] == "link"
        assert meta["workers"] == 4
        assert meta["frames"] == len(run.captures)


class TestTransportTelemetry:
    def test_fountain_run_collects_transport_metrics(self):
        import dataclasses

        from repro.analysis.experiments import ExperimentScale

        scale = dataclasses.replace(ExperimentScale.quick(), n_video_frames=24)
        config = scale.config(amplitude=30.0, tau=12)
        payload = bytes(range(48))
        run = run_transport_link(
            config,
            scale.video("gray"),
            payload,
            mode="fountain",
            camera=scale.camera(),
            seed=3,
            max_rounds=2,
        )
        telemetry = run.telemetry
        assert telemetry is not None
        metrics = telemetry.metrics
        assert metrics["transport.rounds"]["value"] >= 1
        assert metrics["transport.packets_sent"]["value"] >= 1
        assert metrics["fountain.degree"]["count"] >= 1
        # Link-level decode telemetry from each round folded in.
        assert metrics["decode.frames"]["value"] >= 1
        rounds = telemetry.span_counts()["transport.round"]
        assert rounds == metrics["transport.rounds"]["value"]
        assert telemetry.meta["run"] == "transport"
        # And the whole thing still round-trips through the file format.
        clone = RunTelemetry.from_dict(telemetry.as_dict())
        assert clone.metrics_json() == telemetry.metrics_json()
