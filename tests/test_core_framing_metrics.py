"""Framing layer (schedules, payload pipeline) and link metrics."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import InFrameConfig
from repro.core.decoder import DecodedDataFrame
from repro.core.framing import (
    FrameFormatError,
    FramingPlan,
    PayloadAssembler,
    PayloadSchedule,
    PseudoRandomSchedule,
    ZeroSchedule,
)
from repro.core.metrics import compare_bits, gob_correct_mask, summarize_link
from repro.core.parity import check_parity_grid


def _decoded_from_grid(config, grid, index=0, available=None, parity_ok=None):
    """Build a DecodedDataFrame as if the channel were perfect."""
    gob_shape = (config.gob_rows, config.gob_cols)
    available = np.ones(gob_shape, bool) if available is None else available
    parity_ok = check_parity_grid(grid, config) if parity_ok is None else parity_ok
    return DecodedDataFrame(
        index=index,
        bits=np.asarray(grid, bool),
        confident=np.ones_like(np.asarray(grid, bool)),
        gob_available=available,
        gob_parity_ok=parity_ok,
        noise_map=np.zeros_like(np.asarray(grid, float)),
        threshold=0.0,
        n_captures=3,
    )


class TestSchedules:
    def test_zero_schedule(self, small_config):
        schedule = ZeroSchedule(small_config)
        assert not schedule.bits(0).any()
        assert not schedule.bits(99).any()

    def test_pseudo_random_deterministic(self, small_config):
        a = PseudoRandomSchedule(small_config, seed=5)
        b = PseudoRandomSchedule(small_config, seed=5)
        assert np.array_equal(a.bits(3), b.bits(3))

    def test_pseudo_random_differs_across_frames(self, small_config):
        schedule = PseudoRandomSchedule(small_config)
        assert not np.array_equal(schedule.bits(0), schedule.bits(1))

    def test_pseudo_random_has_valid_parity(self, small_config):
        schedule = PseudoRandomSchedule(small_config)
        assert check_parity_grid(schedule.bits(7), small_config).all()

    def test_pseudo_random_data_bits_consistent(self, small_config):
        schedule = PseudoRandomSchedule(small_config, seed=9)
        from repro.core.parity import grid_to_data_bits

        assert np.array_equal(
            grid_to_data_bits(schedule.bits(4), small_config), schedule.data_bits(4)
        )

    def test_negative_index_rejected(self, small_config):
        with pytest.raises(IndexError):
            PseudoRandomSchedule(small_config).bits(-1)


class TestPayloadPipeline:
    def test_roundtrip_clean(self, small_config):
        payload = b"The quick brown fox jumps over the lazy dog."
        schedule = PayloadSchedule(small_config, payload, rs_n=30, rs_k=20)
        assembler = PayloadAssembler(small_config, schedule.plan)
        for k in range(schedule.n_payload_frames):
            assembler.add_frame(_decoded_from_grid(small_config, schedule.bits(k), index=k))
        assert assembler.payload() == payload

    def test_roundtrip_with_missing_gobs(self, small_config):
        # 8% GOB loss amplifies to ~25% byte erasures (one byte spans 3-4
        # GOBs); RS(30, 16) carries 47% parity, comfortably above that.
        payload = bytes(range(64))
        schedule = PayloadSchedule(small_config, payload, rs_n=30, rs_k=16)
        assembler = PayloadAssembler(small_config, schedule.plan)
        rng = np.random.default_rng(0)
        for k in range(schedule.n_payload_frames):
            available = rng.random((small_config.gob_rows, small_config.gob_cols)) > 0.08
            assembler.add_frame(
                _decoded_from_grid(small_config, schedule.bits(k), index=k, available=available)
            )
        assert assembler.payload() == payload

    def test_retransmission_fills_gaps(self, small_config):
        payload = bytes(range(48))
        schedule = PayloadSchedule(small_config, payload, rs_n=30, rs_k=16)
        assembler = PayloadAssembler(small_config, schedule.plan)
        rng = np.random.default_rng(1)
        n = schedule.n_payload_frames
        # Three passes, each losing half the GOBs; the unknown set shrinks
        # geometrically and RS absorbs the residue.
        for k in range(3 * n):
            available = rng.random((small_config.gob_rows, small_config.gob_cols)) > 0.5
            assembler.add_frame(
                _decoded_from_grid(
                    small_config, schedule.bits(k), index=k, available=available
                )
            )
        assert assembler.payload() == payload

    def test_coverage_monotone(self, small_config):
        payload = bytes(64)
        schedule = PayloadSchedule(small_config, payload, rs_n=30, rs_k=20)
        assembler = PayloadAssembler(small_config, schedule.plan)
        before = assembler.coverage()
        assembler.add_frame(_decoded_from_grid(small_config, schedule.bits(0), index=0))
        assert assembler.coverage() > before

    def test_total_loss_raises(self, small_config):
        schedule = PayloadSchedule(small_config, b"data", rs_n=30, rs_k=20)
        assembler = PayloadAssembler(small_config, schedule.plan)
        with pytest.raises(FrameFormatError):
            assembler.payload()

    def test_corrupted_bits_within_rs_capacity_recovered(self, small_config):
        payload = b"correctable payload"
        schedule = PayloadSchedule(small_config, payload, rs_n=40, rs_k=20)
        assembler = PayloadAssembler(small_config, schedule.plan)
        for k in range(schedule.n_payload_frames):
            grid = schedule.bits(k).copy()
            if k == 0:
                grid[0, 0] = ~grid[0, 0]  # silent corruption, parity forced OK
            assembler.add_frame(
                _decoded_from_grid(
                    small_config,
                    grid,
                    index=k,
                    parity_ok=np.ones((small_config.gob_rows, small_config.gob_cols), bool),
                )
            )
        assert assembler.payload() == payload

    def test_fully_erased_frame_contributes_nothing(self, small_config):
        payload = bytes(range(32))
        schedule = PayloadSchedule(small_config, payload, rs_n=30, rs_k=16)
        assembler = PayloadAssembler(small_config, schedule.plan)
        gob_shape = (small_config.gob_rows, small_config.gob_cols)
        assembler.add_frame(
            _decoded_from_grid(
                small_config,
                schedule.bits(0),
                index=0,
                available=np.zeros(gob_shape, bool),
            )
        )
        assert assembler.coverage() == 0.0
        with pytest.raises(FrameFormatError):
            assembler.payload()
        # The dead frame must not poison later, healthy passes.
        for k in range(schedule.n_payload_frames):
            assembler.add_frame(
                _decoded_from_grid(small_config, schedule.bits(k), index=k)
            )
        assert assembler.payload() == payload

    def test_crc_mismatch_after_rs_success(self, small_config):
        # Build a message whose RS codewords are pristine but whose
        # embedded CRC-16 disagrees with the payload: every codeword
        # decodes with zero corrections, and the CRC gate must still
        # reject delivery.
        from repro.core.framing import FramingPlan, slice_bits_to_frames
        from repro.core.parity import data_bits_to_grid
        from repro.ecc.crc import crc16_append
        from repro.ecc.interleaver import BlockInterleaver
        from repro.ecc.reed_solomon import ReedSolomonCodec

        payload = b"payload whose checksum lies"
        rs_n, rs_k = 30, 16
        codec = ReedSolomonCodec(rs_n, rs_k)
        buffer = bytearray(len(payload).to_bytes(4, "big") + crc16_append(payload))
        buffer[-1] ^= 0xFF  # tamper with the stored CRC only
        if len(buffer) % rs_k:
            buffer += bytes(rs_k - len(buffer) % rs_k)
        codewords = [
            codec.encode(bytes(buffer[i : i + rs_k]))
            for i in range(0, len(buffer), rs_k)
        ]
        interleaver = BlockInterleaver(len(codewords), rs_n)
        bits = np.unpackbits(
            np.frombuffer(interleaver.interleave(b"".join(codewords)), dtype=np.uint8)
        )
        plan = FramingPlan(rs_n=rs_n, rs_k=rs_k, n_codewords=len(codewords))
        assembler = PayloadAssembler(small_config, plan)
        for k, frame_bits in enumerate(slice_bits_to_frames(bits, small_config)):
            grid = data_bits_to_grid(frame_bits, small_config)
            assembler.add_frame(_decoded_from_grid(small_config, grid, index=k))
        with pytest.raises(FrameFormatError, match="CRC"):
            assembler.payload()

    def test_multi_pass_repeat_convergence(self, small_config):
        # With repeat=True the schedule cycles; at 70% GOB loss a single
        # pass is hopeless, but the unknown set shrinks geometrically and
        # the assembler converges within a bounded number of passes.
        payload = bytes(range(48))
        schedule = PayloadSchedule(small_config, payload, rs_n=30, rs_k=16, repeat=True)
        assembler = PayloadAssembler(small_config, schedule.plan)
        rng = np.random.default_rng(4)
        n = schedule.n_payload_frames
        gob_shape = (small_config.gob_rows, small_config.gob_cols)
        delivered = None
        passes_needed = None
        for pass_index in range(12):
            for k in range(pass_index * n, (pass_index + 1) * n):
                available = rng.random(gob_shape) > 0.7
                assembler.add_frame(
                    _decoded_from_grid(
                        small_config, schedule.bits(k), index=k, available=available
                    )
                )
            try:
                delivered = assembler.payload()
            except FrameFormatError:
                continue
            passes_needed = pass_index + 1
            break
        assert delivered == payload
        assert passes_needed is not None and 1 < passes_needed <= 12

    def test_empty_payload_rejected(self, small_config):
        with pytest.raises(ValueError):
            PayloadSchedule(small_config, b"")

    def test_single_shot_schedule_bounds(self, small_config):
        schedule = PayloadSchedule(small_config, b"x", repeat=False)
        with pytest.raises(IndexError):
            schedule.bits(schedule.n_payload_frames)

    def test_plan_requires_codeword_count(self, small_config):
        with pytest.raises(ValueError):
            PayloadAssembler(small_config, FramingPlan(rs_n=30, rs_k=20, n_codewords=0))

    @given(st.binary(min_size=1, max_size=200))
    @settings(max_examples=20, deadline=None)
    def test_roundtrip_property(self, payload):
        config = InFrameConfig(
            element_pixels=2, pixels_per_block=2, block_rows=4, block_cols=6, tau=12
        )
        schedule = PayloadSchedule(config, payload, rs_n=24, rs_k=16)
        assembler = PayloadAssembler(config, schedule.plan)
        for k in range(schedule.n_payload_frames):
            assembler.add_frame(_decoded_from_grid(config, schedule.bits(k), index=k))
        assert assembler.payload() == payload


class TestMetrics:
    def test_perfect_frame(self, small_config):
        schedule = PseudoRandomSchedule(small_config)
        grid = schedule.bits(0)
        comparison = compare_bits(grid, _decoded_from_grid(small_config, grid), small_config)
        assert comparison.bit_accuracy == 1.0
        assert comparison.available_ratio == 1.0
        assert comparison.gob_error_rate == 0.0

    def test_gob_correct_mask_flags_wrong_gob(self, small_config):
        schedule = PseudoRandomSchedule(small_config)
        truth = schedule.bits(0)
        wrong = truth.copy()
        wrong[0, 0] = ~wrong[0, 0]
        mask = gob_correct_mask(truth, _decoded_from_grid(small_config, wrong), small_config)
        assert not mask[0, 0]
        assert mask.sum() == mask.size - 1

    def test_error_rate_counts_only_available(self, small_config):
        schedule = PseudoRandomSchedule(small_config)
        truth = schedule.bits(0)
        wrong = truth.copy()
        wrong[0, 0] = ~wrong[0, 0]
        available = np.ones((small_config.gob_rows, small_config.gob_cols), bool)
        available[0, 0] = False  # the wrong GOB was not available
        comparison = compare_bits(
            truth,
            _decoded_from_grid(small_config, wrong, available=available),
            small_config,
        )
        assert comparison.gob_error_rate == 0.0

    def test_summarize_link_throughput_formula(self, small_config):
        schedule = PseudoRandomSchedule(small_config)
        grids = [schedule.bits(k) for k in range(3)]
        decodeds = [_decoded_from_grid(small_config, g, index=k) for k, g in enumerate(grids)]
        stats = summarize_link(grids, decodeds, small_config)
        expected = small_config.bits_per_frame * small_config.data_frame_rate_hz
        assert stats.throughput_bps == pytest.approx(expected)
        assert stats.available_gob_ratio == 1.0
        assert stats.gob_error_rate == 0.0

    def test_summarize_empty_rejected(self, small_config):
        with pytest.raises(ValueError):
            summarize_link([], [], small_config)

    def test_summarize_length_mismatch(self, small_config):
        schedule = PseudoRandomSchedule(small_config)
        grid = schedule.bits(0)
        with pytest.raises(ValueError):
            summarize_link([grid], [], small_config)

    def test_row_format(self, small_config):
        schedule = PseudoRandomSchedule(small_config)
        grid = schedule.bits(0)
        stats = summarize_link([grid], [_decoded_from_grid(small_config, grid)], small_config)
        row = stats.row()
        assert "avail" in row and "kbps" in row


class TestVotingAssembler:
    def test_vote_outvotes_poisoned_pass(self, small_config):
        # A GOB that passed parity with wrong bits in one pass must be
        # washed out by two clean passes.
        payload = bytes(range(32))
        schedule = PayloadSchedule(small_config, payload, rs_n=30, rs_k=16)
        assembler = PayloadAssembler(small_config, schedule.plan, combine="vote")
        n = schedule.n_payload_frames
        for k in range(3 * n):
            grid = schedule.bits(k).copy()
            if k < n:  # first pass: silently corrupt one GOB per frame
                grid[0, 0] = ~grid[0, 0]
                grid[0, 1] = ~grid[0, 1]  # double flip keeps XOR parity valid
            assembler.add_frame(
                _decoded_from_grid(
                    small_config,
                    grid,
                    index=k,
                    parity_ok=np.ones((small_config.gob_rows, small_config.gob_cols), bool),
                )
            )
        assert assembler.payload() == payload

    def test_first_mode_keeps_initial_reading(self, small_config):
        payload = bytes(range(32))
        schedule = PayloadSchedule(small_config, payload, rs_n=30, rs_k=16)
        voter = PayloadAssembler(small_config, schedule.plan, combine="first")
        clean = _decoded_from_grid(small_config, schedule.bits(0), index=0)
        voter.add_frame(clean)
        # A later conflicting frame must not overwrite the first reading.
        wrong_grid = ~schedule.bits(0)
        voter.add_frame(
            _decoded_from_grid(
                small_config,
                wrong_grid,
                index=0,
                parity_ok=np.ones((small_config.gob_rows, small_config.gob_cols), bool),
            )
        )
        from repro.core.parity import grid_to_data_bits

        start_bits = voter._bits[: small_config.bits_per_frame]
        assert np.array_equal(
            start_bits, grid_to_data_bits(schedule.bits(0), small_config)
        )

    def test_unknown_combine_rejected(self, small_config):
        schedule = PayloadSchedule(small_config, b"x", rs_n=30, rs_k=16)
        with pytest.raises(ValueError):
            PayloadAssembler(small_config, schedule.plan, combine="median")
