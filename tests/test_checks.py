"""Tests for the domain-aware static-analysis pass (repro.checks).

The checker itself is exercised through the public CLI
(``python -m repro.tools.check``), the same entry point CI gates on, so
these tests pin the contract users actually depend on: exit codes, rule
ids, JSON shape, the baseline workflow and inline suppressions.
"""

from __future__ import annotations

import ast
import json
import subprocess
import textwrap
from collections import Counter
from pathlib import Path

import pytest

from repro.checks import Baseline, all_rules, find_project_root, run_checks
from repro.checks.analysis import ModuleAnalysis
from repro.tools.check import main

REPO_ROOT = Path(__file__).resolve().parents[1]
FIXTURES = REPO_ROOT / "tests" / "fixtures" / "checks"


def run_cli(capsys, *argv: str) -> tuple[int, dict]:
    """Run the CLI in-process with --json and parse its report."""
    code = main([*argv, "--json"])
    payload = json.loads(capsys.readouterr().out)
    return code, payload


def rule_ids(payload: dict) -> set[str]:
    return {finding["rule"] for finding in payload["findings"]}


class TestRuleCatalogue:
    def test_all_rules_have_unique_stable_ids(self):
        rules = all_rules()
        ids = [rule.rule_id for rule in rules]
        assert len(ids) == len(set(ids))
        assert ids == sorted(ids)
        for rule in rules:
            assert rule.description

    def test_list_rules_cli(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in all_rules():
            assert rule.rule_id in out


class TestCleanFixtures:
    @pytest.mark.parametrize(
        "name",
        [
            "rng_clean.py",
            "dtype_clean.py",
            "resources_clean.py",
            "api_clean.py",
            "obs_clean.py",
            "obs002_clean.py",
            "det_clean.py",
            "resources_helper_clean.py",
        ],
    )
    def test_clean_fixture_has_no_findings(self, capsys, name):
        code, payload = run_cli(capsys, str(FIXTURES / name), "--no-baseline")
        assert code == 0
        assert payload["findings"] == []
        assert payload["files_checked"] == 1


class TestViolatingFixtures:
    # API001 rides along in rng_violations: the RNG004 fixture function
    # necessarily has an unannotated public parameter.
    CASES = {
        "rng_violations.py": {
            "RNG001",
            "RNG002",
            "RNG003",
            "RNG004",
            "RNG005",
            "API001",
        },
        "dtype_violations.py": {"DT001", "DT002"},
        "resources_violations.py": {"RES001", "RES002"},
        "api_violations.py": {"API001"},
        "obs_violations.py": {"OBS001"},
        "obs002_violations.py": {"OBS002"},
        # DET001's unseeded case is also RNG003: different halves of
        # the same bug (unreproducible vs schedule-dependent).
        "det001_violations.py": {"DET001", "RNG003"},
        "det001_module_violations.py": {"DET001"},
        "det002_violations.py": {"DET002"},
        "det002_workunit_violations.py": {"DET002"},
        "det003_violations.py": {"DET003"},
        "det003_journal_violations.py": {"DET003"},
        "det004_violations.py": {"DET004"},
        "det_flow_violations.py": {"DET003"},
    }

    @pytest.mark.parametrize("name", sorted(CASES))
    def test_violating_fixture_fails_with_expected_rules(self, capsys, name):
        code, payload = run_cli(capsys, str(FIXTURES / name), "--no-baseline")
        assert code == 1
        assert rule_ids(payload) == self.CASES[name]
        assert payload["exit_code"] == 1
        # Every finding carries a usable location.
        for finding in payload["findings"]:
            assert finding["path"].endswith(name)
            assert finding["line"] >= 1
            assert finding["message"]

    def test_whole_fixture_dir_reports_every_rule(self, capsys):
        code, payload = run_cli(capsys, str(FIXTURES), "--no-baseline")
        assert code == 1
        expected = set().union(*self.CASES.values())
        assert rule_ids(payload) == expected


class TestInlineSuppression:
    def test_pragma_silences_named_rule_only(self, tmp_path, capsys):
        target = tmp_path / "suppressed.py"
        target.write_text(
            "import numpy as np\n"
            "\n"
            "\n"
            "def f() -> np.random.Generator:\n"
            "    return np.random.default_rng()  # checks: ignore[RNG003] fixture\n"
        )
        code, payload = run_cli(capsys, str(target), "--no-baseline")
        assert code == 0
        assert payload["findings"] == []

    def test_pragma_for_other_rule_does_not_silence(self, tmp_path, capsys):
        target = tmp_path / "suppressed.py"
        target.write_text(
            "import numpy as np\n"
            "\n"
            "\n"
            "def f() -> np.random.Generator:\n"
            "    return np.random.default_rng()  # checks: ignore[DT001]\n"
        )
        code, payload = run_cli(capsys, str(target), "--no-baseline")
        assert code == 1
        assert rule_ids(payload) == {"RNG003"}


class TestBaselineWorkflow:
    def _violating_file(self, tmp_path: Path) -> Path:
        target = tmp_path / "legacy.py"
        target.write_text((FIXTURES / "dtype_violations.py").read_text())
        return target

    def test_update_baseline_then_rerun_passes(self, tmp_path, capsys):
        target = self._violating_file(tmp_path)
        baseline = tmp_path / "baseline.json"
        assert main([str(target), "--baseline", str(baseline), "--update-baseline"]) == 0
        capsys.readouterr()
        code, payload = run_cli(capsys, str(target), "--baseline", str(baseline))
        assert code == 0
        assert payload["new"] == []
        assert payload["baselined"] == 2
        assert all(f["baselined"] for f in payload["findings"])

    def test_new_violation_fails_despite_baseline(self, tmp_path, capsys):
        target = self._violating_file(tmp_path)
        baseline = tmp_path / "baseline.json"
        main([str(target), "--baseline", str(baseline), "--update-baseline"])
        capsys.readouterr()
        target.write_text(
            target.read_text()
            + "\n\ndef fresh(frame: np.ndarray) -> np.ndarray:\n"
            + "    return (frame * 2).astype(np.uint8)\n"
        )
        code, payload = run_cli(capsys, str(target), "--baseline", str(baseline))
        assert code == 1
        assert len(payload["new"]) == 1
        assert payload["new"][0]["rule"] == "DT002"

    def test_stale_entries_warn_and_fail_on_request(self, tmp_path, capsys):
        target = self._violating_file(tmp_path)
        baseline = tmp_path / "baseline.json"
        main([str(target), "--baseline", str(baseline), "--update-baseline"])
        capsys.readouterr()
        target.write_text("\n")  # every legacy finding fixed
        code, payload = run_cli(capsys, str(target), "--baseline", str(baseline))
        assert code == 0
        assert len(payload["stale"]) == 2
        assert (
            main([str(target), "--baseline", str(baseline), "--fail-on-stale"]) == 1
        )

    def test_baseline_rejects_unknown_version(self, tmp_path):
        bad = tmp_path / "baseline.json"
        bad.write_text(json.dumps({"version": 99, "entries": []}))
        with pytest.raises(ValueError, match="unsupported baseline version"):
            Baseline.load(bad)


class TestProjectTree:
    """The PR tree itself must be clean and its shipped baseline consistent."""

    def test_project_scan_is_clean(self, capsys, monkeypatch):
        monkeypatch.chdir(REPO_ROOT)
        code, payload = run_cli(capsys)
        assert code == 0
        assert payload["new"] == []
        assert payload["files_checked"] > 70

    def test_shipped_baseline_has_no_stale_entries(self, capsys, monkeypatch):
        monkeypatch.chdir(REPO_ROOT)
        code, payload = run_cli(capsys, "--fail-on-stale")
        assert code == 0
        assert payload["stale"] == []

    def test_shipped_baseline_loads(self):
        baseline = Baseline.load(REPO_ROOT / "checks-baseline.json")
        # The tree is fully clean today; the baseline may only shrink.
        assert baseline.fingerprints == set()

    def test_find_project_root(self):
        assert find_project_root(FIXTURES) == REPO_ROOT
        assert find_project_root(REPO_ROOT / "src" / "repro" / "core") == REPO_ROOT

    def test_run_checks_engine_api(self):
        report = run_checks([FIXTURES / "rng_violations.py"], all_rules(), root=REPO_ROOT)
        assert report.files_checked == 1
        assert {f.rule for f in report.findings} >= {"RNG001", "RNG002", "RNG003"}
        for finding in report.findings:
            assert finding.path.startswith("tests/fixtures/checks/")
            # Fingerprints are line-free so baselines survive reflows.
            assert finding.fingerprint == f"{finding.rule}::{finding.path}::{finding.message}"


class TestLegacyRuleRegression:
    """The dataflow framework swap must not change the PR 3 rules' output.

    Pins the exact per-rule finding counts on the pre-existing fixture
    set; any drift means the engine upgrade altered a legacy rule.
    """

    EXPECTED = {
        "rng_violations.py": {
            "API001": 1,
            "RNG001": 1,
            "RNG002": 1,
            "RNG003": 1,
            "RNG004": 1,
            "RNG005": 1,
        },
        "dtype_violations.py": {"DT001": 1, "DT002": 1},
        "resources_violations.py": {"RES001": 1, "RES002": 1},
        "api_violations.py": {"API001": 4},
        "obs_violations.py": {"OBS001": 2},
    }

    @pytest.mark.parametrize("name", sorted(EXPECTED))
    def test_legacy_fixture_findings_unchanged(self, name):
        report = run_checks([FIXTURES / name], all_rules(), root=REPO_ROOT)
        counts = Counter(finding.rule for finding in report.findings)
        assert dict(counts) == self.EXPECTED[name]


class TestModuleAnalysis:
    def test_worker_discovery_and_import_resolution(self):
        src = textwrap.dedent(
            """
            import time as clock
            from numpy.random import default_rng as mk


            def helper(x):
                return mk(x)


            def entry(task):
                return helper(task)


            def run(pool, items):
                return pool.map(entry, items)
            """
        )
        analysis = ModuleAnalysis(ast.parse(src), src.splitlines())
        workers = analysis.worker_functions()
        assert set(workers) == {"entry", "helper"}
        assert any("dispatched to pool workers" in step for step in workers["entry"])
        assert any(
            "called from worker-scoped entry()" in step for step in workers["helper"]
        )
        assert analysis.resolve_import("clock.time") == "time.time"
        assert analysis.resolve_import("mk") == "numpy.random.default_rng"
        assert analysis.resolve_import("unknown.thing") == "unknown.thing"

    def test_transitive_attribute_calls_cross_helper(self):
        src = textwrap.dedent(
            """
            def _teardown(seg):
                seg.close()


            def create():
                seg = open_segment()
                _teardown(seg)
            """
        )
        analysis = ModuleAnalysis(ast.parse(src), src.splitlines())
        create = analysis.functions["create"]
        assert "close" in analysis.transitive_attribute_calls(create)


class TestDeterminismDataflow:
    def test_explain_prints_source_to_sink_path_det001(self, capsys):
        code = main(
            [
                str(FIXTURES / "det001_violations.py"),
                "--no-baseline",
                "--explain",
                "DET001",
            ]
        )
        out = capsys.readouterr().out
        assert code == 1
        assert "3 finding(s) for DET001" in out
        assert "worker-scope" in out  # the evidence step
        assert "seed expression" in out

    def test_explain_prints_interprocedural_path_det002(self, capsys):
        code = main(
            [
                str(FIXTURES / "det002_workunit_violations.py"),
                "--no-baseline",
                "--explain",
                "DET002",
            ]
        )
        out = capsys.readouterr().out
        assert code == 1
        assert "reads the wall clock" in out
        assert "returned by _now() into this call" in out
        assert "returned by _elapsed_since() into this call" in out
        assert "flows into a UnitResult(...) result" in out

    def test_interprocedural_dict_view_detected(self, capsys):
        code, payload = run_cli(
            capsys, str(FIXTURES / "det_flow_violations.py"), "--no-baseline"
        )
        assert code == 1
        assert [f["rule"] for f in payload["findings"]] == ["DET003"]

    def test_json_payload_carries_trace(self, capsys):
        code, payload = run_cli(
            capsys, str(FIXTURES / "det002_violations.py"), "--no-baseline"
        )
        assert code == 1
        assert payload["findings"]
        assert all(f["trace"] for f in payload["findings"])


class TestSarifExport:
    def test_sarif_document_shape(self, tmp_path, capsys):
        out = tmp_path / "out.sarif"
        code = main(
            [
                str(FIXTURES / "det002_workunit_violations.py"),
                "--no-baseline",
                "--sarif",
                str(out),
            ]
        )
        capsys.readouterr()
        assert code == 1
        doc = json.loads(out.read_text())
        assert doc["version"] == "2.1.0"
        run = doc["runs"][0]
        assert run["tool"]["driver"]["name"] == "repro-checks"
        catalogue = {rule["id"] for rule in run["tool"]["driver"]["rules"]}
        assert {"DET001", "DET002", "DET003", "DET004"} <= catalogue
        results = run["results"]
        assert results and all(r["ruleId"] == "DET002" for r in results)
        locations = results[0]["codeFlows"][0]["threadFlows"][0]["locations"]
        assert any(
            "wall clock" in loc["location"]["message"]["text"] for loc in locations
        )

    def test_sarif_empty_when_clean(self, tmp_path, capsys):
        out = tmp_path / "clean.sarif"
        code = main(
            [str(FIXTURES / "det_clean.py"), "--no-baseline", "--sarif", str(out)]
        )
        capsys.readouterr()
        assert code == 0
        doc = json.loads(out.read_text())
        assert doc["runs"][0]["results"] == []


class TestChangedOnly:
    def _init_repo(self, root: Path) -> None:
        def git(*argv: str) -> None:
            subprocess.run(
                ["git", "-C", str(root), *argv], check=True, capture_output=True
            )

        (root / "pyproject.toml").write_text("[project]\nname='x'\nversion='0'\n")
        (root / "clean.py").write_text("def ok() -> int:\n    return 1\n")
        git("init", "-q")
        git("add", "-A")
        git(
            "-c",
            "user.email=ci@example.invalid",
            "-c",
            "user.name=ci",
            "commit",
            "-q",
            "-m",
            "seed",
        )

    def test_changed_only_scans_only_changed_files(
        self, tmp_path, capsys, monkeypatch
    ):
        self._init_repo(tmp_path)
        bad = tmp_path / "bad.py"
        bad.write_text((FIXTURES / "dtype_violations.py").read_text())
        monkeypatch.chdir(tmp_path)
        code, payload = run_cli(capsys, "--changed-only", "--no-baseline")
        assert code == 1
        assert payload["files_checked"] == 1
        assert {f["path"] for f in payload["findings"]} == {"bad.py"}

    def test_changed_only_with_no_changes_passes(self, tmp_path, capsys, monkeypatch):
        self._init_repo(tmp_path)
        monkeypatch.chdir(tmp_path)
        code = main(["--changed-only", "--no-baseline"])
        out = capsys.readouterr().out
        assert code == 0
        assert "nothing to check" in out

    def test_falls_back_to_full_scan_outside_git(self, tmp_path, capsys, monkeypatch):
        (tmp_path / "pyproject.toml").write_text("[project]\nname='x'\nversion='0'\n")
        (tmp_path / "mod.py").write_text("def ok() -> int:\n    return 1\n")
        monkeypatch.chdir(tmp_path)
        code = main(["--changed-only", "--no-baseline", "--json"])
        captured = capsys.readouterr()
        payload = json.loads(captured.out)
        assert code == 0
        assert payload["files_checked"] == 1
        assert "falling back to a full scan" in captured.err


class TestParseErrors:
    def test_syntax_error_is_a_failing_finding(self, tmp_path, capsys):
        bad = tmp_path / "broken.py"
        bad.write_text("def broken(:\n")
        code, payload = run_cli(capsys, str(bad), "--no-baseline")
        assert code == 1
        assert rule_ids(payload) == {"PARSE"}
