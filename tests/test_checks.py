"""Tests for the domain-aware static-analysis pass (repro.checks).

The checker itself is exercised through the public CLI
(``python -m repro.tools.check``), the same entry point CI gates on, so
these tests pin the contract users actually depend on: exit codes, rule
ids, JSON shape, the baseline workflow and inline suppressions.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.checks import Baseline, all_rules, find_project_root, run_checks
from repro.tools.check import main

REPO_ROOT = Path(__file__).resolve().parents[1]
FIXTURES = REPO_ROOT / "tests" / "fixtures" / "checks"


def run_cli(capsys, *argv: str) -> tuple[int, dict]:
    """Run the CLI in-process with --json and parse its report."""
    code = main([*argv, "--json"])
    payload = json.loads(capsys.readouterr().out)
    return code, payload


def rule_ids(payload: dict) -> set[str]:
    return {finding["rule"] for finding in payload["findings"]}


class TestRuleCatalogue:
    def test_all_rules_have_unique_stable_ids(self):
        rules = all_rules()
        ids = [rule.rule_id for rule in rules]
        assert len(ids) == len(set(ids))
        assert ids == sorted(ids)
        for rule in rules:
            assert rule.description

    def test_list_rules_cli(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in all_rules():
            assert rule.rule_id in out


class TestCleanFixtures:
    @pytest.mark.parametrize(
        "name",
        ["rng_clean.py", "dtype_clean.py", "resources_clean.py", "api_clean.py", "obs_clean.py"],
    )
    def test_clean_fixture_has_no_findings(self, capsys, name):
        code, payload = run_cli(capsys, str(FIXTURES / name), "--no-baseline")
        assert code == 0
        assert payload["findings"] == []
        assert payload["files_checked"] == 1


class TestViolatingFixtures:
    # API001 rides along in rng_violations: the RNG004 fixture function
    # necessarily has an unannotated public parameter.
    CASES = {
        "rng_violations.py": {
            "RNG001",
            "RNG002",
            "RNG003",
            "RNG004",
            "RNG005",
            "API001",
        },
        "dtype_violations.py": {"DT001", "DT002"},
        "resources_violations.py": {"RES001", "RES002"},
        "api_violations.py": {"API001"},
        "obs_violations.py": {"OBS001"},
    }

    @pytest.mark.parametrize("name", sorted(CASES))
    def test_violating_fixture_fails_with_expected_rules(self, capsys, name):
        code, payload = run_cli(capsys, str(FIXTURES / name), "--no-baseline")
        assert code == 1
        assert rule_ids(payload) == self.CASES[name]
        assert payload["exit_code"] == 1
        # Every finding carries a usable location.
        for finding in payload["findings"]:
            assert finding["path"].endswith(name)
            assert finding["line"] >= 1
            assert finding["message"]

    def test_whole_fixture_dir_reports_every_rule(self, capsys):
        code, payload = run_cli(capsys, str(FIXTURES), "--no-baseline")
        assert code == 1
        expected = set().union(*self.CASES.values())
        assert rule_ids(payload) == expected


class TestInlineSuppression:
    def test_pragma_silences_named_rule_only(self, tmp_path, capsys):
        target = tmp_path / "suppressed.py"
        target.write_text(
            "import numpy as np\n"
            "\n"
            "\n"
            "def f() -> np.random.Generator:\n"
            "    return np.random.default_rng()  # checks: ignore[RNG003] fixture\n"
        )
        code, payload = run_cli(capsys, str(target), "--no-baseline")
        assert code == 0
        assert payload["findings"] == []

    def test_pragma_for_other_rule_does_not_silence(self, tmp_path, capsys):
        target = tmp_path / "suppressed.py"
        target.write_text(
            "import numpy as np\n"
            "\n"
            "\n"
            "def f() -> np.random.Generator:\n"
            "    return np.random.default_rng()  # checks: ignore[DT001]\n"
        )
        code, payload = run_cli(capsys, str(target), "--no-baseline")
        assert code == 1
        assert rule_ids(payload) == {"RNG003"}


class TestBaselineWorkflow:
    def _violating_file(self, tmp_path: Path) -> Path:
        target = tmp_path / "legacy.py"
        target.write_text((FIXTURES / "dtype_violations.py").read_text())
        return target

    def test_update_baseline_then_rerun_passes(self, tmp_path, capsys):
        target = self._violating_file(tmp_path)
        baseline = tmp_path / "baseline.json"
        assert main([str(target), "--baseline", str(baseline), "--update-baseline"]) == 0
        capsys.readouterr()
        code, payload = run_cli(capsys, str(target), "--baseline", str(baseline))
        assert code == 0
        assert payload["new"] == []
        assert payload["baselined"] == 2
        assert all(f["baselined"] for f in payload["findings"])

    def test_new_violation_fails_despite_baseline(self, tmp_path, capsys):
        target = self._violating_file(tmp_path)
        baseline = tmp_path / "baseline.json"
        main([str(target), "--baseline", str(baseline), "--update-baseline"])
        capsys.readouterr()
        target.write_text(
            target.read_text()
            + "\n\ndef fresh(frame: np.ndarray) -> np.ndarray:\n"
            + "    return (frame * 2).astype(np.uint8)\n"
        )
        code, payload = run_cli(capsys, str(target), "--baseline", str(baseline))
        assert code == 1
        assert len(payload["new"]) == 1
        assert payload["new"][0]["rule"] == "DT002"

    def test_stale_entries_warn_and_fail_on_request(self, tmp_path, capsys):
        target = self._violating_file(tmp_path)
        baseline = tmp_path / "baseline.json"
        main([str(target), "--baseline", str(baseline), "--update-baseline"])
        capsys.readouterr()
        target.write_text("\n")  # every legacy finding fixed
        code, payload = run_cli(capsys, str(target), "--baseline", str(baseline))
        assert code == 0
        assert len(payload["stale"]) == 2
        assert (
            main([str(target), "--baseline", str(baseline), "--fail-on-stale"]) == 1
        )

    def test_baseline_rejects_unknown_version(self, tmp_path):
        bad = tmp_path / "baseline.json"
        bad.write_text(json.dumps({"version": 99, "entries": []}))
        with pytest.raises(ValueError, match="unsupported baseline version"):
            Baseline.load(bad)


class TestProjectTree:
    """The PR tree itself must be clean and its shipped baseline consistent."""

    def test_project_scan_is_clean(self, capsys, monkeypatch):
        monkeypatch.chdir(REPO_ROOT)
        code, payload = run_cli(capsys)
        assert code == 0
        assert payload["new"] == []
        assert payload["files_checked"] > 70

    def test_shipped_baseline_has_no_stale_entries(self, capsys, monkeypatch):
        monkeypatch.chdir(REPO_ROOT)
        code, payload = run_cli(capsys, "--fail-on-stale")
        assert code == 0
        assert payload["stale"] == []

    def test_shipped_baseline_loads(self):
        baseline = Baseline.load(REPO_ROOT / "checks-baseline.json")
        # The tree is fully clean today; the baseline may only shrink.
        assert baseline.fingerprints == set()

    def test_find_project_root(self):
        assert find_project_root(FIXTURES) == REPO_ROOT
        assert find_project_root(REPO_ROOT / "src" / "repro" / "core") == REPO_ROOT

    def test_run_checks_engine_api(self):
        report = run_checks([FIXTURES / "rng_violations.py"], all_rules(), root=REPO_ROOT)
        assert report.files_checked == 1
        assert {f.rule for f in report.findings} >= {"RNG001", "RNG002", "RNG003"}
        for finding in report.findings:
            assert finding.path.startswith("tests/fixtures/checks/")
            # Fingerprints are line-free so baselines survive reflows.
            assert finding.fingerprint == f"{finding.rule}::{finding.path}::{finding.message}"


class TestParseErrors:
    def test_syntax_error_is_a_failing_finding(self, tmp_path, capsys):
        bad = tmp_path / "broken.py"
        bad.write_text("def broken(:\n")
        code, payload = run_cli(capsys, str(bad), "--no-baseline")
        assert code == 1
        assert rule_ids(payload) == {"PARSE"}
