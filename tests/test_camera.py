"""Camera substrate: optics, sensor, rolling shutter, capture pipeline."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.camera.capture import CameraModel
from repro.camera.optics import OpticsModel
from repro.camera.rolling_shutter import RollingShutter
from repro.camera.sensor import SensorModel
from repro.display.panel import DisplayPanel
from repro.display.scheduler import DisplayTimeline
from repro.video.source import ArrayVideoSource


class TestOptics:
    def test_blur_preserves_mean(self):
        optics = OpticsModel(blur_sigma_px=1.5, vignetting=0.0)
        rng = np.random.default_rng(0)
        image = rng.uniform(0, 100, (32, 32)).astype(np.float32)
        out = optics.apply(image)
        assert float(out.mean()) == pytest.approx(float(image.mean()), rel=1e-3)

    def test_blur_reduces_high_frequency(self):
        optics = OpticsModel(blur_sigma_px=1.0, vignetting=0.0)
        checker = np.indices((32, 32)).sum(axis=0) % 2 * 100.0
        out = optics.apply(checker.astype(np.float32))
        assert float(out.std()) < float(checker.std())

    def test_vignetting_darkens_corners_only(self):
        optics = OpticsModel(blur_sigma_px=0.0, vignetting=0.2)
        flat = np.full((33, 33), 100.0, dtype=np.float32)
        out = optics.apply(flat)
        assert out[0, 0] < out[16, 16]
        assert float(out[16, 16]) == pytest.approx(100.0, rel=1e-3)

    def test_noop_configuration(self):
        optics = OpticsModel(blur_sigma_px=0.0, vignetting=0.0)
        image = np.random.default_rng(1).uniform(0, 255, (8, 8)).astype(np.float32)
        assert np.array_equal(optics.apply(image), image)


class TestSensor:
    def test_noise_free_is_deterministic_and_monotone(self):
        sensor = SensorModel()
        lums = np.array([[10.0, 50.0, 150.0, 290.0]], dtype=np.float32)
        out = sensor.expose(lums, 1 / 500)
        assert np.all(np.diff(out[0]) > 0)

    def test_calibration_hits_target_level(self):
        sensor = SensorModel().calibrated_for(300.0, 1 / 500, target_level=210.0)
        level = float(sensor.expose(np.array([[300.0]], np.float32), 1 / 500)[0, 0])
        assert level == pytest.approx(210.0, abs=1.0)

    def test_saturation_clips_at_255(self):
        sensor = SensorModel().calibrated_for(100.0, 1 / 500, target_level=250.0)
        level = float(sensor.expose(np.array([[1000.0]], np.float32), 1 / 500)[0, 0])
        assert level == 255.0

    def test_noise_scales_with_signal(self):
        sensor = SensorModel().calibrated_for(300.0, 1 / 500)
        rng = np.random.default_rng(0)
        dim = sensor.expose(np.full((64, 64), 5.0, np.float32), 1 / 500, rng=rng)
        rng = np.random.default_rng(0)
        bright = sensor.expose(np.full((64, 64), 150.0, np.float32), 1 / 500, rng=rng)
        # Shot-noise-limited: electron noise grows with sqrt(signal), but
        # the gamma response compresses highlights, so *relative* count
        # noise falls while absolute electron noise rises.
        assert float(dim.std()) / max(float(dim.mean()), 1) > float(bright.std()) / float(
            bright.mean()
        )

    def test_seeded_noise_reproducible(self):
        sensor = SensorModel()
        image = np.full((16, 16), 80.0, np.float32)
        a = sensor.expose(image, 1 / 500, rng=np.random.default_rng(7))
        b = sensor.expose(image, 1 / 500, rng=np.random.default_rng(7))
        assert np.array_equal(a, b)

    def test_snr_increases_with_luminance(self):
        sensor = SensorModel()
        assert sensor.snr_at(100.0, 1 / 500) > sensor.snr_at(1.0, 1 / 500)

    def test_rejects_nonpositive_exposure(self):
        with pytest.raises(ValueError):
            SensorModel().expose(np.zeros((2, 2), np.float32), 0.0)


class TestRollingShutter:
    def test_row_window_offsets(self):
        shutter = RollingShutter(n_rows=100, exposure_s=0.001, readout_s=0.010)
        start0, end0 = shutter.row_window(10.0, 0)
        start50, _ = shutter.row_window(10.0, 50)
        assert start0 == pytest.approx(10.0)
        assert end0 == pytest.approx(10.001)
        assert start50 == pytest.approx(10.0 + 0.010 * 0.5)

    def test_row_out_of_range(self):
        shutter = RollingShutter(n_rows=10, exposure_s=0.001, readout_s=0.01)
        with pytest.raises(ValueError):
            shutter.row_window(0.0, 10)

    def test_global_shutter_has_uniform_windows(self):
        shutter = RollingShutter(n_rows=10, exposure_s=0.002, readout_s=0.0)
        w0 = shutter.row_window(1.0, 0)
        w9 = shutter.row_window(1.0, 9)
        assert w0 == w9

    @given(
        start=st.floats(min_value=0.0, max_value=0.5),
        exposure=st.floats(min_value=1e-4, max_value=5e-3),
        readout=st.floats(min_value=0.0, max_value=0.02),
    )
    @settings(max_examples=50, deadline=None)
    def test_weights_sum_to_one(self, start, exposure, readout):
        shutter = RollingShutter(n_rows=24, exposure_s=exposure, readout_s=readout)
        weights = shutter.display_frame_weights(start, 1 / 120, 200)
        total = sum(weights.values())
        assert np.allclose(total, np.ones(24), atol=1e-6)

    def test_straddling_rows_split_between_frames(self):
        # Exposure window of some rows must cross the display boundary.
        shutter = RollingShutter(n_rows=100, exposure_s=0.004, readout_s=0.012)
        weights = shutter.display_frame_weights(0.0, 1 / 120, 10)
        assert len(weights) >= 2
        w0 = weights[0]
        # Early rows entirely in frame 0, later rows not.
        assert w0[0] == pytest.approx(1.0)
        assert w0[-1] < 1.0

    def test_clamps_beyond_stream_end(self):
        shutter = RollingShutter(n_rows=8, exposure_s=0.001, readout_s=0.0)
        weights = shutter.display_frame_weights(100.0, 1 / 120, 5)
        assert set(weights) == {4}


def _timeline(h=30, w=40, n=16, value=127.0):
    frames = np.full((n, h, w), value, dtype=np.float32)
    panel = DisplayPanel(width=w, height=h, refresh_hz=120.0, response_time_s=0.0)
    return DisplayTimeline(panel, ArrayVideoSource(frames, fps=120.0))


class TestCameraModel:
    def test_frame_timing_with_drift(self):
        camera = CameraModel(fps=30.0, clock_drift=0.0, clock_offset_s=0.25)
        assert camera.frame_start(3) == pytest.approx(0.25 + 0.1)

    def test_capture_shape_and_range(self):
        camera = CameraModel(width=20, height=15, timing_jitter_s=0.0)
        capture = camera.capture_frame(_timeline(), 0, rng=None)
        assert capture.pixels.shape == (15, 20)
        assert capture.pixels.min() >= 0 and capture.pixels.max() <= 255

    def test_capture_is_deterministic_with_seed(self):
        camera = CameraModel(width=20, height=15)
        tl = _timeline()
        a = camera.capture_frame(tl, 1, rng=np.random.default_rng(5)).pixels
        b = camera.capture_frame(tl, 1, rng=np.random.default_rng(5)).pixels
        assert np.array_equal(a, b)

    def test_auto_exposure_prevents_saturation(self):
        camera = CameraModel(width=20, height=15).auto_exposed(300.0)
        tl = _timeline(value=255.0)
        capture = camera.capture_frame(tl, 0, rng=None)
        assert float(capture.pixels.mean()) < 230.0

    def test_jitter_changes_start_time(self):
        camera = CameraModel(width=20, height=15, timing_jitter_s=2e-3)
        tl = _timeline()
        a = camera.capture_frame(tl, 0, rng=np.random.default_rng(1))
        b = camera.capture_frame(tl, 0, rng=np.random.default_rng(2))
        assert a.start_time_s != b.start_time_s

    def test_frames_covering(self):
        camera = CameraModel(width=20, height=15, fps=30.0, clock_drift=0.0)
        tl = _timeline(n=120)  # one second
        count = camera.frames_covering(tl)
        assert 25 <= count <= 30

    def test_capture_sequence_length(self):
        camera = CameraModel(width=20, height=15)
        captures = camera.capture_sequence(_timeline(), 3, rng=np.random.default_rng(0))
        assert [c.index for c in captures] == [0, 1, 2]

    def test_resample_identity_when_same_size(self):
        camera = CameraModel(width=40, height=30)
        image = np.random.default_rng(0).uniform(0, 255, (30, 40)).astype(np.float32)
        assert np.array_equal(camera._resample(image), image)

    def test_resample_downscale_preserves_mean(self):
        camera = CameraModel(width=20, height=15)
        image = np.random.default_rng(0).uniform(50, 200, (30, 40)).astype(np.float32)
        out = camera._resample(image)
        assert out.shape == (15, 20)
        assert float(out.mean()) == pytest.approx(float(image.mean()), rel=0.02)

    def test_rejects_bad_jitter(self):
        with pytest.raises(ValueError):
            CameraModel(timing_jitter_s=1.0)


class TestScreenFill:
    def test_full_fill_rect_covers_capture(self):
        camera = CameraModel(width=40, height=30)
        assert camera.screen_rect() == (0, 30, 0, 40)

    def test_partial_fill_rect_centred(self):
        camera = CameraModel(width=40, height=30, screen_fill=0.5)
        r0, r1, c0, c1 = camera.screen_rect()
        assert (r1 - r0, c1 - c0) == (15, 20)
        assert r0 == (30 - 15) // 2 and c0 == (40 - 20) // 2

    def test_background_visible_around_screen(self):
        camera = CameraModel(
            width=40, height=30, screen_fill=0.5, background_luminance=0.5,
            timing_jitter_s=0.0,
        )
        capture = camera.capture_frame(_timeline(value=200.0), 0, rng=None)
        r0, r1, c0, c1 = camera.screen_rect()
        corner = float(capture.pixels[0, 0])
        centre = float(capture.pixels[(r0 + r1) // 2, (c0 + c1) // 2])
        assert centre > corner + 20.0

    def test_screen_region_matches_full_fill_content(self):
        near = CameraModel(width=40, height=30, timing_jitter_s=0.0)
        far = CameraModel(width=40, height=30, screen_fill=0.5, timing_jitter_s=0.0)
        tl = _timeline(value=150.0)
        near_px = near.capture_frame(tl, 0, rng=None).pixels
        far_px = far.capture_frame(tl, 0, rng=None).pixels
        r0, r1, c0, c1 = far.screen_rect()
        # Flat content: the shrunken screen shows the same level.
        assert abs(float(far_px[r0:r1, c0:c1].mean()) - float(near_px.mean())) < 2.0

    def test_fill_bounds_validated(self):
        import pytest as _pytest

        with _pytest.raises(ValueError):
            CameraModel(screen_fill=0.0)
        with _pytest.raises(ValueError):
            CameraModel(screen_fill=1.5)
