"""Display substrate: gamma curve, panel model, timeline/scheduler."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.display.gamma import GammaCurve
from repro.display.panel import DisplayPanel
from repro.display.scheduler import DisplayTimeline
from repro.video.source import ArrayVideoSource


class TestGammaCurve:
    def test_endpoints(self):
        curve = GammaCurve(gamma=2.2, peak_luminance=300.0, black_level=0.3)
        assert float(curve.to_luminance(0)) == pytest.approx(0.3)
        assert float(curve.to_luminance(255)) == pytest.approx(300.0)

    def test_monotone(self):
        curve = GammaCurve()
        lums = curve.to_luminance(np.arange(256, dtype=np.float32))
        assert np.all(np.diff(lums) > 0)

    @given(st.floats(min_value=0.0, max_value=255.0))
    @settings(max_examples=50)
    def test_roundtrip(self, value):
        curve = GammaCurve()
        back = float(curve.to_pixel(curve.to_luminance(value)))
        assert back == pytest.approx(value, abs=0.05)

    def test_local_slope_matches_numeric_derivative(self):
        curve = GammaCurve()
        v = 127.0
        eps = 0.01
        numeric = (float(curve.to_luminance(v + eps)) - float(curve.to_luminance(v - eps))) / (
            2 * eps
        )
        assert float(curve.local_slope(v)) == pytest.approx(numeric, rel=1e-3)

    def test_slope_grows_with_level(self):
        curve = GammaCurve()
        assert float(curve.local_slope(200)) > float(curve.local_slope(100))

    def test_rejects_bad_gamma(self):
        with pytest.raises(ValueError):
            GammaCurve(gamma=0.5)

    def test_rejects_black_above_peak(self):
        with pytest.raises(ValueError):
            GammaCurve(peak_luminance=100.0, black_level=200.0)


class TestDisplayPanel:
    def test_defaults_match_paper_setup(self):
        panel = DisplayPanel()
        assert (panel.width, panel.height) == (1920, 1080)
        assert panel.refresh_hz == 120.0
        assert panel.brightness == 1.0

    def test_frame_interval(self):
        assert DisplayPanel(refresh_hz=120.0).frame_interval_s == pytest.approx(1 / 120)

    def test_emitted_luminance_scales_with_brightness(self):
        dim = DisplayPanel(width=4, height=4, brightness=0.5)
        bright = DisplayPanel(width=4, height=4, brightness=1.0)
        frame = np.full((4, 4), 127.0, dtype=np.float32)
        ratio = dim.emitted_luminance(frame) / bright.emitted_luminance(frame)
        assert np.allclose(ratio, 0.5)

    def test_viewing_distance_rule(self):
        panel = DisplayPanel(diagonal_inches=24.0)
        assert panel.typical_viewing_distance_m() == pytest.approx(1.2 * 24 * 25.4 / 1000)

    def test_scaled_preserves_timing(self):
        panel = DisplayPanel().scaled(0.5)
        assert (panel.width, panel.height) == (960, 540)
        assert panel.refresh_hz == 120.0

    def test_pixel_pitch(self):
        panel = DisplayPanel()
        # 24" 1080p is ~0.277 mm pitch.
        assert panel.pixel_pitch_mm == pytest.approx(0.2767, abs=1e-3)

    def test_rejects_bad_brightness(self):
        with pytest.raises(ValueError):
            DisplayPanel(brightness=1.5)


def _two_frame_timeline(response_time_s=0.0):
    frames = np.stack(
        [np.full((4, 6), 50.0, np.float32), np.full((4, 6), 200.0, np.float32)] * 4
    )
    panel = DisplayPanel(width=6, height=4, refresh_hz=120.0, response_time_s=response_time_s)
    return DisplayTimeline(panel, ArrayVideoSource(frames, fps=120.0))


class TestDisplayTimeline:
    def test_duration(self):
        timeline = _two_frame_timeline()
        assert timeline.duration_s == pytest.approx(8 / 120)

    def test_frame_index_clamping(self):
        timeline = _two_frame_timeline()
        assert timeline.frame_index_at(-1.0) == 0
        assert timeline.frame_index_at(100.0) == timeline.n_frames - 1

    def test_instant_luminance_without_response(self):
        timeline = _two_frame_timeline(response_time_s=0.0)
        lum0 = timeline.luminance_at(0.001)
        lum1 = timeline.luminance_at(1 / 120 + 0.001)
        assert float(lum1.mean()) > float(lum0.mean())

    def test_lc_response_softens_transition(self):
        instant = _two_frame_timeline(response_time_s=0.0)
        slow = _two_frame_timeline(response_time_s=0.004)
        t = 1 / 120 + 0.0005  # just after the 50 -> 200 flip
        assert float(slow.luminance_at(t).mean()) < float(instant.luminance_at(t).mean())

    def test_lc_response_converges_to_target(self):
        slow = _two_frame_timeline(response_time_s=0.001)
        instant = _two_frame_timeline(response_time_s=0.0)
        t = 2 / 120 - 1e-5  # end of the second frame
        assert float(slow.luminance_at(t).mean()) == pytest.approx(
            float(instant.luminance_at(t).mean()), rel=0.01
        )

    def test_integration_of_constant_region(self):
        timeline = _two_frame_timeline(response_time_s=0.0)
        inside = timeline.integrate(0.0005, 1 / 120 - 0.0005)
        point = timeline.luminance_at(0.004)
        assert np.allclose(inside, point, rtol=1e-5)

    def test_integration_across_boundary_is_weighted_mean(self):
        timeline = _two_frame_timeline(response_time_s=0.0)
        # Window covering frames 0 and 1 equally.
        t0 = 1 / 120 - 0.002
        t1 = 1 / 120 + 0.002
        lum = float(timeline.integrate(t0, t1).mean())
        lum0 = float(timeline.luminance_at(0.001).mean())
        lum1 = float(timeline.luminance_at(1 / 120 + 0.001).mean())
        assert lum == pytest.approx((lum0 + lum1) / 2, rel=1e-3)

    def test_integrate_rejects_empty_window(self):
        timeline = _two_frame_timeline()
        with pytest.raises(ValueError):
            timeline.integrate(0.01, 0.01)

    def test_integration_matches_dense_sampling_with_lc(self):
        timeline = _two_frame_timeline(response_time_s=0.003)
        t0, t1 = 0.004, 0.02
        analytic = float(timeline.integrate(t0, t1).mean())
        times = np.linspace(t0, t1, 4001)
        sampled = np.mean([float(timeline.luminance_at(float(t)).mean()) for t in times])
        assert analytic == pytest.approx(sampled, rel=2e-3)

    def test_frame_average_luminance_matches_integrate(self):
        timeline = _two_frame_timeline(response_time_s=0.002)
        avg = timeline.frame_average_luminance(2)
        direct = timeline.integrate(2 / 120, 3 / 120)
        assert np.allclose(avg, direct)

    def test_rect_crop(self):
        timeline = _two_frame_timeline()
        crop = timeline.luminance_at(0.001, rect=(0, 2, 1, 3))
        assert crop.shape == (2, 2)

    def test_region_and_pixel_waveforms(self):
        timeline = _two_frame_timeline()
        times = np.linspace(0.0, timeline.duration_s - 1e-4, 16)
        wave = timeline.region_waveform(times)
        assert wave.shape == (16,)
        pixel = timeline.pixel_waveform(times, 0, 0)
        assert pixel.shape == (16,)
        # Alternating frames produce an alternating waveform.
        assert wave.std() > 10

    def test_backwards_state_access_is_consistent(self):
        timeline = _two_frame_timeline(response_time_s=0.002)
        forward = float(timeline.luminance_at(0.05).mean())
        _ = timeline.luminance_at(0.06)
        again = float(timeline.luminance_at(0.05).mean())
        assert forward == pytest.approx(again, rel=1e-5)

    def test_empty_source_rejected(self):
        panel = DisplayPanel(width=6, height=4)

        class Empty:
            n_frames = 0

            def frame(self, i):  # pragma: no cover - never called
                raise AssertionError

        with pytest.raises(ValueError):
            DisplayTimeline(panel, Empty())

    def test_cache_frames_bounds_cache_size(self):
        frames = np.stack([np.full((4, 6), float(v), np.float32) for v in range(20)])
        panel = DisplayPanel(width=6, height=4, refresh_hz=120.0)
        timeline = DisplayTimeline(
            panel, ArrayVideoSource(frames, fps=120.0), cache_frames=3
        )
        for index in range(20):
            timeline.frame_average_luminance(index)
        assert len(timeline._lum_cache) <= 3
        assert len(timeline._avg_cache) <= 3

    def test_cache_disabled_still_exact(self):
        cached = _two_frame_timeline(response_time_s=0.004)
        panel = DisplayPanel(width=6, height=4, refresh_hz=120.0, response_time_s=0.004)
        frames = np.stack(
            [np.full((4, 6), 50.0, np.float32), np.full((4, 6), 200.0, np.float32)] * 4
        )
        uncached = DisplayTimeline(
            panel, ArrayVideoSource(frames, fps=120.0), cache_frames=0
        )
        for index in range(4):
            assert np.allclose(
                cached.frame_average_luminance(index),
                uncached.frame_average_luminance(index),
            )
        assert not uncached._lum_cache and not uncached._avg_cache

    def test_rejects_negative_cache_frames(self):
        frames = np.stack([np.full((4, 6), 50.0, np.float32)] * 2)
        panel = DisplayPanel(width=6, height=4)
        with pytest.raises(ValueError):
            DisplayTimeline(panel, ArrayVideoSource(frames, fps=120.0), cache_frames=-1)
