"""Decoder: noise maps, thresholding, aggregation, cycle-phase estimation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.camera.capture import CameraModel, CapturedFrame
from repro.core.decoder import InFrameDecoder, estimate_cycle_phase, otsu_threshold, two_means_threshold
from repro.core.framing import PseudoRandomSchedule
from repro.core.pipeline import InFrameSender


@pytest.fixture
def decoder(small_config, small_geometry) -> InFrameDecoder:
    return InFrameDecoder(small_config, small_geometry, 54, 75)


def _synthetic_capture(decoder, sender, display_index, noise_std=0.8, seed=0):
    """A capture that saw exactly one display frame (global shutter)."""
    frame = sender.stream.frame(display_index)
    # Map display frame to camera resolution by block-mean resampling.
    from scipy import ndimage

    zoom = (decoder.camera_height / frame.shape[0], decoder.camera_width / frame.shape[1])
    resampled = ndimage.zoom(frame, zoom, order=1, mode="nearest", grid_mode=True)
    rng = np.random.default_rng(seed)
    pixels = np.clip(resampled + rng.normal(0, noise_std, resampled.shape), 0, 255)
    t = (display_index + 0.4) / 120.0
    return CapturedFrame(
        pixels=pixels.astype(np.float32), index=display_index, start_time_s=t, mid_exposure_s=t
    )


class TestThresholds:
    def test_two_means_splits_bimodal(self):
        rng = np.random.default_rng(0)
        values = np.concatenate([rng.normal(0, 0.1, 200), rng.normal(2, 0.3, 200)])
        cut = two_means_threshold(values)
        assert 0.5 < cut < 1.6

    def test_two_means_constant_input(self):
        assert two_means_threshold(np.full(10, 3.0)) == pytest.approx(3.0)

    def test_otsu_splits_bimodal(self):
        rng = np.random.default_rng(1)
        values = np.concatenate([rng.normal(0, 0.1, 300), rng.normal(2, 0.1, 300)])
        cut = otsu_threshold(values)
        assert 0.4 < cut < 1.7

    def test_otsu_constant_input(self):
        assert otsu_threshold(np.full(10, 3.0)) == pytest.approx(3.0)


class TestDecoderConstruction:
    def test_rejects_tiny_camera(self, small_config, small_geometry):
        with pytest.raises(ValueError):
            InFrameDecoder(small_config, small_geometry, 4, 4)

    def test_rejects_unknown_aggregation(self, small_config, small_geometry):
        with pytest.raises(ValueError):
            InFrameDecoder(small_config, small_geometry, 54, 75, aggregation="median")


class TestNoiseMap:
    def test_shape_and_zero_mean(self, decoder, small_sender):
        capture = _synthetic_capture(decoder, small_sender, 0)
        noise = decoder.block_noise_map(capture.pixels)
        assert noise.shape == (8, 12)
        assert abs(noise.mean()) < 1e-9

    def test_separates_bits_on_clean_capture(self, decoder, small_sender):
        capture = _synthetic_capture(decoder, small_sender, 0, noise_std=0.2)
        noise = decoder.block_noise_map(capture.pixels)
        truth = small_sender.stream.ground_truth(0)
        assert noise[truth].mean() > noise[~truth].mean() + 0.2

    def test_shape_mismatch_rejected(self, decoder):
        with pytest.raises(ValueError):
            decoder.block_noise_map(np.zeros((10, 10), np.float32))


class TestObserve:
    def test_stable_phase_full_weight(self, decoder, small_sender):
        capture = _synthetic_capture(decoder, small_sender, 1)
        obs = decoder.observe(capture)
        assert obs.data_frame_index == 0
        assert obs.weight == pytest.approx(1.0)
        assert obs.contamination == pytest.approx(0.0)

    def test_late_transition_assigned_to_next_frame(self, decoder, small_config, small_sender):
        capture = _synthetic_capture(decoder, small_sender, small_config.tau - 1)
        obs = decoder.observe(capture)
        assert obs.data_frame_index == 1

    def test_mid_transition_weight_reduced(self, decoder, small_config, small_sender):
        # Step tau/2 + 1 is inside the crossfade.
        step = small_config.tau // 2 + 1
        capture = _synthetic_capture(decoder, small_sender, step)
        obs = decoder.observe(capture)
        assert obs.weight < 1.0


class TestDecode:
    def test_clean_captures_decode_exactly(self, decoder, small_config, small_sender):
        captures = [
            _synthetic_capture(decoder, small_sender, i, noise_std=0.2, seed=i)
            for i in range(small_config.tau // 2)
        ]
        decoded = decoder.decode(captures)
        assert len(decoded) == 1
        frame = decoded[0]
        truth = small_sender.stream.ground_truth(0)
        assert np.array_equal(frame.bits, truth)
        assert frame.available_ratio > 0.9
        assert frame.parity_error_ratio == 0.0

    def test_empty_capture_list(self, decoder):
        assert decoder.decode([]) == []

    def test_fixed_threshold_respected(self, small_config, small_geometry, small_sender):
        config = small_config.with_updates(threshold=0.5)
        decoder = InFrameDecoder(config, small_geometry, 54, 75)
        captures = [_synthetic_capture(decoder, small_sender, i, noise_std=0.2) for i in range(4)]
        decoded = decoder.decode(captures)
        assert decoded[0].threshold == 0.5

    def test_mean_aggregation_mode(self, small_config, small_geometry, small_sender):
        decoder = InFrameDecoder(small_config, small_geometry, 54, 75, aggregation="mean")
        captures = [
            _synthetic_capture(decoder, small_sender, i, noise_std=0.2, seed=i) for i in range(4)
        ]
        decoded = decoder.decode(captures)
        truth = small_sender.stream.ground_truth(0)
        assert np.array_equal(decoded[0].bits, truth)

    def test_decoded_frame_statistics_consistent(self, decoder, small_sender, small_config):
        captures = [
            _synthetic_capture(decoder, small_sender, i, noise_std=0.5, seed=i)
            for i in range(small_config.tau)
        ]
        decoded = decoder.decode(captures)
        for frame in decoded:
            assert frame.gob_available.shape == (4, 6)
            assert 0.0 <= frame.available_ratio <= 1.0
            assert 0.0 <= frame.parity_error_ratio <= 1.0
            assert frame.n_captures >= 1


class TestPhaseEstimation:
    def test_recovers_cycle_phase(self, small_config, small_video):
        sender = InFrameSender(small_config, small_video)
        timeline = sender.timeline()
        camera = CameraModel(width=75, height=54, readout_s=0.004, exposure_s=1 / 500)
        decoder = InFrameDecoder(small_config, sender.geometry, 54, 75)
        captures = camera.capture_sequence(timeline, 20, rng=np.random.default_rng(0))
        phase = estimate_cycle_phase(captures, decoder)
        cycle = small_config.tau / small_config.refresh_hz
        assert 0.0 <= phase < cycle

    def test_needs_three_captures(self, decoder):
        with pytest.raises(ValueError):
            estimate_cycle_phase([], decoder)
