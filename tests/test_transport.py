"""Transport layer: packets, fountain coding, ARQ, carousel, end-to-end."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.experiments import ExperimentScale
from repro.core.config import InFrameConfig
from repro.core.pipeline import run_transport_link
from repro.transport import (
    FLAG_FIN,
    HEADER_BYTES,
    PACKET_OVERHEAD,
    ArqReceiver,
    ArqSender,
    ArqSession,
    BroadcastCarousel,
    CarouselReceiver,
    FramePacketCodec,
    GobLossModel,
    LTDecoder,
    LTEncoder,
    PacketFormatError,
    PacketType,
    build_packet,
    parse_header,
    parse_nack,
    parse_packet,
    robust_soliton_distribution,
    scan_packets,
)
from repro.transport.erasures import perfect_frame
from repro.transport.fountain import symbol_neighbors
from repro.transport.packet import PacketSlotAccumulator


@pytest.fixture(scope="module")
def grid_config() -> InFrameConfig:
    """The paper's 30x50 Block grid with tiny pixels (bit geometry only)."""
    return InFrameConfig(element_pixels=1, pixels_per_block=2)


@pytest.fixture(scope="module")
def codec(grid_config) -> FramePacketCodec:
    return FramePacketCodec(grid_config, rs_n=60, rs_k=24)


# ----------------------------------------------------------------------
# Packet headers
# ----------------------------------------------------------------------
class TestPacketFormat:
    def test_roundtrip_preserves_fields(self):
        raw = build_packet(
            PacketType.DATA, 7, 1234, b"hello", 5000, flags=FLAG_FIN
        )
        packet = parse_packet(raw)
        assert packet.header.ptype == PacketType.DATA
        assert packet.header.session_id == 7
        assert packet.header.seq == 1234
        assert packet.header.total_len == 5000
        assert packet.header.length == 5
        assert packet.header.flags & FLAG_FIN
        assert packet.payload == b"hello"

    def test_trailing_padding_ignored(self):
        raw = build_packet(PacketType.FOUNTAIN, 1, 0, b"abc", 3)
        assert parse_packet(raw + b"\x00" * 40).payload == b"abc"

    def test_rejects_truncated_header(self):
        with pytest.raises(PacketFormatError):
            parse_header(b"IF\x11\x00")

    def test_rejects_bad_magic(self):
        raw = bytearray(build_packet(PacketType.DATA, 1, 0, b"x", 1))
        raw[0] = ord("X")
        with pytest.raises(PacketFormatError):
            parse_header(bytes(raw))

    def test_rejects_header_corruption(self):
        raw = bytearray(build_packet(PacketType.DATA, 1, 0, b"x", 1))
        raw[6] ^= 0xFF  # seq field; caught by the header CRC
        with pytest.raises(PacketFormatError):
            parse_header(bytes(raw))

    def test_rejects_payload_corruption(self):
        raw = bytearray(build_packet(PacketType.DATA, 1, 0, b"payload", 7))
        raw[HEADER_BYTES] ^= 0x01
        with pytest.raises(PacketFormatError):
            parse_packet(bytes(raw))

    def test_rejects_truncated_payload(self):
        raw = build_packet(PacketType.DATA, 1, 0, b"payload", 7)
        with pytest.raises(PacketFormatError):
            parse_packet(raw[: HEADER_BYTES + 3])

    def test_scan_resynchronises_after_garbage(self):
        a = build_packet(PacketType.DATA, 1, 0, b"first", 10)
        b = build_packet(PacketType.DATA, 1, 5, b"second", 10)
        stream = a + b"\xde\xadIF\x00garbage" + b
        packets = scan_packets(stream)
        assert [p.payload for p in packets] == [b"first", b"second"]


# ----------------------------------------------------------------------
# Frame codec: packets onto data frames
# ----------------------------------------------------------------------
class TestFramePacketCodec:
    def test_capacity_accounts_for_overhead(self, codec):
        assert codec.max_payload_bytes == codec.frame_payload_bytes - PACKET_OVERHEAD

    def test_clean_frame_roundtrip(self, codec):
        raw = build_packet(PacketType.DATA, 3, 0, b"A" * codec.max_payload_bytes, 99)
        out = codec.decode(perfect_frame(codec, raw))
        assert out is not None
        assert parse_packet(out).payload == b"A" * codec.max_payload_bytes

    def test_erasures_within_radius_corrected(self, codec, rng):
        raw = build_packet(PacketType.DATA, 3, 0, b"B" * 10, 10)
        loss = GobLossModel(0.08)
        frame = loss.degrade(perfect_frame(codec, raw), rng)
        assert frame.gob_available.sum() < frame.gob_available.size
        out = codec.decode(frame)
        assert out is not None and parse_packet(out).payload == b"B" * 10

    def test_burst_beyond_radius_is_packet_erasure(self, codec, rng):
        raw = build_packet(PacketType.DATA, 3, 0, b"C" * 10, 10)
        loss = GobLossModel(0.7, burst=True)
        assert codec.decode(loss.degrade(perfect_frame(codec, raw), rng)) is None

    def test_slot_accumulation_merges_observations(self, codec, rng):
        # Each single observation is beyond the RS radius, but the two
        # passes miss different GOBs; the merged slot decodes.
        raw = build_packet(PacketType.DATA, 3, 0, b"D" * 10, 10)
        loss = GobLossModel(0.45)
        accumulator = PacketSlotAccumulator(codec, n_slots=1)
        single_failures = 0
        for _ in range(2):
            frame = loss.degrade(perfect_frame(codec, raw), rng)
            if codec.decode(frame) is None:
                single_failures += 1
            accumulator.add_frame(frame)
        assert single_failures == 2
        raws = accumulator.decode_packets()
        assert len(raws) == 1 and parse_packet(raws[0]).payload == b"D" * 10


# ----------------------------------------------------------------------
# Fountain coding
# ----------------------------------------------------------------------
class TestFountain:
    def test_distribution_is_normalized(self):
        for k in (1, 2, 10, 100):
            dist = robust_soliton_distribution(k)
            assert dist.shape == (k,)
            assert np.all(dist >= 0)
            assert dist.sum() == pytest.approx(1.0)

    def test_systematic_prefix(self):
        encoder = LTEncoder(bytes(range(100)), symbol_size=10, seed=9)
        for i in range(encoder.k):
            assert encoder.symbol(i) == bytes(range(100))[i * 10 : (i + 1) * 10]

    def test_neighbors_deterministic(self):
        dist = robust_soliton_distribution(20)
        a = symbol_neighbors(20, seed=5, seq=321, distribution=dist)
        b = symbol_neighbors(20, seed=5, seq=321, distribution=dist)
        assert np.array_equal(a, b)
        c = symbol_neighbors(20, seed=6, seq=321, distribution=dist)
        assert not np.array_equal(a, c) or a.size != c.size

    def test_peeling_decodes_systematic_pass(self):
        payload = bytes(np.random.default_rng(0).integers(0, 256, 95, dtype=np.uint8))
        encoder = LTEncoder(payload, symbol_size=10, seed=4)
        decoder = LTDecoder(encoder.k, 10, len(payload), seed=4)
        for seq in range(encoder.k):
            decoder.add_symbol(seq, encoder.symbol(seq))
        assert decoder.complete
        assert decoder.data() == payload

    def test_decodes_from_nonsystematic_symbols_only(self):
        # A mid-stream receiver sees no systematic symbols at all.
        payload = bytes(np.random.default_rng(1).integers(0, 256, 120, dtype=np.uint8))
        encoder = LTEncoder(payload, symbol_size=12, seed=2)
        decoder = LTDecoder(encoder.k, 12, len(payload), seed=2)
        seq = 5000
        while not decoder.complete:
            decoder.add_symbol(seq, encoder.symbol(seq))
            seq += 1
        assert decoder.data() == payload
        assert decoder.n_received <= int(np.ceil(1.5 * encoder.k))

    def test_redundant_symbols_counted(self):
        encoder = LTEncoder(b"0123456789", symbol_size=5, seed=1)
        decoder = LTDecoder(encoder.k, 5, 10, seed=1)
        decoder.add_symbol(0, encoder.symbol(0))
        decoder.add_symbol(0, encoder.symbol(0))
        assert decoder.n_redundant == 1

    def test_incomplete_decode_raises(self):
        decoder = LTDecoder(4, 5, 20, seed=1)
        with pytest.raises(ValueError, match="incomplete"):
            decoder.data()


# ----------------------------------------------------------------------
# ARQ
# ----------------------------------------------------------------------
class TestArq:
    def test_sender_offsets_and_fin(self):
        sender = ArqSender(b"x" * 25, chunk_bytes=10, session_id=3)
        headers = [parse_packet(p).header for p in sender.all_packets()]
        assert [h.seq for h in headers] == [0, 10, 20]
        assert [bool(h.flags & FLAG_FIN) for h in headers] == [False, False, True]
        assert all(h.total_len == 25 for h in headers)

    def test_receiver_bootstraps_from_headers(self):
        sender = ArqSender(b"abcdefghij", chunk_bytes=4, session_id=9)
        receiver = ArqReceiver()
        for raw in sender.all_packets():
            receiver.receive(raw)
        assert receiver.session_id == 9
        assert receiver.complete
        assert receiver.payload() == b"abcdefghij"

    def test_missing_ranges_and_nack_roundtrip(self):
        sender = ArqSender(bytes(range(30)), chunk_bytes=10)
        receiver = ArqReceiver()
        packets = sender.all_packets()
        receiver.receive(packets[0])
        receiver.receive(packets[2])
        assert receiver.missing_ranges() == [(10, 10)]
        ranges = parse_nack(parse_packet(receiver.nack()))
        assert ranges == [(10, 10)]
        resent = sender.packets_for_ranges(ranges)
        assert [parse_packet(p).header.seq for p in resent] == [10]

    def test_malformed_packets_rejected_not_fatal(self):
        receiver = ArqReceiver()
        assert not receiver.receive(b"junk that is long enough to look at")
        assert receiver.n_rejected == 1

    def test_session_retransmits_only_missing(self):
        payload = bytes(np.random.default_rng(2).integers(0, 256, 50, dtype=np.uint8))
        dropped = {10}  # drop the middle packet once

        def forward(packets):
            out = []
            for raw in packets:
                seq = parse_packet(raw).header.seq
                if seq in dropped:
                    dropped.discard(seq)
                    continue
                out.append(raw)
            return out

        session = ArqSession(payload, 10, forward, rng=np.random.default_rng(0))
        stats, delivered = session.run()
        assert delivered == payload
        assert stats.rounds == 2
        assert stats.retransmissions == 1  # only the dropped packet again
        assert stats.nacks_delivered == 1
        assert stats.timeouts == 0

    def test_lost_feedback_times_out_and_backs_off(self):
        payload = b"z" * 30
        calls = {"n": 0}

        def forward(packets):
            calls["n"] += 1
            return packets if calls["n"] >= 3 else []  # channel dark for 2 rounds

        session = ArqSession(
            payload,
            10,
            forward,
            feedback_loss=1.0,
            timeout_s=0.25,
            backoff=2.0,
            packet_airtime_s=0.1,
            rng=np.random.default_rng(0),
        )
        stats, delivered = session.run()
        assert delivered == payload
        assert stats.rounds == 3
        assert stats.timeouts == 2
        assert stats.retransmissions == 6  # the whole batch, twice
        # elapsed = 9 packets * 0.1s airtime + 0.25s + 0.5s backoff waits
        assert stats.elapsed_s == pytest.approx(0.9 + 0.25 + 0.5)

    def test_gives_up_after_max_rounds(self):
        stats, delivered = ArqSession(
            b"q" * 20,
            10,
            lambda packets: [],
            max_rounds=3,
            rng=np.random.default_rng(0),
        ).run()
        assert delivered is None
        assert not stats.delivered
        assert stats.rounds == 3


# ----------------------------------------------------------------------
# Carousel
# ----------------------------------------------------------------------
class TestCarousel:
    def test_midstream_join_bootstraps_from_headers(self):
        payload = bytes(np.random.default_rng(3).integers(0, 256, 140, dtype=np.uint8))
        carousel = BroadcastCarousel(payload, symbol_bytes=14, session_id=77)
        receiver = CarouselReceiver()
        stream = carousel.stream(start=12345)  # joined long after start
        while not receiver.complete:
            receiver.receive(next(stream))
        assert receiver.payload() == payload
        assert receiver.session_id == 77
        assert receiver.decoder.n_received <= int(np.ceil(1.5 * carousel.k))

    def test_new_session_resets_receiver(self):
        first = BroadcastCarousel(b"old payload!", symbol_bytes=4, session_id=1)
        second = BroadcastCarousel(b"new payload.", symbol_bytes=4, session_id=2)
        receiver = CarouselReceiver()
        receiver.receive(first.packet(0))
        for raw in second.stream():
            if receiver.complete:
                break
            receiver.receive(raw)
        assert receiver.session_id == 2
        assert receiver.payload() == b"new payload."

    def test_ignores_foreign_and_malformed_packets(self):
        carousel = BroadcastCarousel(b"payload body", symbol_bytes=4)
        receiver = CarouselReceiver()
        assert not receiver.receive(b"\x00" * 30)
        assert not receiver.receive(build_packet(PacketType.DATA, 1, 0, b"d", 1))
        assert receiver.n_rejected == 1
        assert receiver.decoder is None

    def test_join_offset_records_first_accepted_symbol(self):
        carousel = BroadcastCarousel(b"payload body here", symbol_bytes=4)
        receiver = CarouselReceiver()
        assert receiver.join_offset is None
        stream = carousel.stream(start=42)
        while not receiver.complete:
            receiver.receive(next(stream))
        assert receiver.join_offset == 42

    def test_symbols_consumed_counts_distinct_symbols_only(self):
        carousel = BroadcastCarousel(b"payload body here", symbol_bytes=4)
        receiver = CarouselReceiver()
        assert receiver.symbols_consumed == 0
        receiver.receive(carousel.packet(3))
        receiver.receive(carousel.packet(3))  # re-aired: accepted, not consumed
        assert receiver.n_received == 2
        assert receiver.symbols_consumed == 1

    def test_join_metadata_resets_with_new_session(self):
        first = BroadcastCarousel(b"old payload!", symbol_bytes=4, session_id=1)
        second = BroadcastCarousel(b"new payload.", symbol_bytes=4, session_id=2)
        receiver = CarouselReceiver()
        receiver.receive(first.packet(9))
        assert receiver.join_offset == 9
        receiver.receive(second.packet(0))
        assert receiver.join_offset == 0
        assert receiver.symbols_consumed == 1
        assert receiver.session_id == 2


# ----------------------------------------------------------------------
# End to end over the PHY
# ----------------------------------------------------------------------
class TestTransportOverPhy:
    """The acceptance scenario: textured content defeats one open-loop
    pass, while the fountain and ARQ schemes deliver -- receivers
    bootstrapping purely from packet headers."""

    @pytest.fixture(scope="class")
    def phy(self):
        scale = ExperimentScale.quick()
        config = scale.config(amplitude=30.0, tau=12)
        payload = bytes(
            np.random.default_rng(5).integers(0, 256, 84, dtype=np.uint8)
        )
        return {"scale": scale, "config": config, "payload": payload}

    def _run(self, phy, mode, **kwargs):
        return run_transport_link(
            phy["config"],
            phy["scale"].video("video"),
            phy["payload"],
            mode=mode,
            camera=phy["scale"].camera(),
            seed=3,
            max_rounds=6,
            **kwargs,
        )

    def test_plain_single_pass_fails(self, phy):
        run = self._run(phy, "plain")
        assert not run.stats.delivered
        assert run.payload is None
        assert run.stats.rounds == 1

    def test_fountain_delivers_with_bounded_overhead(self, phy):
        run = self._run(phy, "fountain")
        assert run.stats.delivered
        assert run.payload == phy["payload"]
        # Reception overhead: decoded packets needed vs the k minimum.
        assert run.stats.packets_recovered <= 1.5 * run.stats.k_packets
        assert run.stats.goodput_bps > 0

    def test_arq_delivers_within_bounded_rounds(self, phy):
        run = self._run(phy, "arq")
        assert run.stats.delivered
        assert run.payload == phy["payload"]
        assert run.arq_stats is not None
        assert run.arq_stats.rounds <= 6

    def test_rejects_unknown_mode(self, phy):
        with pytest.raises(ValueError, match="mode"):
            self._run(phy, "telepathy")
