"""RGB colour support across the pipeline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.camera.capture import CameraModel
from repro.core.config import InFrameConfig
from repro.core.encoder import DataFrameEncoder
from repro.core.framing import PseudoRandomSchedule
from repro.core.geometry import FrameGeometry
from repro.core.multiplexer import MultiplexedStream
from repro.core.pipeline import InFrameSender, run_link
from repro.display.panel import DisplayPanel
from repro.video.source import ArrayVideoSource
from repro.video.synthetic import rgb_color_video, rgb_sunrise_video, sunrise_video


@pytest.fixture
def color_video(small_config):
    return rgb_color_video(80, 112, (127.0, 127.0, 127.0), n_frames=12)


class TestColorSources:
    def test_rgb_color_shape_and_channels(self, color_video):
        assert color_video.channels == 3
        assert color_video.frame(0).shape == (80, 112, 3)

    def test_rgb_color_validation(self):
        with pytest.raises(ValueError):
            rgb_color_video(8, 8, (300.0, 0.0, 0.0))
        with pytest.raises(ValueError):
            rgb_color_video(8, 8, (1.0, 2.0))

    def test_rgb_sunrise_channels_differ(self):
        frame = rgb_sunrise_video(60, 90, n_frames=4).frame(0)
        assert frame.shape == (60, 90, 3)
        # The sky is graded cool: blue above red near the top.
        top = frame[5]
        assert float(top[:, 2].mean()) > float(top[:, 0].mean())

    def test_rgb_sunrise_luminance_tracks_gray(self):
        gray = sunrise_video(60, 90, n_frames=4, grain_std=0.0).frame(1)
        color = rgb_sunrise_video(60, 90, n_frames=4, grain_std=0.0).frame(1)
        # Channel-mean of the graded clip stays within ~20% of the gray clip.
        ratio = color.mean() / gray.mean()
        assert 0.75 < ratio < 1.25

    def test_array_source_accepts_color(self):
        frames = np.zeros((2, 4, 4, 3), dtype=np.float32)
        source = ArrayVideoSource(frames)
        assert source.channels == 3

    def test_array_source_rejects_bad_channel_count(self):
        with pytest.raises(ValueError):
            ArrayVideoSource(np.zeros((2, 4, 4, 2), dtype=np.float32))

    def test_base_source_rejects_bad_channels(self):
        from repro.video.source import VideoSource

        with pytest.raises(ValueError):
            VideoSource(4, 4, 30.0, 1, channels=2)


class TestColorEncoding:
    def test_pair_complementary_per_channel(self, small_config, color_video):
        geometry = FrameGeometry(small_config, 80, 112)
        encoder = DataFrameEncoder(small_config, geometry)
        bits = PseudoRandomSchedule(small_config).bits(0)
        frame = color_video.frame(0)
        plus, minus = encoder.multiplexed_pair(frame, bits)
        assert plus.shape == frame.shape
        assert np.allclose((plus + minus) / 2.0, frame, atol=1e-4)

    def test_same_modulation_on_every_channel(self, small_config, color_video):
        geometry = FrameGeometry(small_config, 80, 112)
        encoder = DataFrameEncoder(small_config, geometry)
        bits = np.ones((small_config.block_rows, small_config.block_cols), bool)
        plus, _ = encoder.multiplexed_pair(color_video.frame(0), bits)
        diff = plus - color_video.frame(0)
        assert np.allclose(diff[..., 0], diff[..., 1])
        assert np.allclose(diff[..., 1], diff[..., 2])

    def test_headroom_bound_by_extreme_channel(self, small_config):
        geometry = FrameGeometry(small_config, 80, 112)
        encoder = DataFrameEncoder(small_config, geometry)
        # Red nearly saturated: amplitude must respect 255 - 250 = 5.
        video = rgb_color_video(80, 112, (250.0, 127.0, 127.0), n_frames=1).frame(0)
        bits = np.ones((small_config.block_rows, small_config.block_cols), bool)
        field = encoder.modulation_field(video, bits)
        assert field.max() <= 5.0 + 1e-5

    def test_multiplexed_stream_color_frames(self, small_config, color_video):
        stream = MultiplexedStream(
            small_config, color_video, PseudoRandomSchedule(small_config)
        )
        frame = stream.frame(0)
        assert frame.shape == (80, 112, 3)
        pair_mean = (stream.frame(0) + stream.frame(1)) / 2.0
        assert np.allclose(pair_mean, color_video.frame(0), atol=1e-4)


class TestColorDisplayAndLink:
    def test_panel_luminance_uses_rec709_luma(self):
        panel = DisplayPanel(width=4, height=4)
        green = np.zeros((4, 4, 3), np.float32)
        green[..., 1] = 200.0
        blue = np.zeros((4, 4, 3), np.float32)
        blue[..., 2] = 200.0
        assert float(panel.emitted_luminance(green).mean()) > float(
            panel.emitted_luminance(blue).mean()
        )

    def test_gray_rgb_matches_grayscale_luminance(self):
        panel = DisplayPanel(width=4, height=4)
        gray = np.full((4, 4), 127.0, np.float32)
        rgb = np.full((4, 4, 3), 127.0, np.float32)
        assert np.allclose(
            panel.emitted_luminance(gray), panel.emitted_luminance(rgb), rtol=1e-5
        )

    def test_color_link_end_to_end(self, small_config, color_video, small_camera):
        run = run_link(small_config, color_video, camera=small_camera, seed=5)
        assert run.stats.bit_accuracy > 0.8

    def test_color_timeline_luminance_is_2d(self, small_config, color_video):
        sender = InFrameSender(small_config, color_video)
        lum = sender.timeline().luminance_at(0.05)
        assert lum.ndim == 2
