"""Broadcast serving: cohort grammar, render-once sessions, fleet fan-out."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.experiments import ExperimentScale
from repro.display.scheduler import DisplayTimeline
from repro.faults import FaultPlan
from repro.serve import (
    BroadcastSession,
    CohortSpecError,
    compile_receivers,
    deterministic_payload,
    parse_cohorts,
    run_fleet,
)
from repro.serve.cohort import CohortSpec

QUICK = ExperimentScale.quick()

#: One healthy cohort plus one faulted, distant, late-joining cohort.
FLEET_SPEC = (
    "near:n=3,join_spread=0.5,dwell=2.0"
    "|far:n=2,distance=1.3,join=0.4,join_spread=0.4,dwell=2.5,"
    "faults=drop:p=0.2/blackout:at=0.3+dur=0.4"
)


@pytest.fixture(scope="module")
def quick_session():
    """One shared broadcast session at the quick experiment scale."""
    config = QUICK.config()
    payload = deterministic_payload(64, seed=1)
    with BroadcastSession(config, QUICK.video("gray"), payload) as session:
        yield session


# ----------------------------------------------------------------------
# Cohort grammar
# ----------------------------------------------------------------------
class TestCohortGrammar:
    def test_parses_names_and_parameters(self):
        cohorts = parse_cohorts(
            "lobby:n=24,join_spread=1.5|far:n=8,distance=1.6,heal=1"
        )
        assert [c.name for c in cohorts] == ["lobby", "far"]
        assert cohorts[0].n == 24
        assert cohorts[0].join_spread_s == 1.5
        assert cohorts[1].distance == 1.6
        assert cohorts[1].heal is True

    def test_bare_name_uses_defaults(self):
        (cohort,) = parse_cohorts("solo")
        assert cohort.n == 1
        assert cohort.distance == 1.0
        assert cohort.faults is None
        assert cohort.heal is None

    def test_embedded_fault_grammar_translates(self):
        (cohort,) = parse_cohorts(
            "noisy:faults=drop:p=0.15+burst=2/blackout:at=0.5+dur=0.4", seed=7
        )
        assert cohort.faults is not None
        assert cohort.faults.seed == 7
        assert cohort.faults.spec() == "drop:p=0.15,burst=2;blackout:at=0.5,dur=0.4"

    def test_unknown_key_rejected(self):
        with pytest.raises(CohortSpecError, match="no parameter 'speed'"):
            parse_cohorts("a:speed=3")

    def test_malformed_pair_rejected(self):
        with pytest.raises(CohortSpecError, match="expected key=value"):
            parse_cohorts("a:n")

    def test_duplicate_parameter_rejected(self):
        with pytest.raises(CohortSpecError, match="repeats parameter"):
            parse_cohorts("a:n=2,n=3")

    def test_duplicate_cohort_name_rejected(self):
        with pytest.raises(CohortSpecError, match="duplicate cohort"):
            parse_cohorts("a:n=1|a:n=2")

    def test_empty_spec_rejected(self):
        with pytest.raises(CohortSpecError, match="empty"):
            parse_cohorts("||")

    def test_non_numeric_value_rejected(self):
        with pytest.raises(CohortSpecError, match="non-numeric"):
            parse_cohorts("a:n=lots")

    def test_malformed_name_rejected(self):
        # A bare parameter list is a typo, not a cohort called "n=4".
        with pytest.raises(CohortSpecError, match="malformed cohort name"):
            parse_cohorts("n=4")
        with pytest.raises(CohortSpecError, match="malformed cohort name"):
            parse_cohorts("near far:n=2")

    def test_validation_catches_bad_ranges(self):
        with pytest.raises(CohortSpecError, match="n must be >= 1"):
            CohortSpec(name="a", n=0)
        with pytest.raises(CohortSpecError, match="distance must be > 0"):
            CohortSpec(name="a", distance=0.0)
        with pytest.raises(CohortSpecError, match="join_spread"):
            CohortSpec(name="a", join_spread_s=-1.0)


# ----------------------------------------------------------------------
# Receiver compilation
# ----------------------------------------------------------------------
class TestCompileReceivers:
    def test_global_sequential_ids_across_cohorts(self):
        specs = compile_receivers(parse_cohorts("a:n=3|b:n=2"))
        assert [s.receiver_id for s in specs] == [0, 1, 2, 3, 4]
        assert [s.cohort for s in specs] == ["a", "a", "a", "b", "b"]

    def test_same_seed_bit_identical(self):
        spec = "a:n=4,join_spread=2.0,offset_spread=0.01,drift_spread_ppm=50"
        one = compile_receivers(parse_cohorts(spec, seed=3), seed=3)
        two = compile_receivers(parse_cohorts(spec, seed=3), seed=3)
        assert one == two

    def test_different_seed_different_draws(self):
        spec = "a:n=4,join_spread=2.0"
        one = compile_receivers(parse_cohorts(spec, seed=1), seed=1)
        two = compile_receivers(parse_cohorts(spec, seed=2), seed=2)
        assert [s.join_s for s in one] != [s.join_s for s in two]

    def test_draws_land_inside_their_spreads(self):
        specs = compile_receivers(
            parse_cohorts("a:n=16,join=1.0,join_spread=2.0,drift_ppm=10,"
                          "drift_spread_ppm=5")
        )
        for s in specs:
            assert 1.0 <= s.join_s <= 3.0
            assert 5e-6 <= s.extra_drift <= 15e-6

    def test_fault_plans_reseeded_per_receiver(self):
        specs = compile_receivers(parse_cohorts("a:n=3,faults=drop:p=0.3", seed=5))
        seeds = [s.faults.seed for s in specs]
        assert len(set(seeds)) == 3
        assert all(s.faults.spec() == "drop:p=0.3" for s in specs)

    def test_heal_defaults_to_faults_presence(self):
        faulted, clean = compile_receivers(
            parse_cohorts("bad:n=1,faults=drop:p=0.1|good:n=1")
        )
        assert faulted.heal is True
        assert clean.heal is False
        (forced,) = compile_receivers(
            parse_cohorts("bad:n=1,faults=drop:p=0.1,heal=0")
        )
        assert forced.heal is False

    def test_camera_derivation_inherits_and_overrides(self):
        base = QUICK.camera()
        (spec,) = compile_receivers(
            parse_cohorts("far:distance=2.0,fps=24,offset=0.1,join=1.0")
        )
        camera = spec.camera(base)
        assert camera.fps == 24.0
        assert camera.exposure_s == base.exposure_s
        assert camera.clock_offset_s == pytest.approx(1.1)
        assert camera.screen_fill == pytest.approx(base.screen_fill / 2.0)


# ----------------------------------------------------------------------
# The broadcast session
# ----------------------------------------------------------------------
class TestBroadcastSession:
    def test_cycle_aligns_to_video_loop(self, quick_session):
        config = quick_session.config
        assert quick_session.period_frames == quick_session.cycle_packets * config.tau
        assert quick_session.period_frames % quick_session.loop_frames == 0
        assert quick_session.cycle_packets >= quick_session.k

    def test_prepare_renders_exactly_one_cycle(self, quick_session):
        memo = quick_session.prepare(quick_session.cycle_s)
        assert quick_session.render_cache_misses == quick_session.period_frames
        # A second prepare at any already-covered horizon re-renders nothing.
        again = quick_session.prepare(quick_session.cycle_s)
        assert again is memo
        assert quick_session.render_cache_misses == quick_session.period_frames

    def test_memoized_fields_match_direct_rendering(self, quick_session):
        memo = quick_session.prepare(quick_session.cycle_s)
        period = quick_session.period_frames
        direct = DisplayTimeline(quick_session.panel, memo.inner.source)
        for index in range(period, period + 4):
            assert np.array_equal(
                memo.frame_average_luminance(index),
                direct.frame_average_luminance(index),
            )

    def test_steady_state_cycles_repeat_bit_exactly(self, quick_session):
        # The render-cache key (index mod period) assumes the LC state is
        # periodic; verify on the actual stream with two fresh timelines.
        memo = quick_session.prepare(3 * quick_session.cycle_s)
        period = quick_session.period_frames
        one = DisplayTimeline(quick_session.panel, memo.inner.source)
        two = DisplayTimeline(quick_session.panel, memo.inner.source)
        for offset in range(3):
            assert np.array_equal(
                one.frame_average_luminance(period + offset),
                two.frame_average_luminance(2 * period + offset),
            )

    def test_cache_key_folds_indices_mod_period(self, quick_session):
        memo = quick_session.prepare(quick_session.cycle_s)
        period = quick_session.period_frames
        early = memo.frame_average_luminance(3)
        late = memo.frame_average_luminance(3 + period)
        assert np.shares_memory(early, late)  # the very same cached field

    def test_shared_store_when_budget_allows(self, quick_session):
        quick_session.prepare(quick_session.cycle_s)
        assert quick_session.shared

    def test_rejects_empty_payload(self):
        with pytest.raises(ValueError, match="payload"):
            BroadcastSession(QUICK.config(), QUICK.video("gray"), b"")

    def test_rejects_mismatched_panel(self, small_panel):
        with pytest.raises(ValueError, match="does not match"):
            BroadcastSession(
                QUICK.config(), QUICK.video("gray"), b"x", panel=small_panel
            )

    def test_prepare_validates_horizon_and_closed_state(self):
        session = BroadcastSession(
            QUICK.config(), QUICK.video("gray"), deterministic_payload(16)
        )
        with pytest.raises(ValueError, match="horizon_s"):
            session.prepare(0.0)
        session.close()
        with pytest.raises(RuntimeError, match="closed"):
            session.prepare(1.0)

    def test_deterministic_payload_is_seed_stamped(self):
        assert deterministic_payload(32, seed=1) == deterministic_payload(32, seed=1)
        assert deterministic_payload(32, seed=1) != deterministic_payload(32, seed=2)


# ----------------------------------------------------------------------
# Fleet fan-out
# ----------------------------------------------------------------------
class TestFleet:
    @pytest.fixture(scope="class")
    def fleet(self, quick_session):
        cohorts = parse_cohorts(FLEET_SPEC, seed=1)
        return run_fleet(
            quick_session, cohorts, base_camera=QUICK.camera(), seed=1, workers=None
        )

    def test_every_receiver_reported_in_id_order(self, fleet):
        assert [r.receiver_id for r in fleet.results] == list(range(5))
        assert fleet.report.receivers == 5

    def test_healthy_cohort_delivers(self, fleet):
        near = next(c for c in fleet.report.cohorts if c.name == "near")
        assert near.delivered == near.receivers
        assert near.mean_time_to_deliver_s is not None
        assert near.mean_time_to_deliver_s > 0.0
        assert near.mean_goodput_kbps is not None

    def test_join_analytics_exposed(self, fleet):
        for result in fleet.results:
            if result.delivered:
                assert result.join_offset is not None
                assert result.symbols_consumed >= fleet.report.k
                assert result.time_to_deliver_s > 0.0

    def test_faulted_cohort_heals(self, fleet):
        far = next(c for c in fleet.report.cohorts if c.name == "far")
        assert far.receivers == 2
        # Healing is on by default for a faulted cohort; the report keys
        # exist either way (the CI smoke job asserts the same shape).
        report_dict = far.as_dict()
        for key in ("delivery_rate", "mean_time_to_deliver_s", "mean_goodput_kbps"):
            assert key in report_dict

    def test_render_cache_reused_across_receivers(self, fleet, quick_session):
        assert fleet.report.renders == quick_session.period_frames
        assert fleet.report.render_reads > fleet.report.renders
        assert fleet.report.reuse_ratio > 1.0

    def test_cohort_metrics_flow_through_obs(self, fleet):
        metrics = fleet.telemetry.metrics
        assert metrics["serve.cohort.near.receivers"]["value"] == 3
        assert metrics["serve.cohort.far.receivers"]["value"] == 2
        assert "serve.cohort.near.time_to_deliver_s" in metrics

    def test_workers_bit_identical_including_faulted_cohort(self, quick_session, fleet):
        parallel = run_fleet(
            quick_session,
            parse_cohorts(FLEET_SPEC, seed=1),
            base_camera=QUICK.camera(),
            seed=1,
            workers=2,
        )
        assert parallel.report.work_json() == fleet.report.work_json()
        assert parallel.telemetry.metrics_json() == fleet.telemetry.metrics_json()

    def test_mid_cycle_joiner_bootstraps(self, quick_session):
        cohorts = parse_cohorts("late:n=1,join=1.1,dwell=2.0", seed=2)
        fleet = run_fleet(
            quick_session, cohorts, base_camera=QUICK.camera(), seed=2, workers=None
        )
        (result,) = fleet.results
        assert result.delivered
        assert result.join_offset is not None
        assert result.join_offset > 0  # tuned in mid-carousel-cycle
