"""Reed-Solomon codec: round trips, capacity bounds, errors and erasures."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ecc.reed_solomon import ReedSolomonCodec, RSDecodingError


@pytest.fixture(scope="module")
def rs15_11() -> ReedSolomonCodec:
    return ReedSolomonCodec(15, 11)


class TestConstruction:
    def test_rejects_bad_sizes(self):
        with pytest.raises(ValueError):
            ReedSolomonCodec(10, 10)
        with pytest.raises(ValueError):
            ReedSolomonCodec(256, 10)
        with pytest.raises(ValueError):
            ReedSolomonCodec(10, 0)

    def test_generator_has_consecutive_roots(self):
        codec = ReedSolomonCodec(20, 14, first_consecutive_root=1)
        for i in range(codec.n_parity):
            root = codec.field.exp(codec.fcr + i)
            assert codec.field.poly_eval(codec._generator, root) == 0


class TestEncoding:
    def test_systematic_layout(self, rs15_11):
        message = bytes(range(11))
        codeword = rs15_11.encode(message)
        assert len(codeword) == 15
        assert codeword[:11] == message

    def test_codeword_passes_check(self, rs15_11):
        assert rs15_11.check(rs15_11.encode(bytes(11)))

    def test_wrong_message_length_rejected(self, rs15_11):
        with pytest.raises(ValueError):
            rs15_11.encode(bytes(10))

    def test_all_zero_message(self, rs15_11):
        codeword = rs15_11.encode(bytes(11))
        assert codeword == bytes(15)

    @given(st.binary(min_size=11, max_size=11))
    @settings(max_examples=100)
    def test_every_codeword_is_valid(self, message):
        codec = ReedSolomonCodec(15, 11)
        assert codec.check(codec.encode(message))


class TestDecoding:
    def test_error_free_roundtrip(self, rs15_11):
        message = b"hello world"
        decoded, fixed = rs15_11.decode(rs15_11.encode(message))
        assert decoded == message
        assert fixed == 0

    def test_single_error_corrected(self, rs15_11):
        message = b"hello world"
        word = bytearray(rs15_11.encode(message))
        word[2] ^= 0x42
        decoded, fixed = rs15_11.decode(bytes(word))
        assert decoded == message
        assert fixed == 1

    def test_parity_byte_error_corrected(self, rs15_11):
        message = b"hello world"
        word = bytearray(rs15_11.encode(message))
        word[-1] ^= 0x01
        decoded, fixed = rs15_11.decode(bytes(word))
        assert decoded == message
        assert fixed == 1

    def test_too_many_errors_raises(self, rs15_11):
        word = bytearray(rs15_11.encode(b"hello world"))
        for i in range(3):  # capacity is floor(4/2) = 2
            word[i] ^= 0xA5
        with pytest.raises(RSDecodingError):
            rs15_11.decode(bytes(word))

    def test_erasures_double_capacity(self, rs15_11):
        message = b"hello world"
        word = bytearray(rs15_11.encode(message))
        positions = [0, 3, 7, 12]  # 4 erasures == n - k
        for p in positions:
            word[p] ^= 0x99
        decoded, fixed = rs15_11.decode(bytes(word), erasure_positions=positions)
        assert decoded == message

    def test_too_many_erasures_raises(self, rs15_11):
        word = rs15_11.encode(b"hello world")
        with pytest.raises(RSDecodingError):
            rs15_11.decode(word, erasure_positions=[0, 1, 2, 3, 4])

    def test_erasure_position_out_of_range(self, rs15_11):
        word = rs15_11.encode(b"hello world")
        with pytest.raises(ValueError):
            rs15_11.decode(word, erasure_positions=[15])

    def test_wrong_word_length(self, rs15_11):
        with pytest.raises(ValueError):
            rs15_11.decode(bytes(14))

    def test_erased_zero_byte_still_decodes(self, rs15_11):
        # An erasure whose true value was already what the decoder wrote
        # must not break decoding.
        message = bytes(11)
        word = rs15_11.encode(message)
        decoded, _ = rs15_11.decode(word, erasure_positions=[4])
        assert decoded == message


@st.composite
def rs_scenario(draw):
    """A random (codec params, message, error/erasure plan) scenario."""
    n = draw(st.integers(min_value=6, max_value=80))
    k = draw(st.integers(min_value=1, max_value=n - 1))
    fcr = draw(st.sampled_from([0, 1]))
    message = draw(st.binary(min_size=k, max_size=k))
    t = n - k
    n_errors = draw(st.integers(min_value=0, max_value=t // 2))
    n_erasures = draw(st.integers(min_value=0, max_value=t - 2 * n_errors))
    positions = draw(
        st.lists(
            st.integers(min_value=0, max_value=n - 1),
            min_size=n_errors + n_erasures,
            max_size=n_errors + n_erasures,
            unique=True,
        )
    )
    flips = draw(
        st.lists(
            st.integers(min_value=1, max_value=255),
            min_size=n_errors + n_erasures,
            max_size=n_errors + n_erasures,
        )
    )
    return n, k, fcr, message, positions[:n_errors], positions[n_errors:], flips


class TestPropertyBased:
    @given(rs_scenario())
    @settings(max_examples=150, deadline=None)
    def test_within_capacity_always_decodes(self, scenario):
        n, k, fcr, message, error_pos, erasure_pos, flips = scenario
        codec = ReedSolomonCodec(n, k, first_consecutive_root=fcr)
        word = bytearray(codec.encode(message))
        for position, flip in zip(error_pos + erasure_pos, flips):
            word[position] ^= flip
        decoded, fixed = codec.decode(bytes(word), erasure_positions=erasure_pos)
        assert decoded == message
        assert fixed >= len(error_pos)

    @given(st.binary(min_size=40, max_size=40), st.integers(min_value=0, max_value=59))
    @settings(max_examples=50)
    def test_single_byte_corruption_never_misdecodes(self, message, position):
        codec = ReedSolomonCodec(60, 40)
        word = bytearray(codec.encode(message))
        word[position] ^= 0xFF
        decoded, _ = codec.decode(bytes(word))
        assert decoded == message
