"""GF(2^8) arithmetic: field axioms, tables, and polynomial helpers."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ecc.galois import DEFAULT_FIELD, GF256, PRIMITIVE_POLYNOMIALS_DEG8

ELEMENTS = st.integers(min_value=0, max_value=255)
NONZERO = st.integers(min_value=1, max_value=255)


@pytest.fixture(scope="module")
def gf() -> GF256:
    return GF256()


class TestConstruction:
    def test_default_polynomial(self, gf):
        assert gf.primitive_poly == 0x11D

    def test_rejects_non_degree8(self):
        with pytest.raises(ValueError):
            GF256(0xFF)
        with pytest.raises(ValueError):
            GF256(0x200)

    def test_rejects_reducible_polynomial(self):
        # x^8 + 1 = 0x101 is not primitive.
        with pytest.raises(ValueError):
            GF256(0x101)

    @pytest.mark.parametrize("poly", PRIMITIVE_POLYNOMIALS_DEG8)
    def test_all_listed_polynomials_are_primitive(self, poly):
        field = GF256(poly)
        # The generator must have full order 255.
        seen = set()
        value = 1
        for _ in range(255):
            seen.add(value)
            value = field.multiply(value, 2)
        assert len(seen) == 255

    def test_exp_log_inverse_tables(self, gf):
        for a in range(1, 256):
            assert gf.exp(gf.log(a)) == a


class TestFieldAxioms:
    @given(a=ELEMENTS, b=ELEMENTS)
    def test_addition_is_commutative_and_self_inverse(self, a, b):
        assert GF256.add(a, b) == GF256.add(b, a)
        assert GF256.add(GF256.add(a, b), b) == a

    @given(a=ELEMENTS, b=ELEMENTS)
    def test_multiplication_commutative(self, a, b):
        gf = DEFAULT_FIELD
        assert gf.multiply(a, b) == gf.multiply(b, a)

    @given(a=ELEMENTS, b=ELEMENTS, c=ELEMENTS)
    @settings(max_examples=200)
    def test_multiplication_associative(self, a, b, c):
        gf = DEFAULT_FIELD
        assert gf.multiply(gf.multiply(a, b), c) == gf.multiply(a, gf.multiply(b, c))

    @given(a=ELEMENTS, b=ELEMENTS, c=ELEMENTS)
    @settings(max_examples=200)
    def test_distributive_law(self, a, b, c):
        gf = DEFAULT_FIELD
        left = gf.multiply(a, GF256.add(b, c))
        right = GF256.add(gf.multiply(a, b), gf.multiply(a, c))
        assert left == right

    @given(a=NONZERO)
    def test_inverse_roundtrip(self, a):
        gf = DEFAULT_FIELD
        assert gf.multiply(a, gf.inverse(a)) == 1

    @given(a=ELEMENTS, b=NONZERO)
    def test_divide_is_multiply_by_inverse(self, a, b):
        gf = DEFAULT_FIELD
        assert gf.divide(a, b) == gf.multiply(a, gf.inverse(b))

    @given(a=ELEMENTS)
    def test_multiplicative_identity_and_zero(self, a):
        gf = DEFAULT_FIELD
        assert gf.multiply(a, 1) == a
        assert gf.multiply(a, 0) == 0

    def test_zero_division_raises(self, gf):
        with pytest.raises(ZeroDivisionError):
            gf.divide(5, 0)
        with pytest.raises(ZeroDivisionError):
            gf.inverse(0)
        with pytest.raises(ValueError):
            gf.log(0)

    @given(a=NONZERO, n=st.integers(min_value=-10, max_value=10))
    def test_power_matches_repeated_multiplication(self, a, n):
        gf = DEFAULT_FIELD
        expected = 1
        for _ in range(abs(n)):
            expected = gf.multiply(expected, a)
        if n < 0:
            expected = gf.inverse(expected)
        assert gf.power(a, n) == expected

    def test_power_of_zero(self, gf):
        assert gf.power(0, 0) == 1
        assert gf.power(0, 5) == 0
        with pytest.raises(ZeroDivisionError):
            gf.power(0, -1)


class TestVectorised:
    @given(st.lists(ELEMENTS, min_size=1, max_size=64), st.lists(ELEMENTS, min_size=1, max_size=64))
    @settings(max_examples=50)
    def test_multiply_vec_matches_scalar(self, xs, ys):
        gf = DEFAULT_FIELD
        n = min(len(xs), len(ys))
        a = np.array(xs[:n], dtype=np.uint8)
        b = np.array(ys[:n], dtype=np.uint8)
        out = gf.multiply_vec(a, b)
        for i in range(n):
            assert int(out[i]) == gf.multiply(int(a[i]), int(b[i]))

    @given(st.lists(ELEMENTS, min_size=1, max_size=64), ELEMENTS)
    @settings(max_examples=50)
    def test_scale_vec_matches_scalar(self, xs, scalar):
        gf = DEFAULT_FIELD
        a = np.array(xs, dtype=np.uint8)
        out = gf.scale_vec(a, scalar)
        for i, v in enumerate(xs):
            assert int(out[i]) == gf.multiply(v, scalar)


POLY = st.lists(ELEMENTS, min_size=1, max_size=16)


class TestPolynomials:
    @given(p=POLY, q=POLY)
    @settings(max_examples=100)
    def test_poly_multiply_evaluates_consistently(self, p, q):
        gf = DEFAULT_FIELD
        product = gf.poly_multiply(p, q)
        for x in (0, 1, 2, 0x53, 0xFF):
            expected = gf.multiply(gf.poly_eval(p, x), gf.poly_eval(q, x))
            assert gf.poly_eval(product, x) == expected

    @given(p=POLY, q=POLY)
    @settings(max_examples=100)
    def test_poly_add_evaluates_consistently(self, p, q):
        gf = DEFAULT_FIELD
        total = gf.poly_add(p, q)
        for x in (0, 1, 2, 0x53):
            expected = GF256.add(gf.poly_eval(p, x), gf.poly_eval(q, x))
            assert gf.poly_eval(total, x) == expected

    @given(dividend=POLY, divisor=POLY)
    @settings(max_examples=100)
    def test_divmod_reconstructs_dividend(self, dividend, divisor):
        gf = DEFAULT_FIELD
        if all(c == 0 for c in divisor):
            with pytest.raises(ZeroDivisionError):
                gf.poly_divmod(dividend, divisor)
            return
        quotient, remainder = gf.poly_divmod(dividend, divisor)
        reconstructed = gf.poly_add(gf.poly_multiply(quotient, divisor), remainder)
        assert gf._trim(reconstructed) == gf._trim(list(dividend))

    def test_poly_eval_horner_known_value(self, gf):
        # p(x) = x^2 + 3x + 2 at x = 2 over GF(256): 4 ^ 6 ^ 2 = 0.
        assert gf.poly_eval([1, 3, 2], 2) == 4 ^ 6 ^ 2

    def test_derivative_drops_even_powers(self, gf):
        # d/dx (a x^3 + b x^2 + c x + d) = 3a x^2 + c -> over GF(2^m): a x^2 + c.
        assert gf.poly_derivative([5, 7, 9, 11]) == [5, 0, 9]

    def test_derivative_of_constant_is_zero(self, gf):
        assert gf.poly_derivative([42]) == [0]
