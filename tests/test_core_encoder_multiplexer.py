"""Data-frame encoder and complementary multiplexer."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import InFrameConfig
from repro.core.encoder import DataFrameEncoder
from repro.core.framing import PseudoRandomSchedule, ZeroSchedule
from repro.core.geometry import FrameGeometry
from repro.core.multiplexer import MultiplexedStream
from repro.video.synthetic import gradient_video, pure_color_video


@pytest.fixture
def encoder(small_config, small_geometry) -> DataFrameEncoder:
    return DataFrameEncoder(small_config, small_geometry)


def _bits(config, seed=0, p=0.5):
    rng = np.random.default_rng(seed)
    return rng.random((config.block_rows, config.block_cols)) < p


class TestDataFrame:
    def test_zero_bits_give_zero_frame(self, encoder, small_config):
        frame = encoder.data_frame(np.zeros((small_config.block_rows, small_config.block_cols), bool))
        assert frame.sum() == 0.0

    def test_one_bits_give_chessboard_at_delta(self, encoder, small_config):
        bits = np.ones((small_config.block_rows, small_config.block_cols), bool)
        frame = encoder.data_frame(bits)
        values = set(np.unique(frame))
        assert values == {0.0, np.float32(small_config.amplitude)}
        rows, cols = encoder.geometry.data_area_slices()
        area = frame[rows, cols]
        # Half the super Pixels are modulated.
        assert area.mean() == pytest.approx(small_config.amplitude / 2, rel=0.01)


class TestModulationField:
    def test_headroom_clipping_bright_content(self, encoder, small_config):
        bits = np.ones((small_config.block_rows, small_config.block_cols), bool)
        video = np.full((80, 112), 250.0, dtype=np.float32)
        field = encoder.modulation_field(video, bits)
        assert field.max() <= 5.0 + 1e-5  # headroom = 255 - 250

    def test_headroom_clipping_dark_content(self, encoder, small_config):
        bits = np.ones((small_config.block_rows, small_config.block_cols), bool)
        video = np.full((80, 112), 3.0, dtype=np.float32)
        field = encoder.modulation_field(video, bits)
        assert field.max() <= 3.0 + 1e-5

    def test_midtone_uses_full_amplitude(self, encoder, small_config):
        bits = np.ones((small_config.block_rows, small_config.block_cols), bool)
        video = np.full((80, 112), 127.0, dtype=np.float32)
        field = encoder.modulation_field(video, bits)
        assert field.max() == pytest.approx(small_config.amplitude)

    def test_shape_mismatch_rejected(self, encoder, small_config):
        bits = _bits(small_config)
        with pytest.raises(ValueError):
            encoder.modulation_field(np.zeros((10, 10), np.float32), bits)

    @given(value=st.floats(min_value=0.0, max_value=255.0), seed=st.integers(0, 1000))
    @settings(max_examples=30, deadline=None)
    def test_pair_always_in_range_and_complementary(self, value, seed):
        config = InFrameConfig(
            element_pixels=2, pixels_per_block=2, block_rows=4, block_cols=6,
            amplitude=30.0, tau=12,
        )
        geometry = FrameGeometry(config, 20, 28)
        encoder = DataFrameEncoder(config, geometry)
        video = np.full((20, 28), np.float32(value))
        bits = np.random.default_rng(seed).random((4, 6)) < 0.5
        plus, minus = encoder.multiplexed_pair(video, bits)
        assert plus.min() >= 0.0 and plus.max() <= 255.0
        assert minus.min() >= 0.0 and minus.max() <= 255.0
        # Exact pixel-value complementarity: (plus + minus) / 2 == video.
        assert np.allclose((plus + minus) / 2.0, video, atol=1e-4)

    def test_block_clip_mode_uniform_within_block(self, small_config):
        config = small_config.with_updates(clip_mode="block")
        geometry = FrameGeometry(config, 80, 112)
        encoder = DataFrameEncoder(config, geometry)
        video = gradient_video(80, 112, low=0.0, high=255.0).frame(0)
        bits = np.ones((config.block_rows, config.block_cols), bool)
        field = encoder.modulation_field(video, bits)
        for row in range(config.block_rows):
            for col in range(0, config.block_cols, 3):
                rslice, cslice = geometry.block_slices(row, col)
                block = field[rslice, cslice]
                modulated = block[block > 0]
                if modulated.size:
                    assert np.allclose(modulated, modulated.flat[0], atol=1e-5)

    def test_envelope_steady_bits_constant_through_transition(self, encoder, small_config):
        bits = _bits(small_config, seed=1)
        env_early = encoder.envelope_grid(bits, bits, step=0)
        env_late = encoder.envelope_grid(bits, bits, step=small_config.tau - 1)
        assert np.array_equal(env_early, env_late)

    def test_envelope_switching_bits_ramp(self, encoder, small_config):
        now = np.zeros((small_config.block_rows, small_config.block_cols), bool)
        nxt = np.ones_like(now)
        mid = encoder.envelope_grid(now, nxt, step=small_config.tau - 4)
        end = encoder.envelope_grid(now, nxt, step=small_config.tau - 1)
        assert 0.0 < mid.mean() < end.mean() <= 1.0


class TestMultiplexedStream:
    def test_length(self, small_config, small_video):
        stream = MultiplexedStream(small_config, small_video, ZeroSchedule(small_config))
        assert stream.n_frames == small_video.n_frames * small_config.frame_duplication

    def test_zero_schedule_reproduces_video(self, small_config, small_video):
        stream = MultiplexedStream(small_config, small_video, ZeroSchedule(small_config))
        assert np.allclose(stream.frame(5), small_video.frame(5 // 4))

    def test_pair_average_is_video(self, small_config, small_video):
        stream = MultiplexedStream(
            small_config, small_video, PseudoRandomSchedule(small_config)
        )
        for start in (0, 2, 12, 30):
            pair_mean = (stream.frame(start) + stream.frame(start + 1)) / 2.0
            assert np.allclose(pair_mean, small_video.frame(start // 4), atol=1e-4)

    def test_signs_alternate(self, small_config, small_video):
        stream = MultiplexedStream(
            small_config, small_video, PseudoRandomSchedule(small_config)
        )
        video = small_video.frame(0)
        delta0 = stream.frame(0) - video
        delta1 = stream.frame(1) - video
        assert np.allclose(delta0, -delta1, atol=1e-4)
        assert np.abs(delta0).max() > 0

    def test_ground_truth_matches_schedule(self, small_config, small_video):
        schedule = PseudoRandomSchedule(small_config, seed=42)
        stream = MultiplexedStream(small_config, small_video, schedule)
        assert np.array_equal(stream.ground_truth(2), schedule.bits(2))

    def test_fps_mismatch_rejected(self, small_config):
        video = pure_color_video(80, 112, 127.0, fps=25.0, n_frames=5)
        with pytest.raises(ValueError):
            MultiplexedStream(small_config, video, ZeroSchedule(small_config))

    def test_index_bounds(self, small_config, small_video):
        stream = MultiplexedStream(small_config, small_video, ZeroSchedule(small_config))
        with pytest.raises(IndexError):
            stream.frame(stream.n_frames)

    def test_n_display_frames_override(self, small_config, small_video):
        stream = MultiplexedStream(
            small_config, small_video, ZeroSchedule(small_config), n_display_frames=10
        )
        assert stream.n_frames == 10
        with pytest.raises(ValueError):
            MultiplexedStream(
                small_config, small_video, ZeroSchedule(small_config), n_display_frames=10**6
            )

    def test_bad_schedule_shape_rejected(self, small_config, small_video):
        class BadSchedule:
            def bits(self, index):
                return np.zeros((2, 2), dtype=bool)

        stream = MultiplexedStream(small_config, small_video, BadSchedule())
        with pytest.raises(ValueError):
            stream.frame(0)

    def test_n_data_frames(self, small_config, small_video):
        stream = MultiplexedStream(small_config, small_video, ZeroSchedule(small_config))
        expected = (stream.n_frames + small_config.tau - 1) // small_config.tau
        assert stream.n_data_frames == expected
