"""InFrame config validation and frame geometry."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import InFrameConfig
from repro.core.geometry import FrameGeometry


class TestConfigDefaults:
    def test_paper_prototype_values(self):
        config = InFrameConfig()
        assert config.element_pixels == 4
        assert config.gob_size == 2
        assert (config.block_rows, config.block_cols) == (30, 50)
        assert config.refresh_hz == 120.0 and config.video_fps == 30.0

    def test_paper_bit_budget(self):
        # "a frame can carry up to w/s/2 x h/s/2 x 3 bits": 15*25*3 = 1125.
        config = InFrameConfig()
        assert config.n_gobs == 15 * 25
        assert config.bits_per_frame == 1125

    def test_data_area_fits_1080p(self):
        config = InFrameConfig()
        assert config.data_height_px == 1080
        assert config.data_width_px == 1800

    def test_data_frame_rate(self):
        assert InFrameConfig(tau=12).data_frame_rate_hz == pytest.approx(10.0)
        assert InFrameConfig(tau=10).data_frame_rate_hz == pytest.approx(12.0)

    def test_raw_bit_rate_matches_paper_headline(self):
        # 1125 bits * 12 Hz = 13.5 kbps raw; the paper's 12.8 kbps is this
        # discounted by availability and errors.
        assert InFrameConfig(tau=10).raw_bit_rate_bps == pytest.approx(13500.0)


class TestConfigValidation:
    def test_odd_tau_rejected(self):
        with pytest.raises(ValueError):
            InFrameConfig(tau=11)

    def test_grid_must_tile_gobs(self):
        with pytest.raises(ValueError):
            InFrameConfig(block_rows=31)

    def test_gob_size_one_rejected(self):
        with pytest.raises(ValueError):
            InFrameConfig(gob_size=1)

    def test_refresh_must_be_multiple_of_fps(self):
        with pytest.raises(ValueError):
            InFrameConfig(refresh_hz=100.0, video_fps=30.0)

    def test_unknown_waveform_rejected(self):
        with pytest.raises(ValueError):
            InFrameConfig(waveform="gaussian")

    def test_unknown_pattern_rejected(self):
        with pytest.raises(ValueError):
            InFrameConfig(pattern="dots")

    def test_amplitude_bounds(self):
        with pytest.raises(ValueError):
            InFrameConfig(amplitude=128.0)

    def test_with_updates_revalidates(self):
        config = InFrameConfig()
        with pytest.raises(ValueError):
            config.with_updates(tau=3)

    def test_scaled_keeps_grid_and_pixel(self):
        config = InFrameConfig().scaled(0.5)
        assert config.element_pixels == 4
        assert (config.block_rows, config.block_cols) == (30, 50)
        assert config.pixels_per_block < 9
        assert config.bits_per_frame == 1125

    def test_scaled_floor(self):
        assert InFrameConfig().scaled(0.01).pixels_per_block == 2


class TestGeometry:
    @pytest.fixture
    def geometry(self, small_config):
        return FrameGeometry(small_config, 80, 112)

    def test_centred_margins(self, geometry, small_config):
        assert geometry.top == (80 - small_config.data_height_px) // 2
        assert geometry.left == (112 - small_config.data_width_px) // 2

    def test_too_small_frame_rejected(self, small_config):
        with pytest.raises(ValueError):
            FrameGeometry(small_config, 10, 10)

    def test_block_rects_tile_data_area(self, geometry, small_config):
        covered = np.zeros((80, 112), dtype=int)
        for row in range(small_config.block_rows):
            for col in range(small_config.block_cols):
                r0, r1, c0, c1 = geometry.block_rect(row, col)
                covered[r0:r1, c0:c1] += 1
        rows, cols = geometry.data_area_slices()
        assert np.all(covered[rows, cols] == 1)
        assert covered.sum() == small_config.data_height_px * small_config.data_width_px

    def test_block_rect_bounds_checked(self, geometry, small_config):
        with pytest.raises(IndexError):
            geometry.block_rect(small_config.block_rows, 0)

    def test_gob_blocks_row_major_with_parity_last(self, geometry):
        blocks = geometry.gob_blocks(1, 2)
        assert blocks == [(2, 4), (2, 5), (3, 4), (3, 5)]

    def test_gob_bounds_checked(self, geometry, small_config):
        with pytest.raises(IndexError):
            geometry.gob_blocks(small_config.gob_rows, 0)

    def test_expand_block_grid_values(self, geometry, small_config):
        grid = np.zeros((small_config.block_rows, small_config.block_cols))
        grid[2, 3] = 5.0
        field = geometry.expand_block_grid(grid)
        r0, r1, c0, c1 = geometry.block_rect(2, 3)
        assert np.all(field[r0:r1, c0:c1] == 5.0)
        assert field.sum() == pytest.approx(5.0 * small_config.block_side_px**2)

    def test_expand_rejects_wrong_shape(self, geometry):
        with pytest.raises(ValueError):
            geometry.expand_block_grid(np.zeros((3, 3)))

    def test_camera_rect_scales_proportionally(self, geometry):
        r0, r1, c0, c1 = geometry.camera_block_rect(0, 0, 40, 56, inset=0.0)
        d0, d1, e0, e1 = geometry.block_rect(0, 0)
        assert r0 == pytest.approx(d0 * 0.5, abs=1)
        assert c0 == pytest.approx(e0 * 0.5, abs=1)

    def test_camera_rect_inset_shrinks(self, geometry):
        loose = geometry.camera_block_rect(2, 2, 40, 56, inset=0.0)
        tight = geometry.camera_block_rect(2, 2, 40, 56, inset=0.3)
        assert tight[0] >= loose[0] and tight[1] <= loose[1]
        assert tight[2] >= loose[2] and tight[3] <= loose[3]

    def test_camera_rect_never_empty(self, geometry):
        r0, r1, c0, c1 = geometry.camera_block_rect(0, 0, 12, 18, inset=0.45)
        assert r1 > r0 and c1 > c0

    def test_camera_rect_rejects_bad_inset(self, geometry):
        with pytest.raises(ValueError):
            geometry.camera_block_rect(0, 0, 40, 56, inset=0.5)

    def test_label_map_covers_every_block(self, geometry, small_config):
        labels = geometry.camera_block_index_maps(54, 75, inset=0.2)
        present = set(np.unique(labels)) - {-1}
        assert len(present) == small_config.block_rows * small_config.block_cols

    def test_label_map_margins_unlabelled(self, geometry):
        labels = geometry.camera_block_index_maps(54, 75, inset=0.2)
        assert labels[0, 0] == -1  # corner is margin

    def test_label_map_blocks_disjoint(self, geometry, small_config):
        labels = geometry.camera_block_index_maps(54, 75, inset=0.25)
        # With a large inset, adjacent blocks' cores must not touch: the
        # count per label is the same for all interior blocks.
        counts = np.bincount(labels[labels >= 0])
        assert counts.min() > 0
