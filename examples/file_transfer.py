"""Reliable file transfer over the screen-camera channel.

Stresses the whole stack: a multi-kilobyte file is CRC-protected,
Reed-Solomon coded, interleaved, multiplexed over the textured sunrise
clip (the paper's hard content case), filmed, decoded with erasure
information from unavailable GOBs, and verified byte-for-byte.

Run:  python examples/file_transfer.py
"""

from __future__ import annotations

import time
import zlib

from repro import CameraModel, InFrameConfig, sunrise_video
from repro.core.framing import PayloadAssembler, PayloadSchedule
from repro.core.pipeline import run_link


def make_file(n_bytes: int) -> bytes:
    """A compressible but non-trivial synthetic file."""
    text = ("InFrame dual-mode full-frame visible communication. " * 200).encode()
    return zlib.compress(text)[:n_bytes].ljust(n_bytes, b"\x00")


def main() -> None:
    payload = make_file(600)
    checksum = zlib.crc32(payload)
    print(f"Transferring {len(payload)} bytes (crc32 {checksum:#010x})")

    config = InFrameConfig(amplitude=30.0, tau=12).scaled(0.45)
    schedule = PayloadSchedule(config, payload, rs_n=60, rs_k=24)
    passes_per_message = schedule.n_payload_frames
    print(f"Message: {schedule.plan.n_codewords} RS(60,24) codewords, "
          f"{passes_per_message} data frames per pass")

    # Enough video for ~2.5 passes of the message.
    n_video_frames = int(passes_per_message * 2.5 * config.tau / config.frame_duplication) + 8
    video = sunrise_video(540, 960, n_frames=n_video_frames)
    camera = CameraModel(width=640, height=360)

    start = time.perf_counter()
    run = run_link(config, video, camera=camera, schedule=schedule, seed=21)
    elapsed = time.perf_counter() - start
    print(f"\nSimulated {video.duration_s:.1f}s of playback in {elapsed:.1f}s wall clock")
    print(f"Link: {run.stats.row()}")

    assembler = PayloadAssembler(config, schedule.plan)
    for frame in run.decoded:
        assembler.add_frame(frame)
        if assembler.coverage() == 1.0:
            break
    print(f"Message coverage after {len(run.decoded)} decoded frames: "
          f"{assembler.coverage() * 100:.1f}%")

    received = assembler.payload()
    assert received == payload, "file corrupted in transfer"
    effective_bps = len(payload) * 8 / video.duration_s
    print(f"File recovered intact (crc32 {zlib.crc32(received):#010x})")
    print(f"Effective goodput: {effective_bps / 1000:.2f} kbps over video content")


if __name__ == "__main__":
    main()
