"""Generate the paper's Figure 4: complementary frame pair examples.

Renders ``V + D`` and ``V - D`` for a pure gray frame and for a sunrise
frame (the paper's Fig. 4a-d), verifies the complementarity invariant, and
writes the four frames as ``.npy`` arrays plus portable PGM images under
``examples/output/``.

Run:  python examples/complementary_frames.py
"""

from __future__ import annotations

import os

import numpy as np

from repro import InFrameConfig, pure_color_video, sunrise_video
from repro.core.encoder import DataFrameEncoder
from repro.core.framing import PseudoRandomSchedule
from repro.core.geometry import FrameGeometry

OUTPUT_DIR = os.path.join(os.path.dirname(__file__), "output")


def save_pgm(path: str, frame: np.ndarray) -> None:
    """Write a grayscale frame as a binary PGM (viewable anywhere)."""
    data = np.clip(np.round(frame), 0, 255).astype(np.uint8)
    with open(path, "wb") as f:
        f.write(f"P5\n{data.shape[1]} {data.shape[0]}\n255\n".encode())
        f.write(data.tobytes())


def render_pair(name: str, video_frame: np.ndarray, config: InFrameConfig) -> None:
    geometry = FrameGeometry(config, *video_frame.shape)
    encoder = DataFrameEncoder(config, geometry)
    bits = PseudoRandomSchedule(config, seed=2014).bits(0)
    plus, minus = encoder.multiplexed_pair(video_frame, bits)

    residual = np.abs((plus + minus) / 2.0 - video_frame).max()
    print(f"{name}: V+D in [{plus.min():.0f}, {plus.max():.0f}], "
          f"V-D in [{minus.min():.0f}, {minus.max():.0f}], "
          f"complementarity residual {residual:.2e}")

    for suffix, frame in (("plus", plus), ("minus", minus)):
        np.save(os.path.join(OUTPUT_DIR, f"fig4_{name}_{suffix}.npy"), frame)
        save_pgm(os.path.join(OUTPUT_DIR, f"fig4_{name}_{suffix}.pgm"), frame)


def main() -> None:
    os.makedirs(OUTPUT_DIR, exist_ok=True)
    config = InFrameConfig(amplitude=20.0).scaled(0.45)
    height = config.data_height_px + 60
    width = config.data_width_px + 160

    # Fig. 4(a)(b): pure gray carrier.
    gray = pure_color_video(height, width, 127.0, n_frames=1).frame(0)
    render_pair("gray", gray, config)

    # Fig. 4(c)(d): normal video carrier.
    sunrise = sunrise_video(height, width, n_frames=1).frame(0)
    render_pair("sunrise", sunrise, config)

    print(f"\nWrote Figure 4 frames to {OUTPUT_DIR}/fig4_*.pgm")


if __name__ == "__main__":
    main()
