"""Colour content end to end: RGB sunrise, payload, and viewer check.

Demonstrates the RGB pipeline: the gray chessboard rides on all three
channels of a colour-graded sunrise clip, the (luminance-sensing) camera
decodes it, and the HVS model confirms the viewer still just sees a
sunrise.  Uses delta=30 with adaptive amplitude, the best setting for
textured content.

Run:  python examples/color_broadcast.py
"""

from __future__ import annotations

import numpy as np

from repro import CameraModel, FlickerPredictor, InFrameConfig
from repro.core.framing import PayloadSchedule, ZeroSchedule
from repro.core.pipeline import InFrameSender, run_link
from repro.video import rgb_sunrise_video

CAPTION_TRACK = (
    "[00:01] The sun crests the horizon.\n"
    "[00:02] Golden light spreads across the water."
).encode()


def main() -> None:
    config = InFrameConfig(
        amplitude=35.0, tau=12, adaptive_amplitude=True
    ).scaled(0.45)
    video = rgb_sunrise_video(540, 960, n_frames=60)
    print(f"Content: {video.n_frames} RGB frames at {video.fps:g} FPS "
          f"({video.duration_s:.1f}s)")

    # Colour content is the harshest channel here (the gray chessboard is
    # bounded by the most extreme of the three channels), so the caption
    # track gets heavy RS protection.
    schedule = PayloadSchedule(config, CAPTION_TRACK, rs_n=60, rs_k=12)
    camera = CameraModel(width=640, height=360)
    run = run_link(config, video, camera=camera, schedule=schedule, seed=9)
    print(f"Link: {run.stats.row()}")

    captions = run.receiver.assemble_payload(run.decoded).decode()
    print("\nRecovered caption track:")
    for line in captions.splitlines():
        print(f"  {line}")
    assert captions.encode() == CAPTION_TRACK

    # The viewer's experience, scored against the plain colour clip.
    plain = InFrameSender(config, video, schedule=ZeroSchedule(config)).timeline()
    report = FlickerPredictor().report(
        run.sender.timeline(), duration_s=0.5, reference=plain
    )
    print(f"\nFlicker vs original: {report.score:.2f} / 4 "
          f"({'satisfactory' if report.satisfactory else 'visible'})")

    # Show that the modulation really is colour-neutral.
    frame = run.sender.stream.frame(0)
    diff = frame - video.frame(0)
    channel_spread = float(np.abs(diff[..., 0] - diff[..., 1]).max())
    print(f"Max channel asymmetry of the modulation: {channel_spread:.4f} "
          "(0 = perfectly gray)")


if __name__ == "__main__":
    main()
