"""Quickstart: send pseudo-random data over a gray video and decode it.

Reproduces the paper's basic experiment in miniature: a pure gray clip on
a simulated 120 Hz panel, a rolling-shutter camera at 30 FPS, the InFrame
complementary-frame codec in between.  Prints the Figure-7 style link
statistics.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import CameraModel, InFrameConfig, pure_color_video, run_link


def main() -> None:
    # The paper's parameters (p=4, 30x50 Blocks, delta=20, tau=12), scaled
    # to half Block size so the demo runs in seconds.
    config = InFrameConfig(amplitude=20.0, tau=12).scaled(0.45)
    print(f"Block grid : {config.block_rows} x {config.block_cols}")
    print(f"Bits/frame : {config.bits_per_frame}")
    print(f"Data rate  : {config.data_frame_rate_hz:.1f} data frames/s "
          f"({config.raw_bit_rate_bps / 1000:.1f} kbps raw)")

    video = pure_color_video(540, 960, value=127.0, n_frames=36)
    camera = CameraModel(width=640, height=360)

    print("\nRunning the full multiplex -> display -> capture -> decode loop...")
    run = run_link(config, video, camera=camera, seed=1)

    stats = run.stats
    print(f"\nDecoded {stats.n_data_frames} data frames")
    print(f"Available GOBs : {stats.available_gob_ratio * 100:.1f}%  (paper: ~95%)")
    print(f"GOB error rate : {stats.gob_error_rate * 100:.1f}%  (paper: ~1.5%)")
    print(f"Bit accuracy   : {stats.bit_accuracy * 100:.2f}%")
    print(f"Throughput     : {stats.throughput_kbps:.2f} kbps  (paper: 10.5 kbps at tau=12)")


if __name__ == "__main__":
    main()
