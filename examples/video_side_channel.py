"""The paper's motivating application: side-information during video playback.

Section 5 of the paper: "InFrame can be used to carry additional details
or side-information accompanying the primary video watching (e.g., coupon
links in the ad video, comments and highlights in live sports streaming)."

This example multiplexes a small JSON document (a coupon link plus
metadata) onto the sunrise clip, plays it on the simulated display, films
it with the simulated phone camera, and reassembles the document --
while the viewer would see only the sunrise.

Run:  python examples/video_side_channel.py
"""

from __future__ import annotations

import json

from repro import CameraModel, FlickerPredictor, InFrameConfig, sunrise_video
from repro.core.framing import PayloadSchedule
from repro.core.pipeline import run_link

SIDE_CHANNEL_DOCUMENT = {
    "type": "coupon",
    "sponsor": "Sunrise Beverages",
    "offer": "20% off any cold brew",
    "url": "https://example.com/c/SUNRISE20",
    "valid_until": "2014-10-28",
}


def main() -> None:
    payload = json.dumps(SIDE_CHANNEL_DOCUMENT, separators=(",", ":")).encode()
    print(f"Side-channel payload: {len(payload)} bytes of JSON")

    # Real video content is the hard case (paper Fig. 7: ~63% available
    # GOBs, ~21% errors at delta=20) -- use delta=30 as the paper's best
    # video setting and generous RS overhead; the repeating schedule lets
    # later passes fill what earlier passes missed.
    config = InFrameConfig(amplitude=30.0, tau=12).scaled(0.45)
    video = sunrise_video(540, 960, n_frames=72)  # 2.4 s of content
    schedule = PayloadSchedule(config, payload, rs_n=60, rs_k=20)
    print(f"Payload occupies {schedule.n_payload_frames} data frames per pass")

    camera = CameraModel(width=640, height=360)
    run = run_link(config, video, camera=camera, schedule=schedule, seed=11)
    print(f"\nLink: {run.stats.row()}")

    received = run.receiver.assemble_payload(run.decoded)
    document = json.loads(received.decode())
    print("\nRecovered side-channel document:")
    for key, value in document.items():
        print(f"  {key:12s} {value}")
    assert document == SIDE_CHANNEL_DOCUMENT

    # And the viewer? Score the perceived *change* against the plain clip,
    # exactly as the paper's side-by-side study did.
    from repro.core.framing import ZeroSchedule
    from repro.core.pipeline import InFrameSender

    plain = InFrameSender(config, video, schedule=ZeroSchedule(config)).timeline()
    predictor = FlickerPredictor()
    report = predictor.report(run.sender.timeline(), duration_s=0.5, reference=plain)
    print(f"\nViewer-perceived flicker score: {report.score:.2f} / 4 "
          f"({'satisfactory' if report.satisfactory else 'visible'})")


if __name__ == "__main__":
    main()
