"""Reproduce the paper's user study (Figure 6) with the simulated panel.

Eight simulated participants -- individual CFF offsets, sensitivity gains
(two "experts"), rating styles -- score multiplexed pure-colour clips on
the paper's 0-4 flicker scale.  Prints both Figure 6 panels: score vs
colour brightness (left) and score vs amplitude/cycle (right).

Run:  python examples/flicker_study.py
"""

from __future__ import annotations

from repro.analysis.experiments import run_fig6_left, run_fig6_right
from repro.analysis.reporting import format_table
from repro.analysis.userstudy import SimulatedPanel


def main() -> None:
    panel = SimulatedPanel()
    print("Simulated 8-participant panel:")
    for i, subject in enumerate(panel.subjects):
        role = "expert" if i < 2 else "viewer"
        print(f"  subject {i}: {role:6s} CFF offset {subject.cff_offset_hz:+.1f} Hz, "
              f"gain x{subject.sensitivity_gain:.2f}")

    print("\nFigure 6 (left): flicker score vs colour brightness, tau=12")
    brightness = (60, 100, 140, 180, 200)
    left = run_fig6_left(brightness_values=brightness, panel=panel)
    rows = []
    for value in brightness:
        r20 = left[(20.0, value)]
        r50 = left[(50.0, value)]
        rows.append(
            [value, f"{r20.mean_score:.2f} +/- {r20.std_score:.2f}",
             f"{r50.mean_score:.2f} +/- {r50.std_score:.2f}"]
        )
    print(format_table(["brightness", "delta=20", "delta=50"], rows))

    print("\nFigure 6 (right): flicker score vs amplitude, per cycle tau")
    right = run_fig6_right(panel=panel)
    rows = []
    for delta in (20.0, 30.0, 50.0):
        row = [int(delta)]
        for tau in (10, 12, 14):
            result = right[(delta, tau)]
            row.append(f"{result.mean_score:.2f} +/- {result.std_score:.2f}")
        rows.append(row)
    print(format_table(["delta", "tau=10", "tau=12", "tau=14"], rows))

    print("\nPaper's finding: 'our InFrame design is able to safeguard clean "
          "video-viewing experience (e.g., when delta <= 20, tau >= 10)'")
    ok = all(right[(20.0, tau)].mean_score < 1.5 for tau in (10, 12, 14))
    print(f"Reproduced: delta=20 satisfactory at every tau -> {ok}")


if __name__ == "__main__":
    main()
