"""Deliberate DET001-DET004 violations, annotated -- do NOT copy these.

The full-tree lint (``python -m repro.tools.check``) scans only
``src/repro``, so this file never gates CI; it exists to demonstrate
the determinism analyzer on realistic-looking code.  Run it through the
checker to see every rule fire with its taint trace::

    python -m repro.tools.check examples/determinism_antipatterns.py \
        --no-baseline --explain DET002

Each block below breaks the bit-identity contract (results are pure
functions of unit identity, byte-identical at any worker count) in one
of the four ways the DET rules catch statically.
"""

from __future__ import annotations

import json
import time
from typing import Any

import numpy as np

# DET001 (module state): one generator shared by every unit that lands
# in this process -- draw order depends on the work distribution.
_PROCESS_RNG = np.random.default_rng(2014)


def simulate_receiver(unit: Any) -> dict[str, float]:  # checks: worker-scope
    # DET001: fresh entropy -- a different stream in every process.
    jitter_rng = np.random.default_rng()
    # DET001: constant seed -- the *same* stream for every unit.
    noise_rng = np.random.default_rng(1234)
    # DET001: module state read (see _PROCESS_RNG above).
    offset = float(_PROCESS_RNG.uniform())
    return {"ber": float(noise_rng.uniform() + jitter_rng.uniform() + offset)}


def fold_fleet_metrics(registry: Any, decoded_frames: int) -> None:
    pool_gauge = registry.gauge("exec.pool_size")  # exec-scoped substrate number
    decoded = registry.counter("fleet.decoded")  # work-scoped by default
    decoded.inc(decoded_frames)
    # DET004: exec-scoped value folded into a work-scoped metric -- the
    # "work" number now varies with worker count.
    decoded.inc(pool_gauge.value)
    # DET002: wall-clock into a work-scoped metric write.
    decoded.inc(time.perf_counter())


def fleet_report_json(cohorts: dict[str, dict[str, float]]) -> str:
    seen = {name for name in cohorts}
    # DET003: set iteration order feeds canonical JSON -- byte-unstable
    # across processes.  sorted(seen) is the one-token fix.
    rows = [cohorts[name] for name in seen]
    return json.dumps({"cohorts": rows})
