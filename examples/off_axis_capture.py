"""Off-axis capture: decoding InFrame from the side of the room.

The paper captures fronto-parallel from 50 cm.  This example walks a
simulated phone through four positions -- straight on, then 15/30/45
degrees of yaw -- with a corner-calibrated receiver (the decoder warps its
Block map through the known display-quad homography) and prints the cost
of each step.

Run:  python examples/off_axis_capture.py
"""

from __future__ import annotations

from dataclasses import replace

from repro import CameraModel, InFrameConfig, PerspectiveView, pure_color_video, run_link


def main() -> None:
    config = InFrameConfig(amplitude=20.0, tau=12).scaled(0.45)
    video = pure_color_video(540, 960, 127.0, n_frames=36)
    camera = CameraModel(width=640, height=360)

    print("Walking the camera around the display (gray carrier, delta=20):\n")
    print(f"{'position':>14s}  {'bit acc':>8s}  {'avail':>6s}  {'throughput':>10s}")
    baseline = None
    for yaw in (0, 15, 30, 45):
        view = PerspectiveView.tilted(
            camera.height, camera.width, yaw_deg=yaw, fill=0.9
        )
        stats = run_link(
            config, video, camera=replace(camera, view=view), seed=1
        ).stats
        if baseline is None:
            baseline = stats.throughput_kbps
        label = "straight on" if yaw == 0 else f"{yaw} deg yaw"
        print(
            f"{label:>14s}  {stats.bit_accuracy * 100:7.1f}%  "
            f"{stats.available_gob_ratio * 100:5.1f}%  "
            f"{stats.throughput_kbps:6.2f} kbps ({stats.throughput_kbps / baseline * 100:.0f}%)"
        )

    print(
        "\nWith corner calibration the projective distortion is nearly free:\n"
        "the quad's far edge loses a little Block area (fewer sensor pixels\n"
        "per bit), everything else decodes as if fronto-parallel."
    )


if __name__ == "__main__":
    main()
