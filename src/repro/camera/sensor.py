"""Sensor model: photon shot noise, read noise, response and quantisation.

The sensor converts a mean photon flux (proportional to scene luminance
times exposure time) into an 8-bit value:

1. ``electrons = luminance * sensitivity * exposure_s`` (mean signal);
2. shot noise: Gaussian approximation of Poisson, ``std = sqrt(electrons)``;
3. read noise: additive Gaussian in electrons;
4. normalisation by full-well capacity, camera gamma, 8-bit quantisation.

``calibrated_for`` picks the sensitivity so that a chosen reference
luminance lands at a chosen digital level -- a stand-in for auto-exposure.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro._util import check_in_range, check_positive


@dataclass(frozen=True)
class SensorModel:
    """Photometric behaviour of the image sensor.

    Attributes
    ----------
    sensitivity:
        Electrons per (cd/m^2 * second).  The default is calibrated for
        the default panel (300 cd/m^2 peak) at 1/250 s exposure; use
        :meth:`calibrated_for` (or ``CameraModel.auto_exposed``) for other
        panels or exposures.
    full_well:
        Electrons at digital saturation.
    read_noise_electrons:
        Standard deviation of additive read noise, in electrons.
    response_gamma:
        Encoding gamma applied before quantisation (1/2.2-style curves are
        expressed as their exponent, e.g. ``1 / 2.2``).
    """

    sensitivity: float = 54000.0
    full_well: float = 50000.0
    read_noise_electrons: float = 10.0
    response_gamma: float = 1.0 / 2.2

    def __post_init__(self) -> None:
        check_positive(self.sensitivity, "sensitivity")
        check_positive(self.full_well, "full_well")
        check_in_range(self.read_noise_electrons, "read_noise_electrons", 0.0, 1e4)
        check_in_range(self.response_gamma, "response_gamma", 0.1, 1.0)

    def expose(
        self,
        luminance: np.ndarray,
        exposure_s: float,
        rng: np.random.Generator | None = None,
    ) -> np.ndarray:
        """Convert a mean-luminance image into an 8-bit capture.

        Parameters
        ----------
        luminance:
            Mean scene luminance over the exposure window (cd/m^2).
        exposure_s:
            Exposure time in seconds.
        rng:
            Noise generator; pass None for a noise-free (expected-value)
            capture, which the tests use to isolate other effects.
        """
        check_positive(exposure_s, "exposure_s")
        electrons = np.asarray(luminance, dtype=np.float32) * np.float32(
            self.sensitivity * exposure_s
        )
        if rng is not None:
            shot = rng.standard_normal(electrons.shape).astype(np.float32)
            electrons = electrons + shot * np.sqrt(np.maximum(electrons, 0.0))
            if self.read_noise_electrons > 0.0:
                read = rng.standard_normal(electrons.shape).astype(np.float32)
                electrons = electrons + np.float32(self.read_noise_electrons) * read
        normalized = np.clip(electrons / np.float32(self.full_well), 0.0, 1.0)
        encoded = normalized ** np.float32(self.response_gamma)
        return np.round(encoded * 255.0).astype(np.float32)

    def calibrated_for(
        self,
        reference_luminance: float,
        exposure_s: float,
        target_level: float = 210.0,
    ) -> "SensorModel":
        """Return a copy whose sensitivity maps *reference_luminance* to *target_level*.

        This emulates auto-exposure: the brightest content of interest
        (e.g. the panel's peak luminance) lands near, but below, saturation.
        """
        check_positive(reference_luminance, "reference_luminance")
        check_positive(exposure_s, "exposure_s")
        check_in_range(target_level, "target_level", 1.0, 255.0)
        normalized = (target_level / 255.0) ** (1.0 / self.response_gamma)
        sensitivity = normalized * self.full_well / (reference_luminance * exposure_s)
        return replace(self, sensitivity=sensitivity)

    def snr_at(self, luminance: float, exposure_s: float) -> float:
        """Signal-to-noise ratio (electrons) at a given scene luminance."""
        electrons = luminance * self.sensitivity * exposure_s
        noise = np.sqrt(electrons + self.read_noise_electrons**2)
        return float(electrons / noise) if noise > 0 else float("inf")
