"""Rolling-shutter exposure geometry.

A rolling-shutter sensor does not expose the whole frame at once: row ``r``
starts its exposure ``r * readout_s / n_rows`` after row 0.  When the
display flips from ``V + D`` to ``V - D`` mid-readout, the rows whose
exposure windows straddle the flip integrate both signs and the chessboard
cancels -- the paper's stated reason for needing parity/ECC and the
temporal smoothing cycle.

:class:`RollingShutter` turns a camera frame start time into per-display-
frame row-weight vectors: ``weights[d][r]`` is the fraction of row ``r``'s
exposure that display frame ``d`` contributes.  The capture pipeline then
blends per-frame average-luminance fields with those weights, which is
exact for a piecewise-constant display and a very good approximation once
the display timeline has already folded the LC response into per-frame
averages.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._util import check_in_range, check_positive, check_positive_int


@dataclass(frozen=True)
class RollingShutter:
    """Exposure timing of a rolling-shutter sensor.

    Attributes
    ----------
    n_rows:
        Number of sensor rows (camera resolution height).
    exposure_s:
        Per-row exposure time in seconds.
    readout_s:
        Time between row 0 and the last row starting exposure.  0 gives a
        global shutter.
    """

    n_rows: int
    exposure_s: float
    readout_s: float

    def __post_init__(self) -> None:
        check_positive_int(self.n_rows, "n_rows")
        check_positive(self.exposure_s, "exposure_s")
        check_in_range(self.readout_s, "readout_s", 0.0, 1.0)

    def row_window(self, frame_start_s: float, row: int) -> tuple[float, float]:
        """Exposure window ``(start, end)`` of *row* for a frame starting at *frame_start_s*."""
        if not (0 <= row < self.n_rows):
            raise ValueError(f"row {row} outside [0, {self.n_rows})")
        offset = self.readout_s * row / self.n_rows
        start = frame_start_s + offset
        return (start, start + self.exposure_s)

    def frame_span(self, frame_start_s: float) -> tuple[float, float]:
        """Window covering every row's exposure for one camera frame."""
        return (frame_start_s, frame_start_s + self.readout_s + self.exposure_s)

    def display_frame_weights(
        self,
        frame_start_s: float,
        display_interval_s: float,
        n_display_frames: int,
    ) -> dict[int, np.ndarray]:
        """Per-row exposure weights of each display frame.

        Returns a mapping ``display_frame_index -> weights`` where
        ``weights`` has shape ``(n_rows,)`` and each row's weights sum to 1
        (display frames beyond the stream are clamped to its endpoints, so
        a camera running past the stream end keeps seeing the last frame).
        """
        check_positive(display_interval_s, "display_interval_s")
        check_positive_int(n_display_frames, "n_display_frames")
        rows = np.arange(self.n_rows, dtype=np.float64)
        starts = frame_start_s + self.readout_s * rows / self.n_rows
        ends = starts + self.exposure_s

        first = int(np.floor(starts.min() / display_interval_s))
        last = int(np.ceil(ends.max() / display_interval_s))
        weights: dict[int, np.ndarray] = {}
        for d in range(first, last + 1):
            d_start = d * display_interval_s
            d_end = d_start + display_interval_s
            overlap = np.clip(
                np.minimum(ends, d_end) - np.maximum(starts, d_start), 0.0, None
            )
            if not np.any(overlap > 0.0):
                continue
            clamped = min(max(d, 0), n_display_frames - 1)
            w = (overlap / self.exposure_s).astype(np.float32)
            if clamped in weights:
                weights[clamped] = weights[clamped] + w
            else:
                weights[clamped] = w
        return weights
