"""Perspective capture geometry.

The paper's experiments capture fronto-parallel from 50 cm and leave
"multiplex ... on any display" / capture-in-the-wild questions as
practical issues.  This module supplies the projective machinery for the
off-axis case:

* :func:`homography_from_points` -- the 3x3 projective map from four
  point correspondences (direct linear transform);
* :func:`warp_image` / :func:`warp_labels` -- inverse-mapped resampling of
  content and of Block label maps;
* :class:`PerspectiveView` -- where the display's quad lands in the
  capture, either fronto-parallel (the paper's setup) or from a pinhole
  camera looking at a tilted screen.

The receiver is assumed to know the quad (one-time corner calibration, as
screen-camera apps do with alignment UIs); estimating the quad from
content is future work, as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import ndimage

from repro._util import check_in_range, check_positive


def homography_from_points(src: np.ndarray, dst: np.ndarray) -> np.ndarray:
    """The 3x3 homography H with ``dst ~ H @ src`` for four correspondences.

    Points are ``(x, y)`` rows; the result is normalised to ``H[2,2] = 1``.
    """
    src = np.asarray(src, dtype=np.float64)
    dst = np.asarray(dst, dtype=np.float64)
    if src.shape != (4, 2) or dst.shape != (4, 2):
        raise ValueError(f"need four (x, y) points each, got {src.shape} and {dst.shape}")
    rows = []
    rhs = []
    for (x, y), (u, v) in zip(src, dst):
        rows.append([x, y, 1, 0, 0, 0, -u * x, -u * y])
        rhs.append(u)
        rows.append([0, 0, 0, x, y, 1, -v * x, -v * y])
        rhs.append(v)
    try:
        solution = np.linalg.solve(np.asarray(rows), np.asarray(rhs))
    except np.linalg.LinAlgError as exc:
        raise ValueError(f"degenerate correspondences: {exc}") from exc
    return np.append(solution, 1.0).reshape(3, 3)


def apply_homography(h_matrix: np.ndarray, points: np.ndarray) -> np.ndarray:
    """Map ``(n, 2)`` points through a homography (projective divide)."""
    pts = np.asarray(points, dtype=np.float64)
    homogeneous = np.column_stack([pts, np.ones(len(pts))])
    mapped = homogeneous @ np.asarray(h_matrix, dtype=np.float64).T
    return mapped[:, :2] / mapped[:, 2:3]


def _inverse_sample_coords(
    h_matrix: np.ndarray, out_shape: tuple[int, int]
) -> tuple[np.ndarray, np.ndarray]:
    """Source (row, col) coordinates for every output pixel under H^-1."""
    out_h, out_w = out_shape
    inverse = np.linalg.inv(np.asarray(h_matrix, dtype=np.float64))
    ys, xs = np.mgrid[0:out_h, 0:out_w]
    homogeneous = np.stack([xs.ravel(), ys.ravel(), np.ones(out_h * out_w)])
    mapped = inverse @ homogeneous
    src_x = (mapped[0] / mapped[2]).reshape(out_h, out_w)
    src_y = (mapped[1] / mapped[2]).reshape(out_h, out_w)
    return src_y, src_x


def warp_image(
    image: np.ndarray,
    h_matrix: np.ndarray,
    out_shape: tuple[int, int],
    background: float = 0.0,
) -> np.ndarray:
    """Projectively warp *image* (display space) into *out_shape* (camera).

    ``h_matrix`` maps display ``(x, y)`` to camera ``(x, y)``; pixels that
    fall outside the source are filled with *background*.
    """
    src_y, src_x = _inverse_sample_coords(h_matrix, out_shape)
    warped = ndimage.map_coordinates(
        np.asarray(image, dtype=np.float32),
        [src_y, src_x],
        order=1,
        mode="constant",
        cval=np.float32(background),
    )
    return warped.astype(np.float32)


def warp_labels(
    labels: np.ndarray, h_matrix: np.ndarray, out_shape: tuple[int, int]
) -> np.ndarray:
    """Warp an integer label map (nearest neighbour, -1 outside)."""
    src_y, src_x = _inverse_sample_coords(h_matrix, out_shape)
    warped = ndimage.map_coordinates(
        np.asarray(labels, dtype=np.float64),
        [src_y, src_x],
        order=0,
        mode="constant",
        cval=-1.0,
    )
    return warped.astype(np.int32)


@dataclass(frozen=True)
class PerspectiveView:
    """Where the display's corners land in the capture.

    ``corners`` are camera ``(x, y)`` positions of the display's
    top-left, top-right, bottom-right, bottom-left corners, in that order.
    """

    corners: tuple[tuple[float, float], ...]

    def __post_init__(self) -> None:
        if len(self.corners) != 4:
            raise ValueError(f"need 4 corners, got {len(self.corners)}")

    @staticmethod
    def fronto_parallel(
        camera_height: int, camera_width: int, fill: float = 1.0
    ) -> "PerspectiveView":
        """The paper's centred straight-on view."""
        check_in_range(fill, "fill", 0.05, 1.0)
        height = camera_height * fill
        width = camera_width * fill
        top = (camera_height - height) / 2.0
        left = (camera_width - width) / 2.0
        return PerspectiveView(
            corners=(
                (left, top),
                (left + width, top),
                (left + width, top + height),
                (left, top + height),
            )
        )

    @staticmethod
    def tilted(
        camera_height: int,
        camera_width: int,
        yaw_deg: float = 0.0,
        pitch_deg: float = 0.0,
        fill: float = 0.85,
        distance_factor: float = 2.0,
    ) -> "PerspectiveView":
        """A pinhole camera looking at a screen rotated off-axis.

        The screen (aspect matching the capture) is rotated by *yaw_deg*
        about its vertical axis and *pitch_deg* about its horizontal axis,
        placed *distance_factor* screen-widths from the pinhole, and
        projected.  ``fill`` sets the on-axis apparent size.
        """
        check_in_range(yaw_deg, "yaw_deg", -75.0, 75.0)
        check_in_range(pitch_deg, "pitch_deg", -75.0, 75.0)
        check_in_range(fill, "fill", 0.05, 1.0)
        check_positive(distance_factor, "distance_factor")
        # Screen corners in its own plane (x right, y down), half-extents 0.5*aspect.
        aspect = camera_width / camera_height
        half_w, half_h = aspect / 2.0, 0.5
        corners3d = np.array(
            [
                [-half_w, -half_h, 0.0],
                [half_w, -half_h, 0.0],
                [half_w, half_h, 0.0],
                [-half_w, half_h, 0.0],
            ]
        )
        yaw = np.deg2rad(yaw_deg)
        pitch = np.deg2rad(pitch_deg)
        rot_yaw = np.array(
            [
                [np.cos(yaw), 0.0, np.sin(yaw)],
                [0.0, 1.0, 0.0],
                [-np.sin(yaw), 0.0, np.cos(yaw)],
            ]
        )
        rot_pitch = np.array(
            [
                [1.0, 0.0, 0.0],
                [0.0, np.cos(pitch), -np.sin(pitch)],
                [0.0, np.sin(pitch), np.cos(pitch)],
            ]
        )
        rotated = corners3d @ (rot_pitch @ rot_yaw).T
        rotated[:, 2] += distance_factor * aspect  # push away from the pinhole
        # Pinhole projection; focal length chosen so fill holds on-axis.
        focal = fill * camera_height * distance_factor * aspect
        projected_x = focal * rotated[:, 0] / rotated[:, 2] + camera_width / 2.0
        projected_y = focal * rotated[:, 1] / rotated[:, 2] + camera_height / 2.0
        return PerspectiveView(
            corners=tuple((float(x), float(y)) for x, y in zip(projected_x, projected_y))
        )

    def homography(self, display_height: int, display_width: int) -> np.ndarray:
        """Display-pixel ``(x, y)`` to camera-pixel ``(x, y)`` homography."""
        src = np.array(
            [
                [0.0, 0.0],
                [display_width - 1.0, 0.0],
                [display_width - 1.0, display_height - 1.0],
                [0.0, display_height - 1.0],
            ]
        )
        dst = np.asarray(self.corners, dtype=np.float64)
        return homography_from_points(src, dst)

    def vertical_span(self) -> tuple[float, float]:
        """Camera rows covered by the quad (for rolling-shutter mapping)."""
        ys = [corner[1] for corner in self.corners]
        return (min(ys), max(ys))
