"""The camera: clocking, geometry and the full capture pipeline.

A :class:`CameraModel` watches a :class:`~repro.display.DisplayTimeline`
from a fixed fronto-parallel position (the paper captures from 50 cm, about
the desk width) and produces timestamped 8-bit frames.  Per camera frame:

1. the rolling shutter computes how much each display frame contributes to
   each sensor row;
2. the contributing display-frame average-luminance fields are blended with
   those row weights (at display resolution);
3. the lens applies PSF blur and vignetting;
4. the field is resampled to the capture resolution (1280x720 from a
   1920x1080 panel in the paper's setup);
5. the sensor adds shot/read noise and quantises to 8 bits.

The camera clock is independent of the display clock: a start offset and a
small drift rate reproduce the frame-rate mismatch the paper lists among
the screen-camera channel limitations.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Protocol

import numpy as np
from scipy import ndimage

from repro._util import check_in_range, check_positive, check_positive_int
from repro.camera.geometry import PerspectiveView, warp_image
from repro.camera.optics import OpticsModel
from repro.camera.rolling_shutter import RollingShutter
from repro.camera.sensor import SensorModel
from repro.display.panel import DisplayPanel


class TimelineLike(Protocol):
    """The display-timeline surface the capture pipeline consumes.

    :class:`~repro.display.scheduler.DisplayTimeline` satisfies it, and
    so does :class:`~repro.display.scheduler.MemoizedTimeline` -- the
    camera only ever needs the panel's clocking, the stream length and
    the per-frame average-luminance field, so anything serving those can
    be filmed (which is what lets a broadcast session share one
    render-once timeline across a fleet of cameras).
    """

    @property
    def panel(self) -> DisplayPanel:
        """The panel doing the playback."""
        ...

    @property
    def n_frames(self) -> int:
        """Display frames in the stream."""
        ...

    @property
    def duration_s(self) -> float:
        """Total playback duration in seconds."""
        ...

    def frame_average_luminance(self, index: int) -> np.ndarray:
        """Mean luminance field over frame *index*'s refresh interval."""
        ...


@dataclass(frozen=True)
class CapturedFrame:
    """One camera frame plus its timing metadata."""

    pixels: np.ndarray
    index: int
    start_time_s: float
    mid_exposure_s: float


@dataclass(frozen=True)
class CameraModel:
    """A rolling-shutter camera watching the display.

    The defaults model the paper's receiver settings: 1280x720 at 30 FPS.

    Attributes
    ----------
    width, height:
        Capture resolution.
    fps:
        Nominal capture rate.
    exposure_s:
        Per-row exposure time.  Must be short relative to the display's
        complementary pair (1/60 s) for the chessboard to survive;
        1/500 s is a typical indoor auto-exposure outcome for a bright
        monitor at low ISO.
    readout_s:
        Rolling-shutter readout span (row 0 to last row).
    clock_offset_s:
        Camera start time relative to display frame 0.
    clock_drift:
        Fractional frequency error of the camera clock (3e-5 = 30 ppm).
    timing_jitter_s:
        Per-frame standard deviation of the capture start time.  Real
        camera pipelines do not start frames on a perfect clock; the
        jitter moves the rolling-shutter cancellation bands between
        captures, which is what lets the decoder's multi-capture
        aggregation recover Blocks a single capture loses.
    screen_fill:
        Fraction of the capture's extent the screen subtends (centred,
        fronto-parallel).  1.0 is the paper's 50 cm desk-width setup;
        smaller values model standing further from the display -- the
        screen shrinks, each Block covers fewer sensor pixels, and the
        surroundings fill the rest of the frame.
    background_luminance:
        Luminance (cd/m^2) of the surroundings visible around the screen.
    view:
        Optional :class:`~repro.camera.geometry.PerspectiveView` for
        off-axis capture; overrides the fronto-parallel ``screen_fill``
        placement when set.
    optics, sensor:
        The lens and sensor submodels.
    """

    width: int = 1280
    height: int = 720
    fps: float = 30.0
    exposure_s: float = 1.0 / 500.0
    readout_s: float = 0.012
    clock_offset_s: float = 0.0
    clock_drift: float = 3.0e-5
    timing_jitter_s: float = 8.0e-4
    screen_fill: float = 1.0
    background_luminance: float = 2.0
    view: PerspectiveView | None = None
    optics: OpticsModel = field(default_factory=OpticsModel)
    sensor: SensorModel = field(default_factory=SensorModel)

    def __post_init__(self) -> None:
        check_positive_int(self.width, "width")
        check_positive_int(self.height, "height")
        check_positive(self.fps, "fps")
        check_positive(self.exposure_s, "exposure_s")
        check_in_range(self.readout_s, "readout_s", 0.0, 0.5)
        check_in_range(self.clock_drift, "clock_drift", -0.01, 0.01)
        check_in_range(self.timing_jitter_s, "timing_jitter_s", 0.0, 0.01)
        check_in_range(self.screen_fill, "screen_fill", 0.05, 1.0)
        check_in_range(self.background_luminance, "background_luminance", 0.0, 1e4)

    @property
    def frame_interval_s(self) -> float:
        """Seconds between camera frame starts (with drift applied)."""
        return 1.0 / (self.fps * (1.0 + self.clock_drift))

    def frame_start(self, index: int) -> float:
        """Start time of camera frame *index* on the display's clock."""
        return self.clock_offset_s + index * self.frame_interval_s

    def shutter(self) -> RollingShutter:
        """The rolling-shutter geometry for this camera."""
        return RollingShutter(
            n_rows=self.height, exposure_s=self.exposure_s, readout_s=self.readout_s
        )

    def screen_rect(self) -> tuple[int, int, int, int]:
        """Camera-pixel rect ``(row0, row1, col0, col1)`` the screen occupies."""
        screen_h = max(int(round(self.height * self.screen_fill)), 2)
        screen_w = max(int(round(self.width * self.screen_fill)), 2)
        row0 = (self.height - screen_h) // 2
        col0 = (self.width - screen_w) // 2
        return (row0, row0 + screen_h, col0, col0 + screen_w)

    def auto_exposed(self, peak_luminance: float, target_level: float = 210.0) -> "CameraModel":
        """Copy with the sensor gain calibrated to the display's peak luminance."""
        sensor = self.sensor.calibrated_for(peak_luminance, self.exposure_s, target_level)
        return replace(self, sensor=sensor)

    # ------------------------------------------------------------------
    # Capture pipeline
    # ------------------------------------------------------------------
    def capture_frame(
        self,
        timeline: TimelineLike,
        index: int,
        rng: np.random.Generator | None = None,
    ) -> CapturedFrame:
        """Capture camera frame *index* from the display timeline."""
        start = self.frame_start(index)
        if rng is not None and self.timing_jitter_s > 0.0:
            start += float(rng.normal(0.0, self.timing_jitter_s))
            start = max(start, 0.0)
        shutter = self.shutter()
        weights = shutter.display_frame_weights(
            start, timeline.panel.frame_interval_s, timeline.n_frames
        )
        display_h = timeline.panel.height
        if self.view is not None:
            top_y, bottom_y = self.view.vertical_span()
            display_rows = np.linspace(top_y, bottom_y, display_h)
        else:
            row0, row1, col0, col1 = self.screen_rect()
            display_rows = np.linspace(float(row0), float(row1 - 1), display_h)
        blended: np.ndarray | None = None
        for display_index, row_weights in weights.items():
            field_lum = timeline.frame_average_luminance(display_index)
            # Map per-camera-row weights onto the display rows they land on
            # (for perspective views this uses the quad's vertical span,
            # which is exact for pure-yaw tilts and a good approximation
            # otherwise).
            w_display = np.interp(
                display_rows, np.arange(self.height, dtype=np.float64), row_weights
            ).astype(np.float32)[:, None]
            contribution = field_lum * w_display
            blended = contribution if blended is None else blended + contribution
        assert blended is not None  # weights dict is never empty
        focused = self.optics.apply(blended)
        if self.view is not None:
            h_matrix = self.view.homography(focused.shape[0], focused.shape[1])
            scene = warp_image(
                focused,
                h_matrix,
                (self.height, self.width),
                background=self.background_luminance,
            )
        else:
            screen_image = self._resample(focused, (row1 - row0, col1 - col0))
            scene = np.full(
                (self.height, self.width), np.float32(self.background_luminance)
            )
            scene[row0:row1, col0:col1] = screen_image
        pixels = self.sensor.expose(scene, self.exposure_s, rng=rng)
        mid = start + self.readout_s / 2.0 + self.exposure_s / 2.0
        return CapturedFrame(
            pixels=pixels, index=index, start_time_s=start, mid_exposure_s=mid
        )

    def capture_sequence(
        self,
        timeline: TimelineLike,
        n_frames: int,
        rng: np.random.Generator | None = None,
        start_index: int = 0,
    ) -> list[CapturedFrame]:
        """Capture *n_frames* consecutive camera frames."""
        check_positive_int(n_frames, "n_frames")
        return [
            self.capture_frame(timeline, start_index + i, rng=rng)
            for i in range(n_frames)
        ]

    def frames_covering(self, timeline: TimelineLike) -> int:
        """How many camera frames fit inside the display stream's duration."""
        usable = timeline.duration_s - self.clock_offset_s - self.readout_s - self.exposure_s
        return max(int(np.floor(usable * self.fps * (1.0 + self.clock_drift))), 0)

    def _resample(
        self, image: np.ndarray, target: tuple[int, int] | None = None
    ) -> np.ndarray:
        """Resample a display-resolution field to the target resolution."""
        target_h, target_w = target if target is not None else (self.height, self.width)
        src_h, src_w = image.shape
        if (src_h, src_w) == (target_h, target_w):
            return image
        zoom = (target_h / src_h, target_w / src_w)
        # Anti-alias before downsampling: match the new pixel pitch.
        sigma = tuple(max(0.0, 0.35 / z - 0.3) for z in zoom)
        if any(s > 0 for s in sigma):
            image = ndimage.gaussian_filter(image, sigma=sigma, mode="nearest")
        out = ndimage.zoom(image, zoom, order=1, mode="nearest", grid_mode=True)
        if out.shape != (target_h, target_w):
            # zoom's rounding can differ by a pixel; fix up exactly.
            fixed = np.empty((target_h, target_w), dtype=out.dtype)
            h = min(target_h, out.shape[0])
            w = min(target_w, out.shape[1])
            fixed[:h, :w] = out[:h, :w]
            if h < target_h:
                fixed[h:, :w] = out[h - 1, :w]
            if w < target_w:
                fixed[:, w:] = fixed[:, w - 1 : w]
            out = fixed
        return out.astype(
            np.float32
        )
