"""Camera simulator substrate.

Stands in for the paper's Lumia 1020 receiver (1280x720 at 30 FPS, 50 cm
fronto-parallel capture of the monitor).  The model covers every channel
impairment the paper names:

* **frame-rate mismatch** -- the camera clock (30 FPS + offset + drift) is
  independent of the 120 Hz display clock;
* **rolling shutter** -- each sensor row integrates over its own shifted
  exposure window, so a single capture can straddle a complementary frame
  pair and cancel the chessboard in a band of rows
  (:mod:`repro.camera.rolling_shutter`);
* **poor capture quality** -- lens blur and vignetting
  (:mod:`repro.camera.optics`), photon shot noise, read noise and 8-bit
  quantisation (:mod:`repro.camera.sensor`), and resolution loss from the
  1920x1080 panel to the 1280x720 capture (:mod:`repro.camera.capture`).
"""

from repro.camera.capture import CameraModel, CapturedFrame
from repro.camera.geometry import PerspectiveView, homography_from_points, warp_image
from repro.camera.optics import OpticsModel
from repro.camera.rolling_shutter import RollingShutter
from repro.camera.sensor import SensorModel

__all__ = [
    "CameraModel",
    "CapturedFrame",
    "OpticsModel",
    "RollingShutter",
    "SensorModel",
    "PerspectiveView",
    "homography_from_points",
    "warp_image",
]
