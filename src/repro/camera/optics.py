"""Lens model: point-spread blur and vignetting.

The PSF is modelled as an isotropic Gaussian whose sigma is expressed in
*display* pixels, because what matters for decoding is how much of a
chessboard cell (``p`` display pixels on a side) the lens smears together.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import ndimage

from repro._util import check_in_range


@dataclass(frozen=True)
class OpticsModel:
    """Lens behaviour between the panel surface and the sensor.

    Attributes
    ----------
    blur_sigma_px:
        Gaussian PSF standard deviation in display pixels.  0 disables blur.
    vignetting:
        Relative luminance falloff at the image corner (0 = none,
        0.2 = corners receive 80% of the centre).
    """

    blur_sigma_px: float = 0.5
    vignetting: float = 0.08

    def __post_init__(self) -> None:
        check_in_range(self.blur_sigma_px, "blur_sigma_px", 0.0, 50.0)
        check_in_range(self.vignetting, "vignetting", 0.0, 0.95)

    def apply(self, image: np.ndarray) -> np.ndarray:
        """Apply PSF blur and vignetting to a linear-luminance image."""
        out = np.asarray(image, dtype=np.float32)
        if self.blur_sigma_px > 0.0:
            out = ndimage.gaussian_filter(out, sigma=self.blur_sigma_px, mode="nearest")
        if self.vignetting > 0.0:
            out = out * self._vignette_mask(out.shape)
        return out.astype(np.float32)

    def _vignette_mask(self, shape: tuple[int, ...]) -> np.ndarray:
        height, width = shape[:2]
        rows = np.linspace(-1.0, 1.0, height, dtype=np.float32)[:, None]
        cols = np.linspace(-1.0, 1.0, width, dtype=np.float32)[None, :]
        radius2 = (rows**2 + cols**2) / 2.0  # 1.0 at the corners
        return (1.0 - np.float32(self.vignetting) * radius2).astype(np.float32)
