"""Cross-process span tracing with Chrome ``trace_event`` export.

A :class:`SpanTracer` hands out ``with tracer.span("decode", capture=3):``
context managers.  Each completed span becomes an immutable
:class:`SpanRecord` carrying an id, its parent's id (from the tracer's
span stack), the *track* it ran on, and monotonic timestamps from
:func:`time.perf_counter` -- which on POSIX is a system-wide clock, so
spans recorded in worker processes line up with the parent's on a shared
timeline.

Workers each build their own tracer (track names like ``chunk-003`` come
from the deterministic chunk plan), export their records, and ship them
back with the chunk result; the parent folds them in with
:meth:`SpanTracer.merge`.  Span *counts* per ``(name, category)`` are
part of the determinism contract for ``category="work"`` spans; span
timestamps, of course, are not.

:func:`chrome_trace` renders any span collection as Chrome
``trace_event`` JSON loadable in Perfetto or ``chrome://tracing``.
"""

from __future__ import annotations

import time
from collections.abc import Iterator, Sequence
from contextlib import contextmanager
from dataclasses import dataclass
from typing import cast

#: Span category for work-derived spans (count-deterministic).
WORK = "work"
#: Span category for execution-substrate spans (mode-dependent).
EXEC = "exec"

#: JSON-ready attribute values a span may carry.
AttrValue = str | int | float | bool | None


@dataclass(frozen=True)
class SpanRecord:
    """One completed span (or instant event, when ``dur_s`` is None).

    ``start_s`` is a raw :func:`time.perf_counter` reading; consumers
    subtract the collection's minimum to get a run-relative timeline.
    """

    name: str
    category: str
    track: str
    span_id: int
    parent_id: int | None
    start_s: float
    dur_s: float | None
    attrs: dict[str, AttrValue]

    def as_dict(self) -> dict[str, object]:
        """JSON-ready form."""
        return {
            "name": self.name,
            "category": self.category,
            "track": self.track,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_s": self.start_s,
            "dur_s": self.dur_s,
            "attrs": dict(self.attrs),
        }

    @staticmethod
    def from_dict(payload: dict[str, object]) -> "SpanRecord":
        """Rebuild a record from :meth:`as_dict` output."""
        parent = cast("int | None", payload["parent_id"])
        dur = cast("float | None", payload["dur_s"])
        attrs = cast("dict[str, AttrValue]", payload.get("attrs") or {})
        return SpanRecord(
            name=str(payload["name"]),
            category=str(payload["category"]),
            track=str(payload["track"]),
            span_id=int(cast(int, payload["span_id"])),
            parent_id=None if parent is None else int(parent),
            start_s=float(cast(float, payload["start_s"])),
            dur_s=None if dur is None else float(dur),
            attrs=dict(attrs),
        )


class SpanTracer:
    """Collects spans for one track (one process / logical thread).

    Span ids are small integers local to the tracer; after a merge the
    ``(track, span_id)`` pair stays unique because each worker tracer
    gets its own track name.
    """

    def __init__(self, track: str = "main") -> None:
        self.track = track
        self._records: list[SpanRecord] = []
        self._stack: list[int] = []
        self._next_id = 1

    @contextmanager
    def span(self, name: str, category: str = WORK, **attrs: AttrValue) -> Iterator[None]:
        """Time a ``with`` block as one span under the current parent."""
        span_id = self._next_id
        self._next_id += 1
        parent = self._stack[-1] if self._stack else None
        self._stack.append(span_id)
        start = time.perf_counter()
        try:
            yield
        finally:
            dur = time.perf_counter() - start
            self._stack.pop()
            self._records.append(
                SpanRecord(
                    name=name,
                    category=category,
                    track=self.track,
                    span_id=span_id,
                    parent_id=parent,
                    start_s=start,
                    dur_s=dur,
                    attrs=attrs,
                )
            )

    def event(self, name: str, category: str = WORK, **attrs: AttrValue) -> None:
        """Record an instant event (a span with no duration)."""
        span_id = self._next_id
        self._next_id += 1
        self._records.append(
            SpanRecord(
                name=name,
                category=category,
                track=self.track,
                span_id=span_id,
                parent_id=self._stack[-1] if self._stack else None,
                start_s=time.perf_counter(),
                dur_s=None,
                attrs=attrs,
            )
        )

    @property
    def records(self) -> tuple[SpanRecord, ...]:
        """The completed spans so far, in completion order."""
        return tuple(self._records)

    def export(self) -> list[dict[str, object]]:
        """Serialize every record (the form that rides back with chunks)."""
        return [record.as_dict() for record in self._records]

    def merge(self, exported: Sequence[dict[str, object]]) -> None:
        """Fold serialized records from another tracer into this one."""
        self._records.extend(SpanRecord.from_dict(payload) for payload in exported)


def sort_spans(records: Sequence[SpanRecord]) -> list[SpanRecord]:
    """Records in canonical display order: by start time, then track/id."""
    return sorted(records, key=lambda r: (r.start_s, r.track, r.span_id))


def chrome_trace(records: Sequence[SpanRecord]) -> dict[str, object]:
    """The spans as a Chrome ``trace_event`` JSON object.

    Complete spans become ``ph="X"`` events with microsecond ``ts`` and
    ``dur`` relative to the earliest span; instant events become
    ``ph="i"``.  Each distinct track maps to a thread id with a
    ``thread_name`` metadata event, so Perfetto shows the parent and
    every worker chunk as labelled rows.
    """
    ordered = sort_spans(records)
    tracks = sorted({record.track for record in ordered})
    tids = {track: index + 1 for index, track in enumerate(tracks)}
    origin = ordered[0].start_s if ordered else 0.0
    events: list[dict[str, object]] = [
        {
            "ph": "M",
            "name": "thread_name",
            "pid": 1,
            "tid": tids[track],
            "args": {"name": track},
        }
        for track in tracks
    ]
    for record in ordered:
        event: dict[str, object] = {
            "name": record.name,
            "cat": record.category,
            "pid": 1,
            "tid": tids[record.track],
            "ts": (record.start_s - origin) * 1e6,
            "args": dict(record.attrs),
        }
        if record.dur_s is None:
            event["ph"] = "i"
            event["s"] = "t"
        else:
            event["ph"] = "X"
            event["dur"] = record.dur_s * 1e6
        events.append(event)
    return {"traceEvents": events, "displayTimeUnit": "ms"}
