"""The run-level telemetry container: live collector and frozen result.

:class:`Telemetry` is the live object instrumentation writes to -- one
metrics registry plus one span tracer.  Workers build their own (with a
deterministic track name from the chunk plan), :meth:`Telemetry.export`
it into plain JSON-ready data that rides back with each chunk result,
and the parent folds exports in with :meth:`Telemetry.merge_export` --
exactly the pattern :mod:`repro.runtime.profiler` established for stage
timers, and exact for the same reason (integer adds, max-combines).

:meth:`Telemetry.finish` freezes the collection into a
:class:`RunTelemetry`, the record attached to
:class:`~repro.core.pipeline.LinkRun` / ``TransportRun`` and written by
the CLIs' ``--telemetry-out``.  ``RunTelemetry`` round-trips through
JSON (:meth:`as_dict` / :meth:`from_dict`) so ``repro.tools.report`` can
render a run that happened in another process, and exports spans as
Chrome ``trace_event`` JSON via :meth:`chrome_trace`.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field
from typing import cast

from repro.obs.metrics import MetricDict, MetricsRegistry
from repro.obs.trace import SpanRecord, SpanTracer, chrome_trace, sort_spans

#: Serialized Telemetry/RunTelemetry payload.
TelemetryDict = dict[str, object]


class Telemetry:
    """A live metrics registry + span tracer for one collection site."""

    def __init__(self, track: str = "main") -> None:
        self.metrics = MetricsRegistry()
        self.tracer = SpanTracer(track=track)

    def export(self) -> TelemetryDict:
        """Plain-data form that crosses the process boundary with a chunk."""
        return {"metrics": self.metrics.as_dict(), "spans": self.tracer.export()}

    def merge_export(self, exported: TelemetryDict) -> None:
        """Fold an :meth:`export` payload (typically a worker's) into this one."""
        metrics = cast("dict[str, MetricDict] | None", exported.get("metrics"))
        if metrics:
            self.metrics.merge(metrics)
        spans = cast("list[dict[str, object]] | None", exported.get("spans"))
        if spans:
            self.tracer.merge(spans)

    def merge_run(self, run: "RunTelemetry | None") -> None:
        """Fold a finished :class:`RunTelemetry` (e.g. one transport round)."""
        if run is None:
            return
        self.metrics.merge(run.metrics)
        self.tracer.merge([span.as_dict() for span in run.spans])

    def finish(self, meta: dict[str, object] | None = None) -> "RunTelemetry":
        """Freeze the collection into an immutable :class:`RunTelemetry`."""
        return RunTelemetry(
            metrics=self.metrics.as_dict(),
            spans=tuple(sort_spans(self.tracer.records)),
            meta=dict(meta or {}),
        )


@dataclass(frozen=True)
class RunTelemetry:
    """Everything one run's telemetry collected, frozen and JSON-ready.

    Attributes
    ----------
    metrics:
        Serialized metrics by name (see :mod:`repro.obs.metrics`).
    spans:
        Completed spans in canonical start-time order.
    meta:
        Free-form run identification (tool, seed, workers, ...).  Meta is
        *not* part of the determinism contract -- it may record the
        worker count, which legitimately differs between runs.
    """

    metrics: dict[str, MetricDict] = field(default_factory=dict)
    spans: tuple[SpanRecord, ...] = ()
    meta: dict[str, object] = field(default_factory=dict)

    def metrics_json(self) -> str:
        """Canonical JSON of the work-scoped metrics.

        Byte-identical for serial and ``workers=N`` executions of the
        same run -- the telemetry determinism artifact the tests and
        ``bench_runtime`` compare.
        """
        registry = MetricsRegistry()
        registry.merge(self.metrics)
        return registry.work_json()

    def span_counts(self, category: str | None = None) -> dict[str, int]:
        """Span counts per name, optionally restricted to one category."""
        counts: dict[str, int] = {}
        for span in self.spans:
            if category is not None and span.category != category:
                continue
            counts[span.name] = counts.get(span.name, 0) + 1
        return dict(sorted(counts.items()))

    def chrome_trace(self) -> dict[str, object]:
        """The spans as Chrome ``trace_event`` JSON (Perfetto-loadable)."""
        return chrome_trace(self.spans)

    def as_dict(self) -> TelemetryDict:
        """JSON-ready form (the ``--telemetry-out`` file format)."""
        return {
            "format": "repro.obs/1",
            "meta": dict(self.meta),
            "metrics": {name: dict(self.metrics[name]) for name in sorted(self.metrics)},
            "spans": [span.as_dict() for span in self.spans],
        }

    @staticmethod
    def from_dict(payload: TelemetryDict) -> "RunTelemetry":
        """Rebuild a run's telemetry from :meth:`as_dict` output."""
        fmt = payload.get("format", "repro.obs/1")
        if fmt != "repro.obs/1":
            raise ValueError(f"unsupported telemetry format {fmt!r}")
        metrics = cast("dict[str, MetricDict]", payload.get("metrics") or {})
        spans = cast("list[dict[str, object]]", payload.get("spans") or [])
        return RunTelemetry(
            metrics={str(k): dict(v) for k, v in metrics.items()},
            spans=tuple(SpanRecord.from_dict(s) for s in spans),
            meta=dict(cast("dict[str, object]", payload.get("meta") or {})),
        )

    @staticmethod
    def merge(runs: "Sequence[RunTelemetry | None]") -> "RunTelemetry | None":
        """Fold several runs (e.g. transport rounds) into one; None if empty."""
        present = [run for run in runs if run is not None]
        if not present:
            return None
        combined = Telemetry()
        meta: dict[str, object] = {}
        for run in present:
            combined.merge_run(run)
            meta.update(run.meta)
        meta["merged_runs"] = len(present)
        return combined.finish(meta=meta)

    # ------------------------------------------------------------------
    # Human rendering (the `repro.tools.report` terminal view)
    # ------------------------------------------------------------------
    def summary(self) -> str:
        """A terminal-friendly report: metrics tables + per-span rollup."""
        lines: list[str] = []
        if self.meta:
            pairs = " ".join(f"{k}={self.meta[k]}" for k in sorted(self.meta))
            lines.append(f"telemetry: {pairs}")
        else:
            lines.append("telemetry:")
        counters = {
            n: p for n, p in self.metrics.items() if p["kind"] == "counter"
        }
        gauges = {n: p for n, p in self.metrics.items() if p["kind"] == "gauge"}
        histograms = {
            n: p for n, p in self.metrics.items() if p["kind"] == "histogram"
        }
        if counters:
            lines.append("  counters:")
            width = max(len(n) for n in counters)
            for name in sorted(counters):
                payload = counters[name]
                mark = "" if payload["scope"] == "work" else "  [exec]"
                lines.append(f"    {name:<{width}s} {payload['value']:>10}{mark}")
        if gauges:
            lines.append("  gauges (peak):")
            width = max(len(n) for n in gauges)
            for name in sorted(gauges):
                payload = gauges[name]
                value = cast("float | None", payload["value"])
                text = "-" if value is None else f"{float(value):g}"
                mark = "" if payload["scope"] == "work" else "  [exec]"
                lines.append(f"    {name:<{width}s} {text:>10s}{mark}")
        for name in sorted(histograms):
            lines.append("  " + _histogram_block(name, histograms[name]))
        span_stats = self._span_rollup()
        if span_stats:
            lines.append("  spans:")
            width = max(len(n) for n in span_stats)
            for name, (count, total) in span_stats.items():
                lines.append(
                    f"    {name:<{width}s} count={count:<6d} total={total:8.3f} s"
                )
        events = [span for span in self.spans if span.dur_s is None]
        if events:
            lines.append("  events:")
            origin = self.spans[0].start_s if self.spans else 0.0
            for span in events:
                attrs = " ".join(f"{k}={v}" for k, v in sorted(span.attrs.items()))
                lines.append(
                    f"    +{span.start_s - origin:8.3f} s  {span.name}"
                    + (f"  ({attrs})" if attrs else "")
                )
        return "\n".join(lines)

    def _span_rollup(self) -> dict[str, tuple[int, float]]:
        stats: dict[str, tuple[int, float]] = {}
        for span in self.spans:
            if span.dur_s is None:
                continue
            count, total = stats.get(span.name, (0, 0.0))
            stats[span.name] = (count + 1, total + span.dur_s)
        return dict(sorted(stats.items()))


def _histogram_block(name: str, payload: MetricDict) -> str:
    """One histogram rendered as labelled buckets with ascii bars."""
    edges = [float(e) for e in cast(Sequence[float], payload["edges"])]
    counts = [int(c) for c in cast(Sequence[int], payload["counts"])]
    total = int(cast(int, payload["count"]))
    mark = "" if payload["scope"] == "work" else "  [exec]"
    lo = cast("float | None", payload["min"])
    hi = cast("float | None", payload["max"])
    span = (
        f" min={float(lo):g} max={float(hi):g}"
        if lo is not None and hi is not None
        else ""
    )
    lines = [f"{name}: n={total}{span}{mark}"]
    peak = max(counts) if counts else 0
    if total == 0 or peak == 0:
        # Zero-sample histograms have nothing to scale bars against;
        # say so explicitly instead of rendering an empty block.
        lines.append("    (no samples)")
        return "\n  ".join(lines)
    labels = (
        [f"< {edges[0]:g}"]
        + [f"[{a:g}, {b:g})" for a, b in zip(edges, edges[1:])]
        + [f">= {edges[-1]:g}"]
    )
    label_width = max(len(label) for label in labels)
    for label, count in zip(labels, counts):
        if count == 0:
            continue
        bar = "#" * max(1, round(24 * count / peak))
        lines.append(f"    {label:<{label_width}s} {count:>8d} {bar}")
    return "\n  ".join(lines)
