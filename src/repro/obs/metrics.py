"""The metrics registry: counters, gauges and fixed-bucket histograms.

Telemetry on a parallel pipeline is only trustworthy if the numbers do
not depend on *how* the work was executed.  Every merge operation here is
therefore **exact**: counters add integers, histograms add integer bucket
counts, and gauges combine with ``max`` -- all commutative and
associative, so folding worker-local registries into the parent's in any
completion order yields bit-identical results to serial execution.  The
one deliberate omission is a floating-point running *sum* (float addition
is not associative); histograms carry exact ``min``/``max`` extrema
instead.

Metrics carry a *scope*:

``"work"``
    Derived purely from the work items' values (noise levels, parity
    failures, transport rounds).  Work metrics are covered by the
    determinism contract: serial and ``workers=N`` runs agree byte for
    byte (see ``docs/observability.md``).
``"exec"``
    Describes the execution substrate (chunks dispatched, pool rebuilds,
    shared-memory occupancy).  Exec metrics legitimately differ between
    serial and parallel runs and are excluded from
    :meth:`MetricsRegistry.work_json`.
"""

from __future__ import annotations

import json
from collections.abc import Iterable, Sequence
from typing import cast

import numpy as np

WORK = "work"
EXEC = "exec"
_SCOPES = (WORK, EXEC)

#: Serialized form of one metric (plain JSON-ready values only).
MetricDict = dict[str, object]


def _check_scope(scope: str) -> str:
    if scope not in _SCOPES:
        raise ValueError(f"scope must be one of {_SCOPES}, got {scope!r}")
    return scope


class Counter:
    """A monotonically increasing integer count."""

    kind = "counter"

    def __init__(self, name: str, scope: str = WORK) -> None:
        self.name = name
        self.scope = _check_scope(scope)
        self.value = 0

    def inc(self, n: int = 1) -> None:
        """Add *n* (must be >= 0) to the count."""
        n = int(n)
        if n < 0:
            raise ValueError(f"counter increments must be >= 0, got {n}")
        self.value += n

    def merge(self, other: MetricDict) -> None:
        """Fold a serialized counter into this one (exact: integer add)."""
        self.value += int(cast(int, other["value"]))

    def as_dict(self) -> MetricDict:
        """JSON-ready form."""
        return {"kind": self.kind, "scope": self.scope, "value": self.value}


class Gauge:
    """A point-in-time level; merges keep the maximum observed value.

    ``max`` is the only order-independent combination of last-set values
    from concurrent recorders, so that is the merge rule -- a gauge here
    answers "how high did it get", not "where did it end".
    """

    kind = "gauge"

    def __init__(self, name: str, scope: str = EXEC) -> None:
        self.name = name
        self.scope = _check_scope(scope)
        self.value: float | None = None

    def set(self, value: float) -> None:
        """Record a level (the running maximum is kept)."""
        value = float(value)
        if self.value is None or value > self.value:
            self.value = value

    def merge(self, other: MetricDict) -> None:
        """Fold a serialized gauge into this one (exact: max)."""
        value = other["value"]
        if value is not None:
            self.set(float(cast(float, value)))

    def as_dict(self) -> MetricDict:
        """JSON-ready form."""
        return {"kind": self.kind, "scope": self.scope, "value": self.value}


class Histogram:
    """A fixed-bucket histogram with exact merges.

    The bucket edges are fixed at construction, so two recorders of the
    same metric always agree on the binning and merging is pure integer
    addition of per-bucket counts -- the property that makes serial and
    ``workers=N`` telemetry bit-identical.  Values below ``edges[0]``
    land in the underflow bucket, values ``>= edges[-1]`` in the
    overflow bucket, so ``len(counts) == len(edges) + 1``.
    """

    kind = "histogram"

    def __init__(self, name: str, edges: Sequence[float], scope: str = WORK) -> None:
        if len(edges) < 1:
            raise ValueError("histogram needs at least one bucket edge")
        bounds = [float(e) for e in edges]
        if any(b >= a for b, a in zip(bounds, bounds[1:])):
            raise ValueError(f"bucket edges must be strictly increasing, got {bounds}")
        self.name = name
        self.scope = _check_scope(scope)
        self.edges = tuple(bounds)
        self._edge_array = np.asarray(bounds, dtype=np.float64)
        self.counts = [0] * (len(bounds) + 1)
        self.count = 0
        self.min: float | None = None
        self.max: float | None = None

    def observe(self, value: float) -> None:
        """Record one value."""
        self.observe_array(np.asarray([value], dtype=np.float64))

    def observe_array(self, values: np.ndarray | Iterable[float]) -> None:
        """Record a batch of values in one vectorised pass."""
        data = np.asarray(values, dtype=np.float64).ravel()
        if data.size == 0:
            return
        buckets = np.searchsorted(self._edge_array, data, side="right")
        binned = np.bincount(buckets, minlength=len(self.counts))
        for index, n in enumerate(binned):
            self.counts[index] += int(n)
        self.count += int(data.size)
        lo, hi = float(data.min()), float(data.max())
        if self.min is None or lo < self.min:
            self.min = lo
        if self.max is None or hi > self.max:
            self.max = hi

    def merge(self, other: MetricDict) -> None:
        """Fold a serialized histogram into this one (exact: int adds, min/max)."""
        other_edges = tuple(float(e) for e in cast(Sequence[float], other["edges"]))
        if other_edges != self.edges:
            raise ValueError(
                f"histogram {self.name!r} edge mismatch: {other_edges} != {self.edges}"
            )
        for index, n in enumerate(cast("Sequence[int]", other["counts"])):
            self.counts[index] += int(n)
        self.count += int(cast(int, other["count"]))
        for bound, better in (("min", min), ("max", max)):
            theirs = cast("float | None", other[bound])
            if theirs is None:
                continue
            mine = cast("float | None", getattr(self, bound))
            value = float(theirs)
            setattr(self, bound, value if mine is None else better(mine, value))

    def as_dict(self) -> MetricDict:
        """JSON-ready form."""
        return {
            "kind": self.kind,
            "scope": self.scope,
            "edges": list(self.edges),
            "counts": list(self.counts),
            "count": self.count,
            "min": self.min,
            "max": self.max,
        }


Metric = Counter | Gauge | Histogram


class MetricsRegistry:
    """A named collection of metrics with exact, order-independent merges.

    Metric identity is the name: asking for an existing name returns the
    existing instance (after checking kind, scope and -- for histograms
    -- edges agree), so instrumentation sites need no shared setup.
    """

    def __init__(self) -> None:
        self._metrics: dict[str, Metric] = {}

    def counter(self, name: str, scope: str = WORK) -> Counter:
        """The counter registered under *name* (created on first use)."""
        metric = self._get(name, Counter.kind, scope)
        if metric is None:
            metric = self._metrics[name] = Counter(name, scope=scope)
        assert isinstance(metric, Counter)
        return metric

    def gauge(self, name: str, scope: str = EXEC) -> Gauge:
        """The gauge registered under *name* (created on first use)."""
        metric = self._get(name, Gauge.kind, scope)
        if metric is None:
            metric = self._metrics[name] = Gauge(name, scope=scope)
        assert isinstance(metric, Gauge)
        return metric

    def histogram(
        self, name: str, edges: Sequence[float], scope: str = WORK
    ) -> Histogram:
        """The histogram registered under *name* (created on first use)."""
        metric = self._get(name, Histogram.kind, scope)
        if metric is None:
            metric = self._metrics[name] = Histogram(name, edges, scope=scope)
        assert isinstance(metric, Histogram)
        if tuple(float(e) for e in edges) != metric.edges:
            raise ValueError(
                f"histogram {name!r} re-registered with different edges"
            )
        return metric

    def _get(self, name: str, kind: str, scope: str) -> Metric | None:
        metric = self._metrics.get(name)
        if metric is None:
            return None
        if metric.kind != kind:
            raise ValueError(
                f"metric {name!r} is a {metric.kind}, not a {kind}"
            )
        if metric.scope != scope:
            raise ValueError(
                f"metric {name!r} is {metric.scope}-scoped, not {scope}"
            )
        return metric

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def merge(self, other: "MetricsRegistry | dict[str, MetricDict]") -> None:
        """Fold another registry (or its ``as_dict``) into this one.

        Unknown names are adopted; known names merge exactly.  Because
        every merge rule is commutative and associative, the fold order
        never matters -- worker registries can arrive in completion
        order and the result is still bit-identical to serial.
        """
        items = other.as_dict() if isinstance(other, MetricsRegistry) else other
        for name, payload in items.items():
            kind = str(payload["kind"])
            scope = str(payload["scope"])
            if kind == Counter.kind:
                self.counter(name, scope=scope).merge(payload)
            elif kind == Gauge.kind:
                self.gauge(name, scope=scope).merge(payload)
            elif kind == Histogram.kind:
                edges = [float(e) for e in cast(Sequence[float], payload["edges"])]
                self.histogram(name, edges, scope=scope).merge(payload)
            else:
                raise ValueError(f"unknown metric kind {kind!r} for {name!r}")

    def as_dict(self) -> dict[str, MetricDict]:
        """Every metric, serialized, in sorted-name order."""
        return {name: self._metrics[name].as_dict() for name in sorted(self._metrics)}

    def work_json(self) -> str:
        """Canonical JSON of the work-scoped metrics only.

        This is the determinism artifact: for the same run parameters it
        is byte-identical regardless of worker count (sorted keys, fixed
        separators, no whitespace variation).
        """
        work = {
            name: payload
            for name, payload in self.as_dict().items()
            if payload["scope"] == WORK
        }
        return json.dumps(work, sort_keys=True, separators=(",", ":"))
