"""A lightweight sampling profiler with per-stage aggregation.

The deterministic timers in :mod:`repro.runtime.profiler` answer "how
long did each stage take"; they cannot answer "where *inside* render is
the time going" without instrumenting every function.  This sampler
answers that statistically: a daemon thread (or, opt-in, a SIGPROF
timer) captures the target thread's Python stack every few
milliseconds, aggregates identical stacks, and buckets every sample by
the innermost pipeline stage on the stack -- so one profile shows both
the stage split and the hot call paths, exportable as collapsed stacks
for any flamegraph renderer (``stackcollapse`` format: one
``frame;frame;frame count`` line per unique stack).

Sampling is exec-scoped by nature (which samples land depends on
scheduling, never on the work), so the profiler lives entirely outside
the bit-identity contract: attaching it changes no pipeline output, and
its report carries wall-clock durations on purpose.

Usage::

    with SamplingProfiler(interval_s=0.005) as profiler:
        run_link(...)
    print(profiler.report().summary())
    profiler.report().write_collapsed("profile.folded")

or via ``--profile-sampling`` on the simulate / transfer / serve /
campaign CLIs.
"""

from __future__ import annotations

import signal
import sys
import threading
import time
import types
from collections.abc import Iterator, Mapping
from dataclasses import dataclass, field

#: Function names that mark a pipeline stage when seen on the stack.
#: The innermost match wins, so helper frames under ``render`` still
#: bucket as render.  Mirrors the stage taxonomy of
#: :class:`repro.runtime.profiler.StageTimers` and the campaign layer.
STAGE_FUNCTIONS: Mapping[str, str] = {
    # link pipeline stages
    "render_frame": "render",
    "prepare_stream": "render",
    "capture_frame": "observe",
    "observe": "observe",
    "decide_observations": "decide",
    "decide_observations_healed": "decide",
    "summarize_link": "score",
    # transport / serve / campaign layers
    "run_transport_link": "transport",
    "_simulate_receiver": "serve",
    "execute_unit": "campaign",
}

#: Default sampling period: 5 ms ~ 200 Hz, cheap enough to leave on.
DEFAULT_INTERVAL_S = 0.005


def _frame_labels(frame: types.FrameType | None) -> tuple[str, ...]:
    """The stack under *frame* as ``module:function`` labels, root first."""
    labels: list[str] = []
    while frame is not None:
        code = frame.f_code
        module = frame.f_globals.get("__name__", "?")
        labels.append(f"{module}:{code.co_name}")
        frame = frame.f_back
    labels.reverse()
    return tuple(labels)


def stage_of(stack: tuple[str, ...]) -> str:
    """The stage bucket of one sampled stack (innermost marker wins)."""
    for label in reversed(stack):
        name = label.rsplit(":", 1)[-1]
        stage = STAGE_FUNCTIONS.get(name)
        if stage is not None:
            return stage
    return "other"


@dataclass(frozen=True)
class ProfileReport:
    """One finished sampling session, aggregated and JSON-ready.

    Attributes
    ----------
    samples:
        Total stacks captured.
    duration_s:
        Wall-clock span of the session (exec-scoped by design).
    interval_s:
        The configured sampling period.
    stacks:
        ``stack -> count`` over unique sampled stacks.
    by_stage:
        ``stage -> count`` per :data:`STAGE_FUNCTIONS` bucket.
    """

    samples: int
    duration_s: float
    interval_s: float
    stacks: dict[tuple[str, ...], int] = field(default_factory=dict)
    by_stage: dict[str, int] = field(default_factory=dict)

    def collapsed(self) -> list[str]:
        """Collapsed-stack lines (``a;b;c N``), sorted for stable output."""
        return [
            ";".join(stack) + f" {self.stacks[stack]}"
            for stack in sorted(self.stacks)
        ]

    def write_collapsed(self, path: str) -> None:
        """Write the collapsed stacks where flamegraph renderers expect them."""
        with open(path, "w", encoding="utf-8") as handle:
            for line in self.collapsed():
                handle.write(line + "\n")

    def stage_fractions(self) -> dict[str, float]:
        """Per-stage share of all samples (empty profile -> empty dict)."""
        if self.samples == 0:
            return {}
        return {
            stage: self.by_stage[stage] / self.samples
            for stage in sorted(self.by_stage)
        }

    def as_dict(self) -> dict[str, object]:
        """JSON-ready form (stacks keyed by their collapsed string)."""
        return {
            "format": "repro.obs.profile/1",
            "samples": self.samples,
            "duration_s": self.duration_s,
            "interval_s": self.interval_s,
            "by_stage": {k: self.by_stage[k] for k in sorted(self.by_stage)},
            "stacks": {
                ";".join(stack): self.stacks[stack] for stack in sorted(self.stacks)
            },
        }

    def summary(self) -> str:
        """A terminal-friendly stage breakdown."""
        lines = [
            f"sampling profile: {self.samples} samples over "
            f"{self.duration_s:.2f} s ({self.interval_s * 1000:g} ms period)"
        ]
        for stage, fraction in sorted(
            self.stage_fractions().items(), key=lambda kv: -kv[1]
        ):
            lines.append(
                f"  {stage:<10s} {fraction * 100:5.1f}%  "
                f"({self.by_stage[stage]} samples)"
            )
        return "\n".join(lines)


class SamplingProfiler:
    """Samples one thread's Python stack on a fixed period.

    Parameters
    ----------
    interval_s:
        Sampling period.
    mode:
        ``"thread"`` (default) runs a daemon thread reading the target
        thread's frame out of :func:`sys._current_frames` -- works from
        any thread and never interrupts the target.  ``"signal"`` uses
        ``SIGPROF`` via :func:`signal.setitimer` (CPU-time driven, main
        thread only) -- closer to a classic profiler, but unavailable
        inside embedded interpreters or off the main thread.
    target_thread_id:
        Thread to sample in ``"thread"`` mode; defaults to the thread
        that calls :meth:`start`.

    The profiler samples only -- it never mutates the target thread, so
    attaching it cannot change any pipeline output.
    """

    def __init__(
        self,
        interval_s: float = DEFAULT_INTERVAL_S,
        *,
        mode: str = "thread",
        target_thread_id: int | None = None,
    ) -> None:
        if interval_s <= 0.0:
            raise ValueError(f"interval_s must be > 0, got {interval_s}")
        if mode not in ("thread", "signal"):
            raise ValueError(f"mode must be 'thread' or 'signal', got {mode!r}")
        self.interval_s = float(interval_s)
        self.mode = mode
        self.target_thread_id = target_thread_id
        self._stacks: dict[tuple[str, ...], int] = {}
        self._samples = 0
        self._started_at = 0.0
        self._duration_s = 0.0
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._previous_handler: object = None

    # ------------------------------------------------------------------
    # Sample capture (shared by both modes)
    # ------------------------------------------------------------------
    def _record_frame(self, frame: types.FrameType | None) -> None:
        if frame is None:
            return
        stack = _frame_labels(frame)
        if not stack:
            return
        self._stacks[stack] = self._stacks.get(stack, 0) + 1
        self._samples += 1

    def _sample_thread_loop(self, target_id: int) -> None:
        while not self._stop.is_set():
            frame = sys._current_frames().get(target_id)
            self._record_frame(frame)
            self._stop.wait(self.interval_s)

    def _on_sigprof(self, signum: int, frame: types.FrameType | None) -> None:
        self._record_frame(frame)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "SamplingProfiler":
        """Begin sampling (idempotent)."""
        if self._thread is not None or self._started_at:
            return self
        self._started_at = time.perf_counter()
        if self.mode == "signal":
            if threading.current_thread() is not threading.main_thread():
                raise RuntimeError("signal-mode profiling requires the main thread")
            self._previous_handler = signal.signal(
                signal.SIGPROF, self._on_sigprof
            )
            signal.setitimer(signal.ITIMER_PROF, self.interval_s, self.interval_s)
            return self
        target = (
            self.target_thread_id
            if self.target_thread_id is not None
            else threading.get_ident()
        )
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._sample_thread_loop,
            args=(target,),
            name="sampling-profiler",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Stop sampling; the report keeps accumulating across restarts."""
        if self._started_at:
            self._duration_s += time.perf_counter() - self._started_at
            self._started_at = 0.0
        if self.mode == "signal":
            signal.setitimer(signal.ITIMER_PROF, 0.0)
            if self._previous_handler is not None:
                signal.signal(signal.SIGPROF, self._previous_handler)  # type: ignore[arg-type]
                self._previous_handler = None
            return
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "SamplingProfiler":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def _iter_stage_counts(self) -> Iterator[tuple[str, int]]:
        by_stage: dict[str, int] = {}
        for stack, count in self._stacks.items():
            stage = stage_of(stack)
            by_stage[stage] = by_stage.get(stage, 0) + count
        yield from sorted(by_stage.items())

    def report(self) -> ProfileReport:
        """Freeze what was sampled so far into a :class:`ProfileReport`."""
        duration = self._duration_s
        if self._started_at:
            duration += time.perf_counter() - self._started_at
        return ProfileReport(
            samples=self._samples,
            duration_s=duration,
            interval_s=self.interval_s,
            stacks=dict(self._stacks),
            by_stage=dict(self._iter_stage_counts()),
        )
