"""Streaming live telemetry: exec-scoped time-series beside exact merges.

The metrics registry (:mod:`repro.obs.metrics`) answers "what happened"
after a run: its merges are exact, its work scope is byte-identical at
any worker count, and nothing in it may depend on the wall clock.  That
contract is also why it cannot answer "what is happening *now*" -- a
mid-flight view is wall-clock-stamped by nature.  This module is the
side-channel for that view, built so the two never mix:

* :class:`TimeSeries` -- a fixed-capacity ring buffer of
  ``(wall_time, value)`` points.  Exec-scoped by definition: the points
  are stamped with ``time.time()`` and deliberately excluded from
  ``metrics_json()`` / ``work_json()``, so enabling live telemetry
  cannot perturb the serial-vs-workers byte-identity artifact.
* :class:`LiveCollector` -- the recording surface.  Instrumentation
  calls :meth:`LiveCollector.record` directly (cheap, thread-safe, a
  no-op through the module-level :func:`record_live` helper when no
  collector is installed), and attached
  :class:`~repro.obs.metrics.MetricsRegistry` instances are *sampled*
  into series on every snapshot -- the registry is read, never written.
* Two exporters, both versioned :data:`LIVE_FORMAT`:
  :meth:`LiveCollector.write_snapshot` appends one JSONL record per
  snapshot to a stream file (what ``repro.tools.watch`` tails), and
  :func:`render_prometheus` renders the current values in Prometheus
  text exposition format (parse it back with
  :func:`parse_prometheus`).

The checks layer enforces the wall: rule ``OBS002`` flags any
time-series read (``.latest()`` / ``.points()`` / ``.values()``)
flowing into a work-scoped sink, exactly as ``DET004`` does for
exec-scoped registry metrics.
"""

from __future__ import annotations

import json
import threading
import time
from collections.abc import Callable, Sequence
from typing import TextIO

from repro.obs.metrics import MetricsRegistry

#: Version tag stamped on both exporter formats.
LIVE_FORMAT = "repro.obs.live/1"

#: Default ring capacity: 4 minutes of points at the 1 Hz default cadence.
DEFAULT_CAPACITY = 240

#: Default snapshot cadence (seconds).
DEFAULT_INTERVAL_S = 1.0

#: ``probe() -> {series_name: value}`` -- sampled on every snapshot.
ProbeFn = Callable[[], dict[str, float]]


class TimeSeries:
    """A fixed-capacity ring buffer of wall-clock-stamped values.

    Appends past ``capacity`` overwrite the oldest point.  Points carry
    ``time.time()`` stamps (or an explicit ``t``), which is precisely
    why a series is exec-scoped: two runs of the same work never agree
    on its contents, so it must never feed a bit-identity sink.
    """

    __slots__ = ("name", "capacity", "_times", "_values", "_start", "_count")

    def __init__(self, name: str, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.name = name
        self.capacity = int(capacity)
        self._times: list[float] = [0.0] * self.capacity
        self._values: list[float] = [0.0] * self.capacity
        self._start = 0  # index of the oldest point
        self._count = 0

    def __len__(self) -> int:
        return self._count

    def record(self, value: float, t: float | None = None) -> None:
        """Append one point (stamped now unless *t* is given)."""
        stamp = time.time() if t is None else float(t)
        slot = (self._start + self._count) % self.capacity
        if self._count == self.capacity:
            self._start = (self._start + 1) % self.capacity
        else:
            self._count += 1
        self._times[slot] = stamp
        self._values[slot] = float(value)

    def points(self) -> list[tuple[float, float]]:
        """Every retained ``(t, value)`` point, oldest first."""
        out: list[tuple[float, float]] = []
        for i in range(self._count):
            slot = (self._start + i) % self.capacity
            out.append((self._times[slot], self._values[slot]))
        return out

    def values(self) -> list[float]:
        """The retained values, oldest first."""
        return [value for _, value in self.points()]

    def latest(self) -> float | None:
        """The most recent value, or ``None`` for an empty series."""
        if self._count == 0:
            return None
        slot = (self._start + self._count - 1) % self.capacity
        return self._values[slot]

    def latest_time(self) -> float | None:
        """The most recent point's wall-clock stamp, or ``None``."""
        if self._count == 0:
            return None
        slot = (self._start + self._count - 1) % self.capacity
        return self._times[slot]


class LiveCollector:
    """The recording surface live instrumentation writes into.

    Parameters
    ----------
    interval_s:
        Snapshot cadence of the background sampler (:meth:`start`).
    capacity:
        Ring capacity of every series created through this collector.
    snapshot_path:
        When given, every snapshot appends one :data:`LIVE_FORMAT`
        JSONL record here -- the stream ``repro.tools.watch`` tails.
    clock:
        Wall-clock source (injectable for tests).

    Thread safety: :meth:`record` and :meth:`snapshot` take the
    collector lock, so direct recording from worker threads and the
    background sampler coexist.  The collector is deliberately *not*
    shipped across process boundaries -- workers record into their own
    process-local state or not at all; live telemetry is advisory and
    never merged, so losing a worker's view costs nothing.
    """

    def __init__(
        self,
        *,
        interval_s: float = DEFAULT_INTERVAL_S,
        capacity: int = DEFAULT_CAPACITY,
        snapshot_path: str | None = None,
        clock: Callable[[], float] = time.time,
    ) -> None:
        if interval_s <= 0.0:
            raise ValueError(f"interval_s must be > 0, got {interval_s}")
        self.interval_s = float(interval_s)
        self.capacity = int(capacity)
        self.snapshot_path = snapshot_path
        self.clock = clock
        self.snapshots = 0
        self._series: dict[str, TimeSeries] = {}
        self._registries: dict[str, MetricsRegistry] = {}
        self._probes: list[ProbeFn] = []
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def series(self, name: str) -> TimeSeries:
        """The series registered under *name* (created on first use)."""
        with self._lock:
            return self._series_locked(name)

    def _series_locked(self, name: str) -> TimeSeries:
        found = self._series.get(name)
        if found is None:
            found = self._series[name] = TimeSeries(name, capacity=self.capacity)
        return found

    def names(self) -> list[str]:
        """Every registered series name, sorted."""
        with self._lock:
            return sorted(self._series)

    def record(self, name: str, value: float, t: float | None = None) -> None:
        """Append one point to series *name* (cheap; safe from any thread)."""
        stamp = self.clock() if t is None else float(t)
        with self._lock:
            self._series_locked(name).record(value, t=stamp)

    def attach(self, registry: MetricsRegistry, prefix: str = "") -> None:
        """Sample *registry* into series on every snapshot (read-only).

        Counters and gauges sample their current value; histograms
        sample their observation count.  Series names are the metric
        names under *prefix*.  Attaching a second registry under the
        same prefix replaces the first (transport rounds re-attach each
        round's registry without unbounded growth).  The registry is
        never written: live sampling cannot perturb the exact-merge
        artifact.
        """
        with self._lock:
            self._registries[prefix] = registry

    def add_probe(self, probe: ProbeFn) -> None:
        """Call ``probe()`` on every snapshot; record the returned values."""
        with self._lock:
            self._probes.append(probe)

    # ------------------------------------------------------------------
    # Snapshotting
    # ------------------------------------------------------------------
    def snapshot(self) -> dict[str, object]:
        """Sample every probe and attached registry; return the record.

        The record is the JSONL stream's line format: ``format``,
        ``seq``, wall time ``t``, and the latest value of every series.
        When :attr:`snapshot_path` is set the record is appended there.
        """
        now = self.clock()
        with self._lock:
            for prefix in sorted(self._registries):
                registry = self._registries[prefix]
                for name, payload in registry.as_dict().items():
                    kind = payload.get("kind")
                    sampled: object = (
                        payload.get("count")
                        if kind == "histogram"
                        else payload.get("value")
                    )
                    if isinstance(sampled, (int, float)):
                        self._series_locked(prefix + name).record(
                            float(sampled), t=now
                        )
            for probe in self._probes:
                for name in sorted(readings := probe()):
                    self._series_locked(name).record(float(readings[name]), t=now)
            values = {
                name: self._series[name].latest() for name in sorted(self._series)
            }
            seq = self.snapshots
            self.snapshots += 1
        record: dict[str, object] = {
            "format": LIVE_FORMAT,
            "seq": seq,
            "t": now,
            "values": values,
        }
        if self.snapshot_path is not None:
            self.write_snapshot(record)
        return record

    def write_snapshot(self, record: dict[str, object]) -> None:
        """Append one snapshot record to the JSONL stream (exporter 1)."""
        if self.snapshot_path is None:
            return
        line = json.dumps(record, sort_keys=True, separators=(",", ":"))
        try:
            with open(self.snapshot_path, "a", encoding="utf-8") as handle:
                handle.write(line + "\n")
        except OSError:
            pass  # advisory stream; losing a snapshot must never fail the run

    # ------------------------------------------------------------------
    # The background sampler
    # ------------------------------------------------------------------
    def _run(self) -> None:
        while not self._stop.is_set():
            self.snapshot()
            self._stop.wait(self.interval_s)

    def start(self) -> "LiveCollector":
        """Start the snapshot thread (daemon; one snapshot per interval)."""
        if self._thread is not None:
            return self
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="live-collector", daemon=True
        )
        self._thread.start()
        return self

    def stop(self, final_snapshot: bool = True) -> None:
        """Stop the sampler; by default take one last snapshot."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        if final_snapshot:
            self.snapshot()

    def __enter__(self) -> "LiveCollector":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.stop()


# ----------------------------------------------------------------------
# Exporter 2: Prometheus text exposition
# ----------------------------------------------------------------------
def _prometheus_name(name: str) -> str:
    """A series name mangled to Prometheus' ``[a-zA-Z0-9_]`` alphabet."""
    safe = "".join(c if c.isalnum() or c == "_" else "_" for c in name)
    if not safe or safe[0].isdigit():
        safe = "_" + safe
    return "repro_live_" + safe


def render_prometheus(collector: LiveCollector) -> str:
    """The collector's current values in Prometheus text exposition format.

    One ``gauge`` per series, sample value = the latest point, sample
    timestamp = the latest point's wall time in milliseconds.  The
    leading comment carries :data:`LIVE_FORMAT` so scrapers can assert
    the version.
    """
    lines = [f"# {LIVE_FORMAT}"]
    with collector._lock:
        names = sorted(collector._series)
        for name in names:
            series = collector._series[name]
            value = series.latest()
            stamp = series.latest_time()
            if value is None or stamp is None:
                continue
            metric = _prometheus_name(name)
            lines.append(f"# HELP {metric} live series {name}")
            lines.append(f"# TYPE {metric} gauge")
            lines.append(f'{metric}{{series="{name}"}} {value:g} {int(stamp * 1000)}')
    return "\n".join(lines) + "\n"


def parse_prometheus(text: str) -> dict[str, float]:
    """Parse :func:`render_prometheus` output back to ``{series: value}``.

    Strict enough to catch a broken exposition (bad sample lines raise
    ``ValueError``); used by the CI watch smoke job and the tests.
    """
    out: dict[str, float] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        head, _, rest = line.partition("}")
        if "{" not in head or not rest.strip():
            raise ValueError(f"unparseable exposition line: {line!r}")
        _, _, label = head.partition("{")
        key = label.partition("=")[2].strip('"')
        parts = rest.split()
        if len(parts) not in (1, 2):
            raise ValueError(f"unparseable exposition sample: {line!r}")
        out[key] = float(parts[0])
    return out


# ----------------------------------------------------------------------
# The process-wide installation point
# ----------------------------------------------------------------------
_INSTALLED: LiveCollector | None = None
_INSTALL_LOCK = threading.Lock()


def install_live(collector: LiveCollector | None) -> LiveCollector | None:
    """Install (or with ``None`` clear) the process-wide collector.

    Returns the previous collector.  Instrumentation sites use
    :func:`record_live`, which is a cheap no-op while nothing is
    installed -- the default, so the exact-merge pipeline pays nothing
    for the existence of this module.
    """
    global _INSTALLED
    with _INSTALL_LOCK:
        previous = _INSTALLED
        _INSTALLED = collector
    return previous


def live_collector() -> LiveCollector | None:
    """The installed process-wide collector, if any."""
    return _INSTALLED


def record_live(name: str, value: float) -> None:
    """Record into the installed collector; no-op when none is installed."""
    collector = _INSTALLED
    if collector is not None:
        collector.record(name, value)


def read_snapshots(stream: TextIO) -> list[dict[str, object]]:
    """Parse a snapshot JSONL stream, skipping torn or foreign lines.

    Mirrors the journal-tail torn-line policy: only complete,
    well-formed :data:`LIVE_FORMAT` records count; a line being written
    this instant (or half a line left by a crash) is silently dropped.
    """
    out: list[dict[str, object]] = []
    for line in stream:
        line = line.strip()
        if not line:
            continue
        try:
            payload = json.loads(line)
        except json.JSONDecodeError:
            continue
        if isinstance(payload, dict) and payload.get("format") == LIVE_FORMAT:
            out.append(payload)
    return out
