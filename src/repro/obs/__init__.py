"""repro.obs: unified telemetry for the link pipeline.

One run of the screen->camera link used to answer "what happened" with
four disjoint report objects (stage timers, degradation, healing,
benchmark blobs).  This package is the single telemetry surface under
them all:

* :mod:`~repro.obs.metrics` -- a registry of ``Counter`` / ``Gauge`` /
  fixed-bucket ``Histogram`` metrics whose merges are *exact* (integer
  adds, max-combines), so serial and ``workers=N`` runs produce
  bit-identical work-scoped telemetry;
* :mod:`~repro.obs.trace` -- a span tracer emitting structured records
  with ids, parent ids and system-wide monotonic timestamps, mergeable
  across processes and exportable as Chrome ``trace_event`` JSON;
* :mod:`~repro.obs.telemetry` -- the live :class:`Telemetry` collector
  (workers record locally, exports ride back with each chunk, the parent
  merges) and the frozen :class:`RunTelemetry` attached to
  ``LinkRun`` / ``TransportRun`` and rendered by
  ``python -m repro.tools.report``;
* :mod:`~repro.obs.live` -- the streaming side-channel: exec-scoped
  :class:`TimeSeries` ring buffers fed by a :class:`LiveCollector`
  snapshotting at a fixed cadence, exported as Prometheus text
  exposition or an append-only JSONL stream (both
  ``repro.obs.live/1``), deliberately excluded from ``metrics_json()``
  so the byte-identity contract is untouched;
* :mod:`~repro.obs.profile` -- a sampling profiler
  (:class:`SamplingProfiler`) with per-stage aggregation and
  collapsed-stack flamegraph export.

See ``docs/observability.md`` for the design and the determinism
contract.
"""

from repro.obs.live import (
    LiveCollector,
    TimeSeries,
    install_live,
    live_collector,
    parse_prometheus,
    record_live,
    render_prometheus,
)
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.profile import ProfileReport, SamplingProfiler
from repro.obs.telemetry import RunTelemetry, Telemetry
from repro.obs.trace import SpanRecord, SpanTracer, chrome_trace

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "LiveCollector",
    "MetricsRegistry",
    "ProfileReport",
    "RunTelemetry",
    "SamplingProfiler",
    "SpanRecord",
    "SpanTracer",
    "Telemetry",
    "TimeSeries",
    "chrome_trace",
    "install_live",
    "live_collector",
    "parse_prometheus",
    "record_live",
    "render_prometheus",
]
