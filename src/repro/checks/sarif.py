"""SARIF 2.1.0 export for check findings.

SARIF (Static Analysis Results Interchange Format) is the schema GitHub
code scanning ingests; uploading the file from CI renders each finding
as an inline PR annotation.  Only the small subset the findings actually
carry is emitted: one ``run`` for the tool, one ``result`` per finding,
and -- for findings produced by the dataflow rules -- one ``codeFlow``
whose thread-flow locations are the recorded source-to-sink trace
steps, so the taint path shows up in the code-scanning UI too.

Pure stdlib, like everything else in :mod:`repro.checks`.
"""

from __future__ import annotations

import json
import re
from collections.abc import Iterable, Sequence

from repro.checks.engine import Finding, Rule

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

#: Trace steps are ``path:line: text`` (see ``FlowAnalyzer.step``).
_STEP_RE = re.compile(r"^(?P<path>[^:]+):(?P<line>\d+): (?P<text>.*)$")

_LEVELS = {"error": "error", "warning": "warning", "note": "note"}


def _location(path: str, line: int, col: int | None = None) -> dict[str, object]:
    region: dict[str, object] = {"startLine": line}
    if col is not None:
        region["startColumn"] = col
    return {
        "physicalLocation": {
            "artifactLocation": {"uri": path, "uriBaseId": "%SRCROOT%"},
            "region": region,
        }
    }


def _code_flow(finding: Finding) -> dict[str, object]:
    locations: list[dict[str, object]] = []
    for step in finding.trace:
        match = _STEP_RE.match(step)
        if match is not None:
            location = _location(match.group("path"), int(match.group("line")))
        else:
            # Evidence steps without a file anchor (pragma/dispatch notes)
            # attach to the finding's own location.
            location = _location(finding.path, finding.line)
        location["message"] = {"text": match.group("text") if match else step}
        locations.append({"location": location})
    return {"threadFlows": [{"locations": locations}]}


def _result(finding: Finding) -> dict[str, object]:
    result: dict[str, object] = {
        "ruleId": finding.rule,
        "level": _LEVELS.get(finding.severity, "error"),
        "message": {"text": finding.message},
        "locations": [_location(finding.path, finding.line, finding.col)],
        "partialFingerprints": {"reproChecks/v1": finding.fingerprint},
    }
    if finding.trace:
        result["codeFlows"] = [_code_flow(finding)]
    return result


def sarif_report(
    findings: Sequence[Finding], rules: Iterable[Rule]
) -> dict[str, object]:
    """The SARIF 2.1.0 document for *findings* as a plain dict."""
    catalogue = [
        {
            "id": rule.rule_id,
            "name": type(rule).__name__,
            "shortDescription": {"text": rule.description or rule.rule_id},
        }
        for rule in sorted(rules, key=lambda r: r.rule_id)
    ]
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-checks",
                        "informationUri": "https://example.invalid/repro-checks",
                        "rules": catalogue,
                    }
                },
                "results": [_result(finding) for finding in findings],
            }
        ],
    }


def sarif_dumps(findings: Sequence[Finding], rules: Iterable[Rule]) -> str:
    """The SARIF document serialized with stable key order."""
    return json.dumps(sarif_report(findings, rules), indent=2, sort_keys=True)
