"""Seed-discipline rules.

PR 2's ``workers=N`` bit-identity guarantee holds only if every random
draw flows through an explicitly seeded, explicitly threaded
:class:`numpy.random.Generator`.  Module-global state (``np.random.*``,
stdlib ``random``) is shared mutable state across the whole process --
one stray draw reorders every stream after it -- and unseeded or
``hash()``-derived generators differ across processes (``PYTHONHASHSEED``
salts ``str`` hashes), which silently breaks ``workers=N`` replays.

Rules
-----
RNG001
    Call to a legacy ``np.random`` module-global function
    (``np.random.seed``, ``np.random.normal`` ...) or ``RandomState``.
RNG002
    Call into the stdlib ``random`` module (or a ``from random import``
    alias) -- process-global state, not seedable per experiment.
RNG003
    ``np.random.default_rng()`` with no (or ``None``) seed: the stream
    changes on every run, so results are unreproducible by construction.
RNG004
    A parameter that carries a generator (``rng``, ``generator``,
    ``*_rng``) without a ``Generator`` annotation -- the type is the
    contract that randomness is threaded, not conjured locally.
RNG005
    Builtin ``hash()`` inside a seed expression (``default_rng``,
    ``SeedSequence``, ``spawn_rng`` arguments, or a ``*seed*=`` keyword):
    salted str hashing makes the seed differ per process.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.checks.engine import FileContext, Finding, Rule
from repro.checks.rules._ast_utils import annotation_text, call_name

#: Legacy module-global draw/state functions on ``np.random``.
_GLOBAL_STATE_FNS = frozenset(
    {
        "seed",
        "get_state",
        "set_state",
        "rand",
        "randn",
        "randint",
        "random",
        "random_sample",
        "ranf",
        "sample",
        "random_integers",
        "normal",
        "standard_normal",
        "uniform",
        "choice",
        "shuffle",
        "permutation",
        "poisson",
        "binomial",
        "exponential",
        "beta",
        "gamma",
        "laplace",
        "bytes",
        "RandomState",
    }
)

#: Names allowed on ``np.random`` -- the Generator API plus seed plumbing.
_ALLOWED_NP_RANDOM = frozenset(
    {"default_rng", "Generator", "SeedSequence", "BitGenerator", "PCG64", "Philox"}
)

#: Callees whose arguments are seed expressions (RNG005 scope).
_SEED_CALLEES = frozenset({"default_rng", "SeedSequence", "spawn_rng"})


def _random_module_aliases(tree: ast.Module) -> tuple[set[str], set[str]]:
    """(module aliases, imported member aliases) of stdlib ``random``."""
    modules: set[str] = set()
    members: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "random":
                    modules.add(alias.asname or alias.name)
        elif isinstance(node, ast.ImportFrom) and node.module == "random":
            for alias in node.names:
                members.add(alias.asname or alias.name)
    return modules, members


def _is_np_random(name: str) -> str | None:
    """The trailing attribute of an ``np.random.X``/``numpy.random.X`` name."""
    parts = name.split(".")
    if len(parts) >= 3 and parts[-2] == "random" and parts[-3] in ("np", "numpy"):
        return parts[-1]
    return None


class NumpyGlobalRandomRule(Rule):
    """RNG001: ban legacy module-global ``np.random`` state."""

    rule_id = "RNG001"
    description = "module-global np.random state breaks seed discipline"

    def check(self, context: FileContext) -> Iterator[Finding]:
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Call):
                continue
            name = call_name(node)
            if name is None:
                continue
            attr = _is_np_random(name)
            if attr in _GLOBAL_STATE_FNS:
                yield self.finding(
                    context,
                    node,
                    f"np.random.{attr} uses process-global RNG state; thread an "
                    f"explicit numpy.random.Generator instead",
                )


class StdlibRandomRule(Rule):
    """RNG002: ban stdlib ``random`` (global, float-only, non-threadable)."""

    rule_id = "RNG002"
    description = "stdlib random module is process-global state"

    def check(self, context: FileContext) -> Iterator[Finding]:
        modules, members = _random_module_aliases(context.tree)
        if not modules and not members:
            return
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Call):
                continue
            name = call_name(node)
            if name is None:
                continue
            parts = name.split(".")
            if (len(parts) == 2 and parts[0] in modules) or (
                len(parts) == 1 and parts[0] in members
            ):
                yield self.finding(
                    context,
                    node,
                    f"stdlib random call {name}() draws from process-global state; "
                    f"use a threaded numpy.random.Generator",
                )


class UnseededDefaultRngRule(Rule):
    """RNG003: ``default_rng()`` without a seed is unreproducible."""

    rule_id = "RNG003"
    description = "unseeded default_rng() gives a fresh stream every run"

    def check(self, context: FileContext) -> Iterator[Finding]:
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Call):
                continue
            name = call_name(node)
            if name is None or name.rsplit(".", 1)[-1] != "default_rng":
                continue
            unseeded = not node.args and not node.keywords
            none_seed = (
                len(node.args) == 1
                and isinstance(node.args[0], ast.Constant)
                and node.args[0].value is None
            )
            if unseeded or none_seed:
                yield self.finding(
                    context,
                    node,
                    "default_rng() without a seed is entropy-seeded and "
                    "unreproducible; pass a seed or accept a Generator parameter",
                )


class UntypedRngParamRule(Rule):
    """RNG004: generator-carrying parameters must be typed as such."""

    rule_id = "RNG004"
    description = "rng parameters must carry a numpy.random.Generator annotation"

    _PARAM_NAMES = ("rng", "generator", "base_rng")

    def _param_matches(self, name: str) -> bool:
        return name in self._PARAM_NAMES or name.endswith("_rng")

    def check(self, context: FileContext) -> Iterator[Finding]:
        for node in ast.walk(context.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            args = node.args
            params = [*args.posonlyargs, *args.args, *args.kwonlyargs]
            for param in params:
                if not self._param_matches(param.arg):
                    continue
                text = annotation_text(param.annotation)
                if "Generator" not in text:
                    yield self.finding(
                        context,
                        param,
                        f"parameter {param.arg!r} of {node.name}() must be "
                        f"annotated as numpy.random.Generator (got "
                        f"{text or 'no annotation'})",
                    )


class HashInSeedRule(Rule):
    """RNG005: ``hash()`` in a seed expression differs across processes."""

    rule_id = "RNG005"
    description = "builtin hash() is salted per process; never derive seeds from it"

    def _hash_calls(self, node: ast.AST) -> Iterator[ast.Call]:
        for child in ast.walk(node):
            if (
                isinstance(child, ast.Call)
                and isinstance(child.func, ast.Name)
                and child.func.id == "hash"
            ):
                yield child

    def check(self, context: FileContext) -> Iterator[Finding]:
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Call):
                continue
            name = call_name(node)
            leaf = name.rsplit(".", 1)[-1] if name else ""
            seedish_args: list[ast.AST] = []
            if leaf in _SEED_CALLEES:
                seedish_args.extend(node.args)
                seedish_args.extend(kw.value for kw in node.keywords)
            else:
                seedish_args.extend(
                    kw.value
                    for kw in node.keywords
                    if kw.arg is not None and "seed" in kw.arg
                )
            for arg in seedish_args:
                for hash_call in self._hash_calls(arg):
                    yield self.finding(
                        context,
                        hash_call,
                        "hash() is salted per process (PYTHONHASHSEED); derive "
                        "seeds with a stable digest (e.g. repro._util.stable_seed)",
                    )
