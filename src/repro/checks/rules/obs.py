"""Observability rule: library code reports through repro.obs, not stdout.

With :mod:`repro.obs` in place, every layer of the pipeline has a proper
channel for diagnostics -- metrics, spans, and the structured reports
the CLIs render.  A bare ``print()`` in library code bypasses all of
that: it cannot be merged across workers, silently interleaves under a
process pool, and pollutes the stdout of callers that compose the
library (``--json`` consumers in particular).  The CLIs under
``repro/tools/`` are the presentation layer and stay free to print.

Rules
-----
OBS001
    Library code calls the ``print()`` builtin; record a metric, emit a
    span/event, or return a report object instead (see
    ``docs/observability.md``).
OBS002
    A live time-series value (``.latest()`` / ``.points()`` /
    ``.values()`` of a :class:`repro.obs.live.TimeSeries`, or a
    collector ``.snapshot()``) flows into a work-scoped sink.  Live
    points are wall-clock-stamped by construction -- exec-scoped by
    definition -- so folding one into a work-scoped metric, a unit
    result, a journal ``done`` record, or canonical JSON breaks the
    byte-identity contract the same way DET004's exec-metric reads do.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator
from pathlib import Path

from repro.checks.engine import FileContext, Finding, Rule
from repro.checks.rules.determinism import _Sink, _TaintSinkRule
from repro.checks.rules.flow import LIVE_SNAPSHOT


class LibraryPrintRule(Rule):
    """OBS001: no bare ``print()`` in library code (tools are exempt)."""

    rule_id = "OBS001"
    description = "library code must not print(); use repro.obs or return a report"

    def applies_to(self, relpath: str) -> bool:
        parts = Path(relpath).parts
        if "repro" in parts:
            index = parts.index("repro")
            remainder = parts[index + 1 :]
            # The CLIs under repro/tools/ are the presentation layer.
            return len(remainder) >= 1 and remainder[0] != "tools"
        # Outside the repro package (fixtures, scripts) the rule applies
        # wherever the engine is pointed.
        return True

    def check(self, context: FileContext) -> Iterator[Finding]:
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Name) and func.id == "print":
                yield self.finding(
                    context,
                    node,
                    "print() in library code; record telemetry via repro.obs "
                    "or return a report object the CLIs can render",
                )


class LiveSnapshotSinkRule(_TaintSinkRule):
    """OBS002: live time-series reads must not reach work-scoped sinks."""

    rule_id = "OBS002"
    description = (
        "live time-series snapshot values (wall-clock-stamped by "
        "construction) must not flow into work-scoped metric writes, unit "
        "results, journal done records, or canonical JSON output"
    )
    label = LIVE_SNAPSHOT

    def message_for(self, sink: _Sink) -> str:
        return (
            f"live time-series value flows into {sink.desc}; snapshot "
            "points are wall-clock-stamped and exec-scoped by definition "
            "-- keep them on the live side-channel (repro.obs.live), out "
            "of the exact-merge contract"
        )
