"""The taint lattice the determinism rules evaluate expressions against.

A taint is a set of labels attached to an expression, each carrying the
human-readable path of steps that produced it (the ``--explain`` trace).
The join of two taints is label-set union -- a tiny powerset lattice, so
the analysis always terminates and never needs widening.

Labels
------
``wallclock``
    The value derives from a wall-clock read (``time.time`` /
    ``perf_counter`` / ``datetime.now`` ...).  Legal in exec-scoped
    spans and timings; illegal in anything the bit-identity contract
    covers (DET002).
``unordered-set``
    The value is (or derives from) a ``set`` / ``frozenset`` -- its
    iteration order is arbitrary across processes (DET003).
``dict-view``
    The value is a ``.keys()`` / ``.values()`` / ``.items()`` view --
    ordered by insertion, which worker completion order can change
    (DET003).
``exec-metric``
    The value was read out of an exec-scoped metric (``.value`` of a
    gauge, pool counters); folding it into work-scoped metrics crosses
    the scope boundary (DET004).
``live-snapshot``
    The value was read out of a live time-series (``.latest()`` /
    ``.points()`` / ``.values()`` of a :class:`repro.obs.live.TimeSeries`,
    or a collector ``.snapshot()``).  Live points are wall-clock-stamped
    by construction, so they are exec-scoped by definition and must
    never feed a work-scoped sink (OBS002).

Propagation is conservative-by-default: an expression's taint is the
join of its children's, with special cases for sources (clock calls,
set constructors, dict views, exec-metric reads), for sanitizers
(``sorted`` strips the order labels; ``len``/``min``/``max``/``any``/
``all`` and comparisons produce order-independent results), and for
calls to functions defined in the same module, whose *return*
expressions are evaluated transitively -- that is what lets a taint
path thread through helper functions.

Instance attributes (``self.x``) are deliberately opaque: taint does
not survive being stored on an object.  That keeps the lattice cheap
and false-positive-free; the pragma escape hatch covers the rare
intentional flow.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from repro.checks.analysis import FunctionInfo, ModuleAnalysis
from repro.checks.engine import FileContext
from repro.checks.rules._ast_utils import call_name, dotted_name

WALLCLOCK = "wallclock"
UNORDERED_SET = "unordered-set"
DICT_VIEW = "dict-view"
EXEC_METRIC = "exec-metric"
LIVE_SNAPSHOT = "live-snapshot"

#: The order-sensitivity labels (what ``sorted`` sanitizes).
ORDER_LABELS = frozenset({UNORDERED_SET, DICT_VIEW})

#: label -> source-to-here path steps.
TaintMap = dict[str, tuple[str, ...]]

#: Fully resolved callables that read the wall clock.
_WALLCLOCK_FNS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.process_time",
        "time.process_time_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

#: Builtins whose result does not depend on argument iteration order.
_ORDER_NEUTRAL_CALLS = frozenset({"len", "min", "max", "any", "all", "bool"})

_DICT_VIEW_METHODS = frozenset({"keys", "values", "items"})

#: Metric factory methods and the default scope each carries
#: (mirrors :mod:`repro.obs.metrics`).
METRIC_FACTORIES = {"counter": "work", "histogram": "work", "gauge": "exec"}

#: Methods that write a value into a metric.
METRIC_WRITES = frozenset({"inc", "observe", "observe_array", "set"})

#: Attributes that read a value back out of a metric.
_METRIC_READS = frozenset({"value", "count", "counts", "min", "max"})

#: Methods that read points back out of a live time-series / collector.
_LIVE_READS = frozenset({"latest", "latest_time", "points", "values", "snapshot"})

#: Constructors / factories whose result is a live series or collector
#: (mirrors :mod:`repro.obs.live`).
_LIVE_FACTORIES = frozenset({"TimeSeries", "LiveCollector", "live_collector"})

#: Maximum interprocedural recursion when following local call returns.
_MAX_DEPTH = 12


def iter_own_nodes(root: ast.AST) -> list[ast.AST]:
    """Every node under *root* without descending into nested defs."""
    out: list[ast.AST] = []
    stack: list[ast.AST] = [root]
    while stack:
        node = stack.pop()
        out.append(node)
        for child in ast.iter_child_nodes(node):
            if isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef)
            ):
                continue
            stack.append(child)
    return out


def metric_scope_of_factory(call: ast.Call) -> str | None:
    """The scope a metric-factory call registers, or ``None`` if not one.

    Matches ``x.counter(...)`` / ``x.gauge(...)`` / ``x.histogram(...)``
    and resolves the ``scope=`` keyword (string literal or the
    ``WORK``/``EXEC`` constants) against each factory's default.
    """
    if not isinstance(call.func, ast.Attribute):
        return None
    factory = call.func.attr
    if factory not in METRIC_FACTORIES:
        return None
    for kw in call.keywords:
        if kw.arg != "scope":
            continue
        value = kw.value
        if isinstance(value, ast.Constant) and isinstance(value.value, str):
            return value.value
        name = dotted_name(value)
        if name is not None:
            leaf = name.rsplit(".", 1)[-1]
            if leaf in ("WORK", "EXEC"):
                return leaf.lower()
        return None  # dynamic scope: cannot classify
    return METRIC_FACTORIES[factory]


@dataclass(frozen=True)
class MetricWrite:
    """One ``metric.inc/observe/set(...)`` call and the metric's scope."""

    call: ast.Call
    method: str
    scope: str
    values: tuple[ast.expr, ...]


class FlowAnalyzer:
    """Evaluates expression taint over one file's :class:`ModuleAnalysis`."""

    def __init__(self, context: FileContext) -> None:
        self.context = context
        self.analysis: ModuleAnalysis = context.analysis
        self._name_stack: set[tuple[str, str]] = set()
        self._return_stack: set[str] = set()

    # ------------------------------------------------------------------
    # Step / merge helpers
    # ------------------------------------------------------------------
    def step(self, node: ast.AST, text: str) -> str:
        """One human-readable trace step anchored at *node*."""
        line = getattr(node, "lineno", 0)
        return f"{self.context.relpath}:{line}: {text}"

    @staticmethod
    def _merge(into: TaintMap, other: TaintMap) -> TaintMap:
        for label, path in other.items():
            if label not in into:
                into[label] = path
        return into

    @staticmethod
    def _extend(taint: TaintMap, step: str) -> TaintMap:
        return {label: (*path, step) for label, path in taint.items()}

    @staticmethod
    def _drop_order(taint: TaintMap) -> TaintMap:
        return {l: p for l, p in taint.items() if l not in ORDER_LABELS}

    # ------------------------------------------------------------------
    # Taint evaluation
    # ------------------------------------------------------------------
    def taint(
        self, expr: ast.expr, fn: FunctionInfo | None, depth: int = 0
    ) -> TaintMap:
        """The taint labels of *expr* inside function *fn* (or at module level)."""
        if depth > _MAX_DEPTH:
            return {}
        if isinstance(expr, ast.Constant):
            return {}
        if isinstance(expr, ast.Name):
            return self._name_taint(expr, fn, depth)
        if isinstance(expr, ast.Call):
            return self._call_taint(expr, fn, depth)
        if isinstance(expr, ast.Attribute):
            return self._attribute_taint(expr, fn, depth)
        if isinstance(expr, (ast.Set, ast.SetComp)):
            # Building a set launders incoming order taint (membership is
            # order-independent) but the set itself is unordered.
            out = self._drop_order(self._children_taint(expr, fn, depth))
            out.setdefault(
                UNORDERED_SET,
                (self.step(expr, "set constructed here (iteration order is arbitrary)"),),
            )
            return out
        if isinstance(expr, ast.Compare):
            # Comparison results (including `x in s`) are single values
            # independent of iteration order; clock taint still flows.
            return self._drop_order(self._children_taint(expr, fn, depth))
        if isinstance(expr, ast.Lambda):
            return {}
        return self._children_taint(expr, fn, depth)

    def _children_taint(
        self, expr: ast.AST, fn: FunctionInfo | None, depth: int
    ) -> TaintMap:
        out: TaintMap = {}
        for child in ast.iter_child_nodes(expr):
            if isinstance(child, ast.expr):
                self._merge(out, self.taint(child, fn, depth))
            elif isinstance(child, (ast.comprehension, ast.keyword)):
                for grand in ast.iter_child_nodes(child):
                    if isinstance(grand, ast.expr):
                        self._merge(out, self.taint(grand, fn, depth))
        return out

    def _name_taint(
        self, expr: ast.Name, fn: FunctionInfo | None, depth: int
    ) -> TaintMap:
        name = expr.id
        if fn is not None:
            if name in fn.params:
                return {}  # threaded in by the caller: trusted boundary
            assigned = fn.assignments.get(name)
            if assigned is not None:
                return self._assigned_taint(fn.qualname, name, assigned, fn, depth)
        assigned = self.analysis.module_assignments.get(name)
        if assigned is not None:
            return self._assigned_taint("<module>", name, assigned, None, depth)
        return {}

    def _assigned_taint(
        self,
        scope: str,
        name: str,
        assigned: list[ast.expr],
        fn: FunctionInfo | None,
        depth: int,
    ) -> TaintMap:
        key = (scope, name)
        if key in self._name_stack:
            return {}
        self._name_stack.add(key)
        try:
            out: TaintMap = {}
            for value in assigned:
                taint = self.taint(value, fn, depth + 1)
                if taint:
                    self._merge(
                        out,
                        self._extend(taint, self.step(value, f"assigned to {name!r}")),
                    )
            return out
        finally:
            self._name_stack.discard(key)

    def _attribute_taint(
        self, expr: ast.Attribute, fn: FunctionInfo | None, depth: int
    ) -> TaintMap:
        out = self.taint(expr.value, fn, depth)
        if expr.attr in _METRIC_READS:
            scope = self._metric_scope_of_expr(expr.value, fn)
            if scope == "exec":
                out = dict(out)
                out.setdefault(
                    EXEC_METRIC,
                    (
                        self.step(
                            expr,
                            f"reads .{expr.attr} of an exec-scoped metric "
                            "(execution-substrate number)",
                        ),
                    ),
                )
        return out

    def _call_taint(
        self, call: ast.Call, fn: FunctionInfo | None, depth: int
    ) -> TaintMap:
        name = call_name(call)
        resolved = self.analysis.resolve_import(name) if name is not None else None
        leaf = name.rsplit(".", 1)[-1] if name else ""

        if resolved in _WALLCLOCK_FNS:
            return {
                WALLCLOCK: (self.step(call, f"{name}() reads the wall clock"),)
            }
        if leaf == "sorted":
            out: TaintMap = {}
            for arg in call.args:
                self._merge(out, self.taint(arg, fn, depth))
            return self._drop_order(out)
        if leaf in _ORDER_NEUTRAL_CALLS and isinstance(call.func, ast.Name):
            out = {}
            for arg in call.args:
                self._merge(out, self.taint(arg, fn, depth))
            return self._drop_order(out)
        if leaf in ("set", "frozenset") and isinstance(call.func, ast.Name):
            out = self._drop_order(self._children_taint(call, fn, depth))
            out.setdefault(
                UNORDERED_SET,
                (self.step(call, f"{leaf}() constructed here (iteration order is arbitrary)"),),
            )
            return out
        if (
            isinstance(call.func, ast.Attribute)
            and call.func.attr in _LIVE_READS
            and self._is_live_series_expr(call.func.value, fn)
        ):
            out = dict(self.taint(call.func.value, fn, depth))
            out.setdefault(
                LIVE_SNAPSHOT,
                (
                    self.step(
                        call,
                        f".{call.func.attr}() reads a live time-series "
                        "(wall-clock-stamped snapshot data)",
                    ),
                ),
            )
            return out
        if (
            isinstance(call.func, ast.Attribute)
            and call.func.attr in _DICT_VIEW_METHODS
            and not call.args
            and not call.keywords
        ):
            out = dict(self.taint(call.func.value, fn, depth))
            out.setdefault(
                DICT_VIEW,
                (
                    self.step(
                        call,
                        f".{call.func.attr}() view (insertion order; merge/"
                        "completion order can reorder it)",
                    ),
                ),
            )
            return out

        # A call to a function defined in this module: follow its returns.
        out = {}
        local = (
            self.analysis.resolve_function(call.func.id)
            if isinstance(call.func, ast.Name)
            else None
        )
        if local is not None and local.qualname not in self._return_stack:
            self._return_stack.add(local.qualname)
            try:
                for ret in local.returns:
                    taint = self.taint(ret, local, depth + 1)
                    if taint:
                        self._merge(
                            out,
                            self._extend(
                                taint,
                                self.step(
                                    call, f"returned by {local.name}() into this call"
                                ),
                            ),
                        )
            finally:
                self._return_stack.discard(local.qualname)
        # Arguments flow through any call conservatively (helpers that
        # transform a tainted value still hand back a tainted value).
        self._merge(out, self._children_taint(call, fn, depth))
        return out

    # ------------------------------------------------------------------
    # Live-series classification (OBS002)
    # ------------------------------------------------------------------
    @staticmethod
    def _is_live_factory(call: ast.Call) -> bool:
        """Whether *call* constructs or fetches a live series/collector."""
        name = call_name(call)
        leaf = name.rsplit(".", 1)[-1] if name else ""
        if leaf in _LIVE_FACTORIES:
            return True
        return isinstance(call.func, ast.Attribute) and call.func.attr == "series"

    def _is_live_series_expr(
        self, expr: ast.expr, fn: FunctionInfo | None
    ) -> bool:
        """Whether *expr* evaluates to a live time-series / collector."""
        if isinstance(expr, ast.Call):
            return self._is_live_factory(expr)
        if isinstance(expr, ast.Name):
            assigned: list[ast.expr] = []
            if fn is not None:
                assigned.extend(fn.assignments.get(expr.id, []))
            if not assigned:
                assigned.extend(self.analysis.module_assignments.get(expr.id, []))
            return any(
                isinstance(value, ast.Call) and self._is_live_factory(value)
                for value in assigned
            )
        return False

    # ------------------------------------------------------------------
    # Metric classification
    # ------------------------------------------------------------------
    def _metric_scope_of_expr(
        self, expr: ast.expr, fn: FunctionInfo | None
    ) -> str | None:
        """The registry scope of the metric *expr* evaluates to, if known."""
        if isinstance(expr, ast.Call):
            return metric_scope_of_factory(expr)
        if isinstance(expr, ast.Name):
            assigned: list[ast.expr] = []
            if fn is not None:
                assigned.extend(fn.assignments.get(expr.id, []))
            if not assigned:
                assigned.extend(self.analysis.module_assignments.get(expr.id, []))
            for value in assigned:
                if isinstance(value, ast.Call):
                    scope = metric_scope_of_factory(value)
                    if scope is not None:
                        return scope
        return None

    def metric_writes(self, fn: FunctionInfo) -> list[MetricWrite]:
        """Every classified metric write performed by *fn*."""
        out: list[MetricWrite] = []
        for call in fn.calls:
            if not (
                isinstance(call.func, ast.Attribute)
                and call.func.attr in METRIC_WRITES
            ):
                continue
            scope = self._metric_scope_of_expr(call.func.value, fn)
            if scope is None:
                continue
            values = tuple(call.args) + tuple(kw.value for kw in call.keywords)
            out.append(
                MetricWrite(call=call, method=call.func.attr, scope=scope, values=values)
            )
        return out

    # ------------------------------------------------------------------
    # Seed blessing (DET001)
    # ------------------------------------------------------------------
    def seed_blessed(self, expr: ast.expr, fn: FunctionInfo | None) -> bool:
        """Whether a seed expression derives from spawn-keyed material.

        Blessed seeds: a ``SeedSequence(...)`` call carrying a
        ``spawn_key=`` keyword, a call to ``spawn_rng``, any value
        derived from a function parameter (the stream was built and
        threaded in by the parent), or a local helper whose returns are
        blessed.
        """
        return self._blessed(expr, fn, set(), 0)

    def _blessed(
        self,
        expr: ast.expr,
        fn: FunctionInfo | None,
        visiting: set[tuple[str, str]],
        depth: int,
    ) -> bool:
        if depth > _MAX_DEPTH:
            return False
        if isinstance(expr, ast.Call):
            name = call_name(expr)
            leaf = name.rsplit(".", 1)[-1] if name else ""
            if leaf == "SeedSequence" and any(
                kw.arg == "spawn_key" for kw in expr.keywords
            ):
                return True
            if leaf == "spawn_rng":
                return True
            if isinstance(expr.func, ast.Name):
                local = self.analysis.resolve_function(expr.func.id)
                if local is not None and local.qualname not in self._return_stack:
                    self._return_stack.add(local.qualname)
                    try:
                        if any(
                            self._blessed(ret, local, visiting, depth + 1)
                            for ret in local.returns
                        ):
                            return True
                    finally:
                        self._return_stack.discard(local.qualname)
            return any(
                self._blessed(arg, fn, visiting, depth + 1) for arg in expr.args
            ) or any(
                self._blessed(kw.value, fn, visiting, depth + 1)
                for kw in expr.keywords
            )
        if isinstance(expr, ast.Name):
            if fn is not None:
                if expr.id in fn.params:
                    return True
                key = (fn.qualname, expr.id)
                if key in visiting:
                    return False
                visiting.add(key)
                try:
                    return any(
                        self._blessed(value, fn, visiting, depth + 1)
                        for value in fn.assignments.get(expr.id, [])
                    )
                finally:
                    visiting.discard(key)
            return False
        if isinstance(expr, (ast.Attribute, ast.Subscript, ast.Starred)):
            return self._blessed(expr.value, fn, visiting, depth + 1)
        if isinstance(expr, (ast.Tuple, ast.List)):
            return any(self._blessed(e, fn, visiting, depth + 1) for e in expr.elts)
        if isinstance(expr, ast.BinOp):
            return self._blessed(expr.left, fn, visiting, depth + 1) or self._blessed(
                expr.right, fn, visiting, depth + 1
            )
        return False
