"""Public-API typing rule.

``repro.core``, ``repro.runtime``, ``repro.transport``, ``repro.checks``,
``repro.faults`` and ``repro.obs`` are the packages other code builds on; their public
surface must be fully annotated so mypy's strict profile (see
``pyproject.toml``) has real types to check and callers get a contract
instead of a guess.  The rule is the in-repo enforcement of the same
gate CI runs through mypy -- it needs no third-party install, so it
catches regressions even in offline environments.

Rules
-----
API001
    A public function or method in a typed package is missing a
    parameter or return annotation.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator
from pathlib import Path

from repro.checks.engine import FileContext, Finding, Rule
from repro.checks.rules._ast_utils import enclosing_functions

#: Sub-packages of ``repro`` held to the strict-typing bar.
TYPED_PACKAGES = (
    "core",
    "runtime",
    "transport",
    "checks",
    "faults",
    "obs",
    "serve",
    "campaign",
)

#: Dunders that are part of a class's public behaviour contract.
_CHECKED_DUNDERS = frozenset(
    {
        "__init__",
        "__post_init__",
        "__call__",
        "__enter__",
        "__exit__",
        "__iter__",
        "__next__",
        "__len__",
        "__getitem__",
        "__setitem__",
        "__contains__",
    }
)


def _is_public_name(name: str) -> bool:
    if name in _CHECKED_DUNDERS:
        return True
    return not name.startswith("_")


class PublicApiAnnotationRule(Rule):
    """API001: public functions in typed packages carry complete annotations."""

    rule_id = "API001"
    description = "public functions in typed packages must be fully annotated"

    def applies_to(self, relpath: str) -> bool:
        parts = Path(relpath).parts
        if "repro" in parts:
            index = parts.index("repro")
            remainder = parts[index + 1 :]
            # Files directly in ``repro/`` (e.g. __init__) are exempt;
            # sub-packages are checked only when listed as typed.
            return len(remainder) >= 2 and remainder[0] in TYPED_PACKAGES
        # Outside the repro package (fixtures, scripts) the rule applies
        # wherever the engine is pointed.
        return True

    def check(self, context: FileContext) -> Iterator[Finding]:
        for node, ancestors in enclosing_functions(context.tree):
            assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
            # Only module-level functions and methods of (possibly nested)
            # classes form the public surface; helpers nested inside a
            # function body are local and exempt.
            if not all(isinstance(a, ast.ClassDef) for a in ancestors):
                continue
            parent = ancestors[-1] if ancestors else None
            if not _is_public_name(node.name):
                continue
            if any(a.name.startswith("_") for a in ancestors if isinstance(a, ast.ClassDef)):
                continue
            yield from self._check_signature(context, node, parent)

    def _check_signature(
        self,
        context: FileContext,
        node: ast.FunctionDef | ast.AsyncFunctionDef,
        parent: ast.AST | None,
    ) -> Iterator[Finding]:
        args = node.args
        missing: list[str] = []
        is_method = isinstance(parent, ast.ClassDef)
        decorators = {
            name.rsplit(".", 1)[-1]
            for name in (ast.unparse(d) for d in node.decorator_list)
        }
        positional = [*args.posonlyargs, *args.args]
        skip_first = is_method and "staticmethod" not in decorators
        for index, param in enumerate(positional):
            if skip_first and index == 0:  # self / cls
                continue
            if param.annotation is None:
                missing.append(param.arg)
        for param in args.kwonlyargs:
            if param.annotation is None:
                missing.append(param.arg)
        if args.vararg is not None and args.vararg.annotation is None:
            missing.append("*" + args.vararg.arg)
        if args.kwarg is not None and args.kwarg.annotation is None:
            missing.append("**" + args.kwarg.arg)
        if missing:
            yield self.finding(
                context,
                node,
                f"public function {node.name}() is missing parameter "
                f"annotations: {', '.join(missing)}",
            )
        if node.returns is None:
            yield self.finding(
                context,
                node,
                f"public function {node.name}() is missing a return annotation",
            )
