"""Resource-lifecycle rules.

PR 2's runtime leans on two leak-prone OS resources: ``SharedMemory``
segments (leaked segments survive the process and fill ``/dev/shm``
until the machine, not the program, fails) and worker pools (an
un-shutdown ``ProcessPoolExecutor`` strands child processes).  Each
creation must have a visible release path: a ``with`` block, a
``finally`` clause, a matching close/unlink in the same function or any
local helper it (transitively) calls, or -- for pool-like classes -- an
enclosing class that owns the lifecycle via
``close``/``shutdown``/``__exit__``/``__del__``.  The helper-call case
rides on :meth:`repro.checks.analysis.ModuleAnalysis.transitive_attribute_calls`,
so extracting a ``_teardown()`` helper no longer trips the rule.

Rules
-----
RES001
    ``SharedMemory(...)`` created with no visible close/unlink path.
RES002
    ``ProcessPoolExecutor``/``ThreadPoolExecutor``/``Pool`` created with
    no visible shutdown path.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.checks.engine import FileContext, Finding, Rule
from repro.checks.rules._ast_utils import call_name

_LIFECYCLE_METHODS = frozenset({"close", "shutdown", "__exit__", "__del__", "stop"})


def _attribute_calls(node: ast.AST) -> set[str]:
    """Names of all ``x.attr()`` method calls in *node*'s subtree."""
    attrs: set[str] = set()
    for child in ast.walk(node):
        if isinstance(child, ast.Call) and isinstance(child.func, ast.Attribute):
            attrs.add(child.func.attr)
    return attrs


class _PathStack(ast.NodeVisitor):
    """Collects creation calls along with their enclosing scopes."""

    def __init__(self, suffixes: tuple[str, ...]) -> None:
        self.suffixes = suffixes
        self.stack: list[ast.AST] = []
        self.hits: list[tuple[ast.Call, list[ast.AST]]] = []

    def generic_visit(self, node: ast.AST) -> None:
        is_scope = isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.With, ast.Try)
        )
        if isinstance(node, ast.Call):
            name = call_name(node)
            if name is not None and name.rsplit(".", 1)[-1] in self.suffixes:
                self.hits.append((node, list(self.stack)))
        if is_scope:
            self.stack.append(node)
            super().generic_visit(node)
            self.stack.pop()
        else:
            super().generic_visit(node)


class _ResourcePairingRule(Rule):
    """Shared machinery: a creation call must have a release path."""

    #: Callee name suffixes that create the resource.
    create_suffixes: tuple[str, ...] = ()
    #: Method names that release it.
    release_attrs: frozenset[str] = frozenset()
    #: What to tell the user.
    advice: str = ""

    def check(self, context: FileContext) -> Iterator[Finding]:
        collector = _PathStack(self.create_suffixes)
        collector.visit(context.tree)
        for call, ancestors in collector.hits:
            if self._managed(context, call, ancestors):
                continue
            name = call_name(call) or "resource"
            yield self.finding(
                context,
                call,
                f"{name.rsplit('.', 1)[-1]} created without a visible release "
                f"path; {self.advice}",
            )

    def _managed(
        self, context: FileContext, call: ast.Call, ancestors: list[ast.AST]
    ) -> bool:
        function = None
        for node in reversed(ancestors):
            # Directly under a ``with`` item -> context-managed.
            if isinstance(node, ast.With):
                for item in node.items:
                    for child in ast.walk(item.context_expr):
                        if child is call:
                            return True
            if isinstance(node, ast.Try) and node.finalbody:
                released = set()
                for stmt in node.finalbody:
                    released |= _attribute_calls(stmt)
                if released & self.release_attrs:
                    return True
            if function is None and isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                function = node
        if function is not None:
            if _attribute_calls(function) & self.release_attrs:
                return True
            # Cross-function: a release path counts even when it lives in
            # a helper the creating function calls (directly or
            # transitively through other local helpers).
            info = context.analysis.function_for_node(function)
            if (
                info is not None
                and context.analysis.transitive_attribute_calls(info)
                & self.release_attrs
            ):
                return True
            # Stored on self inside a class that owns the lifecycle.
            enclosing_class = self._enclosing_class(ancestors, function)
            if enclosing_class is not None and self._class_owns_lifecycle(
                enclosing_class
            ):
                return True
        return False

    @staticmethod
    def _enclosing_class(ancestors: list[ast.AST], function: ast.AST) -> ast.ClassDef | None:
        index = ancestors.index(function)
        for node in reversed(ancestors[:index]):
            if isinstance(node, ast.ClassDef):
                return node
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return None
        return None

    @staticmethod
    def _class_owns_lifecycle(cls: ast.ClassDef) -> bool:
        for stmt in cls.body:
            if (
                isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
                and stmt.name in _LIFECYCLE_METHODS
            ):
                return True
        return False


class SharedMemoryRule(_ResourcePairingRule):
    """RES001: SharedMemory must be closed and unlinked."""

    rule_id = "RES001"
    description = "SharedMemory segments must be closed/unlinked exactly once"
    create_suffixes = ("SharedMemory",)
    release_attrs = frozenset({"close", "unlink"})
    advice = (
        "close()/unlink() it in a finally block, a with statement, or an "
        "owning class with a close() method (leaked segments outlive the process)"
    )


class ExecutorRule(_ResourcePairingRule):
    """RES002: worker pools must be shut down."""

    rule_id = "RES002"
    description = "worker pools must be shut down on every path"
    create_suffixes = ("ProcessPoolExecutor", "ThreadPoolExecutor", "Pool")
    release_attrs = frozenset({"shutdown", "close", "terminate", "join"})
    advice = (
        "shutdown()/close() it in a finally block, a with statement, or an "
        "owning class with a shutdown() method (stranded workers keep running)"
    )
