"""uint8 frame-math rules.

The paper caps multiplexed pixel values to [0, 255] by *locally adjusting
the amplitude* (Section 3.3) -- the complementary pair stays complementary
because the clip never truncates.  numpy uint8 arithmetic, by contrast,
wraps silently: ``np.uint8(250) + 10 == 4``, which flips a near-white
pixel to near-black and destroys the pair's zero-mean property.  These
rules force the only safe idiom: widen to a signed/float dtype, do the
±delta math, ``clip`` to [0, 255], then cast back.

Rules
-----
DT001
    Additive/multiplicative arithmetic on a local variable known to hold
    a uint8 array, with no widening cast in the expression.
DT002
    ``.astype(np.uint8)`` applied to the result of arithmetic or
    rounding without a ``clip`` anywhere in the cast expression.
    (Arithmetic inside subscript *indices* is exempt -- indexing a table
    by a wider sum is not uint8 math.)
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.checks.engine import FileContext, Finding, Rule
from repro.checks.rules._ast_utils import (
    call_name,
    contains_call_to,
    is_uint8_dtype_expr,
    is_widening_dtype_expr,
    walk_expr_shallow,
)

#: Array constructors whose ``dtype=`` keyword fixes the element type.
_ARRAY_CTORS = frozenset(
    {"zeros", "ones", "empty", "full", "asarray", "array", "arange", "frombuffer"}
)

#: Arithmetic operators that wrap on uint8 (bitwise ops are deliberate bit math).
_ARITH_OPS = (ast.Add, ast.Sub, ast.Mult, ast.Div, ast.FloorDiv, ast.Pow)


def _is_uint8_producer(node: ast.expr) -> bool:
    """Whether an expression evidently evaluates to a uint8 array."""
    if not isinstance(node, ast.Call):
        return False
    name = call_name(node)
    if name is None:
        # ``something().astype(np.uint8)`` -- callee is an attribute chain
        # through a call; fall through to the astype check below.
        pass
    if isinstance(node.func, ast.Attribute) and node.func.attr == "astype":
        return bool(node.args) and is_uint8_dtype_expr(node.args[0])
    if name is not None and name.rsplit(".", 1)[-1] in _ARRAY_CTORS:
        for kw in node.keywords:
            if kw.arg == "dtype" and is_uint8_dtype_expr(kw.value):
                return True
    return False


def _has_widening(node: ast.AST) -> bool:
    """Whether the expression widens via astype/np-scalar constructors."""
    for child in ast.walk(node):
        if not isinstance(child, ast.Call):
            continue
        if isinstance(child.func, ast.Attribute) and child.func.attr == "astype":
            if child.args and is_widening_dtype_expr(child.args[0]):
                return True
        name = call_name(child)
        if name is not None and is_widening_dtype_expr(child.func):
            return True
    return False


class Uint8ArithmeticRule(Rule):
    """DT001: arithmetic on uint8 arrays must widen first."""

    rule_id = "DT001"
    description = "uint8 arithmetic wraps at 255; widen, clip, cast back"

    def check(self, context: FileContext) -> Iterator[Finding]:
        for scope in ast.walk(context.tree):
            if not isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Module)):
                continue
            tainted = self._uint8_locals(scope)
            if not tainted:
                continue
            yield from self._scan_scope(context, scope, tainted)

    def _uint8_locals(self, scope: ast.AST) -> set[str]:
        tainted: set[str] = set()
        for node in self._scope_nodes(scope):
            if isinstance(node, ast.Assign) and _is_uint8_producer(node.value):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        tainted.add(target.id)
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                if _is_uint8_producer(node.value) and isinstance(node.target, ast.Name):
                    tainted.add(node.target.id)
        return tainted

    def _scope_nodes(self, scope: ast.AST) -> Iterator[ast.AST]:
        """Nodes of *scope* without descending into nested defs."""
        for child in ast.iter_child_nodes(scope):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                continue
            yield child
            yield from self._scope_nodes(child)

    def _scan_scope(
        self, context: FileContext, scope: ast.AST, tainted: set[str]
    ) -> Iterator[Finding]:
        for node in self._scope_nodes(scope):
            if not isinstance(node, ast.BinOp) or not isinstance(node.op, _ARITH_OPS):
                continue
            involved = [
                operand.id
                for operand in (node.left, node.right)
                if isinstance(operand, ast.Name) and operand.id in tainted
            ]
            if not involved or _has_widening(node):
                continue
            names = ", ".join(sorted(set(involved)))
            yield self.finding(
                context,
                node,
                f"arithmetic on uint8 array {names!r} wraps at 255; widen with "
                f".astype(np.int16) (or float), clip to [0, 255], then cast back",
            )


class UnclippedUint8CastRule(Rule):
    """DT002: casting computed values to uint8 requires a clip."""

    rule_id = "DT002"
    description = "astype(np.uint8) on arithmetic without clip wraps out-of-range values"

    def check(self, context: FileContext) -> Iterator[Finding]:
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Call):
                continue
            if not (isinstance(node.func, ast.Attribute) and node.func.attr == "astype"):
                continue
            if not node.args or not is_uint8_dtype_expr(node.args[0]):
                continue
            value = node.func.value  # the expression being cast
            if contains_call_to(value, ("clip",)):
                continue
            if not self._has_computation(value):
                continue
            yield self.finding(
                context,
                node,
                "astype(np.uint8) on a computed value without clip(0, 255) wraps "
                "out-of-range pixels (paper §3.3 caps, never wraps); clip first",
            )

    def _has_computation(self, value: ast.expr) -> bool:
        for child in walk_expr_shallow(value):
            if isinstance(child, ast.BinOp) and isinstance(child.op, _ARITH_OPS):
                return True
            if isinstance(child, ast.Call):
                name = call_name(child)
                leaf = name.rsplit(".", 1)[-1] if name else ""
                if leaf in ("round", "rint", "around"):
                    return True
        return False
