"""Determinism rules: statically enforce the bit-identity contract.

Every layer since PR 2 rests on one invariant: results are pure
functions of unit identity, byte-identical at any worker count.  These
rules check the three ways code quietly breaks that contract -- RNGs
that do not derive from spawn-keyed seed material (DET001), wall-clock
values leaking into canonical outputs (DET002), unordered iteration
feeding canonical JSON or the journal (DET003) -- plus the obs-scope
boundary (DET004: exec-scoped metric values folded into work-scoped
writes).

All four run on the dataflow layer (:mod:`repro.checks.analysis` +
:mod:`repro.checks.rules.flow`) rather than per-node pattern matches,
so a taint can thread through local helper functions and every finding
carries a source-to-sink ``trace`` that ``--explain`` prints.

Escape hatches: ``# checks: exec-scope`` on a ``def`` declares the
function's values execution-substrate data (outside the contract;
DET002/003/004 skip its sinks), and the ordinary per-line
``# checks: ignore[DET00x]`` pragma still works.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator
from dataclasses import dataclass

from repro.checks.analysis import FunctionInfo, ModuleAnalysis
from repro.checks.engine import FileContext, Finding, Rule
from repro.checks.rules._ast_utils import call_name, contains_call_to
from repro.checks.rules.flow import (
    DICT_VIEW,
    EXEC_METRIC,
    UNORDERED_SET,
    WALLCLOCK,
    FlowAnalyzer,
    iter_own_nodes,
)

#: Constructors DET001 audits inside worker-executed code.
_RNG_CONSTRUCTORS = ("default_rng", "Generator")

#: Calls that make a module-level name RNG state for DET001.
_RNG_STATE_MAKERS = ("default_rng", "Generator", "RandomState")

#: Result-record constructors treated as bit-identity sinks.
_UNIT_CTORS = ("WorkUnit", "UnitResult")


def _is_dumps(call: ast.Call, analysis: ModuleAnalysis) -> bool:
    """Whether *call* is ``json.dumps``/``json.dump`` (however imported)."""
    name = call_name(call)
    if name is None:
        return False
    return analysis.resolve_import(name) in ("json.dumps", "json.dump")


def _sort_keys_on(call: ast.Call) -> bool:
    """Whether a dumps call passes a truthy ``sort_keys=``."""
    return any(
        kw.arg == "sort_keys"
        and isinstance(kw.value, ast.Constant)
        and bool(kw.value.value)
        for kw in call.keywords
    )


def _resolves_to_dictcomp(expr: ast.expr, fn: FunctionInfo | None) -> bool:
    """Whether *expr* is (or names) a dict comprehension.

    A ``{k: v for k, v in view}`` handed to ``json.dumps(...,
    sort_keys=True)`` is order-safe: the comprehension rebuilds a dict
    and ``sort_keys`` canonicalizes it, so DET003 exempts that shape.
    """
    if isinstance(expr, ast.DictComp):
        return True
    if isinstance(expr, ast.Name) and fn is not None:
        return any(
            isinstance(value, ast.DictComp)
            for value in fn.assignments.get(expr.id, [])
        )
    return False


def _journal_done_writes(
    info: FunctionInfo,
) -> list[tuple[ast.Call, tuple[ast.expr, ...]]]:
    """``.append({...\"event\": \"done\"...})`` calls and the record values.

    The dict literal may be inline or bound to a local name first.  Only
    ``done`` records are bit-identity sinks -- ``leased`` records carry
    wall-clock lease expiries by design.
    """
    out: list[tuple[ast.Call, tuple[ast.expr, ...]]] = []
    for call in info.calls:
        if not (
            isinstance(call.func, ast.Attribute)
            and call.func.attr in ("append", "_append")
            and call.args
        ):
            continue
        record: ast.expr | None = call.args[0]
        if isinstance(record, ast.Name):
            dicts = [
                value
                for value in info.assignments.get(record.id, [])
                if isinstance(value, ast.Dict)
            ]
            record = dicts[-1] if dicts else None
        if not isinstance(record, ast.Dict):
            continue
        pairs = list(zip(record.keys, record.values))
        if not any(
            isinstance(k, ast.Constant)
            and k.value == "event"
            and isinstance(v, ast.Constant)
            and v.value == "done"
            for k, v in pairs
        ):
            continue
        values = tuple(
            v
            for k, v in pairs
            if not (isinstance(k, ast.Constant) and k.value == "event")
        )
        if values:
            out.append((call, values))
    return out


@dataclass(frozen=True)
class _Sink:
    """One place where tainted data would break the contract."""

    node: ast.AST
    exprs: tuple[ast.expr, ...]
    kind: str  # "metric" | "unit" | "journal" | "json"
    desc: str


def _iter_sinks(
    info: FunctionInfo, analysis: ModuleAnalysis, flow: FlowAnalyzer
) -> Iterator[_Sink]:
    """Every bit-identity sink inside one function."""
    for write in flow.metric_writes(info):
        if write.scope == "work" and write.values:
            yield _Sink(
                node=write.call,
                exprs=write.values,
                kind="metric",
                desc=f"work-scoped metric write .{write.method}()",
            )
    for call in info.calls:
        name = call_name(call)
        leaf = name.rsplit(".", 1)[-1] if name else ""
        if leaf in _UNIT_CTORS:
            exprs = (*call.args, *(kw.value for kw in call.keywords))
            if exprs:
                yield _Sink(
                    node=call, exprs=exprs, kind="unit", desc=f"a {leaf}(...) result"
                )
    for call, values in _journal_done_writes(info):
        yield _Sink(
            node=call, exprs=values, kind="journal", desc="a journal 'done' record"
        )
    if info.name.endswith(("_json", "_jsonl")):
        inside_returns: set[int] = set()
        for ret in info.returns:
            inside_returns.update(id(n) for n in ast.walk(ret))
            yield _Sink(
                node=ret,
                exprs=(ret,),
                kind="json",
                desc=f"{info.name}() canonical output",
            )
        for call in info.calls:
            if _is_dumps(call, analysis) and id(call) not in inside_returns and call.args:
                yield _Sink(
                    node=call,
                    exprs=tuple(call.args),
                    kind="json",
                    desc=f"{info.name}() canonical output",
                )


class WorkerRngRule(Rule):
    """DET001: worker-executed RNGs must derive from spawn-keyed seeds."""

    rule_id = "DET001"
    description = (
        "RNGs created in worker-executed code must derive from a spawn-keyed "
        "SeedSequence argument, not module state or fresh entropy"
    )

    def check(self, context: FileContext) -> Iterator[Finding]:
        analysis = context.analysis
        workers = analysis.worker_functions()
        if not workers:
            return
        flow = FlowAnalyzer(context)
        for qualname in sorted(workers):
            info = analysis.functions[qualname]
            evidence = workers[qualname]
            yield from self._check_constructors(context, flow, info, evidence)
            yield from self._check_module_state(context, analysis, info, evidence)

    def _check_constructors(
        self,
        context: FileContext,
        flow: FlowAnalyzer,
        info: FunctionInfo,
        evidence: tuple[str, ...],
    ) -> Iterator[Finding]:
        for call in info.calls:
            name = call_name(call)
            leaf = name.rsplit(".", 1)[-1] if name else ""
            if leaf not in _RNG_CONSTRUCTORS:
                continue
            seeds = (*call.args, *(kw.value for kw in call.keywords))
            if not seeds:
                yield self.finding(
                    context,
                    call,
                    f"{leaf}() with no seed draws fresh OS entropy in "
                    "worker-executed code; results will differ per process "
                    "(derive the stream via spawn_rng / a spawn-keyed "
                    "SeedSequence)",
                    trace=(
                        *evidence,
                        flow.step(call, f"{leaf}() called with no seed argument"),
                    ),
                )
            elif not any(flow.seed_blessed(seed, info) for seed in seeds):
                yield self.finding(
                    context,
                    call,
                    f"{leaf}() in worker-executed code is seeded from a value "
                    "that does not derive from a spawn-keyed SeedSequence "
                    "argument; draws will depend on scheduling, not unit "
                    "identity",
                    trace=(
                        *evidence,
                        flow.step(
                            call,
                            f"seed expression {ast.unparse(call)!r} does not "
                            "derive from a parameter or spawn-keyed "
                            "SeedSequence",
                        ),
                    ),
                )

    def _check_module_state(
        self,
        context: FileContext,
        analysis: ModuleAnalysis,
        info: FunctionInfo,
        evidence: tuple[str, ...],
    ) -> Iterator[Finding]:
        shadowed = set(info.params) | set(info.assignments)
        seen: set[str] = set()
        for node in iter_own_nodes(info.node):
            if not (
                isinstance(node, ast.Name)
                and isinstance(node.ctx, ast.Load)
                and node.id not in shadowed
                and node.id not in seen
            ):
                continue
            values = analysis.module_assignments.get(node.id, [])
            if not any(
                contains_call_to(value, _RNG_STATE_MAKERS) for value in values
            ):
                continue
            seen.add(node.id)
            yield self.finding(
                context,
                node,
                f"worker-executed code reads module-level RNG {node.id!r}; "
                "module state is re-created per process, so draws depend on "
                "work distribution",
                trace=(
                    *evidence,
                    f"{context.relpath}:{node.lineno}: reads module-level "
                    f"RNG state {node.id!r}",
                ),
            )


class _TaintSinkRule(Rule):
    """Shared machinery for DET002/DET004: one taint label into the sinks."""

    label = ""

    def message_for(self, sink: _Sink) -> str:
        raise NotImplementedError

    def check(self, context: FileContext) -> Iterator[Finding]:
        analysis = context.analysis
        flow = FlowAnalyzer(context)
        seen: set[tuple[int, int, str]] = set()
        for info in analysis.functions.values():
            if "exec-scope" in info.pragmas:
                continue
            for sink in _iter_sinks(info, analysis, flow):
                for expr in sink.exprs:
                    path = flow.taint(expr, info).get(self.label)
                    if path is None:
                        continue
                    key = (expr.lineno, expr.col_offset, sink.kind)
                    if key in seen:
                        continue
                    seen.add(key)
                    yield self.finding(
                        context,
                        expr,
                        self.message_for(sink),
                        trace=(
                            *path,
                            flow.step(sink.node, f"flows into {sink.desc}"),
                        ),
                    )


class WallClockSinkRule(_TaintSinkRule):
    """DET002: wall-clock values must not reach bit-identity sinks."""

    rule_id = "DET002"
    description = (
        "wall-clock reads must not flow into work-scoped metrics, unit "
        "results, journal done records, or canonical JSON output"
    )
    label = WALLCLOCK

    _CONTRACT = {
        "metric": (
            "work-scoped metrics must be pure functions of unit identity "
            "(record timings in an exec-scoped gauge or a span)"
        ),
        "unit": "unit results must be byte-identical on every rerun",
        "journal": "journal 'done' records must be byte-identical on resume",
        "json": (
            "canonical JSON output is covered by the bit-identity contract "
            "(keep timings in exec-scoped telemetry)"
        ),
    }

    def message_for(self, sink: _Sink) -> str:
        return (
            f"wall-clock value flows into {sink.desc}; "
            f"{self._CONTRACT[sink.kind]}"
        )


class ScopeCrossingRule(_TaintSinkRule):
    """DET004: exec-scoped metric values must not cross into work scope."""

    rule_id = "DET004"
    description = (
        "exec-scoped registry values must not be folded into work-scoped "
        "metric writes or other bit-identity sinks"
    )
    label = EXEC_METRIC

    def message_for(self, sink: _Sink) -> str:
        return (
            f"exec-scoped metric value flows into {sink.desc}; "
            "execution-substrate numbers are outside the bit-identity "
            "contract and vary with worker count"
        )


class IterationOrderRule(Rule):
    """DET003: unordered iteration must not feed canonical output."""

    rule_id = "DET003"
    description = (
        "set/dict-view iteration must pass through sorted() before feeding "
        "canonical JSON or journal writes"
    )

    _MESSAGES = {
        UNORDERED_SET: (
            "set iteration order is arbitrary across processes and feeds "
            "{dest}; iterate sorted(...) instead"
        ),
        DICT_VIEW: (
            "dict-view iteration feeds {dest} without sorted()/sort_keys; "
            "insertion order varies with merge/completion order"
        ),
    }

    def check(self, context: FileContext) -> Iterator[Finding]:
        analysis = context.analysis
        flow = FlowAnalyzer(context)
        seen: set[tuple[str, tuple[str, ...]]] = set()
        for info in analysis.functions.values():
            if "exec-scope" in info.pragmas:
                continue
            yield from self._check_dumps_args(context, analysis, flow, info, seen)
            if info.name.endswith(("_json", "_jsonl")):
                yield from self._check_loops(context, flow, info, seen)
            for call, values in _journal_done_writes(info):
                for expr in values:
                    yield from self._emit(
                        context,
                        flow,
                        info,
                        expr,
                        seen,
                        dest="a journal 'done' record",
                        sink_step=flow.step(call, "written into a journal 'done' record"),
                    )

    def _check_dumps_args(
        self,
        context: FileContext,
        analysis: ModuleAnalysis,
        flow: FlowAnalyzer,
        info: FunctionInfo,
        seen: set[tuple[str, tuple[str, ...]]],
    ) -> Iterator[Finding]:
        for call in info.calls:
            if not _is_dumps(call, analysis):
                continue
            sorts = _sort_keys_on(call)
            for arg in call.args:
                exempt = (
                    (DICT_VIEW,) if sorts and _resolves_to_dictcomp(arg, info) else ()
                )
                yield from self._emit(
                    context,
                    flow,
                    info,
                    arg,
                    seen,
                    dest="json.dumps() output",
                    sink_step=flow.step(call, "serialized by json.dumps()"),
                    exempt=exempt,
                )

    def _check_loops(
        self,
        context: FileContext,
        flow: FlowAnalyzer,
        info: FunctionInfo,
        seen: set[tuple[str, tuple[str, ...]]],
    ) -> Iterator[Finding]:
        for node in iter_own_nodes(info.node):
            if not isinstance(node, ast.For):
                continue
            yield from self._emit(
                context,
                flow,
                info,
                node.iter,
                seen,
                dest=f"{info.name}() canonical output",
                sink_step=flow.step(
                    node, f"iterated by a for-loop inside {info.name}()"
                ),
            )

    def _emit(
        self,
        context: FileContext,
        flow: FlowAnalyzer,
        info: FunctionInfo,
        expr: ast.expr,
        seen: set[tuple[str, tuple[str, ...]]],
        dest: str,
        sink_step: str,
        exempt: tuple[str, ...] = (),
    ) -> Iterator[Finding]:
        taint = flow.taint(expr, info)
        for label in (UNORDERED_SET, DICT_VIEW):
            path = taint.get(label)
            if path is None or label in exempt:
                continue
            key = (label, path)
            if key in seen:
                continue
            seen.add(key)
            yield self.finding(
                context,
                expr,
                self._MESSAGES[label].format(dest=dest),
                trace=(*path, sink_step),
            )
