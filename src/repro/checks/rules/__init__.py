"""The rule catalogue.

Adding a rule: subclass :class:`repro.checks.engine.Rule` in the
matching module (or a new one), give it a stable ``rule_id``, and list
it in :func:`all_rules`.  See ``docs/static-analysis.md`` for the
authoring guide.
"""

from __future__ import annotations

from repro.checks.engine import Rule
from repro.checks.rules.api import PublicApiAnnotationRule
from repro.checks.rules.determinism import (
    IterationOrderRule,
    ScopeCrossingRule,
    WallClockSinkRule,
    WorkerRngRule,
)
from repro.checks.rules.dtype import Uint8ArithmeticRule, UnclippedUint8CastRule
from repro.checks.rules.obs import LibraryPrintRule, LiveSnapshotSinkRule
from repro.checks.rules.resources import ExecutorRule, SharedMemoryRule
from repro.checks.rules.rng import (
    HashInSeedRule,
    NumpyGlobalRandomRule,
    StdlibRandomRule,
    UnseededDefaultRngRule,
    UntypedRngParamRule,
)

__all__ = ["all_rules"]


def all_rules() -> list[Rule]:
    """One fresh instance of every registered rule, in rule-id order."""
    rules: list[Rule] = [
        NumpyGlobalRandomRule(),
        StdlibRandomRule(),
        UnseededDefaultRngRule(),
        UntypedRngParamRule(),
        HashInSeedRule(),
        Uint8ArithmeticRule(),
        UnclippedUint8CastRule(),
        SharedMemoryRule(),
        ExecutorRule(),
        PublicApiAnnotationRule(),
        LibraryPrintRule(),
        LiveSnapshotSinkRule(),
        WorkerRngRule(),
        WallClockSinkRule(),
        IterationOrderRule(),
        ScopeCrossingRule(),
    ]
    return sorted(rules, key=lambda rule: rule.rule_id)
