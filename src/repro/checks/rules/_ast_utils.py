"""Small AST helpers shared by the rule modules."""

from __future__ import annotations

import ast
from collections.abc import Iterator


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else ``None``.

    ``np.random.default_rng`` resolves whether ``np`` is a Name or the
    chain hangs off a deeper attribute; chains through calls/subscripts
    resolve to ``None`` (they are not import references).
    """
    parts: list[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
        return ".".join(reversed(parts))
    return None


def call_name(node: ast.Call) -> str | None:
    """Dotted name of a call's callee, else ``None``."""
    return dotted_name(node.func)


def walk_expr_shallow(node: ast.AST) -> Iterator[ast.AST]:
    """Walk an expression but do not descend into subscript indices.

    uint8 arrays are routinely *indexed* by wider integer arithmetic
    (``table[log_a + log_b]``); that arithmetic is not uint8 math, so
    dtype rules must not see it.
    """
    yield node
    for child_field, value in ast.iter_fields(node):
        if isinstance(node, ast.Subscript) and child_field == "slice":
            continue
        if isinstance(value, ast.AST):
            yield from walk_expr_shallow(value)
        elif isinstance(value, list):
            for item in value:
                if isinstance(item, ast.AST):
                    yield from walk_expr_shallow(item)


def contains_call_to(node: ast.AST, suffixes: tuple[str, ...]) -> bool:
    """Whether *node*'s subtree calls anything whose name ends in *suffixes*.

    Matches both ``np.clip(...)`` (dotted name) and ``arr.clip(...)``
    (method attribute), so it works on aliased imports and methods alike.
    """
    for child in ast.walk(node):
        if not isinstance(child, ast.Call):
            continue
        name = call_name(child)
        if name is not None and name.rsplit(".", 1)[-1] in suffixes:
            return True
        if isinstance(child.func, ast.Attribute) and child.func.attr in suffixes:
            return True
    return False


def annotation_text(node: ast.expr | None) -> str:
    """Source text of an annotation node (empty string when absent)."""
    if node is None:
        return ""
    return ast.unparse(node)


def is_uint8_dtype_expr(node: ast.expr) -> bool:
    """Whether an expression denotes the uint8 dtype (``np.uint8``/"uint8")."""
    if isinstance(node, ast.Constant) and node.value in ("uint8", "|u1", "u1"):
        return True
    name = dotted_name(node)
    return name is not None and name.rsplit(".", 1)[-1] == "uint8"


_WIDE_DTYPES = frozenset(
    {
        "int16",
        "int32",
        "int64",
        "uint16",
        "uint32",
        "uint64",
        "float16",
        "float32",
        "float64",
        "intp",
        "int_",
        "float_",
        "double",
    }
)


def is_widening_dtype_expr(node: ast.expr) -> bool:
    """Whether an expression denotes a dtype wider than uint8."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value.lstrip("<>|=") in {"i2", "i4", "i8", "f2", "f4", "f8"} or (
            node.value in _WIDE_DTYPES
        )
    name = dotted_name(node)
    if name is None:
        return False
    leaf = name.rsplit(".", 1)[-1]
    return leaf in _WIDE_DTYPES or leaf in ("int", "float")


def enclosing_functions(tree: ast.Module) -> Iterator[tuple[ast.AST, list[ast.AST]]]:
    """Yield ``(function_node, ancestor_stack)`` for every def in *tree*.

    The ancestor stack is outermost-first and excludes the function
    itself; it lets rules see whether a def is a method (parent is a
    ClassDef) or nested.
    """
    stack: list[ast.AST] = []

    def visit(node: ast.AST) -> Iterator[tuple[ast.AST, list[ast.AST]]]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield child, list(stack)
            if isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                stack.append(child)
                yield from visit(child)
                stack.pop()
            else:
                yield from visit(child)

    yield from visit(tree)
