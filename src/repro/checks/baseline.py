"""Accepted pre-existing findings.

A baseline lets the checker gate *new* violations immediately while the
legacy ones burn down: findings whose fingerprint (rule + path +
message, deliberately line-number-free so unrelated edits do not churn
it) appears in the baseline are reported but do not fail the run.
Entries that no longer match anything are *stale* and must be removed --
``tests/test_checks.py`` pins the shipped baseline to zero stale entries
so it can only shrink.
"""

from __future__ import annotations

import json
from collections import Counter, defaultdict
from dataclasses import dataclass, field
from pathlib import Path

from repro.checks.engine import Finding

_FORMAT_VERSION = 1


@dataclass
class BaselineDiff:
    """Findings split against a baseline."""

    new: list[Finding] = field(default_factory=list)
    accepted: list[Finding] = field(default_factory=list)
    stale: list[str] = field(default_factory=list)


@dataclass
class Baseline:
    """Accepted finding fingerprints with occurrence counts.

    Counts matter: several violations of one rule in one file often share
    a message, and therefore a fingerprint.  Accepting the *fingerprint*
    alone would let a brand-new violation hide behind a baselined one;
    accepting ``count`` occurrences keeps the gate tight.
    """

    counts: dict[str, int] = field(default_factory=dict)

    @property
    def fingerprints(self) -> set[str]:
        """The accepted fingerprints (ignoring counts)."""
        return set(self.counts)

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        """Read a baseline file; a missing file is an empty baseline."""
        if not path.is_file():
            return cls()
        data = json.loads(path.read_text(encoding="utf-8"))
        version = data.get("version")
        if version != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported baseline version {version!r} in {path} "
                f"(expected {_FORMAT_VERSION})"
            )
        counts: dict[str, int] = {}
        for entry in data.get("entries", []):
            fingerprint = f"{entry['rule']}::{entry['path']}::{entry['message']}"
            counts[fingerprint] = counts.get(fingerprint, 0) + int(entry.get("count", 1))
        return cls(counts=counts)

    @classmethod
    def from_findings(cls, findings: list[Finding]) -> "Baseline":
        """A baseline accepting exactly *findings*."""
        return cls(counts=dict(Counter(f.fingerprint for f in findings)))

    def save(self, path: Path, findings: list[Finding]) -> None:
        """Write *findings* as the new baseline (sorted, one entry per fingerprint)."""
        grouped: dict[str, Finding] = {}
        counts = Counter(f.fingerprint for f in findings)
        for finding in findings:
            grouped.setdefault(finding.fingerprint, finding)
        entries = [
            {
                "rule": grouped[fp].rule,
                "path": grouped[fp].path,
                "message": grouped[fp].message,
                "count": counts[fp],
            }
            for fp in sorted(grouped)
        ]
        payload = {"version": _FORMAT_VERSION, "entries": entries}
        path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
        self.counts = dict(counts)

    def diff(self, findings: list[Finding]) -> BaselineDiff:
        """Split *findings* into new vs accepted, and list stale entries.

        Within one fingerprint the first ``count`` occurrences (by line)
        are accepted and the rest are new.  A baseline entry with no (or
        fewer) current occurrences is stale: the violation was fixed, so
        the entry must be removed (``--update-baseline``) before it can
        mask a future regression.
        """
        result = BaselineDiff()
        by_fingerprint: dict[str, list[Finding]] = defaultdict(list)
        for finding in findings:
            by_fingerprint[finding.fingerprint].append(finding)
        for fingerprint, group in by_fingerprint.items():
            allowed = self.counts.get(fingerprint, 0)
            ordered = sorted(group, key=lambda f: (f.path, f.line, f.col))
            result.accepted.extend(ordered[:allowed])
            result.new.extend(ordered[allowed:])
        for fingerprint, allowed in self.counts.items():
            current = len(by_fingerprint.get(fingerprint, []))
            if current == 0:
                result.stale.append(fingerprint)
            elif current < allowed:
                result.stale.append(
                    f"{fingerprint} (baseline count {allowed} > current {current})"
                )
        result.new.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
        result.accepted.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
        result.stale.sort()
        return result
