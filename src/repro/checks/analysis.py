"""Module-level dataflow analysis for the checks engine.

PR 3's rules were per-node pattern matches: each looked at one AST node
with no memory of where its operands came from.  The determinism rules
(``DET001``-``DET004``) need more -- "does this value *derive from* the
wall clock", "is this function *reachable from* worker-dispatched code"
-- so this module builds, per file, the three structures a lightweight
dataflow analysis rests on:

* a **symbol table**: module-level assignments and the import alias map
  (``np`` -> ``numpy``, ``perf_counter`` -> ``time.perf_counter``);
* **def-use chains**: for every function, each local name mapped to the
  expressions assigned to it, in source order;
* **call-graph edges within the module**: which locally defined
  functions call which, plus the *worker set* -- functions dispatched to
  a pool (first argument of ``.map()`` / ``.submit()`` / ``.apply_async()``)
  or marked ``# checks: worker-scope``, closed over intra-module calls.

Scope pragmas
-------------
Two pragmas let code state execution-scope intent where the analyzer
cannot infer it across module boundaries (both attach to the ``def``
line or the line directly above it):

``# checks: worker-scope``
    This function executes inside pool workers even though the dispatch
    happens in another module; DET001 verifies its RNG discipline.
``# checks: exec-scope``
    Values produced here describe the execution substrate (wall-clock
    timings, pool accounting) and are deliberately outside the
    bit-identity contract; DET002/DET004 skip sinks in this function.

Everything here is pure stdlib ``ast`` -- the analysis stays
zero-dependency like the rest of :mod:`repro.checks`.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field

#: Pool-dispatch methods whose first argument runs in a worker process.
_DISPATCH_METHODS = frozenset(
    {"map", "submit", "imap", "imap_unordered", "apply_async", "starmap"}
)

_SCOPE_PRAGMA_RE = re.compile(r"#\s*checks:\s*(worker-scope|exec-scope)\b")


@dataclass
class FunctionInfo:
    """One function or method and the dataflow facts rules ask about.

    Attributes
    ----------
    node:
        The ``def`` node itself.
    qualname:
        Dotted path inside the module (``Class.method``, ``outer.inner``).
    params:
        Parameter names, in declaration order.
    assignments:
        Local def-use chains: name -> expressions assigned to it, in
        source order (``Assign``/``AnnAssign``/``AugAssign``/walrus).
    returns:
        Every ``return`` expression in the body.
    calls:
        Every :class:`ast.Call` in the body, in source order.
    callee_names:
        Leaf names of plain-``Name`` callees (the intra-module edges).
    pragmas:
        Scope pragmas attached to the ``def`` line (or the line above).
    """

    node: ast.FunctionDef | ast.AsyncFunctionDef
    qualname: str
    params: tuple[str, ...] = ()
    assignments: dict[str, list[ast.expr]] = field(default_factory=dict)
    returns: list[ast.expr] = field(default_factory=list)
    calls: list[ast.Call] = field(default_factory=list)
    callee_names: set[str] = field(default_factory=set)
    pragmas: frozenset[str] = frozenset()

    @property
    def name(self) -> str:
        """The function's leaf name."""
        return self.node.name


def _assign_targets(node: ast.stmt) -> tuple[list[ast.expr], ast.expr | None]:
    """The (targets, value) pair of an assignment-like statement."""
    if isinstance(node, ast.Assign):
        return list(node.targets), node.value
    if isinstance(node, ast.AnnAssign):
        return [node.target], node.value
    if isinstance(node, ast.AugAssign):
        return [node.target], node.value
    return [], None


class _FunctionCollector(ast.NodeVisitor):
    """Walks one function body (not into nested defs) gathering facts."""

    def __init__(self, info: FunctionInfo) -> None:
        self.info = info
        self._depth = 0

    def visit(self, node: ast.AST) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            # Nested defs get their own FunctionInfo; closures still
            # contribute call edges (a nested helper dispatched later
            # runs whatever it calls), so walk them for calls only.
            if self._depth > 0:
                self._collect_calls_only(node)
                return
            self._depth += 1
            ast.NodeVisitor.generic_visit(self, node)
            self._depth -= 1
            return
        ast.NodeVisitor.visit(self, node)

    def _collect_calls_only(self, node: ast.AST) -> None:
        for child in ast.walk(node):
            if isinstance(child, ast.Call):
                self._record_call(child)

    def _record_call(self, node: ast.Call) -> None:
        self.info.calls.append(node)
        if isinstance(node.func, ast.Name):
            self.info.callee_names.add(node.func.id)

    def visit_Call(self, node: ast.Call) -> None:
        self._record_call(node)
        self.generic_visit(node)

    def visit_Return(self, node: ast.Return) -> None:
        if node.value is not None:
            self.info.returns.append(node.value)
        self.generic_visit(node)

    def _record_assignment(self, target: ast.expr, value: ast.expr) -> None:
        if isinstance(target, ast.Name):
            self.info.assignments.setdefault(target.id, []).append(value)
        elif isinstance(target, (ast.Tuple, ast.List)):
            # Tuple unpacking: every element conservatively sees the
            # whole right-hand side (good enough for taint joins).
            for element in target.elts:
                self._record_assignment(element, value)

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._record_assignment(target, node.value)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._record_assignment(node.target, node.value)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._record_assignment(node.target, node.value)
        self.generic_visit(node)

    def visit_NamedExpr(self, node: ast.NamedExpr) -> None:
        self._record_assignment(node.target, node.value)
        self.generic_visit(node)

    def visit_For(self, node: ast.For) -> None:
        # ``for x in xs`` -- the loop variable derives from the iterable.
        self._record_assignment(node.target, node.iter)
        self.generic_visit(node)

    def visit_With(self, node: ast.With) -> None:
        for item in node.items:
            if item.optional_vars is not None:
                self._record_assignment(item.optional_vars, item.context_expr)
        self.generic_visit(node)


class ModuleAnalysis:
    """Symbol table, def-use chains and call graph for one parsed module.

    Built lazily by :attr:`repro.checks.engine.FileContext.analysis` and
    shared by every dataflow rule that runs on the file.
    """

    def __init__(self, tree: ast.Module, lines: list[str]) -> None:
        self.tree = tree
        self._lines = lines
        #: alias -> fully dotted import target (``np`` -> ``numpy``,
        #: ``perf_counter`` -> ``time.perf_counter``).
        self.imports: dict[str, str] = {}
        #: module-level name -> assigned expressions, in source order.
        self.module_assignments: dict[str, list[ast.expr]] = {}
        #: qualname -> info, in definition order.
        self.functions: dict[str, FunctionInfo] = {}
        #: leaf name -> infos sharing it (call edges resolve through this).
        self.by_leaf: dict[str, list[FunctionInfo]] = {}
        #: def node -> its info (rules often hold the node, not the name).
        self.by_node: dict[ast.AST, FunctionInfo] = {}
        self._worker: dict[str, tuple[str, ...]] | None = None
        self._collect()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _collect(self) -> None:
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    self.imports[alias.asname or alias.name.split(".")[0]] = alias.name
            elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
                for alias in node.names:
                    self.imports[alias.asname or alias.name] = (
                        f"{node.module}.{alias.name}"
                    )
        for stmt in self.tree.body:
            targets, value = _assign_targets(stmt)
            if value is None:
                continue
            for target in targets:
                if isinstance(target, ast.Name):
                    self.module_assignments.setdefault(target.id, []).append(value)
        self._walk_defs(self.tree, prefix="")

    def _walk_defs(self, node: ast.AST, prefix: str) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{prefix}{child.name}"
                info = self._build_info(child, qualname)
                self.functions[qualname] = info
                self.by_leaf.setdefault(child.name, []).append(info)
                self.by_node[child] = info
                self._walk_defs(child, prefix=f"{qualname}.")
            elif isinstance(child, ast.ClassDef):
                self._walk_defs(child, prefix=f"{prefix}{child.name}.")
            else:
                self._walk_defs(child, prefix=prefix)

    def _build_info(
        self, node: ast.FunctionDef | ast.AsyncFunctionDef, qualname: str
    ) -> FunctionInfo:
        args = node.args
        params = tuple(
            p.arg for p in (*args.posonlyargs, *args.args, *args.kwonlyargs)
        )
        if args.vararg is not None:
            params += (args.vararg.arg,)
        if args.kwarg is not None:
            params += (args.kwarg.arg,)
        info = FunctionInfo(
            node=node,
            qualname=qualname,
            params=params,
            pragmas=self._def_pragmas(node),
        )
        collector = _FunctionCollector(info)
        collector.visit(node)
        return info

    def _def_pragmas(
        self, node: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> frozenset[str]:
        found: set[str] = set()
        # The pragma may sit on the def line itself or the line directly
        # above it (above any decorators).
        first = min(
            [node.lineno, *(d.lineno for d in node.decorator_list)]
        )
        for lineno in (first - 1, first, node.lineno):
            if 1 <= lineno <= len(self._lines):
                match = _SCOPE_PRAGMA_RE.search(self._lines[lineno - 1])
                if match is not None:
                    found.add(match.group(1))
        return frozenset(found)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def resolve_import(self, dotted: str) -> str:
        """*dotted* with its leading alias expanded through the imports.

        ``np.random.default_rng`` -> ``numpy.random.default_rng``;
        ``perf_counter`` -> ``time.perf_counter``; unknown names pass
        through unchanged.
        """
        head, _, rest = dotted.partition(".")
        resolved = self.imports.get(head)
        if resolved is None:
            return dotted
        return f"{resolved}.{rest}" if rest else resolved

    def resolve_function(self, name: str) -> FunctionInfo | None:
        """The locally defined function a plain-name call resolves to.

        Returns ``None`` when the name is undefined here or ambiguous
        (several nested defs share the leaf name) -- callers must treat
        unresolved calls conservatively.
        """
        candidates = self.by_leaf.get(name, [])
        if len(candidates) == 1:
            return candidates[0]
        return None

    def function_for_node(self, node: ast.AST) -> FunctionInfo | None:
        """The :class:`FunctionInfo` of a ``def`` node seen elsewhere."""
        return self.by_node.get(node)

    def callees_closure(self, info: FunctionInfo) -> set[str]:
        """Leaf names of every function *info* reaches via local calls."""
        seen: set[str] = set()
        frontier = list(info.callee_names)
        while frontier:
            name = frontier.pop()
            if name in seen:
                continue
            seen.add(name)
            callee = self.resolve_function(name)
            if callee is not None:
                frontier.extend(callee.callee_names - seen)
        return seen

    def transitive_attribute_calls(self, info: FunctionInfo) -> set[str]:
        """Attribute-method names called by *info* or its local callees.

        The cross-function upgrade of the resource rules: a release path
        (``close()``/``shutdown()``) counts even when it lives in a
        helper the creating function calls.
        """
        bodies = [info]
        for name in self.callees_closure(info):
            callee = self.resolve_function(name)
            if callee is not None and callee is not info:
                bodies.append(callee)
        return {
            call.func.attr
            for each in bodies
            for call in each.calls
            if isinstance(call.func, ast.Attribute)
        }

    def worker_functions(self) -> dict[str, tuple[str, ...]]:
        """Functions that execute in pool workers, with their evidence.

        Maps qualname to a tuple of human-readable steps explaining *why*
        the function is worker-scoped (the dispatch site or pragma, then
        each call edge that pulled it in).  Seeds are the first argument
        of any ``.map()``/``.submit()``-style dispatch and every function
        carrying the ``worker-scope`` pragma; the set is closed over
        intra-module call edges.
        """
        if self._worker is not None:
            return self._worker
        evidence: dict[str, tuple[str, ...]] = {}
        frontier: list[FunctionInfo] = []

        def seed(info: FunctionInfo, step: str) -> None:
            if info.qualname not in evidence:
                evidence[info.qualname] = (step,)
                frontier.append(info)

        for info in self.functions.values():
            if "worker-scope" in info.pragmas:
                seed(
                    info,
                    f"line {info.node.lineno}: {info.name}() is marked "
                    f"'# checks: worker-scope'",
                )
        for node in ast.walk(self.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _DISPATCH_METHODS
                and node.args
                and isinstance(node.args[0], ast.Name)
            ):
                continue
            target = self.resolve_function(node.args[0].id)
            if target is not None:
                seed(
                    target,
                    f"line {node.lineno}: {target.name}() is dispatched to "
                    f"pool workers via .{node.func.attr}()",
                )
        while frontier:
            info = frontier.pop()
            for call in info.calls:
                if not isinstance(call.func, ast.Name):
                    continue
                callee = self.resolve_function(call.func.id)
                if callee is None or callee.qualname in evidence:
                    continue
                evidence[callee.qualname] = (
                    *evidence[info.qualname],
                    f"line {call.lineno}: called from worker-scoped "
                    f"{info.name}()",
                )
                frontier.append(callee)
        self._worker = evidence
        return evidence

    def is_exec_scoped(self, node: ast.AST) -> bool:
        """Whether a ``def`` node carries the ``exec-scope`` pragma."""
        info = self.by_node.get(node)
        return info is not None and "exec-scope" in info.pragmas
