"""The rule engine: walk Python files, run rules, collect findings.

A :class:`Rule` sees one parsed file at a time through a
:class:`FileContext` and yields :class:`Finding` records.  The engine
handles everything rule authors should not have to: file discovery,
parsing, per-rule path scoping (:meth:`Rule.applies_to`), and inline
suppression pragmas of the form::

    risky_line()  # checks: ignore[DT002] frame proven in-range upstream
    other_line()  # checks: ignore

A bare ``ignore`` silences every rule on that line; the bracketed form
silences only the listed rule ids.  Suppressions are deliberately
per-line so a waiver cannot outlive the code it excused.

Rules that need more than one node at a time -- the determinism family
-- ask the context for :attr:`FileContext.analysis`, a lazily built
:class:`~repro.checks.analysis.ModuleAnalysis` (symbol table, def-use
chains, intra-module call graph).  Findings produced from a dataflow
walk carry their source-to-sink path in :attr:`Finding.trace`.
"""

from __future__ import annotations

import ast
import re
from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # circular at runtime: analysis builds on engine types
    from repro.checks.analysis import ModuleAnalysis

#: Directory names never scanned, wherever they appear.
_SKIP_DIRS = {"__pycache__", ".git", ".venv", "venv", "build", "dist", ".eggs"}

_PRAGMA_RE = re.compile(r"#\s*checks:\s*ignore(?:\[(?P<rules>[A-Za-z0-9_,\s]+)\])?")


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location.

    ``trace`` is the dataflow path behind the finding -- human-readable
    source-to-sink steps a taint rule recorded (``--explain`` prints
    them; SARIF exports them as a code flow).  It is deliberately *not*
    part of the fingerprint: a path reroute through a new helper must
    not churn baselines.
    """

    rule: str
    path: str
    line: int
    col: int
    message: str
    severity: str = "error"
    trace: tuple[str, ...] = ()

    @property
    def fingerprint(self) -> str:
        """Stable identity used by the baseline (line numbers shift; this must not)."""
        return f"{self.rule}::{self.path}::{self.message}"

    def format(self) -> str:
        """Human-readable one-liner (``path:line:col RULE message``)."""
        return f"{self.path}:{self.line}:{self.col} {self.rule} {self.message}"


class FileContext:
    """Everything a rule may want to know about one source file."""

    def __init__(self, path: Path, relpath: str, source: str, tree: ast.Module) -> None:
        self.path = path
        self.relpath = relpath
        self.source = source
        self.tree = tree
        self.lines = source.splitlines()
        self._suppressions: dict[int, frozenset[str] | None] | None = None
        self._analysis: "ModuleAnalysis | None" = None

    @property
    def analysis(self) -> "ModuleAnalysis":
        """The module-level dataflow analysis, built once per file.

        Lazy so the per-node rules pay nothing for it; every dataflow
        rule on the same file shares one instance.
        """
        if self._analysis is None:
            from repro.checks.analysis import ModuleAnalysis

            self._analysis = ModuleAnalysis(self.tree, self.lines)
        return self._analysis

    @property
    def package_parts(self) -> tuple[str, ...]:
        """Path components of the file, POSIX-style."""
        return tuple(Path(self.relpath).parts)

    def suppressed(self, finding: Finding) -> bool:
        """Whether an inline ``# checks: ignore`` pragma covers *finding*."""
        table = self._suppression_table()
        if finding.line not in table:
            return False
        rules = table[finding.line]
        return rules is None or finding.rule in rules

    def _suppression_table(self) -> dict[int, frozenset[str] | None]:
        table = self._suppressions
        if table is None:
            table = {}
            for number, text in enumerate(self.lines, start=1):
                match = _PRAGMA_RE.search(text)
                if match is None:
                    continue
                listed = match.group("rules")
                if listed is None:
                    table[number] = None  # bare ignore: every rule
                else:
                    table[number] = frozenset(
                        part.strip() for part in listed.split(",") if part.strip()
                    )
            self._suppressions = table
        return table


class Rule:
    """Base class for a single check.

    Subclasses set :attr:`rule_id` (the stable ``ABC123``-style identifier
    reported to users and stored in baselines) and implement
    :meth:`check`.  Override :meth:`applies_to` to scope a rule to part
    of the tree.
    """

    rule_id: str = "RULE"
    description: str = ""

    def applies_to(self, relpath: str) -> bool:
        """Whether this rule should run on *relpath* (default: everywhere)."""
        return True

    def check(self, context: FileContext) -> Iterator[Finding]:
        """Yield findings for one file."""
        raise NotImplementedError
        yield  # pragma: no cover - makes this a generator for type checkers

    def finding(
        self,
        context: FileContext,
        node: ast.AST,
        message: str,
        severity: str = "error",
        trace: Sequence[str] = (),
    ) -> Finding:
        """Build a :class:`Finding` anchored at *node*."""
        return Finding(
            rule=self.rule_id,
            path=context.relpath,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            message=message,
            severity=severity,
            trace=tuple(trace),
        )


@dataclass
class CheckReport:
    """The outcome of one engine run."""

    root: Path
    findings: list[Finding] = field(default_factory=list)
    files_checked: int = 0
    parse_errors: list[Finding] = field(default_factory=list)

    @property
    def all_findings(self) -> list[Finding]:
        """Rule findings plus parse failures, in path/line order."""
        combined = self.findings + self.parse_errors
        return sorted(combined, key=lambda f: (f.path, f.line, f.col, f.rule))


def find_project_root(start: Path) -> Path:
    """The nearest ancestor of *start* holding a ``pyproject.toml``.

    Falls back to *start* itself (as a directory) when no marker exists,
    so the engine still works on loose files outside a project.
    """
    current = start if start.is_dir() else start.parent
    for candidate in (current, *current.parents):
        if (candidate / "pyproject.toml").is_file():
            return candidate
    return current


def iter_python_files(paths: Sequence[Path]) -> Iterator[Path]:
    """All ``.py`` files under *paths* (files pass through, dirs recurse)."""
    seen: set[Path] = set()
    for path in paths:
        if path.is_file():
            if path.suffix == ".py" and path not in seen:
                seen.add(path)
                yield path
            continue
        for found in sorted(path.rglob("*.py")):
            if any(part in _SKIP_DIRS for part in found.parts):
                continue
            if found not in seen:
                seen.add(found)
                yield found


def run_checks(
    paths: Sequence[Path | str],
    rules: Iterable[Rule],
    root: Path | None = None,
) -> CheckReport:
    """Run *rules* over every Python file under *paths*.

    *root* anchors the relative paths stored in findings (and therefore
    baseline fingerprints); by default it is discovered from the first
    path via :func:`find_project_root`.
    """
    resolved = [Path(p).resolve() for p in paths]
    if not resolved:
        raise ValueError("run_checks needs at least one path")
    anchor = root.resolve() if root is not None else find_project_root(resolved[0])
    rule_list = list(rules)
    report = CheckReport(root=anchor)
    for file_path in iter_python_files(resolved):
        try:
            relpath = file_path.relative_to(anchor).as_posix()
        except ValueError:
            relpath = file_path.as_posix()
        source = file_path.read_text(encoding="utf-8")
        try:
            tree = ast.parse(source, filename=str(file_path))
        except SyntaxError as exc:
            report.parse_errors.append(
                Finding(
                    rule="PARSE",
                    path=relpath,
                    line=exc.lineno or 1,
                    col=(exc.offset or 0) + 1,
                    message=f"file does not parse: {exc.msg}",
                )
            )
            continue
        report.files_checked += 1
        context = FileContext(file_path, relpath, source, tree)
        for rule in rule_list:
            if not rule.applies_to(relpath):
                continue
            for finding in rule.check(context):
                if not context.suppressed(finding):
                    report.findings.append(finding)
    report.findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return report
