"""Domain-aware static analysis for the InFrame codebase.

The test suite can only spot-check the invariants the paper's channel
rests on -- every random draw must flow through an explicitly threaded
:class:`numpy.random.Generator`, uint8 frame math must never wrap around
the [0, 255] pixel cap that keeps complementary pairs complementary
(paper Section 3.3), and every shared-memory slot or worker pool must be
released exactly once.  This package checks those invariants *statically*
over the whole tree, so violations fail fast instead of waiting for the
one test that happens to exercise them.

Layout:

* :mod:`repro.checks.engine` -- AST walker producing :class:`Finding`
  records from a set of :class:`Rule` objects;
* :mod:`repro.checks.rules` -- the rule catalogue (RNG discipline, dtype
  safety, resource lifecycle, public-API typing);
* :mod:`repro.checks.baseline` -- accepted pre-existing findings, so new
  violations fail while legacy ones burn down;
* ``python -m repro.tools.check`` -- the command-line front end.
"""

from __future__ import annotations

from repro.checks.baseline import Baseline, BaselineDiff
from repro.checks.engine import (
    CheckReport,
    FileContext,
    Finding,
    Rule,
    find_project_root,
    iter_python_files,
    run_checks,
)
from repro.checks.rules import all_rules

__all__ = [
    "Baseline",
    "BaselineDiff",
    "CheckReport",
    "FileContext",
    "Finding",
    "Rule",
    "all_rules",
    "find_project_root",
    "iter_python_files",
    "run_checks",
]
