"""Sessionful broadcast serving: render the carousel once, serve a fleet.

The paper's deployment story is one display and many watchers: digital
signage airs a data carousel all day and any camera that wanders by
collects the payload.  ``repro.serve`` is that asymmetry made explicit.
A :class:`BroadcastSession` renders the emitted frame stack *once* per
carousel cycle (memoized by ``index mod period``, since the carousel
re-airs bit-identical complementary pairs every cycle) and
:func:`run_fleet` fans it out to hundreds of simulated receivers with
heterogeneous capture rates, exposures, clocks, viewing distances, join
times and fault plans -- described compactly by the cohort grammar of
:mod:`repro.serve.cohort`.

Per-cohort delivery, goodput and time-to-join analytics flow through
:mod:`repro.obs` exact merges, so a fleet report is byte-identical at
any worker count.  See ``docs/broadcast.md``.
"""

from repro.serve.cohort import (
    COHORT_KEYS,
    CohortSpec,
    CohortSpecError,
    ReceiverSpec,
    compile_receivers,
    parse_cohorts,
)
from repro.serve.fanout import FleetRun, run_fleet
from repro.serve.report import (
    CohortReport,
    FleetReport,
    ReceiverResult,
    build_fleet_report,
    record_receiver_telemetry,
)
from repro.serve.session import (
    BroadcastSession,
    PooledFrameStore,
    deterministic_payload,
)

__all__ = [
    "BroadcastSession",
    "COHORT_KEYS",
    "CohortReport",
    "CohortSpec",
    "CohortSpecError",
    "FleetReport",
    "FleetRun",
    "PooledFrameStore",
    "ReceiverResult",
    "ReceiverSpec",
    "build_fleet_report",
    "compile_receivers",
    "deterministic_payload",
    "parse_cohorts",
    "record_receiver_telemetry",
    "run_fleet",
]
