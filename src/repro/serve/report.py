"""Fleet reports: per-cohort delivery analytics with exact merges.

The fan-out produces one :class:`ReceiverResult` per receiver; this
module aggregates them two ways, both deterministic at any worker count:

* **Metrics** -- :func:`record_receiver_telemetry` feeds work-scoped
  counters and fixed-edge histograms (``serve.cohort.<name>.*``) into
  the chunk's :class:`~repro.obs.Telemetry`; chunk exports merge exactly
  (integer adds), so the merged ``metrics_json()`` is byte-identical
  between ``workers=1`` and ``workers=N``.
* **Report** -- :func:`build_fleet_report` folds the results (sorted by
  receiver id, i.e. spec order) into a :class:`FleetReport`; every sum
  runs in that fixed order, so :meth:`FleetReport.work_json` is the
  other byte-identity artifact.

Receiver ids are assigned before chunking
(:func:`repro.serve.cohort.compile_receivers`), which is what makes the
sort order -- and therefore every aggregate -- independent of how the
fleet was split across processes.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from repro.obs import Telemetry

#: Histogram edges, fixed so chunk merges are exact (see repro.obs.metrics).
TIME_TO_DELIVER_EDGES = (0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0)
GOODPUT_EDGES = (0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0)
JOIN_OFFSET_EDGES = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0)
SYMBOL_EDGES = (2.0, 4.0, 8.0, 12.0, 16.0, 24.0, 32.0)


@dataclass(frozen=True)
class ReceiverResult:
    """What one simulated receiver experienced, end to end.

    Attributes
    ----------
    receiver_id, cohort:
        Identity (global spec order) and cohort name.
    join_s:
        When the receiver started watching, on the display clock.
    delivered:
        Whether the payload was recovered *and* matched the broadcast.
    n_captures, n_data_frames:
        Camera frames taken and data frames decoded from them.
    join_offset:
        Carousel symbol id of the first packet accepted (None when no
        packet ever parsed) -- where in the cycle the receiver tuned in.
    symbols_consumed:
        Distinct fountain symbols the decoder ingested.
    packets_rejected:
        Buffers the carousel receiver discarded (corruption, truncation).
    resyncs:
        Phase re-locks the self-healing decoder adopted (0 when off).
    time_to_deliver_s:
        Join-to-payload latency on the display clock (None undelivered).
    goodput_kbps:
        Payload bits over that latency (None undelivered).
    """

    receiver_id: int
    cohort: str
    join_s: float
    delivered: bool
    n_captures: int
    n_data_frames: int
    join_offset: int | None
    symbols_consumed: int
    packets_rejected: int
    resyncs: int
    time_to_deliver_s: float | None
    goodput_kbps: float | None

    def as_dict(self) -> dict[str, object]:
        """Plain-JSON form of this result."""
        return {
            "receiver_id": self.receiver_id,
            "cohort": self.cohort,
            "join_s": self.join_s,
            "delivered": self.delivered,
            "n_captures": self.n_captures,
            "n_data_frames": self.n_data_frames,
            "join_offset": self.join_offset,
            "symbols_consumed": self.symbols_consumed,
            "packets_rejected": self.packets_rejected,
            "resyncs": self.resyncs,
            "time_to_deliver_s": self.time_to_deliver_s,
            "goodput_kbps": self.goodput_kbps,
        }


def record_receiver_telemetry(result: ReceiverResult, telemetry: Telemetry) -> None:
    """Feed one receiver's outcome into the cohort-labelled metrics.

    Everything recorded here is work-scoped: counters add and fixed-edge
    histograms add bucket-wise, so per-chunk telemetry merges to the same
    bytes regardless of chunking.
    """
    metrics = telemetry.metrics
    prefix = f"serve.cohort.{result.cohort}"
    metrics.counter(f"{prefix}.receivers").inc()
    metrics.counter(f"{prefix}.captures").inc(result.n_captures)
    metrics.counter(f"{prefix}.data_frames").inc(result.n_data_frames)
    metrics.counter(f"{prefix}.symbols_consumed").inc(result.symbols_consumed)
    metrics.counter(f"{prefix}.packets_rejected").inc(result.packets_rejected)
    metrics.counter(f"{prefix}.resyncs").inc(result.resyncs)
    if result.delivered:
        metrics.counter(f"{prefix}.delivered").inc()
    if result.time_to_deliver_s is not None:
        metrics.histogram(
            f"{prefix}.time_to_deliver_s", TIME_TO_DELIVER_EDGES
        ).observe(result.time_to_deliver_s)
    if result.goodput_kbps is not None:
        metrics.histogram(f"{prefix}.goodput_kbps", GOODPUT_EDGES).observe(
            result.goodput_kbps
        )
    if result.join_offset is not None:
        metrics.histogram(f"{prefix}.join_offset", JOIN_OFFSET_EDGES).observe(
            float(result.join_offset)
        )
        metrics.histogram(f"{prefix}.symbols_per_delivery", SYMBOL_EDGES).observe(
            float(result.symbols_consumed)
        )


def _mean(values: list[float]) -> float | None:
    return sum(values) / len(values) if values else None


@dataclass(frozen=True)
class CohortReport:
    """Delivery analytics for one cohort of the fleet."""

    name: str
    receivers: int
    delivered: int
    delivery_rate: float
    mean_time_to_deliver_s: float | None
    max_time_to_deliver_s: float | None
    mean_goodput_kbps: float | None
    mean_join_offset: float | None
    mean_symbols_consumed: float
    mean_captures: float
    packets_rejected: int
    resyncs: int

    @staticmethod
    def build(name: str, results: list[ReceiverResult]) -> "CohortReport":
        """Fold one cohort's results (already in receiver-id order)."""
        times = [r.time_to_deliver_s for r in results if r.time_to_deliver_s is not None]
        goodputs = [r.goodput_kbps for r in results if r.goodput_kbps is not None]
        offsets = [float(r.join_offset) for r in results if r.join_offset is not None]
        delivered = sum(1 for r in results if r.delivered)
        return CohortReport(
            name=name,
            receivers=len(results),
            delivered=delivered,
            delivery_rate=delivered / len(results),
            mean_time_to_deliver_s=_mean(times),
            max_time_to_deliver_s=max(times) if times else None,
            mean_goodput_kbps=_mean(goodputs),
            mean_join_offset=_mean(offsets),
            mean_symbols_consumed=sum(r.symbols_consumed for r in results) / len(results),
            mean_captures=sum(r.n_captures for r in results) / len(results),
            packets_rejected=sum(r.packets_rejected for r in results),
            resyncs=sum(r.resyncs for r in results),
        )

    def as_dict(self) -> dict[str, object]:
        """Plain-JSON form (the CI smoke job asserts these keys exist)."""
        return {
            "name": self.name,
            "receivers": self.receivers,
            "delivered": self.delivered,
            "delivery_rate": self.delivery_rate,
            "mean_time_to_deliver_s": self.mean_time_to_deliver_s,
            "max_time_to_deliver_s": self.max_time_to_deliver_s,
            "mean_goodput_kbps": self.mean_goodput_kbps,
            "mean_join_offset": self.mean_join_offset,
            "mean_symbols_consumed": self.mean_symbols_consumed,
            "mean_captures": self.mean_captures,
            "packets_rejected": self.packets_rejected,
            "resyncs": self.resyncs,
        }


@dataclass(frozen=True)
class FleetReport:
    """One broadcast session's fleet, rolled up per cohort.

    ``render_reads`` / ``renders`` quantify the render-once economics:
    reads are cache hits served to receivers (summed over chunk deltas,
    which is chunking-independent because every receiver triggers the
    same reads wherever it runs), renders are the fields actually
    computed (one warm pass per carousel cycle).
    """

    payload_bytes: int
    k: int
    cycle_packets: int
    cycle_s: float
    receivers: int
    delivered: int
    delivery_rate: float
    render_reads: int
    renders: int
    cohorts: tuple[CohortReport, ...]

    @property
    def reuse_ratio(self) -> float:
        """Cache reads per field rendered -- the fan-out's leverage."""
        return self.render_reads / max(self.renders, 1)

    def as_dict(self) -> dict[str, object]:
        """Plain-JSON form of the whole report."""
        return {
            "payload_bytes": self.payload_bytes,
            "k": self.k,
            "cycle_packets": self.cycle_packets,
            "cycle_s": self.cycle_s,
            "receivers": self.receivers,
            "delivered": self.delivered,
            "delivery_rate": self.delivery_rate,
            "render_reads": self.render_reads,
            "renders": self.renders,
            "reuse_ratio": self.reuse_ratio,
            "cohorts": [c.as_dict() for c in self.cohorts],
        }

    def work_json(self) -> str:
        """Canonical JSON -- the byte-identity artifact of a fleet run.

        Every value folds results in receiver-id order, so the bytes
        must match between ``workers=1`` and ``workers=N``.
        """
        return json.dumps(self.as_dict(), sort_keys=True, separators=(",", ":"))

    def summary(self) -> str:
        """Terminal-friendly report."""
        lines = [
            f"broadcast fleet: {self.receivers} receivers, "
            f"{self.delivered} delivered ({self.delivery_rate * 100:.1f}%)",
            f"  carousel: {self.payload_bytes} B payload, k={self.k}, "
            f"{self.cycle_packets} packets/cycle ({self.cycle_s:.2f} s)",
            f"  render cache: {self.renders} renders served "
            f"{self.render_reads} reads ({self.reuse_ratio:.1f}x reuse)",
        ]
        for c in self.cohorts:
            ttd = (
                f"{c.mean_time_to_deliver_s:.2f} s"
                if c.mean_time_to_deliver_s is not None
                else "-"
            )
            goodput = (
                f"{c.mean_goodput_kbps:.2f} kbps"
                if c.mean_goodput_kbps is not None
                else "-"
            )
            lines.append(
                f"  cohort {c.name:<12} {c.delivered}/{c.receivers} delivered "
                f"({c.delivery_rate * 100:.0f}%), mean join->payload {ttd}, "
                f"goodput {goodput}, resyncs {c.resyncs}"
            )
        return "\n".join(lines)


def build_fleet_report(
    results: list[ReceiverResult],
    *,
    payload_bytes: int,
    k: int,
    cycle_packets: int,
    cycle_s: float,
    render_reads: int,
    renders: int,
) -> FleetReport:
    """Aggregate receiver results (sorted by id) into a fleet report."""
    if not results:
        raise ValueError("no receiver results to report on")
    by_cohort: dict[str, list[ReceiverResult]] = {}
    for result in results:
        by_cohort.setdefault(result.cohort, []).append(result)
    cohorts = tuple(
        CohortReport.build(name, members) for name, members in by_cohort.items()
    )
    delivered = sum(1 for r in results if r.delivered)
    return FleetReport(
        payload_bytes=payload_bytes,
        k=k,
        cycle_packets=cycle_packets,
        cycle_s=cycle_s,
        receivers=len(results),
        delivered=delivered,
        delivery_rate=delivered / len(results),
        render_reads=render_reads,
        renders=renders,
        cohorts=cohorts,
    )
