"""Cohort specs: who is watching the broadcast, in one grammar string.

A fleet is described the way ``--faults`` describes chaos: a compact,
round-trippable spec.  Cohorts are separated by ``|``, each one a name
plus ``key=value`` parameters::

    SPEC   := cohort ("|" cohort)*
    cohort := name (":" param ("," param)*)?
    param  := key "=" value

for example::

    lobby:n=24,join_spread=1.0|far:n=8,distance=1.6,join_spread=1.0,faults=drop:p=0.15

Parameters (all numeric; times in seconds):

================= ======================================================
key               meaning
================= ======================================================
n                 receivers in the cohort (1)
fps               capture rate override (inherit the base camera)
exposure          per-row exposure override in seconds (inherit)
offset            extra camera clock offset beyond the join time (0)
offset_spread     per-receiver uniform draw added to ``offset`` (0)
drift_ppm         extra camera clock drift in ppm (0)
drift_spread_ppm  per-receiver uniform +/- draw around ``drift_ppm`` (0)
distance          viewing distance relative to the paper's 50 cm setup;
                  the screen fill shrinks as ``base_fill / distance`` (1)
join              when the receiver starts watching (0)
join_spread       per-receiver uniform draw added to ``join`` (0)
dwell             how long the receiver watches (the fleet default)
heal              1/0 forces the self-healing decoder on/off (default:
                  heal exactly when the cohort carries faults)
faults            an embedded :mod:`repro.faults` spec with ``/`` for
                  ``;`` and ``+`` for ``,`` (the outer grammar owns
                  those), e.g. ``faults=drop:p=0.1+burst=3/blackout:at=0.5+dur=0.4``
================= ======================================================

Determinism contract
--------------------
Per-receiver draws (join phase, clock offset, drift) come from
``spawn_rng(seed, _KEY_COHORT, cohort_index, member_index)`` and are made
in the parent before any worker runs; a cohort-level fault plan is
re-seeded per receiver through :meth:`~repro.faults.FaultPlan.for_receiver`.
Compiling the same spec with the same seed therefore yields bit-identical
:class:`ReceiverSpec` tuples at any worker count.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.camera.capture import CameraModel
from repro.faults.plan import FaultPlan, FaultSpecError
from repro.runtime.scheduler import spawn_rng

#: Known cohort parameters and their defaults (``None`` = inherit).
COHORT_KEYS: dict[str, float | None] = {
    "n": 1.0,
    "fps": None,
    "exposure": None,
    "offset": 0.0,
    "offset_spread": 0.0,
    "drift_ppm": 0.0,
    "drift_spread_ppm": 0.0,
    "distance": 1.0,
    "join": 0.0,
    "join_spread": 0.0,
    "dwell": None,
    "heal": None,
}

#: Spawn-key namespace of the per-receiver parameter draws.
_KEY_COHORT = 0xC0407

#: The camera model's legal screen-fill range.
_MIN_FILL = 0.05
_MAX_FILL = 1.0


class CohortSpecError(ValueError):
    """Raised when a cohort spec string cannot be parsed."""


@dataclass(frozen=True)
class CohortSpec:
    """One named cohort of receivers sharing a parameter distribution."""

    name: str
    n: int = 1
    fps: float | None = None
    exposure_s: float | None = None
    offset_s: float = 0.0
    offset_spread_s: float = 0.0
    drift_ppm: float = 0.0
    drift_spread_ppm: float = 0.0
    distance: float = 1.0
    join_s: float = 0.0
    join_spread_s: float = 0.0
    dwell_s: float | None = None
    faults: FaultPlan | None = None
    heal: bool | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise CohortSpecError("cohort name must be non-empty")
        if self.n < 1:
            raise CohortSpecError(f"cohort {self.name!r}: n must be >= 1, got {self.n}")
        if self.distance <= 0.0:
            raise CohortSpecError(
                f"cohort {self.name!r}: distance must be > 0, got {self.distance}"
            )
        for label, value in (
            ("offset_spread", self.offset_spread_s),
            ("drift_spread_ppm", self.drift_spread_ppm),
            ("join_spread", self.join_spread_s),
        ):
            if value < 0.0:
                raise CohortSpecError(
                    f"cohort {self.name!r}: {label} must be >= 0, got {value}"
                )
        if self.join_s < 0.0:
            raise CohortSpecError(
                f"cohort {self.name!r}: join must be >= 0, got {self.join_s}"
            )
        if self.dwell_s is not None and self.dwell_s <= 0.0:
            raise CohortSpecError(
                f"cohort {self.name!r}: dwell must be > 0, got {self.dwell_s}"
            )


@dataclass(frozen=True)
class ReceiverSpec:
    """One concrete receiver, every parameter drawn and frozen.

    ``faults`` is already the receiver's own plan (cohort plan re-seeded
    through :meth:`~repro.faults.FaultPlan.for_receiver`), and ``heal``
    is resolved -- workers execute specs verbatim, drawing nothing.
    """

    receiver_id: int
    cohort: str
    join_s: float
    dwell_s: float | None
    clock_offset_s: float
    extra_drift: float
    distance: float
    fps: float | None = None
    exposure_s: float | None = None
    faults: FaultPlan | None = None
    heal: bool = False

    def camera(self, base: CameraModel) -> CameraModel:
        """This receiver's camera, derived from the fleet's base model."""
        fill = min(max(base.screen_fill / self.distance, _MIN_FILL), _MAX_FILL)
        drift = min(max(base.clock_drift + self.extra_drift, -0.01), 0.01)
        return replace(
            base,
            fps=self.fps if self.fps is not None else base.fps,
            exposure_s=self.exposure_s if self.exposure_s is not None else base.exposure_s,
            clock_offset_s=self.clock_offset_s,
            clock_drift=drift,
            screen_fill=fill,
        )


def _parse_params(name: str, body: str) -> dict[str, object]:
    """The ``key=value`` pairs of one cohort, validated against the table."""
    params: dict[str, object] = {}
    if not body.strip():
        return params
    for pair in body.split(","):
        key, eq, value = pair.partition("=")
        key = key.strip()
        if not eq:
            raise CohortSpecError(
                f"malformed parameter {pair!r} in cohort {name!r} (expected key=value)"
            )
        if key == "faults":
            params[key] = value.strip()
            continue
        if key not in COHORT_KEYS:
            known = ", ".join(sorted([*COHORT_KEYS, "faults"]))
            raise CohortSpecError(
                f"cohort {name!r} has no parameter {key!r} (known: {known})"
            )
        if key in params:
            raise CohortSpecError(f"cohort {name!r} repeats parameter {key!r}")
        try:
            params[key] = float(value)
        except ValueError as exc:
            raise CohortSpecError(
                f"non-numeric value {value!r} for {name}.{key}"
            ) from exc
    return params


def _cohort_faults(name: str, embedded: str, seed: int) -> FaultPlan:
    """Translate the embedded fault grammar back and parse it."""
    translated = embedded.replace("/", ";").replace("+", ",")
    try:
        return FaultPlan.parse(translated, seed=seed)
    except FaultSpecError as exc:
        raise CohortSpecError(f"cohort {name!r}: faults: {exc}") from exc


def parse_cohorts(spec: str, seed: int = 0) -> tuple[CohortSpec, ...]:
    """Parse a fleet spec string into cohort specs.

    Raises :class:`CohortSpecError` on unknown keys, malformed pairs,
    duplicate cohort names, or an empty spec.  *seed* seeds every
    cohort's fault plan (receivers then derive their own).
    """
    cohorts: list[CohortSpec] = []
    seen: set[str] = set()
    for part in spec.split("|"):
        part = part.strip()
        if not part:
            continue
        name, _, body = part.partition(":")
        name = name.strip()
        if not name or any(c in name for c in "=, \t"):
            raise CohortSpecError(
                f"malformed cohort name {name!r} (did you forget the 'name:' prefix?)"
            )
        params = _parse_params(name, body)
        if name in seen:
            raise CohortSpecError(f"duplicate cohort name {name!r}")
        seen.add(name)
        heal_raw = params.get("heal")
        faults_raw = params.get("faults")
        cohorts.append(
            CohortSpec(
                name=name,
                n=int(float(params.get("n", 1.0))),  # type: ignore[arg-type]
                fps=_opt_float(params.get("fps")),
                exposure_s=_opt_float(params.get("exposure")),
                offset_s=float(params.get("offset", 0.0)),  # type: ignore[arg-type]
                offset_spread_s=float(params.get("offset_spread", 0.0)),  # type: ignore[arg-type]
                drift_ppm=float(params.get("drift_ppm", 0.0)),  # type: ignore[arg-type]
                drift_spread_ppm=float(params.get("drift_spread_ppm", 0.0)),  # type: ignore[arg-type]
                distance=float(params.get("distance", 1.0)),  # type: ignore[arg-type]
                join_s=float(params.get("join", 0.0)),  # type: ignore[arg-type]
                join_spread_s=float(params.get("join_spread", 0.0)),  # type: ignore[arg-type]
                dwell_s=_opt_float(params.get("dwell")),
                faults=(
                    _cohort_faults(name, str(faults_raw), seed)
                    if faults_raw is not None
                    else None
                ),
                heal=None if heal_raw is None else bool(float(heal_raw)),  # type: ignore[arg-type]
            )
        )
    if not cohorts:
        raise CohortSpecError("cohort spec is empty")
    return tuple(cohorts)


def _opt_float(value: object | None) -> float | None:
    return None if value is None else float(value)  # type: ignore[arg-type]


def compile_receivers(
    cohorts: tuple[CohortSpec, ...] | list[CohortSpec], seed: int = 0
) -> tuple[ReceiverSpec, ...]:
    """Draw every receiver's concrete parameters, in the parent, once.

    Receiver ids are global and sequential across cohorts (in spec
    order), so a receiver's identity -- and therefore its RNG streams
    and derived fault seed -- does not depend on how the fan-out later
    chunks the fleet.
    """
    specs: list[ReceiverSpec] = []
    receiver_id = 0
    for cohort_index, cohort in enumerate(cohorts):
        for member in range(cohort.n):
            rng = spawn_rng(seed, _KEY_COHORT, cohort_index, member)
            join = cohort.join_s + float(rng.uniform(0.0, 1.0)) * cohort.join_spread_s
            offset = (
                cohort.offset_s
                + float(rng.uniform(0.0, 1.0)) * cohort.offset_spread_s
            )
            drift_ppm = cohort.drift_ppm + float(
                rng.uniform(-1.0, 1.0)
            ) * cohort.drift_spread_ppm
            faults = (
                cohort.faults.for_receiver(receiver_id)
                if cohort.faults is not None
                else None
            )
            heal = cohort.heal if cohort.heal is not None else faults is not None
            specs.append(
                ReceiverSpec(
                    receiver_id=receiver_id,
                    cohort=cohort.name,
                    join_s=join,
                    dwell_s=cohort.dwell_s,
                    clock_offset_s=join + offset,
                    extra_drift=drift_ppm * 1e-6,
                    distance=cohort.distance,
                    fps=cohort.fps,
                    exposure_s=cohort.exposure_s,
                    faults=faults,
                    heal=heal,
                )
            )
            receiver_id += 1
    return tuple(specs)
