"""The broadcast session: one carousel, rendered once, served to many.

InFrame's deployment is digital signage: a display loops its content all
day with a data carousel multiplexed on top, and any number of cameras
watch.  :class:`BroadcastSession` is that display.  It fixes a cyclic
batch of fountain symbols (the carousel), multiplexes them onto a
looping video, and exposes the emitted light field through a
:class:`~repro.display.scheduler.MemoizedTimeline` whose render cache is
keyed on ``index mod period`` -- so the steady-state render work is one
carousel cycle, no matter how many receivers integrate it.

Cycle alignment
---------------
The emitted stream repeats exactly when both of its inputs do: the video
loop (``video frames x frame_duplication`` display frames) and the
packet carousel (``cycle_packets x tau`` display frames).  The session
rounds the fountain batch up until one carousel cycle is a whole number
of video loops, which makes the joint period *equal* to the carousel
cycle -- the smallest render cache that can serve the whole session.
Extra symbols are free value, not padding: the code is rateless, so a
longer cycle simply airs more distinct symbols per pass.

Render-once semantics
---------------------
``frame_average_luminance`` folds the panel's liquid-crystal state in,
and that state depends on the *previous* frames' content -- so cache
keys must be periodic in the LC state, not merely in frame content.
Over a periodic stream, ``index mod period`` is: every index of a class
sees bit-identical predecessor frames.  The session pre-renders the
*second* cycle (indices ``[period, 2*period)``), i.e. the steady-state
fields; receivers that join during the very first frames are served
those steady-state fields too, which discards the display's power-on
transient (a deliberate modelling choice, documented in
``docs/broadcast.md``).

When shared memory is available and the cycle fits the budget, the
fields live in a :class:`~repro.runtime.shm.SharedFramePool` -- forked
receiver workers then read the parent's bytes in place instead of
copying a cache per process.
"""

from __future__ import annotations

import math

import numpy as np

from repro._util import check_positive_int
from repro.core.config import InFrameConfig
from repro.core.geometry import FrameGeometry
from repro.core.multiplexer import MultiplexedStream
from repro.display.panel import DisplayPanel
from repro.display.scheduler import (
    AverageFrameStore,
    DictFrameStore,
    DisplayTimeline,
    MemoizedTimeline,
)
from repro.runtime.shm import SharedFramePool, SlotRef, shared_memory_available
from repro.transport.carousel import BroadcastCarousel
from repro.transport.packet import FramePacketCodec, PacketSchedule
from repro.video.source import LoopingVideoSource, VideoSource

#: Default bound on shared-memory spent for the render cache.
_DEFAULT_SHM_BUDGET_BYTES = 512 * 1024 * 1024


class PooledFrameStore:
    """An :class:`~repro.display.AverageFrameStore` over shared memory.

    The parent fills one slot per render-cache key; forked workers read
    the slots zero-copy (``read(copy=False)`` returns a view into the
    inherited segment).  Fill references are the store's own; fleet runs
    :meth:`retain_all` / :meth:`release_all` around their lifetime, so a
    slot is recycled only when the session closes *and* the last
    concurrent reader has let go -- the multi-reader refcount contract
    of :class:`~repro.runtime.shm.SharedFramePool`.
    """

    def __init__(self, pool: SharedFramePool) -> None:
        self.pool = pool
        self._refs: dict[int, SlotRef] = {}

    def __len__(self) -> int:
        return len(self._refs)

    def get(self, key: int) -> np.ndarray | None:
        ref = self._refs.get(key)
        if ref is None:
            return None
        return self.pool.read(ref, copy=False)

    def put(self, key: int, field: np.ndarray) -> None:
        if key in self._refs:
            raise ValueError(f"render-cache key {key} written twice")
        ref = self.pool.acquire()
        self.pool.write(ref, np.ascontiguousarray(field, dtype=self.pool.dtype))
        self._refs[key] = ref

    def retain_all(self) -> None:
        """Register one more concurrent reader of every cached field."""
        for ref in self._refs.values():
            self.pool.retain(ref)

    def release_all(self) -> None:
        """Drop one reader reference from every cached field."""
        for ref in self._refs.values():
            self.pool.release(ref)

    def close(self) -> None:
        """Release the fill references and destroy the segment."""
        for ref in self._refs.values():
            self.pool.release(ref)
        self._refs.clear()
        self.pool.close()


class BroadcastSession:
    """One display broadcasting one payload to whoever watches.

    Parameters
    ----------
    config, video:
        The InFrame parameters and the looping content clip (the video's
        fps must match ``config.video_fps``; the session loops it as
        long as the fleet needs).
    payload:
        The bytes on the carousel.
    panel:
        The display; defaults to a panel matching the video at
        ``config.refresh_hz``.
    session_id:
        Stamped on every packet; doubles as the fountain seed.
    rs_n, rs_k:
        The per-frame inner Reed-Solomon code (see
        :func:`repro.core.pipeline.run_transport_link`).
    cycle_margin:
        Extra fraction of fountain symbols in the carousel cycle beyond
        ``k`` (before cycle alignment rounds further up).
    shm_budget_bytes:
        Ceiling on shared memory for the render cache; above it (or
        when shared memory is unavailable) the cache falls back to a
        plain in-process dict, which forked workers still share through
        copy-on-write fork inheritance.
    """

    def __init__(
        self,
        config: InFrameConfig,
        video: VideoSource,
        payload: bytes,
        *,
        panel: DisplayPanel | None = None,
        session_id: int = 1,
        rs_n: int = 60,
        rs_k: int = 24,
        cycle_margin: float = 0.35,
        c: float = 0.1,
        delta: float = 0.5,
        shm_budget_bytes: int = _DEFAULT_SHM_BUDGET_BYTES,
    ) -> None:
        if not payload:
            raise ValueError("payload must be non-empty")
        if cycle_margin < 0.0:
            raise ValueError(f"cycle_margin must be >= 0, got {cycle_margin}")
        if panel is None:
            panel = DisplayPanel(
                width=video.width, height=video.height, refresh_hz=config.refresh_hz
            )
        if (panel.height, panel.width) != (video.height, video.width):
            raise ValueError(
                f"panel {panel.height}x{panel.width} does not match video "
                f"{video.height}x{video.width}"
            )
        self.config = config
        self.video = video
        self.payload = bytes(payload)
        self.panel = panel
        self.session_id = int(session_id)
        self.shm_budget_bytes = int(shm_budget_bytes)

        self.codec = FramePacketCodec(config, rs_n=rs_n, rs_k=rs_k)
        self.carousel = BroadcastCarousel(
            self.payload,
            self.codec.max_payload_bytes,
            session_id=self.session_id,
            c=c,
            delta=delta,
        )
        # Cycle alignment: round the batch up so one carousel cycle spans
        # a whole number of video loops -- then the joint period of the
        # emitted stream IS the cycle (see the module docstring).
        batch = max(2, math.ceil(self.carousel.k * (1.0 + cycle_margin)))
        loop_frames = video.n_frames * config.frame_duplication
        align = loop_frames // math.gcd(loop_frames, config.tau)
        self.cycle_packets = math.ceil(batch / align) * align
        self.period_frames = self.cycle_packets * config.tau
        self.loop_frames = loop_frames
        self.schedule = PacketSchedule(
            config,
            self.codec,
            self.carousel.packets(0, self.cycle_packets),
            repeat=True,
        )
        self.geometry = FrameGeometry(config, video.height, video.width)
        self._memo: MemoizedTimeline | None = None
        self._pooled: PooledFrameStore | None = None
        self._store: AverageFrameStore | None = None
        self._closed = False

    # ------------------------------------------------------------------
    # Carousel facts
    # ------------------------------------------------------------------
    @property
    def k(self) -> int:
        """Source blocks in the payload."""
        return self.carousel.k

    @property
    def cycle_s(self) -> float:
        """Wall-clock length of one carousel cycle."""
        return self.period_frames / self.config.refresh_hz

    @property
    def render_cache_hits(self) -> int:
        """Parent-side render-cache hits so far (workers report their own)."""
        return 0 if self._memo is None else self._memo.hits

    @property
    def render_cache_misses(self) -> int:
        """Fields actually rendered (the warm pass renders one cycle)."""
        return 0 if self._memo is None else self._memo.misses

    # ------------------------------------------------------------------
    # The emitted stream
    # ------------------------------------------------------------------
    def prepare(self, horizon_s: float) -> MemoizedTimeline:
        """The memoized emitted-light timeline covering *horizon_s* seconds.

        Builds (or extends) the looping stream, then warms the render
        cache over one steady-state cycle so the fan-out workers run
        hit-only.  Reuses the existing cache when called again -- the
        stream is periodic, so a longer horizon never invalidates a
        field already rendered.
        """
        if self._closed:
            raise RuntimeError("session is closed")
        if horizon_s <= 0.0:
            raise ValueError(f"horizon_s must be > 0, got {horizon_s}")
        needed = math.ceil(horizon_s * self.config.refresh_hz)
        needed = max(needed, 2 * self.period_frames)
        n_loops = math.ceil(needed / self.loop_frames)
        n_frames = n_loops * self.loop_frames
        if self._memo is not None and self._memo.n_frames >= n_frames:
            return self._memo
        looped = (
            self.video
            if n_loops == 1
            else LoopingVideoSource(self.video, n_loops)
        )
        stream = MultiplexedStream(
            self.config,
            looped,
            self.schedule,
            n_display_frames=n_frames,
            gamma_curve=self.panel.gamma_curve,
        )
        timeline = DisplayTimeline(self.panel, stream)
        if self._store is None:
            self._store = self._build_store()
        memo = MemoizedTimeline(
            timeline, key_fn=self._key_fn, store=self._store
        )
        if self._memo is not None:
            # Carry the session's counters across a horizon extension.
            memo.hits, memo.misses = self._memo.hits, self._memo.misses
        self._memo = memo
        # Warm over the SECOND cycle: every index there is >= one full
        # LC warm-up deep, so the cached fields are the steady-state
        # ones every later cycle reproduces bit for bit.
        memo.warm(range(self.period_frames, 2 * self.period_frames))
        return memo

    def _key_fn(self, index: int) -> int:
        return index % self.period_frames

    def _build_store(self) -> AverageFrameStore:
        field_bytes = self.panel.height * self.panel.width * 4
        budget_ok = self.period_frames * field_bytes <= self.shm_budget_bytes
        if budget_ok and shared_memory_available():
            pool = SharedFramePool(
                (self.panel.height, self.panel.width),
                np.float32,
                n_slots=self.period_frames,
            )
            self._pooled = PooledFrameStore(pool)
            return self._pooled
        return DictFrameStore()

    @property
    def shared(self) -> bool:
        """Whether the render cache sits in shared memory."""
        return self._pooled is not None

    # ------------------------------------------------------------------
    # Reader lifetime (fleet runs pin the cache while they fan out)
    # ------------------------------------------------------------------
    def retain_readers(self) -> None:
        """Pin every cached field for one more concurrent fleet run."""
        if self._pooled is not None:
            self._pooled.retain_all()

    def release_readers(self) -> None:
        """Unpin the cached fields after a fleet run drains."""
        if self._pooled is not None:
            self._pooled.release_all()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release the render cache (idempotent; parent side only)."""
        if self._closed:
            return
        self._closed = True
        if self._pooled is not None:
            self._pooled.close()
            self._pooled = None
        self._store = None
        self._memo = None

    def __enter__(self) -> "BroadcastSession":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


def deterministic_payload(n_bytes: int, seed: int = 0) -> bytes:
    """A seed-stamped payload for demos and smoke tests."""
    check_positive_int(n_bytes, "n_bytes")
    from repro.runtime.scheduler import spawn_rng

    rng = spawn_rng(seed, 0x9A710AD)
    return rng.integers(0, 256, size=n_bytes, dtype=np.uint8).tobytes()
