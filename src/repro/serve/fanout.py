"""Fan one broadcast session out to a fleet of simulated receivers.

The expensive half of simulating a receiver -- rendering the emitted
light field -- is shared: every camera films the *same* display.  So the
fan-out renders nothing per receiver.  The session's memoized timeline
(warmed over one carousel cycle) travels to the workers through fork
inheritance; when its store is a shared-memory pool the workers read the
parent's bytes in place, and either way a receiver's captures are pure
cache hits.  Per receiver the worker still pays for what genuinely
differs: the rolling-shutter blend at its own clock/exposure, sensor
noise on its own RNG stream, decode, and the carousel collect.

Determinism contract
--------------------
Everything random is addressed, never shared: receiver parameters are
drawn in the parent (:func:`repro.serve.cohort.compile_receivers`),
capture noise uses ``spawn_rng(seed, _KEY_RECEIVER, receiver_id,
capture_index)``, and fault plans were re-seeded per receiver before
chunking.  Chunk results carry per-chunk :class:`~repro.obs.Telemetry`
exports that merge exactly.  ``run_fleet`` with the same inputs is
therefore bit-identical -- report bytes and work-scope metrics bytes --
at ``workers=1`` and ``workers=N``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.camera.capture import CameraModel, CapturedFrame
from repro.core.decoder import BlockObservation, InFrameDecoder
from repro.display.scheduler import MemoizedTimeline
from repro.faults.inject import FaultInjectedCamera, apply_stream_faults
from repro.obs import RunTelemetry, Telemetry
from repro.obs.live import live_collector, record_live
from repro.obs.metrics import EXEC
from repro.obs.telemetry import TelemetryDict
from repro.runtime.engine import ExecutionEngine
from repro.runtime.scheduler import WorkChunk, plan_chunks, spawn_rng
from repro.serve.cohort import CohortSpec, ReceiverSpec, compile_receivers
from repro.serve.report import (
    FleetReport,
    ReceiverResult,
    build_fleet_report,
    record_receiver_telemetry,
)
from repro.serve.session import BroadcastSession
from repro.transport.carousel import CarouselReceiver
from repro.transport.packet import PacketSlotAccumulator

#: Spawn-key namespace of per-(receiver, capture) noise streams.
_KEY_RECEIVER = 0x5EBE

#: Slack past the last receiver's watch window when sizing the stream.
_HORIZON_MARGIN_S = 0.5


@dataclass(frozen=True)
class _FleetContext:
    """Fork-inherited worker state: the shared timeline plus fleet facts."""

    timeline: MemoizedTimeline
    session: BroadcastSession
    base_camera: CameraModel
    specs: tuple[ReceiverSpec, ...]
    seed: int
    default_dwell_s: float


def _simulate_receiver(
    spec: ReceiverSpec, ctx: _FleetContext, telemetry: Telemetry
) -> ReceiverResult:
    """One receiver's whole life: join, watch, decode, collect, leave."""
    session = ctx.session
    config = session.config
    camera = spec.camera(ctx.base_camera)
    dwell = spec.dwell_s if spec.dwell_s is not None else ctx.default_dwell_s
    n_captures = min(
        int(dwell * camera.fps), camera.frames_covering(ctx.timeline)
    )
    if n_captures < 1:
        return ReceiverResult(
            receiver_id=spec.receiver_id,
            cohort=spec.cohort,
            join_s=spec.join_s,
            delivered=False,
            n_captures=0,
            n_data_frames=0,
            join_offset=None,
            symbols_consumed=0,
            packets_rejected=0,
            resyncs=0,
            time_to_deliver_s=None,
            goodput_kbps=None,
        )

    compiled = None
    if spec.faults is not None:
        compiled = spec.faults.compile(
            n_captures,
            camera.fps,
            duration_s=n_captures / camera.fps,
            refresh_hz=config.refresh_hz,
            origin_s=spec.join_s,
        )
    source = (
        FaultInjectedCamera(camera, compiled)
        if compiled is not None and compiled.perturbs_captures
        else camera
    )
    decoder = InFrameDecoder(
        config,
        session.geometry,
        camera.height,
        camera.width,
        screen_rect=camera.screen_rect() if camera.screen_fill < 1.0 else None,
    )
    captures: list[CapturedFrame] = []
    observations: list[BlockObservation] = []
    for i in range(n_captures):
        rng = spawn_rng(ctx.seed, _KEY_RECEIVER, spec.receiver_id, i)
        capture = source.capture_frame(ctx.timeline, i, rng=rng)
        observations.append(decoder.observe(capture))
        if compiled is not None and compiled.perturbs_stream:
            captures.append(capture)
    if compiled is not None and compiled.perturbs_stream:
        _, observations, _ = apply_stream_faults(compiled, captures, observations)

    resyncs = 0
    if spec.heal:
        decoded, healing = decoder.decide_observations_healed(observations)
        resyncs = healing.n_resyncs
    else:
        decoded = decoder.decide_observations(observations)

    # Collect the carousel incrementally: each decoded data frame merges
    # into its cycle slot, and a slot is delivered the moment it becomes
    # RS-decodable -- so time-to-payload lands on the data frame that
    # completed the fountain, not at the end of the watch window.
    receiver = CarouselReceiver()
    accumulator = PacketSlotAccumulator(session.codec, session.cycle_packets)
    packet_faults = spec.faults.packet_faults() if spec.faults is not None else None
    fed: set[int] = set()
    delivered_at: float | None = None
    for frame in sorted(decoded, key=lambda f: f.index):
        accumulator.add_frame(frame)
        slot = frame.index % session.cycle_packets
        if slot in fed:
            continue
        raw = accumulator.decode_slot(slot)
        if raw is None:
            continue
        if packet_faults is not None and packet_faults.active:
            raw = packet_faults.apply([raw], round_index=frame.index + 1)[0][0]
        rejected_before = receiver.n_rejected
        receiver.receive(raw)
        if receiver.n_rejected == rejected_before:
            # Accepted (possibly redundant): this slot's symbol is in.  A
            # rejected buffer stays out of `fed` so a later re-air of the
            # slot retries under a fresh corruption draw.
            fed.add(slot)
        if receiver.complete:
            delivered_at = (frame.index + 1) * config.tau / config.refresh_hz
            break

    delivered = receiver.complete and receiver.payload() == session.payload
    time_to_deliver = (
        delivered_at - spec.join_s if delivered and delivered_at is not None else None
    )
    goodput = (
        len(session.payload) * 8.0 / time_to_deliver / 1000.0
        if time_to_deliver is not None and time_to_deliver > 0.0
        else None
    )
    result = ReceiverResult(
        receiver_id=spec.receiver_id,
        cohort=spec.cohort,
        join_s=spec.join_s,
        delivered=delivered,
        n_captures=n_captures,
        n_data_frames=len(decoded),
        join_offset=receiver.join_offset,
        symbols_consumed=receiver.symbols_consumed,
        packets_rejected=receiver.n_rejected,
        resyncs=resyncs,
        time_to_deliver_s=time_to_deliver,
        goodput_kbps=goodput,
    )
    record_receiver_telemetry(result, telemetry)
    return result


@dataclass(frozen=True)
class _ChunkOutput:
    """What one worker chunk sends back through the result queue."""

    results: tuple[ReceiverResult, ...]
    telemetry: TelemetryDict
    cache_hits: int
    cache_misses: int


def _simulate_fleet_chunk(chunk: WorkChunk, ctx: _FleetContext) -> _ChunkOutput:
    """Worker entry: simulate one chunk of receivers against the shared timeline."""
    telemetry = Telemetry(track=f"fleet-{chunk.index:03d}")
    hits0, misses0 = ctx.timeline.hits, ctx.timeline.misses
    results = []
    with telemetry.tracer.span(
        "serve.fleet_chunk", category=EXEC, receivers=len(chunk)
    ):
        for item in chunk.items:
            results.append(_simulate_receiver(ctx.specs[item], ctx, telemetry))
    cache_hits = ctx.timeline.hits - hits0
    cache_misses = ctx.timeline.misses - misses0
    telemetry.metrics.counter("serve.render_cache.hits", scope=EXEC).inc(cache_hits)
    telemetry.metrics.counter("serve.render_cache.misses", scope=EXEC).inc(cache_misses)
    return _ChunkOutput(
        results=tuple(results),
        telemetry=telemetry.export(),
        cache_hits=cache_hits,
        cache_misses=cache_misses,
    )


@dataclass
class FleetRun:
    """Everything one fleet run produced."""

    report: FleetReport
    results: tuple[ReceiverResult, ...]
    telemetry: RunTelemetry


def run_fleet(
    session: BroadcastSession,
    cohorts: tuple[CohortSpec, ...] | list[CohortSpec],
    *,
    base_camera: CameraModel | None = None,
    seed: int = 0,
    workers: int | None = None,
    default_dwell_s: float = 8.0,
) -> FleetRun:
    """Serve one broadcast session to a cohort-described fleet.

    Parameters
    ----------
    session:
        The broadcast being watched.  Its emitted stream is prepared (and
        its render cache warmed) to cover the latest joiner's window.
    cohorts:
        The fleet, from :func:`repro.serve.cohort.parse_cohorts`.
    base_camera:
        The camera every receiver derives from; defaults to the paper's
        receiver auto-exposed for the session's panel.
    seed:
        Root of every receiver-parameter and sensor-noise draw.
    workers:
        Worker processes; ``None``/``<=1`` runs in-process.  Any value
        yields bit-identical reports and work-scope metrics.
    default_dwell_s:
        Watch window for cohorts that set no ``dwell``.
    """
    if default_dwell_s <= 0.0:
        raise ValueError(f"default_dwell_s must be > 0, got {default_dwell_s}")
    specs = compile_receivers(cohorts, seed=seed)
    if base_camera is None:
        base_camera = CameraModel().auto_exposed(
            session.panel.gamma_curve.peak_luminance * session.panel.brightness
        )
    telemetry = Telemetry(track="serve")
    live = live_collector()
    if live is not None:
        live.attach(telemetry.metrics)

    horizon = (
        max(
            spec.join_s + (spec.dwell_s if spec.dwell_s is not None else default_dwell_s)
            for spec in specs
        )
        + _HORIZON_MARGIN_S
    )
    renders_before = session.render_cache_misses
    with telemetry.tracer.span(
        "serve.prepare", category=EXEC, horizon_s=round(horizon, 3)
    ):
        timeline = session.prepare(horizon)
    renders = session.render_cache_misses - renders_before
    telemetry.metrics.counter("serve.render_cache.renders", scope=EXEC).inc(renders)
    telemetry.metrics.gauge("serve.fleet_size").set(len(specs))

    serial = workers is None or int(workers) <= 1
    engine = ExecutionEngine(workers=1 if serial else int(workers), telemetry=telemetry)
    chunks = plan_chunks(
        len(specs), n_chunks=1 if serial else engine.workers * 2, seed=seed
    )
    context = _FleetContext(
        timeline=timeline,
        session=session,
        base_camera=base_camera,
        specs=specs,
        seed=seed,
        default_dwell_s=default_dwell_s,
    )
    # Live delivery progress: chunk results arrive in completion order,
    # so the counters here are exec-scoped by nature.  They feed only
    # the advisory snapshot stream; the report below still merges the
    # ordered `outputs` list, so report/metrics bytes are untouched.
    progress = {"done": 0, "delivered": 0}

    def _on_chunk(_index: int, output: _ChunkOutput) -> None:
        progress["done"] += len(output.results)
        progress["delivered"] += sum(1 for r in output.results if r.delivered)
        record_live("serve.receivers_done", progress["done"])
        record_live("serve.delivered", progress["delivered"])
        if progress["done"]:
            record_live(
                "serve.delivery_rate", progress["delivered"] / progress["done"]
            )

    session.retain_readers()
    try:
        with telemetry.tracer.span(
            "serve.fanout", category=EXEC, receivers=len(specs), chunks=len(chunks)
        ):
            outputs = engine.map(
                _simulate_fleet_chunk, chunks, context=context, on_result=_on_chunk
            )
    finally:
        session.release_readers()

    results: list[ReceiverResult] = []
    cache_hits = 0
    for output in outputs:
        telemetry.merge_export(output.telemetry)
        results.extend(output.results)
        cache_hits += output.cache_hits
    results.sort(key=lambda r: r.receiver_id)
    report = build_fleet_report(
        results,
        payload_bytes=len(session.payload),
        k=session.k,
        cycle_packets=session.cycle_packets,
        cycle_s=session.cycle_s,
        render_reads=cache_hits,
        renders=session.render_cache_misses,
    )
    run = telemetry.finish(
        meta={
            "tool": "repro.serve",
            "receivers": len(specs),
            "cohorts": [c.name for c in cohorts],
            "seed": seed,
            "workers": engine.workers,
            "delivery_rate": report.delivery_rate,
        }
    )
    return FleetRun(report=report, results=tuple(results), telemetry=run)
