"""Degradation accounting: what was injected, what the stack did about it.

:class:`InjectionLog` counts the faults that actually landed on a run's
capture stream; :class:`DegradationReport` combines that with the
receiver's :class:`~repro.core.decoder.HealingReport` and the transport
layer's degradation outcome (partial delivery, blackout rounds, budget
and deadline exhaustion) into the one record
:class:`~repro.core.pipeline.LinkRun` and
:class:`~repro.core.pipeline.TransportRun` attach.  Everything is
JSON-ready via :meth:`DegradationReport.as_dict` so the CLIs and
``benchmarks/bench_faults.py`` can persist robustness numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields

from repro.core.decoder import HealingReport
from repro.obs import Telemetry


@dataclass(frozen=True)
class InjectionLog:
    """Counts of the fault events that landed on one run."""

    dropped_captures: int = 0
    duplicated_captures: int = 0
    reordered_captures: int = 0
    blackout_captures: int = 0
    polarity_flips: int = 0
    exposure_steps: int = 0
    ambient_steps: int = 0
    corrupted_packets: int = 0
    truncated_packets: int = 0

    @property
    def total_events(self) -> int:
        """Every injected event, summed."""
        return sum(getattr(self, f.name) for f in fields(self))

    def as_dict(self) -> dict[str, int]:
        """JSON-ready form."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @staticmethod
    def merge(logs: "list[InjectionLog | None]") -> "InjectionLog | None":
        """Fold several rounds' logs into one (None entries skipped)."""
        present = [log for log in logs if log is not None]
        if not present:
            return None
        return InjectionLog(
            **{
                f.name: sum(getattr(log, f.name) for log in present)
                for f in fields(InjectionLog)
            }
        )


def record_injection_telemetry(log: InjectionLog, telemetry: Telemetry) -> None:
    """Record every landed fault event as a ``faults.*`` work counter."""
    for f in fields(InjectionLog):
        telemetry.metrics.counter(f"faults.{f.name}").inc(getattr(log, f.name))


@dataclass(frozen=True)
class DegradationReport:
    """How one run degraded and recovered under faults.

    Attributes
    ----------
    injected:
        Fault events that landed (None when the run had no fault plan).
    healing:
        The self-healing decoder's report (None with healing disabled).
    total_bytes, delivered_bytes:
        Transport payload accounting; ``delivered_bytes`` counts the
        distinct correct payload bytes the receiver holds, which is the
        honest number even when delivery is partial.
    partial:
        True when the session ended with some but not all bytes.
    blackout_rounds:
        Transport rounds that recovered zero packets (occlusion spans).
    deadline_hit, budget_exhausted:
        Which degradation bound ended an ARQ session early, if any.
    """

    injected: InjectionLog | None = None
    healing: HealingReport | None = None
    total_bytes: int = 0
    delivered_bytes: int = 0
    partial: bool = False
    blackout_rounds: int = 0
    deadline_hit: bool = False
    budget_exhausted: bool = False
    notes: tuple[str, ...] = field(default_factory=tuple)

    @property
    def recovered_ratio(self) -> float:
        """Delivered fraction of the payload (1.0 when nothing was owed)."""
        if self.total_bytes <= 0:
            return 1.0
        return self.delivered_bytes / self.total_bytes

    def as_dict(self) -> dict[str, object]:
        """JSON-ready form."""
        return {
            "injected": self.injected.as_dict() if self.injected else None,
            "healing": self.healing.as_dict() if self.healing else None,
            "total_bytes": self.total_bytes,
            "delivered_bytes": self.delivered_bytes,
            "recovered_ratio": self.recovered_ratio,
            "partial": self.partial,
            "blackout_rounds": self.blackout_rounds,
            "deadline_hit": self.deadline_hit,
            "budget_exhausted": self.budget_exhausted,
            "notes": list(self.notes),
        }

    def summary(self) -> str:
        """A small human-readable block for the CLIs' ``--faults`` output."""
        lines = []
        if self.injected is not None:
            inj = self.injected
            lines.append(
                "faults: "
                f"dropped={inj.dropped_captures} dup={inj.duplicated_captures} "
                f"reordered={inj.reordered_captures} blackout={inj.blackout_captures} "
                f"flips={inj.polarity_flips} exposure={inj.exposure_steps} "
                f"ambient={inj.ambient_steps} corrupt={inj.corrupted_packets} "
                f"truncated={inj.truncated_packets}"
            )
        if self.healing is not None:
            lines.append("  " + self.healing.summary())
        if self.total_bytes > 0:
            if self.delivered_bytes >= self.total_bytes:
                state = "complete"
            elif self.delivered_bytes > 0:
                state = "PARTIAL"
            else:
                state = "FAILED"
            extra = []
            if self.blackout_rounds:
                extra.append(f"blackout_rounds={self.blackout_rounds}")
            if self.deadline_hit:
                extra.append("deadline hit")
            if self.budget_exhausted:
                extra.append("retry budget exhausted")
            suffix = f" ({', '.join(extra)})" if extra else ""
            lines.append(
                f"  delivery {state}: {self.delivered_bytes}/{self.total_bytes} B "
                f"({self.recovered_ratio * 100:.1f}%){suffix}"
            )
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines) if lines else "faults: none injected"

    @staticmethod
    def merge_link_reports(
        reports: "list[DegradationReport | None]",
        **transport_fields: object,
    ) -> "DegradationReport":
        """Fold per-round link reports into one transport-level report."""
        present = [r for r in reports if r is not None]
        injected = InjectionLog.merge([r.injected for r in present])
        healing = HealingReport.merge(
            [r.healing for r in present if r.healing is not None]
        )
        return DegradationReport(
            injected=injected,
            healing=healing,
            **transport_fields,  # type: ignore[arg-type]
        )
