"""Fault injectors: where a compiled plan meets the capture stream.

Injection happens at three points, matching where real systems fail:

* :class:`FaultInjectedCamera` wraps the :class:`~repro.camera.capture.CameraModel`
  used by the runtime workers.  Timing faults (clock drift, extra
  jitter, polarity slips) shift the *true* render time while the frame
  keeps its *nominal* timestamps -- the camera's clock lies, exactly the
  desynchronisation the self-healing decoder must detect.  Pixel faults
  (exposure/ambient steps, occlusion blackouts) land on the rendered
  frame before the decoder's observation is extracted.
* :func:`apply_stream_faults` post-processes the ordered capture list in
  the parent: dropped captures vanish, duplicated captures deliver the
  previous frame's *pixels* under their own timestamps (a stale frame
  buffer), and reordered captures swap content with a nearby capture --
  all timestamp/content mismatches a naive decoder trusts blindly.
* :meth:`CompiledFaults.corrupt_packets` damages transport packets after
  the PHY decode (miscorrected RS codewords, torn buffers).

Because every decision was pre-drawn by :meth:`FaultPlan.compile`, the
injectors are pure functions: parallel and serial runs inject the exact
same faults.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.camera.capture import CameraModel, CapturedFrame, TimelineLike
from repro.core.decoder import BlockObservation
from repro.faults.plan import CompiledFaults
from repro.faults.report import InjectionLog


@dataclass(frozen=True)
class FaultInjectedCamera:
    """A camera whose clock and optics misbehave per a compiled plan.

    Duck-types the slice of :class:`~repro.camera.capture.CameraModel`
    the runtime workers use (``capture_frame`` plus the geometry
    attributes).  The returned frames carry the *nominal* timestamps --
    the injected time offset is invisible to the receiver, which is the
    whole point.
    """

    camera: CameraModel
    compiled: CompiledFaults

    @property
    def height(self) -> int:
        return self.camera.height

    @property
    def width(self) -> int:
        return self.camera.width

    @property
    def fps(self) -> float:
        return self.camera.fps

    def capture_frame(
        self,
        timeline: TimelineLike,
        index: int,
        rng: np.random.Generator | None = None,
    ) -> CapturedFrame:
        """Capture frame *index* at its faulted true time, nominally stamped."""
        offset = self.compiled.capture_time_offset(index)
        if offset != 0.0:
            shifted = replace(
                self.camera, clock_offset_s=self.camera.clock_offset_s + offset
            )
        else:
            shifted = self.camera
        capture = shifted.capture_frame(timeline, index, rng=rng)
        pixels = self.compiled.perturb_pixels(
            index, capture.mid_exposure_s - offset, capture.pixels
        )
        return CapturedFrame(
            pixels=pixels,
            index=capture.index,
            start_time_s=capture.start_time_s - offset,
            mid_exposure_s=capture.mid_exposure_s - offset,
        )


def apply_stream_faults(
    compiled: CompiledFaults,
    captures: list[CapturedFrame],
    observations: list[BlockObservation],
) -> tuple[list[CapturedFrame], list[BlockObservation], InjectionLog]:
    """Drop, duplicate and reorder the ordered capture stream.

    *captures* and *observations* must be index-aligned (as produced by
    :func:`repro.runtime.link_exec.execute_link_captures`).  Returns the
    faulted stream plus the :class:`InjectionLog` accounting every event
    that actually landed inside the stream.

    Duplication and reordering move pixel *content* between captures
    while each capture keeps its own timestamps: the decoder's noise
    evidence (already extracted per capture) moves with the content, so
    the observation list stays consistent with what a receiver
    re-observing the faulted pixels would compute.
    """
    n = len(captures)
    if len(observations) != n:
        raise ValueError(
            f"captures ({n}) and observations ({len(observations)}) misaligned"
        )
    content = list(range(n))  # content[i] = which original capture's pixels land at i

    reordered = 0
    for i, j in compiled.swaps:
        if i < n and j < n:
            content[i], content[j] = content[j], content[i]
            reordered += 2

    duplicated = 0
    for i in range(1, min(n, compiled.duplicated.size)):
        if compiled.duplicated[i]:
            content[i] = content[i - 1]
            duplicated += 1

    out_captures: list[CapturedFrame] = []
    out_observations: list[BlockObservation] = []
    dropped = 0
    for i in range(n):
        if i < compiled.dropped.size and compiled.dropped[i]:
            dropped += 1
            continue
        src = content[i]
        if src == i:
            out_captures.append(captures[i])
            out_observations.append(observations[i])
        else:
            out_captures.append(replace(captures[i], pixels=captures[src].pixels))
            out_observations.append(
                replace(
                    observations[i],
                    noise_map=observations[src].noise_map,
                    level=observations[src].level,
                )
            )
    if not out_captures:
        # The drop guard in FaultPlan.compile keeps one capture alive,
        # but swaps/duplicates cannot empty the stream either way.
        raise AssertionError("stream faults erased every capture")

    blackout = sum(
        1 for c in out_captures if compiled.in_blackout(c.mid_exposure_s)
    )
    log = InjectionLog(
        dropped_captures=dropped,
        duplicated_captures=duplicated,
        reordered_captures=reordered,
        blackout_captures=blackout,
        polarity_flips=len(compiled.flip_times_s),
        exposure_steps=len(compiled.exposure_steps),
        ambient_steps=len(compiled.ambient_steps),
    )
    return out_captures, out_observations, log
