"""Deterministic fault injection for the InFrame link.

Real screen-camera deployments drop and duplicate captures, drift off
the display clock, suffer exposure and ambient steps, get occluded, and
tear packets -- the gap between lab prototypes and the field.  This
package makes all of that *reproducible*: a :class:`FaultPlan` (parsed
from the ``--faults`` CLI grammar) compiles into per-capture decisions
before any worker runs, so the same seed injects bit-identical chaos at
any worker count.  The self-healing receiver
(:meth:`repro.core.decoder.InFrameDecoder.decide_observations_healed`)
and the degradation-aware transport policies in
:func:`repro.core.pipeline.run_transport_link` are scored against these
plans by ``benchmarks/bench_faults.py``.

See ``docs/robustness.md`` for the fault model and spec grammar.
"""

from repro.faults.inject import FaultInjectedCamera, apply_stream_faults
from repro.faults.plan import (
    FAULT_KINDS,
    CompiledFaults,
    FaultPlan,
    FaultSpec,
    FaultSpecError,
    PacketFaults,
)
from repro.faults.report import DegradationReport, InjectionLog

__all__ = [
    "FAULT_KINDS",
    "CompiledFaults",
    "DegradationReport",
    "FaultInjectedCamera",
    "FaultPlan",
    "FaultSpec",
    "FaultSpecError",
    "InjectionLog",
    "PacketFaults",
    "apply_stream_faults",
]
