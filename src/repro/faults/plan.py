"""Fault plans: a seeded, composable description of what goes wrong.

A :class:`FaultPlan` is the reproducible unit of chaos: a seed plus a
tuple of :class:`FaultSpec` entries, each naming one fault process and
its parameters.  Plans come from the ``--faults`` CLI spec grammar::

    SPEC  := fault (";" fault)*
    fault := name (":" key "=" value ("," key "=" value)*)?

for example::

    drop:p=0.10,burst=3;flip:at=0.35;exposure:at=0.55,gain=0.65;blackout:at=0.7,dur=0.5

Faults and their parameters (``at`` values are fractions of the capture
stream's duration, so a spec is scale-independent):

========== =======================================================================
name       parameters
========== =======================================================================
drop       ``p`` erased capture fraction (0.1), ``burst`` mean burst length (1)
dup        ``p`` fraction of captures delivering stale pixels (0.05)
reorder    ``p`` fraction of swap events (0.05), ``span`` swap distance (2)
flip       ``at`` onset fraction (0.5), ``frames`` slipped display frames (1).
           The default is a complementary-pair polarity flip (the camera
           clock slips one display frame); larger odd counts model a camera
           pipeline stall that also inverts the pairing
drift      ``ppm`` camera clock frequency error injected on top of the model
           camera's own drift (300)
jitter     ``std`` extra per-capture timing jitter in seconds (2e-3)
exposure   ``at`` onset (0.5), ``gain`` multiplicative exposure step (0.7)
ambient    ``at`` onset (0.5), ``add`` ambient pedestal step in counts (25)
blackout   ``at`` onset (0.5), ``dur`` occlusion length in seconds (0.5)
corrupt    ``p`` per-packet byte-corruption probability (0.05)
truncate   ``p`` per-packet truncation probability (0.02)
========== =======================================================================

Determinism contract
--------------------
Everything random about a plan is derived from ``(plan.seed, fault
kind, capture index)`` through spawn-keyed :class:`numpy.random.SeedSequence`
streams, and every per-capture decision is *compiled* in the parent
process before any worker runs (:meth:`FaultPlan.compile`).  The same
plan therefore injects bit-identical faults at ``workers=1`` and
``workers=N`` -- the property ``tests/test_faults.py`` asserts.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.runtime.scheduler import spawn_rng

#: Known fault kinds and their (parameter, default) tables.
FAULT_KINDS: dict[str, dict[str, float]] = {
    "drop": {"p": 0.10, "burst": 1.0},
    "dup": {"p": 0.05},
    "reorder": {"p": 0.05, "span": 2.0},
    "flip": {"at": 0.5, "frames": 1.0},
    "drift": {"ppm": 300.0},
    "jitter": {"std": 2e-3},
    "exposure": {"at": 0.5, "gain": 0.7},
    "ambient": {"at": 0.5, "add": 25.0},
    "blackout": {"at": 0.5, "dur": 0.5},
    "corrupt": {"p": 0.05},
    "truncate": {"p": 0.02},
}

#: Spawn-key namespaces, one per randomised fault process.
_KEY_DROP = 0xD509
_KEY_DUP = 0xD0B1
_KEY_REORDER = 0x5EA9
_KEY_JITTER = 0x4177
_KEY_PACKET = 0xBAD5

#: Luminance counts an occluder (hand, passer-by) presents to the sensor.
_OCCLUDER_LEVEL = 24.0


class FaultSpecError(ValueError):
    """Raised when a ``--faults`` spec string cannot be parsed."""


@dataclass(frozen=True)
class FaultSpec:
    """One named fault process with its parameter overrides."""

    kind: str
    params: tuple[tuple[str, float], ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise FaultSpecError(
                f"unknown fault {self.kind!r} (known: {', '.join(sorted(FAULT_KINDS))})"
            )
        known = FAULT_KINDS[self.kind]
        for key, _ in self.params:
            if key not in known:
                raise FaultSpecError(
                    f"fault {self.kind!r} has no parameter {key!r} "
                    f"(known: {', '.join(sorted(known))})"
                )

    def __getitem__(self, key: str) -> float:
        for name, value in self.params:
            if name == key:
                return value
        return FAULT_KINDS[self.kind][key]

    def spec(self) -> str:
        """The spec-grammar form of this fault."""
        if not self.params:
            return self.kind
        body = ",".join(f"{k}={v:g}" for k, v in self.params)
        return f"{self.kind}:{body}"


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, ordered collection of fault processes.

    Attributes
    ----------
    seed:
        Root of every random draw the plan makes; two runs sharing a
        plan (seed and faults) are perturbed bit-identically.
    faults:
        The fault processes, applied in order.
    """

    seed: int = 0
    faults: tuple[FaultSpec, ...] = ()

    @staticmethod
    def parse(spec: str, seed: int = 0) -> "FaultPlan":
        """Parse the ``--faults`` grammar into a plan.

        Raises :class:`FaultSpecError` on unknown faults or parameters,
        malformed ``key=value`` pairs, or non-numeric values.
        """
        faults: list[FaultSpec] = []
        for part in spec.split(";"):
            part = part.strip()
            if not part:
                continue
            name, _, body = part.partition(":")
            name = name.strip()
            params: list[tuple[str, float]] = []
            if body.strip():
                for pair in body.split(","):
                    key, eq, value = pair.partition("=")
                    if not eq:
                        raise FaultSpecError(
                            f"malformed parameter {pair!r} in fault {name!r} "
                            "(expected key=value)"
                        )
                    try:
                        params.append((key.strip(), float(value)))
                    except ValueError as exc:
                        raise FaultSpecError(
                            f"non-numeric value {value!r} for {name}.{key.strip()}"
                        ) from exc
            faults.append(FaultSpec(kind=name, params=tuple(params)))
        if not faults:
            raise FaultSpecError("fault spec is empty")
        return FaultPlan(seed=seed, faults=tuple(faults))

    def spec(self) -> str:
        """The round-trippable spec string of this plan."""
        return ";".join(f.spec() for f in self.faults)

    def by_kind(self, kind: str) -> tuple[FaultSpec, ...]:
        """Every fault of one kind, in plan order."""
        return tuple(f for f in self.faults if f.kind == kind)

    def for_round(self, round_index: int) -> "FaultPlan":
        """The plan for one transport round (derived seed, same faults).

        Rounds must not repeat each other's random draws -- a drop
        pattern that recurs identically every round would starve the
        same packets forever -- so each round re-seeds the random fault
        processes while the deterministic ones (steps, flips, blackout
        windows) stay put.
        """
        if round_index <= 1:
            return self
        return replace(self, seed=self.seed + 0x9E3779B1 * (round_index - 1))

    def for_receiver(self, receiver_index: int) -> "FaultPlan":
        """The plan for one broadcast receiver (derived seed, same faults).

        A cohort-level plan describes what *kind* of trouble its members
        share -- the same drop rate, the same occlusion window -- but two
        cameras in a crowd do not lose the same frames.  Each receiver
        therefore draws from its own seed stream while the plan's
        deterministic structure stays put, mirroring :meth:`for_round`'s
        contract for transport rounds.
        """
        if receiver_index <= 0:
            return self
        return replace(self, seed=self.seed + 0x85EBCA6B * receiver_index)

    def packet_faults(self) -> "PacketFaults":
        """The transport-side slice of the plan (corrupt/truncate only).

        Packet corruption keys its draws on ``(seed, round, position)``
        directly, so the transport layer can apply it without compiling
        per-capture tables it does not need.
        """
        return PacketFaults(
            seed=self.seed,
            corrupt_p=max((f["p"] for f in self.by_kind("corrupt")), default=0.0),
            truncate_p=max((f["p"] for f in self.by_kind("truncate")), default=0.0),
        )

    def compile(
        self,
        n_captures: int,
        fps: float,
        duration_s: float,
        refresh_hz: float,
        origin_s: float = 0.0,
    ) -> "CompiledFaults":
        """Pre-draw every per-capture decision for one run.

        Parameters
        ----------
        n_captures:
            Camera frames the run will take.
        fps:
            Nominal camera frame rate (positions ``at`` fractions).
        duration_s:
            Duration in seconds the ``at`` fractions span (the display
            stream for a from-the-start link; the receiver's own watch
            window for a mid-stream broadcast joiner).
        refresh_hz:
            Display refresh rate; a polarity ``flip`` slips the camera
            clock by exactly one display frame (half a complementary
            pair).
        origin_s:
            Display-clock time of the first capture.  A link run starts
            at zero; a broadcast receiver joining mid-carousel compiles
            with its join time here so onsets and blackout windows land
            inside the window it actually watches (the pixel hooks
            compare against absolute ``mid_exposure_s`` timestamps).
        """
        if n_captures < 1:
            raise ValueError(f"n_captures must be >= 1, got {n_captures}")
        nominal_mid = origin_s + (np.arange(n_captures) + 0.5) / fps

        time_offset = np.zeros(n_captures, dtype=np.float64)
        for fault in self.by_kind("drift"):
            time_offset += (nominal_mid - origin_s) * (fault["ppm"] * 1e-6)
        slip_s = 1.0 / refresh_hz
        flip_times: list[float] = []
        for fault in self.by_kind("flip"):
            onset = origin_s + fault["at"] * duration_s
            flip_times.append(onset)
            time_offset[nominal_mid >= onset] += slip_s * max(fault["frames"], 1.0)
        for fault in self.by_kind("jitter"):
            std = fault["std"]
            if std > 0.0:
                jitter = np.array(
                    [
                        float(spawn_rng(self.seed, _KEY_JITTER, i).normal(0.0, std))
                        for i in range(n_captures)
                    ]
                )
                time_offset += jitter

        dropped = np.zeros(n_captures, dtype=bool)
        for fault in self.by_kind("drop"):
            p, burst = fault["p"], max(fault["burst"], 1.0)
            rng = spawn_rng(self.seed, _KEY_DROP)
            start_p = min(p / burst, 1.0)
            i = 0
            while i < n_captures:
                if rng.random() < start_p:
                    length = 1 if burst <= 1.0 else int(rng.geometric(1.0 / burst))
                    dropped[i : i + length] = True
                    i += length
                else:
                    i += 1
        # Never erase the entire stream: the link needs one capture to
        # bound its scoring window.
        if dropped.all():
            dropped[0] = False

        duplicated = np.zeros(n_captures, dtype=bool)
        for fault in self.by_kind("dup"):
            rng = spawn_rng(self.seed, _KEY_DUP)
            duplicated |= rng.random(n_captures) < fault["p"]
        duplicated[0] = False  # nothing earlier to go stale from

        swaps: list[tuple[int, int]] = []
        for fault in self.by_kind("reorder"):
            rng = spawn_rng(self.seed, _KEY_REORDER)
            span = max(int(fault["span"]), 1)
            for i in range(n_captures - 1):
                if rng.random() < fault["p"]:
                    j = min(i + 1 + int(rng.integers(0, span)), n_captures - 1)
                    if j > i:
                        swaps.append((i, j))

        exposure_steps = tuple(
            (origin_s + f["at"] * duration_s, f["gain"]) for f in self.by_kind("exposure")
        )
        ambient_steps = tuple(
            (origin_s + f["at"] * duration_s, f["add"]) for f in self.by_kind("ambient")
        )
        blackouts = tuple(
            (origin_s + f["at"] * duration_s, origin_s + f["at"] * duration_s + f["dur"])
            for f in self.by_kind("blackout")
        )

        corrupt_p = max((f["p"] for f in self.by_kind("corrupt")), default=0.0)
        truncate_p = max((f["p"] for f in self.by_kind("truncate")), default=0.0)

        return CompiledFaults(
            seed=self.seed,
            n_captures=n_captures,
            time_offset_s=time_offset,
            dropped=dropped,
            duplicated=duplicated,
            swaps=tuple(swaps),
            flip_times_s=tuple(flip_times),
            exposure_steps=exposure_steps,
            ambient_steps=ambient_steps,
            blackouts=blackouts,
            corrupt_p=corrupt_p,
            truncate_p=truncate_p,
        )


@dataclass(frozen=True)
class CompiledFaults:
    """Every fault decision for one run, pre-drawn in the parent.

    Workers index into these tables; nothing is drawn worker-side, so
    chunk scheduling cannot change what gets injected.
    """

    seed: int
    n_captures: int
    time_offset_s: np.ndarray
    dropped: np.ndarray
    duplicated: np.ndarray
    swaps: tuple[tuple[int, int], ...]
    flip_times_s: tuple[float, ...]
    exposure_steps: tuple[tuple[float, float], ...]
    ambient_steps: tuple[tuple[float, float], ...]
    blackouts: tuple[tuple[float, float], ...]
    corrupt_p: float
    truncate_p: float

    # ------------------------------------------------------------------
    # Worker-side hooks (pure functions of precompiled state)
    # ------------------------------------------------------------------
    def capture_time_offset(self, index: int) -> float:
        """True-minus-reported capture time shift for capture *index*."""
        if 0 <= index < self.n_captures:
            return float(self.time_offset_s[index])
        return 0.0

    def perturb_pixels(self, index: int, mid_exposure_s: float, pixels: np.ndarray) -> np.ndarray:
        """Apply exposure/ambient steps and occlusion blackouts to one capture."""
        out = pixels
        touched = False
        for onset, gain in self.exposure_steps:
            if mid_exposure_s >= onset:
                out = out * np.float32(gain)
                touched = True
        for onset, add in self.ambient_steps:
            if mid_exposure_s >= onset:
                out = out + np.float32(add)
                touched = True
        if self.in_blackout(mid_exposure_s):
            out = np.full_like(pixels, np.float32(_OCCLUDER_LEVEL))
            return out
        if touched:
            out = np.rint(np.clip(out, 0.0, 255.0)).astype(np.float32)
        return out

    def in_blackout(self, mid_exposure_s: float) -> bool:
        """Whether a capture at this (reported) time is occluded."""
        return any(t0 <= mid_exposure_s < t1 for t0, t1 in self.blackouts)

    @property
    def perturbs_captures(self) -> bool:
        """Whether any worker-side (time or pixel) fault is active."""
        return bool(
            np.any(self.time_offset_s != 0.0)
            or self.exposure_steps
            or self.ambient_steps
            or self.blackouts
        )

    @property
    def perturbs_stream(self) -> bool:
        """Whether any parent-side stream fault is active."""
        return bool(self.dropped.any() or self.duplicated.any() or self.swaps)

    @property
    def perturbs_packets(self) -> bool:
        """Whether transport packets get corrupted or truncated."""
        return self.corrupt_p > 0.0 or self.truncate_p > 0.0

    # ------------------------------------------------------------------
    # Transport-side hook
    # ------------------------------------------------------------------
    def corrupt_packets(
        self, raws: list[bytes], round_index: int = 1
    ) -> tuple[list[bytes], int, int]:
        """Corrupt/truncate recovered packet buffers for one round.

        Returns ``(buffers, n_corrupted, n_truncated)``.  Corruption
        flips a handful of bytes (the CRCs catch it downstream);
        truncation cuts the buffer short of its declared payload.
        """
        return PacketFaults(
            seed=self.seed, corrupt_p=self.corrupt_p, truncate_p=self.truncate_p
        ).apply(raws, round_index)


@dataclass(frozen=True)
class PacketFaults:
    """The transport-side fault processes, detached from capture tables."""

    seed: int
    corrupt_p: float = 0.0
    truncate_p: float = 0.0

    @property
    def active(self) -> bool:
        """Whether any packet fault would ever fire."""
        return self.corrupt_p > 0.0 or self.truncate_p > 0.0

    def apply(
        self, raws: list[bytes], round_index: int = 1
    ) -> tuple[list[bytes], int, int]:
        """Damage one round's packet buffers; see ``corrupt_packets``."""
        if not self.active:
            return list(raws), 0, 0
        out: list[bytes] = []
        corrupted = truncated = 0
        for position, raw in enumerate(raws):
            rng = spawn_rng(self.seed, _KEY_PACKET, round_index, position)
            buf = bytearray(raw)
            if self.truncate_p > 0.0 and rng.random() < self.truncate_p and len(buf) > 4:
                buf = buf[: int(rng.integers(1, len(buf)))]
                truncated += 1
            elif self.corrupt_p > 0.0 and rng.random() < self.corrupt_p and buf:
                n_flips = max(1, int(rng.integers(1, 4)))
                for _ in range(n_flips):
                    at = int(rng.integers(0, len(buf)))
                    buf[at] ^= int(rng.integers(1, 256))
                corrupted += 1
            out.append(bytes(buf))
        return out, corrupted, truncated
