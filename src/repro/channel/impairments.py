"""Environment impairments on the screen->camera channel.

The paper's experiments run "in typical indoor office settings at the
capture distance of 50cm".  Office ambient light reflects off the panel
and adds a luminance pedestal, which costs modulation *contrast* at the
camera; this module models that pedestal plus an optional additive
Gaussian disturbance (electrical interference, compression artifacts).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._util import check_in_range


@dataclass(frozen=True)
class AmbientLight:
    """Ambient illumination reflecting off the display surface.

    Attributes
    ----------
    illuminance_lux:
        Ambient illuminance hitting the panel (office ~300-500 lux).
    panel_reflectance:
        Fraction of incident light the panel's front surface re-emits
        diffusely (matte panels ~0.02-0.06).
    """

    illuminance_lux: float = 400.0
    panel_reflectance: float = 0.04

    def __post_init__(self) -> None:
        check_in_range(self.illuminance_lux, "illuminance_lux", 0.0, 2.0e5)
        check_in_range(self.panel_reflectance, "panel_reflectance", 0.0, 1.0)

    @property
    def reflected_luminance(self) -> float:
        """Reflected luminance pedestal in cd/m^2 (lux / pi * reflectance)."""
        return self.illuminance_lux * self.panel_reflectance / np.pi


@dataclass(frozen=True)
class ChannelImpairments:
    """Everything the environment adds between panel and sensor."""

    ambient: AmbientLight = AmbientLight()
    extra_noise_std: float = 0.0

    def __post_init__(self) -> None:
        check_in_range(self.extra_noise_std, "extra_noise_std", 0.0, 64.0)

    def apply_luminance(self, luminance: np.ndarray) -> np.ndarray:
        """Add the ambient pedestal to an emitted-luminance field."""
        pedestal = np.float32(self.ambient.reflected_luminance)
        if pedestal == 0.0:
            return luminance
        return (luminance + pedestal).astype(np.float32)

    def apply_capture(
        self, pixels: np.ndarray, rng: np.random.Generator | None
    ) -> np.ndarray:
        """Add post-sensor disturbance to a captured frame."""
        if self.extra_noise_std <= 0.0 or rng is None:
            return pixels
        noise = rng.normal(0.0, self.extra_noise_std, size=pixels.shape)
        return np.clip(pixels + noise, 0.0, 255.0).astype(np.float32)
