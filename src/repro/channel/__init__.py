"""Screen->camera channel composition.

Glue between the display and camera substrates: a configured
:class:`ScreenCameraLink` bundles a panel, a camera, and environment
impairments (ambient light, extra sensor noise) and runs capture loops for
the experiment harness.
"""

from repro.channel.impairments import AmbientLight, ChannelImpairments
from repro.channel.link import LinkBudget, ScreenCameraLink

__all__ = ["ScreenCameraLink", "LinkBudget", "AmbientLight", "ChannelImpairments"]
