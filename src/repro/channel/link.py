"""The configured screen->camera link.

:class:`ScreenCameraLink` is the channel object experiments hold on to: a
panel, a camera, environment impairments, and the capture loop that feeds
the decoder.  :class:`LinkBudget` summarises the channel's small-signal
quality the way an RF engineer would -- how many capture counts one unit
of chessboard amplitude is worth, and how that compares to the sensor
noise floor.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro._util import check_positive
from repro.camera.capture import CameraModel, CapturedFrame
from repro.channel.impairments import ChannelImpairments
from repro.display.panel import DisplayPanel
from repro.display.scheduler import DisplayTimeline, FrameSource


@dataclass(frozen=True)
class LinkBudget:
    """Small-signal quality summary of a screen->camera link.

    Attributes
    ----------
    counts_per_delta:
        Capture counts produced by one pixel-value unit of chessboard
        amplitude at the operating point (before spatial filtering).
    noise_floor_counts:
        RMS capture noise in counts at the operating point.
    snr_at_delta_20:
        Amplitude SNR for the paper's delta = 20 setting.
    ambient_contrast_loss:
        Fractional contrast lost to the ambient-light pedestal.
    """

    counts_per_delta: float
    noise_floor_counts: float
    snr_at_delta_20: float
    ambient_contrast_loss: float


class ScreenCameraLink:
    """A display panel watched by a camera in a given environment.

    Parameters
    ----------
    panel:
        The transmitting display.
    camera:
        The receiving camera; if its sensor has not been calibrated, use
        :meth:`auto_exposed` to match it to the panel.
    impairments:
        Ambient light and extra capture noise.
    """

    def __init__(
        self,
        panel: DisplayPanel,
        camera: CameraModel,
        impairments: ChannelImpairments | None = None,
    ) -> None:
        self.panel = panel
        self.camera = camera
        self.impairments = impairments if impairments is not None else ChannelImpairments()

    def auto_exposed(self) -> "ScreenCameraLink":
        """A copy whose camera is auto-exposed for this panel + ambient."""
        peak = (
            self.panel.gamma_curve.peak_luminance * self.panel.brightness
            + self.impairments.ambient.reflected_luminance
        )
        return ScreenCameraLink(
            self.panel, self.camera.auto_exposed(peak), self.impairments
        )

    # ------------------------------------------------------------------
    # Capture loop
    # ------------------------------------------------------------------
    def timeline(self, source: FrameSource) -> DisplayTimeline:
        """Play *source* on this link's panel."""
        return DisplayTimeline(self.panel, source)

    def capture(
        self,
        timeline: DisplayTimeline,
        n_frames: int | None = None,
        rng: np.random.Generator | None = None,
    ) -> list[CapturedFrame]:
        """Capture the timeline with ambient light and impairments applied."""
        if n_frames is None:
            n_frames = self.camera.frames_covering(timeline)
        if n_frames < 1:
            raise ValueError("stream too short for even one camera frame")
        pedestal = self.impairments.ambient.reflected_luminance
        if pedestal > 0.0:
            timeline = _PedestalTimeline(timeline, pedestal)
        captures = self.camera.capture_sequence(timeline, n_frames, rng=rng)
        if self.impairments.extra_noise_std > 0.0:
            captures = [
                replace(c, pixels=self.impairments.apply_capture(c.pixels, rng))
                for c in captures
            ]
        return captures

    # ------------------------------------------------------------------
    # Link budget
    # ------------------------------------------------------------------
    def budget(self, operating_pixel_value: float = 127.0) -> LinkBudget:
        """Small-signal link budget at the given video operating point."""
        check_positive(operating_pixel_value, "operating_pixel_value")
        curve = self.panel.gamma_curve
        pedestal = self.impairments.ambient.reflected_luminance
        base_lum = float(curve.to_luminance(operating_pixel_value)) * self.panel.brightness
        slope = float(curve.local_slope(operating_pixel_value)) * self.panel.brightness

        sensor = self.camera.sensor
        exposure = self.camera.exposure_s
        scene = base_lum + pedestal

        def capture_level(lum: float) -> float:
            electrons = lum * sensor.sensitivity * exposure
            normalized = min(max(electrons / sensor.full_well, 0.0), 1.0)
            return 255.0 * normalized**sensor.response_gamma

        level = capture_level(scene)
        counts_per_delta = capture_level(scene + slope) - level

        electrons = scene * sensor.sensitivity * exposure
        shot = np.sqrt(max(electrons, 0.0))
        total_e = float(np.hypot(shot, sensor.read_noise_electrons))
        # Convert electron noise to counts via the response slope.
        d_counts_d_e = (
            255.0
            * sensor.response_gamma
            * (electrons / sensor.full_well) ** (sensor.response_gamma - 1.0)
            / sensor.full_well
            if 0 < electrons < sensor.full_well
            else 0.0
        )
        noise_counts = float(
            np.hypot(total_e * d_counts_d_e, self.impairments.extra_noise_std)
        )
        quantization = 1.0 / np.sqrt(12.0)
        noise_counts = float(np.hypot(noise_counts, quantization))

        snr20 = 20.0 * counts_per_delta / noise_counts if noise_counts > 0 else float("inf")
        contrast_loss = pedestal / scene if scene > 0 else 0.0
        return LinkBudget(
            counts_per_delta=float(counts_per_delta),
            noise_floor_counts=noise_counts,
            snr_at_delta_20=float(snr20),
            ambient_contrast_loss=float(contrast_loss),
        )


class _PedestalTimeline:
    """A DisplayTimeline view with an ambient luminance pedestal added."""

    def __init__(self, inner: DisplayTimeline, pedestal: float) -> None:
        self._inner = inner
        self._pedestal = np.float32(pedestal)
        self.panel = inner.panel

    @property
    def n_frames(self) -> int:
        return self._inner.n_frames

    @property
    def duration_s(self) -> float:
        return self._inner.duration_s

    def frame_average_luminance(self, index: int) -> np.ndarray:
        return self._inner.frame_average_luminance(index) + self._pedestal

    def luminance_at(self, t: float, rect=None) -> np.ndarray:
        return self._inner.luminance_at(t, rect) + self._pedestal

    def integrate(self, t0: float, t1: float, rect=None) -> np.ndarray:
        return self._inner.integrate(t0, t1, rect) + self._pedestal
