"""Temporal filtering: the flicker-fusion low-pass behaviour.

The paper's Section 2 summarises the vision literature: above CFF the
visual system acts as a linear low-pass filter and only the average
luminance is perceived.  This module scores a luminance waveform by

1. taking its one-sided amplitude spectrum (DC removed),
2. converting amplitudes to Weber contrast (amplitude / mean luminance),
3. weighting each frequency by a band-pass sensitivity that rises from
   very low frequencies, peaks around 8-16 Hz (the classic temporal CSF
   shape) and rolls off steeply around the luminance-dependent CFF,
4. summing the weighted contrast energy.

The result is a scalar "perceived flicker energy" that the score model in
:mod:`repro.hvs.flicker` maps onto the paper's 0-4 scale.
"""

from __future__ import annotations

import numpy as np

from repro._util import check_positive
from repro.hvs.cff import critical_flicker_frequency

#: Frequency (Hz) below which slow drifts stop reading as flicker.
LOW_CUTOFF_HZ = 1.0
#: Peak of the temporal contrast-sensitivity band.
PEAK_SENSITIVITY_HZ = 10.0
#: Softness (Hz) of the roll-off around CFF; smaller = steeper fusion edge.
CFF_ROLLOFF_HZ = 2.5
#: Exponent of the luminance normalisation.  1 would be pure Weber-law
#: behaviour; near and above CFF the eye is better described by absolute
#: modulation amplitude (the linear-systems regime of the de Lange curves,
#: which is also what makes Ferry-Porter hold), so flicker amplitude is
#: normalised by ``L^0.2`` with the remaining ``L^0.8`` taken at a fixed
#: 100 cd/m^2 reference to keep the measure dimensionless.
LUMINANCE_NORM_EXPONENT = 0.2
#: Reference adaptation luminance (cd/m^2) of the normalisation.
REFERENCE_LUMINANCE = 100.0


def luminance_normalizer(mean_luminance: np.ndarray | float) -> np.ndarray | float:
    """Denominator converting modulation amplitude to perceptual contrast.

    Equals the mean luminance at the 100 cd/m^2 reference (pure Weber
    there) and grows more slowly than luminance elsewhere, so the same
    pixel-value amplitude reads as *stronger* flicker on brighter content
    -- the paper's Fig. 6 (left) trend.
    """
    lum = np.maximum(np.asarray(mean_luminance, dtype=np.float64), 1e-6)
    return lum**LUMINANCE_NORM_EXPONENT * REFERENCE_LUMINANCE ** (
        1.0 - LUMINANCE_NORM_EXPONENT
    )


def flicker_spectrum(
    waveform: np.ndarray, sample_rate_hz: float
) -> tuple[np.ndarray, np.ndarray]:
    """One-sided amplitude spectrum of a luminance waveform, DC excluded.

    Returns ``(frequencies_hz, amplitudes)`` where amplitudes are in the
    waveform's units (peak amplitude of each sinusoidal component).
    """
    check_positive(sample_rate_hz, "sample_rate_hz")
    samples = np.asarray(waveform, dtype=np.float64)
    if samples.ndim != 1 or samples.size < 4:
        raise ValueError(f"waveform must be 1-D with >= 4 samples, got shape {samples.shape}")
    n = samples.size
    # A Hann window suppresses leakage from the non-integer number of
    # carrier periods in the analysis window; compensate its coherent gain.
    window = np.hanning(n)
    gain = window.sum() / n
    spectrum = np.fft.rfft((samples - samples.mean()) * window)
    amplitudes = 2.0 * np.abs(spectrum) / (n * gain)
    freqs = np.fft.rfftfreq(n, d=1.0 / sample_rate_hz)
    return freqs[1:], amplitudes[1:]


def sensitivity_weight(
    freqs_hz: np.ndarray,
    mean_luminance: float,
    cff_offset_hz: float = 0.0,
) -> np.ndarray:
    """Relative temporal contrast sensitivity at each frequency, in [0, 1].

    A band-pass approximation of the temporal CSF: a soft high-pass above
    :data:`LOW_CUTOFF_HZ`, unity in the pass band, and a logistic roll-off
    centred at the Ferry-Porter CFF for the given adaptation luminance.
    """
    freqs = np.asarray(freqs_hz, dtype=np.float64)
    cff = critical_flicker_frequency(mean_luminance, offset_hz=cff_offset_hz)
    low = freqs / (freqs + LOW_CUTOFF_HZ)
    band = np.where(
        freqs <= PEAK_SENSITIVITY_HZ,
        1.0,
        # Gentle decline from the peak toward CFF (sensitivity falls roughly
        # linearly in log-frequency between the peak and fusion).
        np.maximum(0.15, 1.0 - 0.5 * np.log2(freqs / PEAK_SENSITIVITY_HZ) * 0.35),
    )
    fusion = 1.0 / (1.0 + np.exp((freqs - cff) / CFF_ROLLOFF_HZ))
    return low * band * fusion


def perceived_flicker_energy(
    waveform: np.ndarray,
    sample_rate_hz: float,
    cff_offset_hz: float = 0.0,
    sensitivity_gain: float = 1.0,
) -> float:
    """Weighted Weber-contrast energy of a luminance waveform.

    Parameters
    ----------
    waveform:
        Region-mean luminance samples (cd/m^2), uniformly sampled.
    sample_rate_hz:
        Sampling rate of *waveform*.
    cff_offset_hz, sensitivity_gain:
        Per-subject adjustments used by the simulated user study.
    """
    samples = np.asarray(waveform, dtype=np.float64)
    mean = float(samples.mean())
    if mean <= 1e-6:
        return 0.0
    freqs, amps = flicker_spectrum(samples, sample_rate_hz)
    contrast = amps / luminance_normalizer(mean)
    weights = sensitivity_weight(freqs, mean, cff_offset_hz=cff_offset_hz)
    energy = float(np.sum((contrast * weights) ** 2))
    return energy * float(sensitivity_gain) ** 2
