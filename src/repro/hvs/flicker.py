"""Flicker scoring on the paper's 0-4 user-study scale.

The paper showed original and multiplexed videos side by side and asked 8
participants to rate flicker: 0 "no difference at all", 1 "almost
unnoticeable", 2 "merely noticeable", 3 "evident flicker", 4 "strong
flicker or artifact" (0 and 1 counting as satisfactory).

:class:`FlickerPredictor` reproduces that judgement from first principles:

1. sample region-mean luminance waveforms from the display timeline on a
   coarse spatial grid (participants report the worst artifact anywhere on
   screen, so the score uses the worst region);
2. score each waveform's steady flicker with
   :func:`repro.hvs.temporal.perceived_flicker_energy`;
3. estimate the data-modulation envelope of each waveform and score its
   transitions with :func:`repro.hvs.phantom.phantom_array_energy`;
4. map total energy to the 0-4 scale with a logistic psychometric curve.

Per-subject variation (CFF offset, sensitivity gain, response noise) is
expressed through :class:`SubjectProfile`; the simulated 8-person panel
lives in :mod:`repro.analysis.userstudy`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._util import check_positive, check_positive_int
from repro.display.scheduler import DisplayTimeline
from repro.hvs.phantom import PHANTOM_GAIN, beam_size_factor, duty_cycle_factor, phantom_array_energy
from repro.hvs.temporal import (
    luminance_normalizer,
    perceived_flicker_energy,
    sensitivity_weight,
)

#: Logistic psychometric mapping: energy at which the score crosses 2.0
#: ("merely noticeable").  Calibrated so the paper's satisfactory settings
#: (delta <= 20, tau >= 10) land below 1.
SCORE_MID_LOG10_ENERGY = -2.31
#: Slope of the psychometric curve in decades of energy.
SCORE_SLOPE_PER_DECADE = 1.36


@dataclass(frozen=True)
class SubjectProfile:
    """One (simulated) user-study participant.

    Attributes
    ----------
    cff_offset_hz:
        Individual CFF deviation from the Ferry-Porter population mean.
    sensitivity_gain:
        Multiplicative contrast-sensitivity factor (1.0 = average; the
        paper notes a designer and a video expert were "more sensitive").
    response_bias:
        Additive bias on the reported 0-4 score (rating style).
    """

    cff_offset_hz: float = 0.0
    sensitivity_gain: float = 1.0
    response_bias: float = 0.0


@dataclass(frozen=True)
class FlickerReport:
    """Outcome of scoring one stimulus."""

    score: float
    flicker_energy: float
    phantom_energy: float
    worst_region: tuple[int, int]
    region_energies: np.ndarray

    @property
    def total_energy(self) -> float:
        """Combined perceptual energy driving the score."""
        return self.flicker_energy + self.phantom_energy

    @property
    def satisfactory(self) -> bool:
        """True if the score is in the paper's satisfactory band (< 1.5)."""
        return self.score < 1.5


class FlickerPredictor:
    """Predict the paper's 0-4 flicker score for a display timeline.

    Parameters
    ----------
    grid:
        ``(rows, cols)`` of the spatial scoring grid.  The default is
        Block-scale (the paper's naive-design artifacts are *per-block*
        luminance jumps, which coarse regions would average away); a
        region the size of a coding Block subtends roughly a degree at
        the paper's viewing distance, well within foveal flicker acuity.
    oversample:
        Temporal samples per display refresh (>= 2 to resolve the LC
        response shape).
    pixel_size_px:
        Super-Pixel side used for the phantom-array beam factor.
    """

    def __init__(
        self,
        grid: tuple[int, int] = (24, 40),
        oversample: int = 4,
        pixel_size_px: int = 4,
    ) -> None:
        rows, cols = grid
        self.grid = (check_positive_int(rows, "grid rows"), check_positive_int(cols, "grid cols"))
        self.oversample = check_positive_int(oversample, "oversample")
        self.pixel_size_px = check_positive_int(pixel_size_px, "pixel_size_px")

    # ------------------------------------------------------------------
    # Waveform extraction
    # ------------------------------------------------------------------
    def region_waveforms(
        self,
        timeline: DisplayTimeline,
        duration_s: float | None = None,
    ) -> tuple[np.ndarray, float]:
        """Region-mean luminance waveforms on the scoring grid.

        Returns ``(waveforms, sample_rate_hz)`` with waveforms shaped
        ``(rows, cols, n_samples)``.
        """
        duration = timeline.duration_s if duration_s is None else float(duration_s)
        duration = min(duration, timeline.duration_s)
        check_positive(duration, "duration_s")
        sample_rate = timeline.panel.refresh_hz * self.oversample
        n_samples = max(int(round(duration * sample_rate)), 8)
        times = (np.arange(n_samples) + 0.5) / sample_rate
        rows, cols = self.grid
        waveforms = np.empty((rows, cols, n_samples), dtype=np.float64)
        for i, t in enumerate(times):
            field = timeline.luminance_at(float(t))
            waveforms[:, :, i] = self._region_means(field, rows, cols)
        return waveforms, sample_rate

    @staticmethod
    def _region_means(field: np.ndarray, rows: int, cols: int) -> np.ndarray:
        """Mean of each cell of a rows x cols partition of *field*."""
        height, width = field.shape
        usable_h = (height // rows) * rows
        usable_w = (width // cols) * cols
        cropped = field[:usable_h, :usable_w]
        return cropped.reshape(rows, usable_h // rows, cols, usable_w // cols).mean(axis=(1, 3))

    @staticmethod
    def estimate_envelope(waveform: np.ndarray, sample_rate_hz: float, carrier_hz: float) -> np.ndarray:
        """Estimate the data-modulation amplitude envelope of a waveform.

        High-passes away the video content (anything slower than the
        complementary carrier), then takes a moving RMS over one carrier
        period.  The complementary carrier is a square wave, whose RMS
        equals its amplitude, so no crest-factor correction is applied.
        """
        samples = np.asarray(waveform, dtype=np.float64)
        period = max(int(round(sample_rate_hz / carrier_hz)), 2)
        kernel = np.ones(period) / period
        baseline = np.convolve(samples, kernel, mode="same")
        carrier = samples - baseline
        return np.sqrt(np.maximum(np.convolve(carrier**2, kernel, mode="same"), 0.0))

    # ------------------------------------------------------------------
    # Scoring
    # ------------------------------------------------------------------
    def report(
        self,
        timeline: DisplayTimeline,
        duration_s: float | None = None,
        subject: SubjectProfile | None = None,
        reference: DisplayTimeline | None = None,
    ) -> FlickerReport:
        """Score a display timeline; see the module docstring for the steps.

        Parameters
        ----------
        reference:
            Optional timeline of the *original* (unmultiplexed) content.
            The paper's panel rated original and multiplexed videos side
            by side, i.e. the perceived *change*: with a reference, the
            content's own temporal activity (motion, film grain) is
            subtracted out and only the added modulation is scored.  The
            reference's mean luminance still sets the adaptation state.
        """
        waveforms, sample_rate = self.region_waveforms(timeline, duration_s)
        if reference is not None:
            ref_waveforms, ref_rate = self.region_waveforms(reference, duration_s)
            if ref_waveforms.shape != waveforms.shape or ref_rate != sample_rate:
                raise ValueError("reference timeline must match the stimulus geometry")
            ref_means = ref_waveforms.mean(axis=2, keepdims=True)
            waveforms = waveforms - ref_waveforms + ref_means
        carrier_hz = timeline.panel.refresh_hz / 2.0
        return self.report_from_waveforms(waveforms, sample_rate, carrier_hz, subject)

    def report_from_waveforms(
        self,
        waveforms: np.ndarray,
        sample_rate: float,
        carrier_hz: float,
        subject: SubjectProfile | None = None,
    ) -> FlickerReport:
        """Score pre-extracted region waveforms.

        Lets a multi-subject panel pay the (expensive) waveform extraction
        once and re-score per subject.
        """
        subject = subject or SubjectProfile()
        rows, cols = self.grid
        if waveforms.shape[:2] != (rows, cols):
            raise ValueError(
                f"waveforms grid {waveforms.shape[:2]} does not match predictor {self.grid}"
            )
        flicker = self._flicker_energies(waveforms, sample_rate, subject)
        phantom = self._phantom_energies(waveforms, sample_rate, carrier_hz, subject)
        total = flicker + phantom
        worst_flat = int(np.argmax(total))
        worst = (worst_flat // cols, worst_flat % cols)
        score = self.score_from_energy(float(total[worst])) + subject.response_bias
        return FlickerReport(
            score=float(np.clip(score, 0.0, 4.0)),
            flicker_energy=float(flicker[worst]),
            phantom_energy=float(phantom[worst]),
            worst_region=worst,
            region_energies=total,
        )

    def _flicker_energies(
        self,
        waveforms: np.ndarray,
        sample_rate: float,
        subject: SubjectProfile,
    ) -> np.ndarray:
        """Vectorised :func:`perceived_flicker_energy` over the region grid."""
        rows, cols, n = waveforms.shape
        flat = waveforms.reshape(rows * cols, n)
        means = flat.mean(axis=1, keepdims=True)
        window = np.hanning(n)
        gain = window.sum() / n
        spectrum = np.fft.rfft((flat - means) * window, axis=1)
        amplitudes = 2.0 * np.abs(spectrum[:, 1:]) / (n * gain)
        freqs = np.fft.rfftfreq(n, d=1.0 / sample_rate)[1:]
        safe_means = np.maximum(means, 1e-6)
        contrast = amplitudes / luminance_normalizer(safe_means)
        weights = np.stack(
            [
                sensitivity_weight(freqs, float(m), cff_offset_hz=subject.cff_offset_hz)
                for m in safe_means[:, 0]
            ]
        )
        energies = np.sum((contrast * weights) ** 2, axis=1)
        energies *= subject.sensitivity_gain**2
        return energies.reshape(rows, cols)

    def _phantom_energies(
        self,
        waveforms: np.ndarray,
        sample_rate: float,
        carrier_hz: float,
        subject: SubjectProfile,
    ) -> np.ndarray:
        """Vectorised :func:`phantom_array_energy` over the region grid."""
        from scipy import ndimage

        rows, cols, n = waveforms.shape
        flat = waveforms.reshape(rows * cols, n)
        period = max(int(round(sample_rate / carrier_hz)), 2)
        baseline = ndimage.uniform_filter1d(flat, size=period, axis=1, mode="nearest")
        carrier = flat - baseline
        rms = np.sqrt(
            np.maximum(
                ndimage.uniform_filter1d(carrier**2, size=period, axis=1, mode="nearest"),
                0.0,
            )
        )
        envelope = rms
        means = np.maximum(flat.mean(axis=1), 1e-6)
        weber = envelope / np.asarray(luminance_normalizer(means))[:, None]
        slope = np.diff(weber, axis=1) * sample_rate
        duration_s = n / sample_rate
        energies = np.sum(slope**2, axis=1) / sample_rate / max(duration_s, 1e-9)
        factor = beam_size_factor(self.pixel_size_px) * duty_cycle_factor(0.5)
        energies = PHANTOM_GAIN * energies * factor * subject.sensitivity_gain**2
        return energies.reshape(rows, cols)

    @staticmethod
    def score_from_energy(energy: float) -> float:
        """Map perceptual energy onto the paper's 0-4 rating scale."""
        if energy <= 0.0:
            return 0.0
        log_energy = np.log10(energy)
        return float(
            4.0
            / (1.0 + np.exp(-SCORE_SLOPE_PER_DECADE * (log_energy - SCORE_MID_LOG10_ENERGY)))
        )
