"""Human-vision-system substrate.

Replaces the paper's 8-person user study with a quantitative model of the
two perceptual phenomena the paper builds on (its Section 2):

* **flicker fusion** (:mod:`repro.hvs.temporal`, :mod:`repro.hvs.cff`) --
  above the critical flicker frequency the eye behaves as a linear low-pass
  filter and perceives only average luminance; CFF grows with luminance
  (Ferry-Porter law), which is why brighter content flickers more at a
  fixed pixel-value amplitude (paper Fig. 6, left);
* **phantom array** (:mod:`repro.hvs.phantom`) -- eye motion makes abrupt
  temporal transitions visible far above CFF; lower amplitude, larger duty
  cycle and larger beam (super-Pixel) size reduce it, which is what the
  temporal block smoothing and the choice of p exploit.

:mod:`repro.hvs.flicker` combines both into a 0-4 flicker score on the
paper's user-study scale; :mod:`repro.hvs.perception` reconstructs the
video a human perceives and scores residual artifacts.
"""

from repro.hvs.cff import critical_flicker_frequency
from repro.hvs.flicker import FlickerPredictor, FlickerReport, SubjectProfile
from repro.hvs.perception import perceived_frame, perception_artifacts
from repro.hvs.phantom import phantom_array_energy
from repro.hvs.temporal import flicker_spectrum, perceived_flicker_energy, sensitivity_weight

__all__ = [
    "critical_flicker_frequency",
    "flicker_spectrum",
    "sensitivity_weight",
    "perceived_flicker_energy",
    "phantom_array_energy",
    "FlickerPredictor",
    "FlickerReport",
    "SubjectProfile",
    "perceived_frame",
    "perception_artifacts",
]
