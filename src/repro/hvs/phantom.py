"""Phantom-array visibility.

The phantom array effect (paper Section 2) makes temporal transitions
visible during eye movements even when the steady carrier is far above
CFF.  The cited studies find that lower flicker amplitude, larger duty
cycle and larger beam size all reduce visibility; InFrame responds with
(a) the smoothing envelope, which removes abrupt envelope edges, and
(b) super Pixels of side ``p`` chosen near the eye's resolution limit.

The model scores the *envelope* of the data modulation: during a saccade a
temporal luminance step of Weber amplitude ``c`` lasting ``dt`` smears into
a visible spatial edge, so visibility grows with the squared temporal
derivative of the envelope.  Beam size enters as a resolution factor that
falls once a super Pixel subtends more than about one arcminute.
"""

from __future__ import annotations

import numpy as np

from repro._util import check_positive

#: Arcminutes subtended by one display pixel at 1.2x-diagonal viewing
#: distance for a 24" 1080p panel (the paper's geometry).
_ARCMIN_PER_PIXEL_REFERENCE = 1.28

#: Saccade-speed scaling constant: converts squared Weber-slope energy
#: into the same units as the steady flicker energy.
PHANTOM_GAIN = 2.2e-7


def beam_size_factor(pixel_size_px: int, arcmin_per_pixel: float = _ARCMIN_PER_PIXEL_REFERENCE) -> float:
    """Visibility multiplier for a super Pixel of side *pixel_size_px*.

    Close to 1 when the beam is below the eye's resolution (small
    arcminute extent) and decaying once the beam is comfortably resolvable
    -- the paper's user-study finding that ``p = 4`` is a good choice at
    typical viewing distance corresponds to the knee of this curve.
    """
    check_positive(pixel_size_px, "pixel_size_px")
    extent_arcmin = pixel_size_px * arcmin_per_pixel
    # Visibility rolls off once the beam exceeds ~4 arcmin.
    return float(1.0 / (1.0 + (extent_arcmin / 4.0) ** 2))


def duty_cycle_factor(duty_cycle: float) -> float:
    """Visibility multiplier for the modulation duty cycle in (0, 1].

    Larger duty cycles (light on for most of the cycle) produce fainter
    phantom arrays; the complementary-frame carrier has duty cycle 0.5.
    """
    if not (0.0 < duty_cycle <= 1.0):
        raise ValueError(f"duty_cycle must be in (0, 1], got {duty_cycle}")
    return float(1.0 - 0.65 * duty_cycle)


def phantom_array_energy(
    envelope_luminance: np.ndarray,
    sample_rate_hz: float,
    mean_luminance: float,
    pixel_size_px: int = 4,
    duty_cycle: float = 0.5,
    sensitivity_gain: float = 1.0,
) -> float:
    """Phantom-array energy of a data-modulation envelope.

    Parameters
    ----------
    envelope_luminance:
        The modulation-amplitude envelope in luminance units (cd/m^2),
        uniformly sampled -- *not* the signed carrier; transitions between
        data frames are what this effect sees.
    sample_rate_hz:
        Sampling rate of the envelope.
    mean_luminance:
        Adaptation luminance used for Weber normalisation.
    pixel_size_px:
        Super-Pixel side in display pixels (the "beam size").
    duty_cycle:
        Fraction of each cycle the modulated state is held.
    """
    check_positive(sample_rate_hz, "sample_rate_hz")
    check_positive(mean_luminance, "mean_luminance")
    from repro.hvs.temporal import luminance_normalizer

    env = np.asarray(envelope_luminance, dtype=np.float64)
    if env.ndim != 1 or env.size < 2:
        raise ValueError(f"envelope must be 1-D with >= 2 samples, got shape {env.shape}")
    weber = env / float(luminance_normalizer(mean_luminance))
    slope = np.diff(weber) * sample_rate_hz
    duration_s = env.size / sample_rate_hz
    energy = float(np.sum(slope**2)) / sample_rate_hz / max(duration_s, 1e-9)
    factor = beam_size_factor(pixel_size_px) * duty_cycle_factor(duty_cycle)
    return PHANTOM_GAIN * energy * factor * float(sensitivity_gain) ** 2
