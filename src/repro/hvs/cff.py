"""Critical flicker frequency (CFF).

The paper cites the classic vision literature: CFF is 40-50 Hz in typical
scenarios, and depends on luminance.  The dependence is the Ferry-Porter
law: CFF grows linearly with the logarithm of luminance.  The default
coefficients put CFF at ~46 Hz for 100 cd/m^2 office-bright content and
~36 Hz at 10 cd/m^2, inside the ranges the cited studies report.
"""

from __future__ import annotations

import numpy as np

#: Ferry-Porter slope in Hz per decade of luminance.
FERRY_PORTER_SLOPE_HZ = 9.6
#: Ferry-Porter intercept in Hz at 1 cd/m^2.
FERRY_PORTER_INTERCEPT_HZ = 26.6
#: Physiological clamp range for CFF in Hz.
CFF_RANGE_HZ = (12.0, 90.0)


def critical_flicker_frequency(
    luminance: np.ndarray | float,
    offset_hz: float = 0.0,
) -> np.ndarray | float:
    """CFF in Hz at the given adaptation luminance (cd/m^2).

    Parameters
    ----------
    luminance:
        Mean luminance of the flickering region.
    offset_hz:
        Per-subject offset; the simulated user study draws this per
        participant to model individual CFF spread.
    """
    lum = np.maximum(np.asarray(luminance, dtype=np.float64), 1e-3)
    cff = FERRY_PORTER_INTERCEPT_HZ + FERRY_PORTER_SLOPE_HZ * np.log10(lum) + offset_hz
    cff = np.clip(cff, *CFF_RANGE_HZ)
    if np.isscalar(luminance) or np.ndim(luminance) == 0:
        return float(cff)
    return cff
