"""Perceived-video reconstruction.

Reconstructs what a human actually sees while the multiplexed stream
plays: a sliding-window temporal average of the emitted light (the
flicker-fusion low-pass).  Comparing that reconstruction against the
original video quantifies residual artifacts objectively -- the
complementary-frame design predicts the two match almost exactly, while
naive designs leave large residuals.
"""

from __future__ import annotations

import numpy as np

from repro._util import check_positive
from repro.display.scheduler import DisplayTimeline

#: Integration window of the fusion low-pass, in seconds.  Two complementary
#: pairs at 120 Hz; roughly the reciprocal of CFF.
DEFAULT_FUSION_WINDOW_S = 1.0 / 30.0


def perceived_frame(
    timeline: DisplayTimeline,
    t: float,
    window_s: float = DEFAULT_FUSION_WINDOW_S,
) -> np.ndarray:
    """Luminance field perceived at time *t* (cd/m^2).

    The eye's fusion behaviour is modelled as a boxcar average over the
    preceding *window_s* seconds of emitted light.
    """
    check_positive(window_s, "window_s")
    start = max(t - window_s, 0.0)
    end = max(t, start + 1e-6)
    return timeline.integrate(start, end)


def perception_artifacts(
    timeline: DisplayTimeline,
    reference_frame: np.ndarray,
    t: float,
    window_s: float = DEFAULT_FUSION_WINDOW_S,
) -> dict[str, float]:
    """Compare the perceived field at *t* against a reference video frame.

    Parameters
    ----------
    timeline:
        The multiplexed stream being played.
    reference_frame:
        The original video frame (pixel values) the viewer should perceive.
    t:
        Evaluation instant in seconds.
    window_s:
        Fusion window.

    Returns
    -------
    dict with keys:
        ``max_error`` -- worst absolute luminance error (cd/m^2);
        ``mean_error`` -- mean absolute luminance error;
        ``max_weber`` -- worst Weber-contrast error (error / local luminance);
        ``psnr_db`` -- PSNR of the perceived field against the reference, in
        the luminance domain with the panel's peak as full scale.
    """
    perceived = perceived_frame(timeline, t, window_s)
    reference = timeline.panel.emitted_luminance(np.asarray(reference_frame, dtype=np.float32))
    if perceived.shape != reference.shape:
        raise ValueError(
            f"shape mismatch: perceived {perceived.shape} vs reference {reference.shape}"
        )
    error = np.abs(perceived.astype(np.float64) - reference.astype(np.float64))
    local = np.maximum(reference.astype(np.float64), 1e-3)
    peak = timeline.panel.gamma_curve.peak_luminance * timeline.panel.brightness
    mse = float(np.mean(error**2))
    psnr = float("inf") if mse == 0 else 10.0 * np.log10(peak**2 / mse)
    return {
        "max_error": float(error.max()),
        "mean_error": float(error.mean()),
        "max_weber": float((error / local).max()),
        "psnr_db": psnr,
    }
