"""Error-correction substrate used by the InFrame framing layer.

The paper applies "common error correction code such as RS code" inside a
Group of Blocks and leaves stronger codes as future work; this subpackage
provides that substrate built from scratch:

* :mod:`repro.ecc.galois` -- GF(2^8) arithmetic on log/antilog tables.
* :mod:`repro.ecc.reed_solomon` -- a systematic RS(n, k) codec with
  errors-and-erasures decoding (Berlekamp-Massey + Chien + Forney).
* :mod:`repro.ecc.crc` -- CRC-16/CCITT payload integrity check.
* :mod:`repro.ecc.interleaver` -- block interleaving to spread the bursty
  losses produced by the rolling-shutter bands across RS codewords.
"""

from repro.ecc.crc import crc16, crc16_verify
from repro.ecc.galois import GF256
from repro.ecc.interleaver import BlockInterleaver
from repro.ecc.reed_solomon import ReedSolomonCodec, RSDecodingError

__all__ = [
    "GF256",
    "ReedSolomonCodec",
    "RSDecodingError",
    "crc16",
    "crc16_verify",
    "BlockInterleaver",
]
