"""CRC-16/CCITT-FALSE payload integrity check.

The InFrame framing layer appends a CRC to each payload so the receiver
can distinguish "RS decoding produced the original payload" from "RS
decoding produced *a* codeword" (miscorrection), which matters at the
error rates the video-content channel produces.
"""

from __future__ import annotations

import numpy as np

_POLY = 0x1021
_INIT = 0xFFFF


def _build_table() -> np.ndarray:
    table = np.zeros(256, dtype=np.uint16)
    for byte in range(256):
        crc = byte << 8
        for _ in range(8):
            crc = ((crc << 1) ^ _POLY) if (crc & 0x8000) else (crc << 1)
            crc &= 0xFFFF
        table[byte] = crc
    return table


_TABLE = _build_table()


def crc16(data: bytes) -> int:
    """Return the CRC-16/CCITT-FALSE checksum of *data* as an int in [0, 0xFFFF]."""
    crc = _INIT
    for byte in bytes(data):
        crc = ((crc << 8) & 0xFFFF) ^ int(_TABLE[((crc >> 8) ^ byte) & 0xFF])
    return crc


def crc16_bytes(data: bytes) -> bytes:
    """Return the 2-byte big-endian CRC of *data*."""
    return crc16(data).to_bytes(2, "big")


def crc16_append(data: bytes) -> bytes:
    """Return ``data || crc16(data)``."""
    return bytes(data) + crc16_bytes(data)


def crc16_verify(data_with_crc: bytes) -> bool:
    """Check a ``payload || crc`` buffer produced by :func:`crc16_append`."""
    buf = bytes(data_with_crc)
    if len(buf) < 2:
        return False
    return crc16(buf[:-2]) == int.from_bytes(buf[-2:], "big")
