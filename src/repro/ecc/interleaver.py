"""Block interleaving.

Rolling-shutter loss is bursty: a band of adjacent rows straddles a
complementary-frame boundary and every GOB in the band is erased at once.
Interleaving RS codeword symbols across the frame converts that burst into
isolated erasures in many codewords, which is what RS handles well.
"""

from __future__ import annotations

import numpy as np

from repro._util import check_positive_int


class BlockInterleaver:
    """A (rows x cols) block interleaver over byte streams.

    Bytes are written row-major into a matrix and read out column-major;
    deinterleaving inverts the permutation.  The stream length must equal
    ``rows * cols``.

    Examples
    --------
    >>> il = BlockInterleaver(2, 3)
    >>> il.interleave(b"abcdef")
    b'adbecf'
    >>> il.deinterleave(b'adbecf')
    b'abcdef'
    """

    def __init__(self, rows: int, cols: int) -> None:
        self.rows = check_positive_int(rows, "rows")
        self.cols = check_positive_int(cols, "cols")

    @property
    def size(self) -> int:
        """Number of bytes per interleaver frame."""
        return self.rows * self.cols

    def interleave(self, data: bytes) -> bytes:
        """Permute *data* (row-major write, column-major read)."""
        buf = self._as_matrix(data)
        return buf.T.tobytes()

    def deinterleave(self, data: bytes) -> bytes:
        """Invert :meth:`interleave`."""
        arr = np.frombuffer(bytes(data), dtype=np.uint8)
        if arr.size != self.size:
            raise ValueError(f"expected {self.size} bytes, got {arr.size}")
        return arr.reshape(self.cols, self.rows).T.tobytes()

    def interleave_positions(self, positions: list[int]) -> list[int]:
        """Map pre-interleave byte indices to post-interleave indices.

        Used to translate known-bad (erased) positions through the
        permutation so the RS decoder can be told where they land.
        """
        return sorted(self._forward_index(p) for p in self._check_positions(positions))

    def deinterleave_positions(self, positions: list[int]) -> list[int]:
        """Map post-interleave byte indices back to pre-interleave indices."""
        return sorted(self._backward_index(p) for p in self._check_positions(positions))

    def _as_matrix(self, data: bytes) -> np.ndarray:
        arr = np.frombuffer(bytes(data), dtype=np.uint8)
        if arr.size != self.size:
            raise ValueError(f"expected {self.size} bytes, got {arr.size}")
        return arr.reshape(self.rows, self.cols)

    def _check_positions(self, positions: list[int]) -> list[int]:
        out = [int(p) for p in positions]
        for p in out:
            if not (0 <= p < self.size):
                raise ValueError(f"position {p} outside [0, {self.size})")
        return out

    def _forward_index(self, index: int) -> int:
        row, col = divmod(index, self.cols)
        return col * self.rows + row

    def _backward_index(self, index: int) -> int:
        col, row = divmod(index, self.rows)
        return row * self.cols + col

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BlockInterleaver(rows={self.rows}, cols={self.cols})"
