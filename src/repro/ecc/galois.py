"""GF(2^8) finite-field arithmetic.

The field is realised as polynomials over GF(2) modulo a primitive
polynomial (default ``x^8 + x^4 + x^3 + x^2 + 1`` = 0x11d, the polynomial
used by most Reed-Solomon deployments).  Multiplication and division go
through log/antilog tables, which makes the vectorised NumPy paths fast
enough for frame-rate coding.

Elements are plain Python ints (or NumPy uint8 arrays for the vectorised
helpers) in ``range(256)``.
"""

from __future__ import annotations

import numpy as np

#: Primitive polynomials of degree 8 over GF(2), as 9-bit integers.
PRIMITIVE_POLYNOMIALS_DEG8 = (
    0x11D, 0x12B, 0x12D, 0x14D, 0x15F, 0x163, 0x165, 0x169,
    0x171, 0x187, 0x18D, 0x1A9, 0x1C3, 0x1CF, 0x1E7, 0x1F5,
)


class GF256:
    """The finite field GF(2^8).

    Parameters
    ----------
    primitive_poly:
        A degree-8 primitive polynomial over GF(2), given as a 9-bit
        integer.  The generator element is always ``x`` (i.e. 2).

    Examples
    --------
    >>> gf = GF256()
    >>> gf.multiply(0x53, 0xCA)
    1
    >>> gf.inverse(0x53) == 0xCA
    True
    """

    ORDER = 256

    def __init__(self, primitive_poly: int = 0x11D) -> None:
        if not (0x100 < primitive_poly < 0x200):
            raise ValueError(
                f"primitive_poly must be a degree-8 polynomial (0x101..0x1ff), got {primitive_poly:#x}"
            )
        self.primitive_poly = int(primitive_poly)
        self._exp = np.zeros(512, dtype=np.uint8)
        self._log = np.zeros(256, dtype=np.int32)
        value = 1
        for power in range(255):
            self._exp[power] = value
            self._log[value] = power
            value <<= 1
            if value & 0x100:
                value ^= self.primitive_poly
        if value != 1:
            raise ValueError(f"{primitive_poly:#x} is not primitive over GF(2)")
        # Duplicate the exp table so that exp[a + b] needs no modular reduction
        # for a, b in [0, 254].
        self._exp[255:510] = self._exp[:255]
        self._log[0] = -1  # log(0) is undefined; poisoned value.

    # ------------------------------------------------------------------
    # Scalar operations
    # ------------------------------------------------------------------
    @staticmethod
    def add(a: int, b: int) -> int:
        """Field addition (= subtraction): bitwise XOR."""
        return (a ^ b) & 0xFF

    subtract = add

    def multiply(self, a: int, b: int) -> int:
        """Field multiplication via log tables."""
        if a == 0 or b == 0:
            return 0
        return int(self._exp[self._log[a] + self._log[b]])

    def divide(self, a: int, b: int) -> int:
        """Field division ``a / b``; raises ZeroDivisionError for b == 0."""
        if b == 0:
            raise ZeroDivisionError("division by zero in GF(256)")
        if a == 0:
            return 0
        return int(self._exp[(self._log[a] - self._log[b]) % 255])

    def inverse(self, a: int) -> int:
        """Multiplicative inverse; raises ZeroDivisionError for a == 0."""
        if a == 0:
            raise ZeroDivisionError("zero has no inverse in GF(256)")
        return int(self._exp[(255 - self._log[a]) % 255])

    def power(self, a: int, exponent: int) -> int:
        """Raise *a* to an integer *exponent* (negative allowed for a != 0)."""
        if a == 0:
            if exponent < 0:
                raise ZeroDivisionError("zero has no negative powers in GF(256)")
            return 0 if exponent else 1
        return int(self._exp[(self._log[a] * exponent) % 255])

    def exp(self, power: int) -> int:
        """Return the generator raised to *power* (alpha^power)."""
        return int(self._exp[power % 255])

    def log(self, a: int) -> int:
        """Discrete log base alpha; raises ValueError for a == 0."""
        if a == 0:
            raise ValueError("log(0) is undefined in GF(256)")
        return int(self._log[a])

    # ------------------------------------------------------------------
    # Vectorised operations (uint8 arrays)
    # ------------------------------------------------------------------
    def multiply_vec(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Element-wise field multiplication of two uint8 arrays."""
        a = np.asarray(a, dtype=np.uint8)
        b = np.asarray(b, dtype=np.uint8)
        out = self._exp[self._log[a] + self._log[b]].astype(np.uint8)
        return np.where((a == 0) | (b == 0), np.uint8(0), out)

    def scale_vec(self, a: np.ndarray, scalar: int) -> np.ndarray:
        """Multiply every element of *a* by the field scalar."""
        if scalar == 0:
            return np.zeros_like(np.asarray(a, dtype=np.uint8))
        a = np.asarray(a, dtype=np.uint8)
        shift = self._log[scalar]
        out = self._exp[self._log[a] + shift].astype(np.uint8)
        return np.where(a == 0, np.uint8(0), out)

    # ------------------------------------------------------------------
    # Polynomial operations (coefficient lists, highest degree first)
    # ------------------------------------------------------------------
    def poly_add(self, p: list[int], q: list[int]) -> list[int]:
        """Add two polynomials over the field."""
        out = [0] * max(len(p), len(q))
        out[len(out) - len(p):] = list(p)
        for i, coeff in enumerate(q):
            out[len(out) - len(q) + i] ^= coeff
        return self._trim(out)

    def poly_multiply(self, p: list[int], q: list[int]) -> list[int]:
        """Multiply two polynomials over the field."""
        out = [0] * (len(p) + len(q) - 1)
        for i, pc in enumerate(p):
            if pc == 0:
                continue
            for j, qc in enumerate(q):
                if qc:
                    out[i + j] ^= self.multiply(pc, qc)
        return self._trim(out)

    def poly_scale(self, p: list[int], scalar: int) -> list[int]:
        """Multiply a polynomial by a field scalar."""
        return [self.multiply(coeff, scalar) for coeff in p]

    def poly_eval(self, p: list[int], x: int) -> int:
        """Evaluate polynomial *p* at *x* (Horner's rule)."""
        result = 0
        for coeff in p:
            result = self.multiply(result, x) ^ coeff
        return result

    def poly_divmod(self, dividend: list[int], divisor: list[int]) -> tuple[list[int], list[int]]:
        """Return (quotient, remainder) of polynomial division."""
        divisor = self._trim(list(divisor))
        if divisor == [0]:
            raise ZeroDivisionError("polynomial division by zero")
        remainder = list(dividend)
        quotient_len = max(len(remainder) - len(divisor) + 1, 0)
        quotient = [0] * quotient_len
        lead_inv = self.inverse(divisor[0])
        for i in range(quotient_len):
            coeff = self.multiply(remainder[i], lead_inv)
            quotient[i] = coeff
            if coeff == 0:
                continue
            for j, dc in enumerate(divisor):
                remainder[i + j] ^= self.multiply(dc, coeff)
        remainder = remainder[quotient_len:] if quotient_len else remainder
        return self._trim(quotient), self._trim(remainder)

    def poly_derivative(self, p: list[int]) -> list[int]:
        """Formal derivative over GF(2^m): even-power terms vanish."""
        n = len(p)
        out = []
        for i, coeff in enumerate(p[:-1]):
            degree = n - 1 - i
            out.append(coeff if degree % 2 == 1 else 0)
        return self._trim(out) if out else [0]

    @staticmethod
    def _trim(p: list[int]) -> list[int]:
        """Remove leading zero coefficients, keeping at least one term."""
        idx = 0
        while idx < len(p) - 1 and p[idx] == 0:
            idx += 1
        return p[idx:]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"GF256(primitive_poly={self.primitive_poly:#x})"


#: A module-level default field instance, shared by the RS codec.
DEFAULT_FIELD = GF256()
