"""Systematic Reed-Solomon codec over GF(2^8) with errors-and-erasures decoding.

The InFrame receiver knows *which* GOBs were unavailable (rolling-shutter
bands, low-confidence blocks), so erasure decoding roughly doubles the
protection the parity symbols buy: an RS(n, k) code corrects ``e`` errors
and ``f`` erasures whenever ``2e + f <= n - k``.

The implementation is textbook: syndrome computation, erasure-locator
initialisation, Berlekamp-Massey for the errata locator, Chien search for
the roots, and Forney's algorithm for the magnitudes.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.ecc.galois import DEFAULT_FIELD, GF256


class RSDecodingError(ValueError):
    """Raised when a received word is beyond the code's correction radius."""


class ReedSolomonCodec:
    """A systematic RS(n, k) code over GF(2^8).

    Parameters
    ----------
    n_symbols:
        Codeword length in bytes, at most 255.
    k_symbols:
        Message length in bytes, ``1 <= k < n``.
    field:
        The GF(2^8) instance to operate in.
    first_consecutive_root:
        The power of alpha at which the generator polynomial's consecutive
        roots start (``fcr``), conventionally 0 or 1.

    Examples
    --------
    >>> codec = ReedSolomonCodec(15, 11)
    >>> word = codec.encode(bytes(range(11)))
    >>> corrupted = bytearray(word); corrupted[3] ^= 0xFF
    >>> decoded, n_fixed = codec.decode(bytes(corrupted))
    >>> decoded == bytes(range(11)), n_fixed
    (True, 1)
    """

    def __init__(
        self,
        n_symbols: int,
        k_symbols: int,
        field: GF256 | None = None,
        first_consecutive_root: int = 0,
    ) -> None:
        if not (1 <= k_symbols < n_symbols <= 255):
            raise ValueError(
                f"need 1 <= k < n <= 255, got n={n_symbols}, k={k_symbols}"
            )
        self.n = int(n_symbols)
        self.k = int(k_symbols)
        self.n_parity = self.n - self.k
        self.fcr = int(first_consecutive_root)
        self.field = field if field is not None else DEFAULT_FIELD
        self._generator = self._build_generator()

    # ------------------------------------------------------------------
    # Encoding
    # ------------------------------------------------------------------
    def _build_generator(self) -> list[int]:
        """Generator polynomial: product of (x - alpha^(fcr+i))."""
        gen = [1]
        for i in range(self.n_parity):
            gen = self.field.poly_multiply(gen, [1, self.field.exp(self.fcr + i)])
        return gen

    def encode(self, message: bytes | Sequence[int]) -> bytes:
        """Encode *message* (k bytes) into a systematic n-byte codeword.

        The codeword layout is ``message || parity``.
        """
        msg = bytes(message)
        if len(msg) != self.k:
            raise ValueError(f"message must be exactly {self.k} bytes, got {len(msg)}")
        shifted = list(msg) + [0] * self.n_parity
        _, remainder = self.field.poly_divmod(shifted, self._generator)
        parity = [0] * (self.n_parity - len(remainder)) + remainder
        if parity == [0] * (self.n_parity - 1) + [0]:
            parity = [0] * self.n_parity
        parity = parity[-self.n_parity:]
        return msg + bytes(parity)

    # ------------------------------------------------------------------
    # Decoding
    # ------------------------------------------------------------------
    def decode(
        self,
        received: bytes | Sequence[int],
        erasure_positions: Iterable[int] = (),
    ) -> tuple[bytes, int]:
        """Decode an n-byte *received* word.

        Parameters
        ----------
        received:
            The possibly corrupted codeword.
        erasure_positions:
            Byte indices (0-based from the start of the codeword) known to
            be unreliable.  Values at those positions are ignored.

        Returns
        -------
        (message, n_corrected):
            The recovered k-byte message and the number of errata fixed
            (errors plus erasures).

        Raises
        ------
        RSDecodingError:
            If the word is uncorrectable (``2*errors + erasures > n - k``
            or an internally inconsistent solution).
        """
        word = list(bytes(received))
        if len(word) != self.n:
            raise ValueError(f"received word must be {self.n} bytes, got {len(word)}")
        erasures = sorted(set(int(p) for p in erasure_positions))
        if erasures and (erasures[0] < 0 or erasures[-1] >= self.n):
            raise ValueError(f"erasure positions must be in [0, {self.n}), got {erasures}")
        if len(erasures) > self.n_parity:
            raise RSDecodingError(
                f"{len(erasures)} erasures exceed correction capacity {self.n_parity}"
            )
        for pos in erasures:
            word[pos] = 0

        syndromes = self._syndromes(word)
        if not any(syndromes):
            return bytes(word[: self.k]), 0

        # Positions are conventionally expressed as powers of alpha of the
        # term each byte multiplies: byte i multiplies x^(n-1-i).
        erasure_locs = [self.n - 1 - pos for pos in erasures]
        erasure_locator = self._erasure_locator(erasure_locs)
        forney_syndromes = self._forney_syndromes(syndromes, erasure_locs)
        error_locator = self._berlekamp_massey(forney_syndromes, len(erasures))
        error_count = len(error_locator) - 1
        if 2 * error_count + len(erasures) > self.n_parity:
            raise RSDecodingError("too many errors to correct")
        errata_locator = self.field.poly_multiply(error_locator, erasure_locator)

        positions = self._chien_search(errata_locator)
        if len(positions) != len(errata_locator) - 1:
            raise RSDecodingError("errata locator has wrong number of roots")

        magnitudes = self._forney(syndromes, errata_locator, positions)
        for loc, magnitude in zip(positions, magnitudes):
            word[self.n - 1 - loc] ^= magnitude
        if any(self._syndromes(word)):
            raise RSDecodingError("correction failed to zero the syndromes")
        return bytes(word[: self.k]), len(positions)

    def check(self, received: bytes | Sequence[int]) -> bool:
        """Return True if *received* is a valid codeword (all syndromes zero)."""
        word = list(bytes(received))
        if len(word) != self.n:
            raise ValueError(f"received word must be {self.n} bytes, got {len(word)}")
        return not any(self._syndromes(word))

    # ------------------------------------------------------------------
    # Decoder internals
    # ------------------------------------------------------------------
    def _syndromes(self, word: list[int]) -> list[int]:
        """S_i = r(alpha^(fcr+i)) for i in [0, n_parity)."""
        return [
            self.field.poly_eval(word, self.field.exp(self.fcr + i))
            for i in range(self.n_parity)
        ]

    def _erasure_locator(self, erasure_locs: list[int]) -> list[int]:
        """Product of (1 - x * alpha^loc) for the known erasure locations."""
        locator = [1]
        for loc in erasure_locs:
            # (1 + alpha^loc * x) with coefficients highest-degree-first.
            locator = self.field.poly_multiply([self.field.exp(loc), 1], locator)
        return locator

    def _forney_syndromes(self, syndromes: list[int], erasure_locs: list[int]) -> list[int]:
        """Strip the known-erasure contributions out of the syndromes.

        Each pass computes ``S'_j = alpha^loc * S_j + S_{j+1}``, which zeroes
        the term contributed by the erasure at *loc* regardless of ``fcr``.
        After all passes only the first ``n_parity - len(erasure_locs)``
        entries are meaningful.
        """
        fsynd = list(syndromes)
        for loc in erasure_locs:
            x = self.field.exp(loc)
            for j in range(len(fsynd) - 1):
                fsynd[j] = self.field.multiply(fsynd[j], x) ^ fsynd[j + 1]
            fsynd.pop()
        return fsynd

    def _berlekamp_massey(self, syndromes: list[int], n_erasures: int) -> list[int]:
        """Find the error-locator polynomial for the unknown error positions.

        Canonical Massey formulation with explicit degree tracking; operates
        on lowest-degree-first coefficients internally and returns the
        locator highest-degree-first (matching the rest of the codec).
        """
        gf = self.field
        n_steps = self.n_parity - n_erasures
        locator = [1]          # Lambda(x), lowest-degree-first
        support = [1]          # B(x), the last locator before a length change
        degree = 0             # L, current locator degree
        gap = 1                # m, steps since the last length change
        last_delta = 1         # b, discrepancy at the last length change
        for step in range(n_steps):
            delta = syndromes[step]
            for j in range(1, degree + 1):
                delta ^= gf.multiply(locator[j], syndromes[step - j])
            if delta == 0:
                gap += 1
                continue
            scale = gf.divide(delta, last_delta)
            correction = [0] * gap + gf.poly_scale(support, scale)
            updated = [0] * max(len(locator), len(correction))
            for i, coeff in enumerate(locator):
                updated[i] ^= coeff
            for i, coeff in enumerate(correction):
                updated[i] ^= coeff
            if 2 * degree <= step:
                support = list(locator)
                last_delta = delta
                degree = step + 1 - degree
                gap = 1
            else:
                gap += 1
            locator = updated
        locator = locator[: degree + 1] + [0] * max(0, degree + 1 - len(locator))
        return gf._trim(list(reversed(locator)))

    def _chien_search(self, locator: list[int]) -> list[int]:
        """Return the error locations (as powers of alpha) that zero the locator."""
        positions = []
        for loc in range(self.n):
            # A root at x = alpha^(-loc) marks an errata at position loc.
            if self.field.poly_eval(locator, self.field.exp(255 - loc)) == 0:
                positions.append(loc)
        return positions

    def _forney(
        self,
        syndromes: list[int],
        locator: list[int],
        positions: list[int],
    ) -> list[int]:
        """Compute errata magnitudes with Forney's algorithm."""
        # Errata evaluator: Omega(x) = [S(x) * Lambda(x)] mod x^n_parity.
        syndrome_poly = list(reversed(syndromes))
        product = self.field.poly_multiply(syndrome_poly, locator)
        _, evaluator = self.field.poly_divmod(product, [1] + [0] * self.n_parity)
        derivative = self.field.poly_derivative(locator)

        magnitudes = []
        for loc in positions:
            x_inv = self.field.exp(255 - loc)
            numerator = self.field.poly_eval(evaluator, x_inv)
            denominator = self.field.poly_eval(derivative, x_inv)
            if denominator == 0:
                raise RSDecodingError("Forney denominator is zero")
            magnitude = self.field.divide(numerator, denominator)
            # Adjust for fcr: magnitude *= X^(1 - fcr) where X = alpha^loc.
            magnitude = self.field.multiply(magnitude, self.field.power(self.field.exp(loc), 1 - self.fcr))
            magnitudes.append(magnitude)
        return magnitudes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ReedSolomonCodec(n={self.n}, k={self.k}, fcr={self.fcr})"
