"""Extended Hamming (8,4) SECDED code.

The paper's prototype protects each 2x2 GOB with a single XOR parity
Block (error *detection* only) and notes that "more sophisticated error
correction codes can be applied for larger GOB" as future work.  This
module supplies that upgrade: with 3x3 GOBs, 8 of the 9 Blocks carry an
extended-Hamming codeword of 4 data bits -- single-error *correction*,
double-error detection -- so a GOB with one misread Block is repaired
instead of discarded.

Bit layout (1-indexed positions, classic Hamming):

====  =======================
pos   meaning
====  =======================
1     p1 (parity of 3,5,7)
2     p2 (parity of 3,6,7)
3     d1
4     p3 (parity of 5,6,7)
5     d2
6     d3
7     d4
8     overall parity (SECDED)
====  =======================
"""

from __future__ import annotations

import numpy as np

#: Data-bit positions (0-indexed) in the 8-bit codeword.
_DATA_POSITIONS = (2, 4, 5, 6)
#: Positions checked by each of the three Hamming parities (0-indexed).
_CHECKS = ((0, 2, 4, 6), (1, 2, 5, 6), (3, 4, 5, 6))

#: Decode verdicts.
OK = "ok"
CORRECTED = "corrected"
DOUBLE_ERROR = "double_error"


def encode_hamming84(data_bits: np.ndarray) -> np.ndarray:
    """Encode 4 data bits into an extended-Hamming 8-bit codeword."""
    bits = np.asarray(data_bits, dtype=bool).ravel()
    if bits.size != 4:
        raise ValueError(f"expected 4 data bits, got {bits.size}")
    word = np.zeros(8, dtype=bool)
    word[list(_DATA_POSITIONS)] = bits
    for parity_pos, checked in zip((0, 1, 3), _CHECKS):
        word[parity_pos] = np.bitwise_xor.reduce(word[list(checked[1:])])
    word[7] = np.bitwise_xor.reduce(word[:7])
    return word


def decode_hamming84(word: np.ndarray) -> tuple[np.ndarray, str]:
    """Decode an 8-bit word; returns ``(data_bits, verdict)``.

    Verdicts: :data:`OK` (clean), :data:`CORRECTED` (single error fixed),
    :data:`DOUBLE_ERROR` (uncorrectable; data bits are best-effort).
    """
    received = np.asarray(word, dtype=bool).ravel()
    if received.size != 8:
        raise ValueError(f"expected 8 codeword bits, got {received.size}")
    word = received.copy()
    syndrome = 0
    for bit_value, checked in zip((1, 2, 4), _CHECKS):
        if np.bitwise_xor.reduce(word[list(checked)]):
            syndrome += bit_value
    overall = bool(np.bitwise_xor.reduce(word))
    if syndrome == 0 and not overall:
        return word[list(_DATA_POSITIONS)].copy(), OK
    if overall:
        # Single error (possibly in the overall parity bit itself).
        if syndrome:
            word[syndrome - 1] = ~word[syndrome - 1]
        else:
            word[7] = ~word[7]
        return word[list(_DATA_POSITIONS)].copy(), CORRECTED
    # Syndrome nonzero but overall parity even: two errors.
    return word[list(_DATA_POSITIONS)].copy(), DOUBLE_ERROR


def encode_block(nibbles: np.ndarray) -> np.ndarray:
    """Vector convenience: encode an ``(n, 4)`` array into ``(n, 8)``."""
    nibbles = np.asarray(nibbles, dtype=bool)
    if nibbles.ndim != 2 or nibbles.shape[1] != 4:
        raise ValueError(f"expected (n, 4) data bits, got {nibbles.shape}")
    return np.stack([encode_hamming84(row) for row in nibbles])
