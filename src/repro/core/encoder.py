"""Data-frame encoding (paper Section 3.3).

A Block carrying bit 1 receives the chessboard pattern at amplitude
``delta``; a Block carrying bit 0 is left untouched.  Because the
multiplexed pixel values must stay inside [0, 255], the amplitude is
locally limited by the video content's headroom -- the paper "locally
adjust[s] the amplitude for corresponding Blocks in two subsequent
complementary frames", i.e. the + and - frames use the *same* reduced
amplitude so the pair stays complementary.

Two clip modes are provided:

* ``pixel`` -- each modulated pixel is limited by its own headroom
  ``min(delta, v, 255 - v)``;
* ``block`` -- the whole Block uses the minimum headroom of its modulated
  pixels (a uniform chessboard per Block, closer to the paper's wording,
  at the cost of more amplitude loss on high-contrast content).

Two extensions beyond the paper (enabled via the config):

* **gamma compensation** -- pixel-value complementarity fuses slightly
  *bright* on a gamma display (convexity: ``L(v+M)+L(v-M) > 2 L(v)``).
  When enabled, both frames of a pair are shifted by the second-order
  correction ``c = -curvature(v) * M^2 / (2 * slope(v))`` at modulated
  pixels, making the fused *luminance* match the plain video.
* **adaptive amplitude** -- Blocks whose content is already textured can
  carry more amplitude without becoming visible (spatial masking); the
  per-Block delta grows with the content's own high-frequency level, up
  to ``adaptive_amplitude_max``.
"""

from __future__ import annotations

import numpy as np
from scipy import ndimage

from repro._util import check_frame
from repro.core.config import InFrameConfig
from repro.core.geometry import FrameGeometry
from repro.core.patterns import pattern_field
from repro.core.smoothing import SmoothingWaveform
from repro.display.gamma import GammaCurve


class DataFrameEncoder:
    """Turns Block bit grids into per-pixel modulation fields.

    Parameters
    ----------
    config:
        The InFrame configuration.
    geometry:
        Grid placement for the target frame size.
    gamma_curve:
        The target display's transfer curve; only consulted when
        ``config.gamma_compensation`` is on.
    """

    def __init__(
        self,
        config: InFrameConfig,
        geometry: FrameGeometry,
        gamma_curve: GammaCurve | None = None,
    ) -> None:
        if geometry.config is not config:
            # Allow equal configs from different objects, but insist they match.
            if geometry.config != config:
                raise ValueError("geometry was built for a different config")
        self.config = config
        self.geometry = geometry
        self.gamma_curve = gamma_curve if gamma_curve is not None else GammaCurve()
        self.pattern = pattern_field(config, geometry)
        self.waveform = SmoothingWaveform(config.tau, config.waveform)
        self._texture_cache: tuple[int, np.ndarray] | None = None

    # ------------------------------------------------------------------
    # Static data frames (paper Fig. 4 uses these directly)
    # ------------------------------------------------------------------
    def data_frame(self, bits: np.ndarray) -> np.ndarray:
        """The raw data frame D for a bit grid: delta * chessboard on 1-Blocks.

        This is the unclipped, un-smoothed D of the paper's formulation
        ``V +/- D``; values are in [0, delta].
        """
        bit_field = self.geometry.expand_block_grid(np.asarray(bits, dtype=bool))
        return (self.pattern * bit_field * np.float32(self.config.amplitude)).astype(np.float32)

    # ------------------------------------------------------------------
    # Smoothed, clip-aware modulation
    # ------------------------------------------------------------------
    def envelope_grid(
        self,
        bits_now: np.ndarray,
        bits_next: np.ndarray,
        step: int,
    ) -> np.ndarray:
        """Per-Block envelope (0..1) at displayed-frame *step* of the cycle.

        Invariant Blocks (1->1 or 0->0) keep a constant envelope, exactly as
        the paper specifies; only switching Blocks ride the Omega ramps.
        """
        current_factor, next_factor = self.waveform.factors(step)
        now = np.asarray(bits_now, dtype=np.float32)
        nxt = np.asarray(bits_next, dtype=np.float32)
        steady = now * nxt
        falling = now * (1.0 - nxt) * np.float32(current_factor)
        rising = (1.0 - now) * nxt * np.float32(next_factor)
        return steady + falling + rising

    def modulation_field(
        self,
        video_frame: np.ndarray,
        bits_now: np.ndarray,
        bits_next: np.ndarray | None = None,
        step: int = 0,
    ) -> np.ndarray:
        """Unsigned modulation amplitude per pixel, pattern and clip applied.

        The multiplexed pair is ``clip(V + M), clip(V - M)`` -- with the
        headroom limit applied the clip never actually truncates, which is
        what keeps the pair exactly complementary.
        """
        video = check_frame(video_frame, "video_frame")
        if video.shape[:2] != (self.geometry.frame_height, self.geometry.frame_width):
            raise ValueError(
                f"video frame {video.shape} does not match geometry "
                f"{(self.geometry.frame_height, self.geometry.frame_width)}"
            )
        if bits_next is None:
            bits_next = bits_now
        envelope = self.envelope_grid(bits_now, bits_next, step)
        envelope_field = self.geometry.expand_block_grid(envelope)
        if self.config.adaptive_amplitude:
            delta_field = self.geometry.expand_block_grid(self._adaptive_delta(video))
            amplitude = envelope_field * delta_field
        else:
            amplitude = envelope_field * np.float32(self.config.amplitude)
        headroom = self._headroom(video)
        return (np.minimum(amplitude, headroom) * self.pattern).astype(np.float32)

    def multiplexed_pair(
        self,
        video_frame: np.ndarray,
        bits_now: np.ndarray,
        bits_next: np.ndarray | None = None,
        step: int = 0,
    ) -> tuple[np.ndarray, np.ndarray]:
        """The complementary pair ``(V + M, V - M)`` for one iteration.

        With gamma compensation on, the pair is ``(V + c + M, V + c - M)``
        where ``c`` cancels the fused-luminance brightening.  RGB frames
        receive the same modulation on every channel (a gray chessboard),
        which is how the paper's prototype treats colour content.
        """
        video = check_frame(video_frame, "video_frame")
        modulation = self.modulation_field(video, bits_now, bits_next, step)
        offset = modulation + self.compensation_field(video, modulation)
        negative = -modulation + self.compensation_field(video, modulation)
        if video.ndim == 3:
            offset = offset[..., None]
            negative = negative[..., None]
        plus = np.clip(video + offset, 0.0, 255.0).astype(np.float32)
        minus = np.clip(video + negative, 0.0, 255.0).astype(np.float32)
        return plus, minus

    def compensation_field(
        self, video: np.ndarray, modulation: np.ndarray
    ) -> np.ndarray:
        """The per-pixel luminance-complementarity correction ``c``.

        Zero everywhere when ``config.gamma_compensation`` is off, and at
        unmodulated pixels always.  The correction is the second-order
        term of the gamma expansion and is kept within the remaining
        pixel-value headroom.
        """
        flat = video.mean(axis=2) if video.ndim == 3 else video
        if not self.config.gamma_compensation:
            return np.zeros_like(flat)
        slope = np.maximum(self.gamma_curve.local_slope(flat), 1e-6)
        curvature = self.gamma_curve.local_curvature(flat)
        correction = -(curvature * modulation**2) / (2.0 * slope)
        # Stay inside [0, 255] after the +/- modulation is applied (for RGB
        # the binding channel is the darkest/brightest one).
        low_base = video.min(axis=2) if video.ndim == 3 else video
        high_base = video.max(axis=2) if video.ndim == 3 else video
        low = -(low_base - modulation)
        high = 255.0 - (high_base + modulation)
        return np.clip(correction, np.minimum(low, 0.0), np.maximum(high, 0.0)).astype(
            np.float32
        )

    def _adaptive_delta(self, video: np.ndarray) -> np.ndarray:
        """Per-Block amplitude raised where content texture masks it."""
        cached = self._texture_cache
        if cached is not None and cached[0] == id(video):
            return cached[1]
        rows, cols = self.geometry.data_area_slices()
        flat = video.mean(axis=2) if video.ndim == 3 else video
        area = flat[rows, cols]
        smooth = ndimage.uniform_filter(area, size=3, mode="nearest")
        texture = np.abs(area - smooth)
        side = self.config.block_side_px
        tiled = texture.reshape(
            self.config.block_rows, side, self.config.block_cols, side
        )
        block_texture = tiled.mean(axis=(1, 3))
        cap = max(self.config.amplitude, self.config.adaptive_amplitude_max)
        delta = np.minimum(
            np.float32(self.config.amplitude) + block_texture.astype(np.float32),
            np.float32(cap),
        )
        self._texture_cache = (id(video), delta)
        return delta

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _headroom(self, video: np.ndarray) -> np.ndarray:
        """Largest symmetric amplitude each pixel (or Block) can carry.

        For RGB content the binding constraint is the channel closest to
        either end of the range, since the gray chessboard moves all
        channels together.
        """
        if video.ndim == 3:
            per_pixel = np.minimum(video.min(axis=2), 255.0 - video.max(axis=2)).astype(
                np.float32
            )
        else:
            per_pixel = np.minimum(video, 255.0 - video).astype(np.float32)
        if self.config.clip_mode == "pixel":
            return per_pixel
        # Block mode: the minimum headroom of the Block's *modulated* pixels.
        rows, cols = self.geometry.data_area_slices()
        area = per_pixel[rows, cols]
        area_pattern = self.pattern[rows, cols]
        side = self.config.block_side_px
        h_blocks = self.config.block_rows
        w_blocks = self.config.block_cols
        # Mask out unmodulated pixels with +inf so they never bind.
        masked = np.where(area_pattern > 0, area, np.float32(np.inf))
        tiled = masked.reshape(h_blocks, side, w_blocks, side)
        block_min = tiled.min(axis=(1, 3))
        block_min = np.where(np.isfinite(block_min), block_min, 0.0).astype(np.float32)
        field = np.zeros_like(per_pixel)
        field[rows, cols] = np.kron(block_min, np.ones((side, side), dtype=np.float32))
        return field
