"""GOB coding (paper Section 3.3 and its "larger GOB" future work).

Two per-GOB codes:

* ``xor`` (the prototype): ``m x m`` Blocks, the last Block is the XOR of
  the other ``m^2 - 1`` -- single-error *detection*;
* ``hamming84`` (the future-work upgrade): 3x3 Blocks, the first 8 carry
  an extended-Hamming(8,4) codeword of 4 data bits, the 9th is held at 0
  -- single-error *correction*, double-error detection, so a GOB with one
  misread Block is repaired instead of discarded.

The code is selected by ``InFrameConfig.gob_code``.
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

from repro.core.config import InFrameConfig
from repro.ecc.hamming import DOUBLE_ERROR, decode_hamming84, encode_hamming84


def data_bits_to_grid(data_bits: np.ndarray, config: InFrameConfig) -> np.ndarray:
    """Lay out a flat data-bit vector onto the Block grid with GOB coding.

    Bits are consumed GOB by GOB in row-major order; within a GOB they
    fill the code's data positions and the redundancy Blocks are computed.

    Parameters
    ----------
    data_bits:
        Boolean vector of exactly ``config.bits_per_frame`` bits.
    """
    bits = np.asarray(data_bits, dtype=bool).ravel()
    if bits.size != config.bits_per_frame:
        raise ValueError(
            f"expected {config.bits_per_frame} data bits, got {bits.size}"
        )
    m = config.gob_size
    grid = np.zeros((config.block_rows, config.block_cols), dtype=bool)
    per_gob = config.bits_per_gob
    index = 0
    for gob_row in range(config.gob_rows):
        for gob_col in range(config.gob_cols):
            gob_bits = bits[index : index + per_gob]
            index += per_gob
            cell = _encode_gob(gob_bits, config).reshape(m, m)
            grid[gob_row * m : (gob_row + 1) * m, gob_col * m : (gob_col + 1) * m] = cell
    return grid


def grid_to_data_bits(grid: np.ndarray, config: InFrameConfig) -> np.ndarray:
    """Inverse of :func:`data_bits_to_grid` (with correction for Hamming)."""
    grid = _check_grid(grid, config)
    out = np.empty(config.bits_per_frame, dtype=bool)
    index = 0
    for cell in _iter_gobs(grid, config):
        data, _ = _decode_gob(cell.ravel(), config)
        out[index : index + config.bits_per_gob] = data
        index += config.bits_per_gob
    return out


def apply_parity_grid(data_grid: np.ndarray, config: InFrameConfig) -> np.ndarray:
    """Recompute every GOB's redundancy Blocks from its data Blocks.

    Takes a grid whose data positions carry bits (redundancy positions are
    ignored) and returns a copy with correct coding Blocks.
    """
    grid = _check_grid(data_grid, config).copy()
    m = config.gob_size
    for gob_row in range(config.gob_rows):
        for gob_col in range(config.gob_cols):
            cell = grid[gob_row * m : (gob_row + 1) * m, gob_col * m : (gob_col + 1) * m]
            flat = cell.ravel()
            data = _data_positions(flat, config)
            encoded = _encode_gob(data, config)
            grid[
                gob_row * m : (gob_row + 1) * m, gob_col * m : (gob_col + 1) * m
            ] = encoded.reshape(m, m)
    return grid


def check_parity_grid(grid: np.ndarray, config: InFrameConfig) -> np.ndarray:
    """Code verdict per GOB: a ``(gob_rows, gob_cols)`` boolean array.

    True means the GOB decodes cleanly (XOR parity matches; for Hamming,
    no uncorrectable double error).
    """
    grid = _check_grid(grid, config)
    ok = np.zeros((config.gob_rows, config.gob_cols), dtype=bool)
    for index, cell in enumerate(_iter_gobs(grid, config)):
        _, verdict_ok = _decode_gob(cell.ravel(), config)
        ok[index // config.gob_cols, index % config.gob_cols] = verdict_ok
    return ok


def decode_gob_grid(
    grid: np.ndarray, config: InFrameConfig
) -> tuple[np.ndarray, np.ndarray, int]:
    """Decode (and, for Hamming, repair) a received Block grid.

    Returns ``(corrected_grid, gob_ok, n_corrected)``: the grid with every
    correctable GOB rewritten to its nearest codeword, the per-GOB code
    verdict, and the number of GOBs that were repaired.
    """
    grid = _check_grid(grid, config).copy()
    m = config.gob_size
    ok = np.zeros((config.gob_rows, config.gob_cols), dtype=bool)
    n_corrected = 0
    for gob_row in range(config.gob_rows):
        for gob_col in range(config.gob_cols):
            cell = grid[gob_row * m : (gob_row + 1) * m, gob_col * m : (gob_col + 1) * m]
            flat = cell.ravel()
            data, verdict_ok = _decode_gob(flat, config)
            ok[gob_row, gob_col] = verdict_ok
            if config.gob_code == "hamming84" and verdict_ok:
                repaired = _encode_gob(data, config)
                if not np.array_equal(repaired, flat):
                    n_corrected += 1
                    grid[
                        gob_row * m : (gob_row + 1) * m,
                        gob_col * m : (gob_col + 1) * m,
                    ] = repaired.reshape(m, m)
    return grid, ok, n_corrected


# ----------------------------------------------------------------------
# Per-GOB code dispatch
# ----------------------------------------------------------------------
def _encode_gob(data_bits: np.ndarray, config: InFrameConfig) -> np.ndarray:
    """Data bits -> flat m^2 Block bits for one GOB."""
    data_bits = np.asarray(data_bits, dtype=bool).ravel()
    if data_bits.size != config.bits_per_gob:
        raise ValueError(
            f"expected {config.bits_per_gob} data bits per GOB, got {data_bits.size}"
        )
    if config.gob_code == "hamming84":
        flat = np.zeros(9, dtype=bool)
        flat[:8] = encode_hamming84(data_bits)
        return flat
    parity = bool(np.bitwise_xor.reduce(data_bits))
    return np.append(data_bits, parity)


def _decode_gob(flat: np.ndarray, config: InFrameConfig) -> tuple[np.ndarray, bool]:
    """Flat m^2 Block bits -> (data bits, decodes-cleanly flag)."""
    if config.gob_code == "hamming84":
        data, verdict = decode_hamming84(flat[:8])
        return data, verdict != DOUBLE_ERROR
    data = flat[:-1]
    ok = bool(np.bitwise_xor.reduce(data)) == bool(flat[-1])
    return data, ok


def _data_positions(flat: np.ndarray, config: InFrameConfig) -> np.ndarray:
    """The data bits as laid out by :func:`_encode_gob` (no correction)."""
    if config.gob_code == "hamming84":
        from repro.ecc.hamming import _DATA_POSITIONS

        return flat[list(_DATA_POSITIONS)]
    return flat[:-1]


def _iter_gobs(grid: np.ndarray, config: InFrameConfig) -> Iterator[np.ndarray]:
    """Yield each GOB cell of *grid*, row-major."""
    m = config.gob_size
    for gob_row in range(config.gob_rows):
        for gob_col in range(config.gob_cols):
            yield grid[gob_row * m : (gob_row + 1) * m, gob_col * m : (gob_col + 1) * m]


def _check_grid(grid: np.ndarray, config: InFrameConfig) -> np.ndarray:
    grid = np.asarray(grid, dtype=bool)
    if grid.shape != (config.block_rows, config.block_cols):
        raise ValueError(
            f"grid must be {config.block_rows}x{config.block_cols}, got {grid.shape}"
        )
    return grid
