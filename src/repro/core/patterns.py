"""Modulation patterns.

The paper keys bit 1 with a chessboard at super-Pixel granularity: Pixel
(i, j) is set to ``delta`` when ``i + j`` is odd and 0 otherwise.  The
chessboard is deliberately the *highest spatial frequency* expressible at
Pixel granularity, so it reads as "induced noise" to the decoder's
smooth-and-subtract detector regardless of the underlying video content.

Two ablation patterns are included for the benchmarks: vertical stripes
(same density, lower 2-D frequency) and a seeded random Pixel mask.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import InFrameConfig
from repro.core.geometry import FrameGeometry


def chessboard_pixel_mask(pixel_rows: int, pixel_cols: int) -> np.ndarray:
    """Chessboard over a super-Pixel grid: 1 where (i + j) is odd."""
    rows = np.arange(pixel_rows)[:, None]
    cols = np.arange(pixel_cols)[None, :]
    return ((rows + cols) % 2 == 1).astype(np.float32)


def stripes_pixel_mask(pixel_rows: int, pixel_cols: int) -> np.ndarray:
    """Vertical stripes over a super-Pixel grid: 1 where j is odd."""
    cols = np.arange(pixel_cols)[None, :]
    mask = (cols % 2 == 1).astype(np.float32)
    return np.broadcast_to(mask, (pixel_rows, pixel_cols)).copy()


def random_pixel_mask(pixel_rows: int, pixel_cols: int, seed: int = 12345) -> np.ndarray:
    """A seeded random half-density Pixel mask (ablation pattern)."""
    rng = np.random.default_rng(seed)
    return (rng.random((pixel_rows, pixel_cols)) < 0.5).astype(np.float32)


def pattern_field(config: InFrameConfig, geometry: FrameGeometry) -> np.ndarray:
    """Full-frame modulation mask in {0, 1} at device-pixel resolution.

    The mask is the selected Pixel pattern expanded so each super Pixel's
    ``p x p`` device pixels share one value; it is zero outside the data
    area.  The pattern is *global* (continuous across Block boundaries),
    matching the paper's construction.
    """
    pixel_rows = config.block_rows * config.pixels_per_block
    pixel_cols = config.block_cols * config.pixels_per_block
    if config.pattern == "chessboard":
        mask = chessboard_pixel_mask(pixel_rows, pixel_cols)
    elif config.pattern == "stripes":
        mask = stripes_pixel_mask(pixel_rows, pixel_cols)
    else:
        mask = random_pixel_mask(pixel_rows, pixel_cols)
    p = config.element_pixels
    expanded = np.kron(mask, np.ones((p, p), dtype=np.float32))
    field = np.zeros((geometry.frame_height, geometry.frame_width), dtype=np.float32)
    rows, cols = geometry.data_area_slices()
    field[rows, cols] = expanded
    return field
