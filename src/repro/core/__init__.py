"""InFrame itself: the paper's primary contribution.

The public surface:

* :class:`~repro.core.config.InFrameConfig` -- every tunable the paper
  names (p, s, m, delta, tau, waveform, threshold, clock rates);
* :class:`~repro.core.multiplexer.MultiplexedStream` -- the sender side:
  video + data -> complementary 120 Hz display stream;
* :class:`~repro.core.decoder.InFrameDecoder` -- the receiver side:
  captured frames -> induced-noise maps -> bits -> GOBs;
* :mod:`~repro.core.framing` -- payload bytes <-> data-frame bit grids,
  with CRC + Reed-Solomon + interleaving on top of the GOB parity;
* :class:`~repro.core.pipeline.InFrameSender` /
  :class:`~repro.core.pipeline.InFrameReceiver` -- the end-to-end API;
* :mod:`~repro.core.metrics` -- the quantities Figure 7 reports.
"""

from repro.core.config import InFrameConfig
from repro.core.decoder import BlockObservation, DecodedDataFrame, InFrameDecoder
from repro.core.encoder import DataFrameEncoder
from repro.core.framing import (
    FrameFormatError,
    PayloadSchedule,
    PseudoRandomSchedule,
    ZeroSchedule,
)
from repro.core.geometry import FrameGeometry
from repro.core.metrics import LinkStats, compare_bits, summarize_link
from repro.core.multiplexer import MultiplexedStream
from repro.core.parity import apply_parity_grid, check_parity_grid
from repro.core.patterns import pattern_field
from repro.core.pipeline import InFrameReceiver, InFrameSender, run_link
from repro.core.smoothing import SmoothingWaveform, envelope_pair, transition_profile

__all__ = [
    "InFrameConfig",
    "FrameGeometry",
    "DataFrameEncoder",
    "MultiplexedStream",
    "InFrameDecoder",
    "BlockObservation",
    "DecodedDataFrame",
    "PayloadSchedule",
    "PseudoRandomSchedule",
    "ZeroSchedule",
    "FrameFormatError",
    "LinkStats",
    "compare_bits",
    "summarize_link",
    "apply_parity_grid",
    "check_parity_grid",
    "pattern_field",
    "SmoothingWaveform",
    "envelope_pair",
    "transition_profile",
    "InFrameSender",
    "InFrameReceiver",
    "run_link",
]
