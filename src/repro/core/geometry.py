"""Data-frame geometry: where every Pixel, Block and GOB lives on screen.

The hierarchical structure (paper Section 3.3): ``p x p`` device pixels
form a super Pixel; ``s x s`` super Pixels form a Block (one bit);
``m x m`` Blocks form a GOB.  The Block grid is centred inside the display
frame; the surrounding margin carries no data (the paper's 30x50 Blocks at
p=4, s=9 cover 1800x1080 of a 1920x1080 panel).

The same geometry answers two questions:

* sender side: which display pixels belong to Block (r, c)?
* receiver side: which *camera* pixels belong to Block (r, c), after the
  fronto-parallel resampling to the capture resolution?
"""

from __future__ import annotations

import numpy as np

from repro._util import check_positive_int
from repro.core.config import InFrameConfig


class FrameGeometry:
    """Maps the Block/GOB grid onto display and camera pixel coordinates.

    Parameters
    ----------
    config:
        The InFrame configuration (grid and cell sizes).
    frame_height, frame_width:
        The display frame geometry the grid is centred in.
    """

    def __init__(self, config: InFrameConfig, frame_height: int, frame_width: int) -> None:
        check_positive_int(frame_height, "frame_height")
        check_positive_int(frame_width, "frame_width")
        if config.data_height_px > frame_height or config.data_width_px > frame_width:
            raise ValueError(
                f"data area {config.data_height_px}x{config.data_width_px} exceeds "
                f"frame {frame_height}x{frame_width}; reduce block grid or cell sizes"
            )
        self.config = config
        self.frame_height = int(frame_height)
        self.frame_width = int(frame_width)
        self.top = (frame_height - config.data_height_px) // 2
        self.left = (frame_width - config.data_width_px) // 2

    # ------------------------------------------------------------------
    # Display-space lookups
    # ------------------------------------------------------------------
    def block_rect(self, row: int, col: int) -> tuple[int, int, int, int]:
        """Display-pixel rect ``(row0, row1, col0, col1)`` of Block (row, col)."""
        self._check_block(row, col)
        side = self.config.block_side_px
        row0 = self.top + row * side
        col0 = self.left + col * side
        return (row0, row0 + side, col0, col0 + side)

    def block_slices(self, row: int, col: int) -> tuple[slice, slice]:
        """Display-pixel slices of Block (row, col)."""
        row0, row1, col0, col1 = self.block_rect(row, col)
        return (slice(row0, row1), slice(col0, col1))

    def data_area_slices(self) -> tuple[slice, slice]:
        """Display-pixel slices covering the whole data area."""
        return (
            slice(self.top, self.top + self.config.data_height_px),
            slice(self.left, self.left + self.config.data_width_px),
        )

    def gob_blocks(self, gob_row: int, gob_col: int) -> list[tuple[int, int]]:
        """Block coordinates belonging to GOB (gob_row, gob_col), row-major.

        The last Block in the list is the parity Block.
        """
        m = self.config.gob_size
        if not (0 <= gob_row < self.config.gob_rows and 0 <= gob_col < self.config.gob_cols):
            raise IndexError(
                f"GOB ({gob_row}, {gob_col}) outside "
                f"{self.config.gob_rows}x{self.config.gob_cols} grid"
            )
        return [(gob_row * m + i, gob_col * m + j) for i in range(m) for j in range(m)]

    def expand_block_grid(self, grid: np.ndarray) -> np.ndarray:
        """Expand a per-Block array to a full display-frame field.

        Values outside the data area are zero.  Works for bool or float
        grids; the output dtype is float32.
        """
        grid = np.asarray(grid)
        if grid.shape != (self.config.block_rows, self.config.block_cols):
            raise ValueError(
                f"grid must be {self.config.block_rows}x{self.config.block_cols}, "
                f"got {grid.shape}"
            )
        side = self.config.block_side_px
        field = np.zeros((self.frame_height, self.frame_width), dtype=np.float32)
        expanded = np.kron(grid.astype(np.float32), np.ones((side, side), dtype=np.float32))
        rows, cols = self.data_area_slices()
        field[rows, cols] = expanded
        return field

    # ------------------------------------------------------------------
    # Camera-space lookups
    # ------------------------------------------------------------------
    def camera_block_rect(
        self,
        row: int,
        col: int,
        camera_height: int,
        camera_width: int,
        inset: float = 0.2,
        screen_rect: tuple[int, int, int, int] | None = None,
    ) -> tuple[int, int, int, int]:
        """Camera-pixel rect of Block (row, col) under fronto-parallel capture.

        Parameters
        ----------
        camera_height, camera_width:
            Capture resolution.
        inset:
            Fraction of the block side trimmed from each edge before
            measuring, hiding block borders and small misalignment.
        screen_rect:
            ``(row0, row1, col0, col1)`` the display occupies within the
            capture (``CameraModel.screen_rect()``); defaults to the whole
            capture (the paper's 50 cm close-range setup).
        """
        self._check_block(row, col)
        if not (0.0 <= inset < 0.5):
            raise ValueError(f"inset must be in [0, 0.5), got {inset}")
        if screen_rect is None:
            screen_rect = (0, camera_height, 0, camera_width)
        s_row0, s_row1, s_col0, s_col1 = screen_rect
        row0, row1, col0, col1 = self.block_rect(row, col)
        sy = (s_row1 - s_row0) / self.frame_height
        sx = (s_col1 - s_col0) / self.frame_width
        pad_y = (row1 - row0) * inset
        pad_x = (col1 - col0) * inset
        cam_row0 = int(np.floor(s_row0 + (row0 + pad_y) * sy))
        cam_row1 = int(np.ceil(s_row0 + (row1 - pad_y) * sy))
        cam_col0 = int(np.floor(s_col0 + (col0 + pad_x) * sx))
        cam_col1 = int(np.ceil(s_col0 + (col1 - pad_x) * sx))
        cam_row1 = max(cam_row1, cam_row0 + 1)
        cam_col1 = max(cam_col1, cam_col0 + 1)
        return (cam_row0, min(cam_row1, camera_height), cam_col0, min(cam_col1, camera_width))

    def camera_block_index_maps(
        self,
        camera_height: int,
        camera_width: int,
        inset: float = 0.2,
        screen_rect: tuple[int, int, int, int] | None = None,
    ) -> np.ndarray:
        """Label map assigning camera pixels to Blocks.

        Returns an int32 array of shape ``(camera_height, camera_width)``
        holding ``row * block_cols + col`` for pixels inside (the inset
        core of) Block (row, col) and -1 elsewhere.  The decoder uses this
        to compute every Block statistic in one vectorised pass.
        """
        check_positive_int(camera_height, "camera_height")
        check_positive_int(camera_width, "camera_width")
        labels = np.full((camera_height, camera_width), -1, dtype=np.int32)
        for row in range(self.config.block_rows):
            for col in range(self.config.block_cols):
                r0, r1, c0, c1 = self.camera_block_rect(
                    row, col, camera_height, camera_width, inset, screen_rect
                )
                labels[r0:r1, c0:c1] = row * self.config.block_cols + col
        return labels

    def display_block_index_map(self, inset: float = 0.2) -> np.ndarray:
        """Label map in *display* coordinates (for projective receivers).

        Same convention as :meth:`camera_block_index_maps` but at display
        resolution; a perspective decoder warps this through the capture
        homography instead of scaling rectangles.
        """
        if not (0.0 <= inset < 0.5):
            raise ValueError(f"inset must be in [0, 0.5), got {inset}")
        labels = np.full((self.frame_height, self.frame_width), -1, dtype=np.int32)
        side = self.config.block_side_px
        pad = int(round(side * inset))
        for row in range(self.config.block_rows):
            for col in range(self.config.block_cols):
                r0, r1, c0, c1 = self.block_rect(row, col)
                labels[r0 + pad : r1 - pad, c0 + pad : c1 - pad] = (
                    row * self.config.block_cols + col
                )
        return labels

    def _check_block(self, row: int, col: int) -> None:
        if not (0 <= row < self.config.block_rows and 0 <= col < self.config.block_cols):
            raise IndexError(
                f"Block ({row}, {col}) outside "
                f"{self.config.block_rows}x{self.config.block_cols} grid"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FrameGeometry({self.config.block_rows}x{self.config.block_cols} blocks, "
            f"side={self.config.block_side_px}px, frame={self.frame_height}x{self.frame_width}, "
            f"origin=({self.top}, {self.left}))"
        )
