"""Temporal block smoothing (paper Section 3.2).

A data frame is held for ``tau`` displayed frames.  A Pixel whose bit is
unchanged between consecutive data frames keeps a constant envelope; a
Pixel that switches 1->0 or 0->1 ramps its amplitude across the *second
half* of the outgoing data frame's cycle, following Omega_10 (down) or
Omega_01 (up).

The paper compares three envelope shapes and adopts "half of the
square-root raised Cosine waveform":

* ``srrc``   -- Omega_10(x) = cos(pi x / 2); the constant-power crossfade
  (Omega_10^2 + Omega_01^2 = 1), smooth at both ends;
* ``linear`` -- straight ramps;
* ``stair``  -- a hard switch at mid-transition (the no-smoothing control).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def omega_10(x: np.ndarray | float, kind: str = "srrc") -> np.ndarray | float:
    """Down-ramp envelope Omega_10 over normalised transition time x in [0, 1]."""
    x = np.clip(x, 0.0, 1.0)
    if kind == "srrc":
        return np.cos(np.pi * x / 2.0)
    if kind == "linear":
        return 1.0 - x
    if kind == "stair":
        return np.where(np.asarray(x) < 0.5, 1.0, 0.0)
    raise ValueError(f"unknown waveform kind {kind!r}")


def omega_01(x: np.ndarray | float, kind: str = "srrc") -> np.ndarray | float:
    """Up-ramp envelope Omega_01 over normalised transition time x in [0, 1]."""
    x = np.clip(x, 0.0, 1.0)
    if kind == "srrc":
        return np.sin(np.pi * x / 2.0)
    if kind == "linear":
        return np.asarray(x, dtype=np.float64) + 0.0
    if kind == "stair":
        return np.where(np.asarray(x) < 0.5, 0.0, 1.0)
    raise ValueError(f"unknown waveform kind {kind!r}")


def envelope_pair(x: float, kind: str = "srrc") -> tuple[float, float]:
    """(outgoing, incoming) envelope factors at transition phase *x*."""
    return float(omega_10(x, kind)), float(omega_01(x, kind))


@dataclass(frozen=True)
class SmoothingWaveform:
    """The per-Pixel envelope schedule for one data-frame cycle.

    Parameters
    ----------
    tau:
        Cycle length in displayed frames (even).
    kind:
        Envelope shape: ``srrc``, ``linear`` or ``stair``.
    """

    tau: int
    kind: str = "srrc"

    def __post_init__(self) -> None:
        if self.tau < 2 or self.tau % 2:
            raise ValueError(f"tau must be an even integer >= 2, got {self.tau}")
        if self.kind not in ("srrc", "linear", "stair"):
            raise ValueError(f"unknown waveform kind {self.kind!r}")

    def factors(self, step: int) -> tuple[float, float]:
        """Envelope factors ``(current, next)`` at displayed-frame *step*.

        ``step`` counts displayed frames within the cycle, 0 <= step < tau.
        The envelope advances per *iteration* (complementary frame pair),
        never within a pair -- both frames of a pair must carry identical
        amplitude or the pair stops fusing to the plain video and leaks a
        baseband flicker component.  During the first half of the
        iterations the current data frame is fully active; across the
        second half the envelope crossfades toward the next data frame,
        reaching it exactly at the cycle boundary.
        """
        if not (0 <= step < self.tau):
            raise ValueError(f"step must be in [0, {self.tau}), got {step}")
        if self.tau == 2:
            return (1.0, 0.0)  # single-pair cycles switch hard at the boundary
        pair = step // 2
        n_pairs = self.tau / 2.0
        half_pairs = n_pairs / 2.0
        x = (pair + 1 - half_pairs) / half_pairs
        if x <= 0.0:
            return (1.0, 0.0)
        return envelope_pair(min(x, 1.0), self.kind)

    def stability(self, step: int) -> float:
        """How much of the *current* data frame's amplitude survives at *step*.

        The decoder weights captured frames by this factor when
        aggregating evidence for a data frame.
        """
        return self.factors(step)[0]

    def envelope_samples(self, bits: np.ndarray) -> np.ndarray:
        """Displayed-frame envelope for a Pixel bit sequence.

        Given the bit value of one Pixel across consecutive data frames,
        return the amplitude envelope (0..1) over ``tau * len(bits)``
        displayed frames.  Used by Figure 5 and the waveform tests.
        """
        bits = np.asarray(bits, dtype=np.float64)
        if bits.ndim != 1 or bits.size < 1:
            raise ValueError(f"bits must be a 1-D sequence, got shape {bits.shape}")
        samples = np.empty(self.tau * bits.size, dtype=np.float64)
        for k, bit in enumerate(bits):
            nxt = bits[k + 1] if k + 1 < bits.size else bit
            for step in range(self.tau):
                current_factor, next_factor = self.factors(step)
                if bit == nxt:
                    value = bit  # invariant Pixels hold a constant envelope
                else:
                    value = bit * current_factor + nxt * next_factor
                samples[k * self.tau + step] = value
        return samples


def transition_profile(kind: str, n_samples: int = 64) -> np.ndarray:
    """Sampled Omega_10 down-ramp for plotting/comparison (Figure 5)."""
    if n_samples < 2:
        raise ValueError(f"n_samples must be >= 2, got {n_samples}")
    x = np.linspace(0.0, 1.0, n_samples)
    return np.asarray(omega_10(x, kind), dtype=np.float64)
