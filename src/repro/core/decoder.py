"""Demultiplexing and decoding (paper Section 3.3).

The receiver works on induced noise: the chessboard is, by construction,
high-spatial-frequency content the original video is unlikely to carry.
Per captured frame and per Block:

1. smooth the Block (3x3 box filter), subtract, take ``|difference|``;
2. the Block's noise level is the mean ``|difference|`` over its core;
3. remove the frame-level mean noise (texture correction, per the paper);
4. threshold at ``T``: above = bit 1, below = bit 0.

Captured frames are grouped by the data-frame cycle they observe and
aggregated with weights from the smoothing envelope (captures taken during
a transition carry less evidence).  A Block is *decoded* when its noise
level sits decisively away from the threshold; a GOB is *available* when
all of its Blocks are decoded, and *erroneous* when its XOR parity fails
(paper Section 4's accounting).

Decoder timing: experiments run with receiver-side knowledge of the
display clock (the paper's prototype decodes captured sequences offline
the same way).  :func:`estimate_cycle_phase` recovers the data-frame phase
blindly from capture noise energies for the synchronisation ablation.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np
from scipy import ndimage

from repro._util import check_positive_int
from repro.camera.capture import CapturedFrame
from repro.camera.geometry import PerspectiveView
from repro.core.config import InFrameConfig
from repro.core.geometry import FrameGeometry
from repro.core.parity import decode_gob_grid
from repro.core.smoothing import SmoothingWaveform
from repro.obs import Telemetry


@dataclass(frozen=True)
class BlockObservation:
    """Noise evidence extracted from one captured frame.

    ``mid_exposure_s`` and ``level`` ride along so the self-healing
    decoder can re-assign an observation to a different data frame
    (pair-phase re-lock) and re-normalise its noise map (exposure-step
    correction) without touching the capture's pixels again.
    """

    data_frame_index: int
    weight: float
    contamination: float
    noise_map: np.ndarray
    capture_index: int
    mid_exposure_s: float = 0.0
    level: float = 0.0


@dataclass(frozen=True)
class DecodedDataFrame:
    """The receiver's verdict on one data frame.

    ``spread`` is the distance between the two noise clusters' means
    (the unit the confidence margin is measured in); 0.0 when the frame
    decoded degenerately with a single cluster.
    """

    index: int
    bits: np.ndarray
    confident: np.ndarray
    gob_available: np.ndarray
    gob_parity_ok: np.ndarray
    noise_map: np.ndarray
    threshold: float
    n_captures: int
    spread: float = 0.0

    @property
    def available_ratio(self) -> float:
        """Fraction of GOBs whose Blocks all decoded."""
        return float(np.mean(self.gob_available))

    @property
    def parity_error_ratio(self) -> float:
        """Fraction of *available* GOBs whose parity check fails."""
        available = int(np.sum(self.gob_available))
        if available == 0:
            return 0.0
        failures = int(np.sum(self.gob_available & ~self.gob_parity_ok))
        return failures / available


@dataclass(frozen=True)
class ResyncEvent:
    """One mid-stream pair-phase re-lock performed by the healed decoder."""

    capture_index: int
    time_s: float
    phase_before_s: float
    phase_after_s: float

    def as_dict(self) -> dict[str, float]:
        """JSON-ready form."""
        return {
            "capture_index": self.capture_index,
            "time_s": self.time_s,
            "phase_before_s": self.phase_before_s,
            "phase_after_s": self.phase_after_s,
        }


@dataclass(frozen=True)
class GainSegment:
    """A run of captures sharing one exposure/ambient regime.

    ``gain`` is the segment's mean pixel level relative to the dominant
    segment; segments darker than the blackout cutoff are excluded from
    decoding evidence entirely (an occluded camera sees no chessboard).
    """

    start_capture: int
    n_captures: int
    level: float
    gain: float
    blackout: bool

    def as_dict(self) -> dict[str, object]:
        """JSON-ready form."""
        return {
            "start_capture": self.start_capture,
            "n_captures": self.n_captures,
            "level": self.level,
            "gain": self.gain,
            "blackout": self.blackout,
        }


@dataclass(frozen=True)
class HealingReport:
    """What the self-healing decode pass observed and repaired."""

    enabled: bool = True
    windows: int = 0
    relock_attempts: int = 0
    resyncs: tuple[ResyncEvent, ...] = ()
    segments: tuple[GainSegment, ...] = ()
    excluded_captures: int = 0

    @property
    def n_resyncs(self) -> int:
        """Number of adopted phase re-locks."""
        return len(self.resyncs)

    def time_to_resync_s(self, onset_s: float) -> float | None:
        """Seconds from a fault onset to the first re-lock at/after it."""
        for event in self.resyncs:
            if event.time_s >= onset_s:
                return event.time_s - onset_s
        return None

    def as_dict(self) -> dict[str, object]:
        """JSON-ready form."""
        return {
            "enabled": self.enabled,
            "windows": self.windows,
            "relock_attempts": self.relock_attempts,
            "resyncs": [event.as_dict() for event in self.resyncs],
            "segments": [segment.as_dict() for segment in self.segments],
            "excluded_captures": self.excluded_captures,
        }

    def summary(self) -> str:
        """One-line human-readable form."""
        return (
            f"healing: windows={self.windows} "
            f"relocks={len(self.resyncs)}/{self.relock_attempts} "
            f"segments={len(self.segments)} excluded={self.excluded_captures}"
        )

    @staticmethod
    def merge(reports: "list[HealingReport]") -> "HealingReport | None":
        """Fold several rounds' reports into one (None when empty)."""
        if not reports:
            return None
        return HealingReport(
            enabled=any(r.enabled for r in reports),
            windows=sum(r.windows for r in reports),
            relock_attempts=sum(r.relock_attempts for r in reports),
            resyncs=tuple(e for r in reports for e in r.resyncs),
            segments=tuple(s for r in reports for s in r.segments),
            excluded_captures=sum(r.excluded_captures for r in reports),
        )


class InFrameDecoder:
    """Recovers data frames from camera captures.

    Parameters
    ----------
    config:
        The sender's InFrame configuration (the receiver shares it, like a
        channel profile).
    geometry:
        The sender-side frame geometry.
    camera_height, camera_width:
        Capture resolution, for the Block label map.
    inset:
        Fraction of each Block edge excluded from its noise statistic.
    aggregation:
        How evidence from the several captures of one data-frame cycle is
        combined.  ``"max"`` (default) takes each Block's strongest noise
        reading, which recovers Blocks that a rolling-shutter band
        cancelled in *some* captures; ``"mean"`` is the stability-weighted
        average (kept for the aggregation ablation).
    clock_phase_s:
        Offset between the captures' timestamps and the display's
        data-frame clock (see :meth:`synchronized` for estimating it).
    screen_rect:
        Where the display sits in the capture when the camera is further
        away than the paper's 50 cm setup (``CameraModel.screen_rect()``).
    view:
        Optional :class:`~repro.camera.geometry.PerspectiveView` for
        off-axis capture; the Block label map is built by warping the
        display-space map through the view's homography.
    """

    def __init__(
        self,
        config: InFrameConfig,
        geometry: FrameGeometry,
        camera_height: int,
        camera_width: int,
        inset: float = 0.2,
        aggregation: str = "max",
        clock_phase_s: float = 0.0,
        screen_rect: tuple[int, int, int, int] | None = None,
        view: PerspectiveView | None = None,
    ) -> None:
        if aggregation not in ("max", "mean"):
            raise ValueError(f"aggregation must be 'max' or 'mean', got {aggregation!r}")
        self.aggregation = aggregation
        self.clock_phase_s = float(clock_phase_s)
        check_positive_int(camera_height, "camera_height")
        check_positive_int(camera_width, "camera_width")
        self.config = config
        self.geometry = geometry
        self.camera_height = int(camera_height)
        self.camera_width = int(camera_width)
        self.inset = float(inset)
        self.screen_rect = screen_rect
        self.view = view
        self.waveform = SmoothingWaveform(config.tau, config.waveform)
        if view is not None:
            from repro.camera.geometry import warp_labels

            display_labels = geometry.display_block_index_map(inset)
            h_matrix = view.homography(geometry.frame_height, geometry.frame_width)
            self._labels = warp_labels(
                display_labels, h_matrix, (camera_height, camera_width)
            )
        else:
            self._labels = geometry.camera_block_index_maps(
                camera_height, camera_width, inset, screen_rect
            )
        self._valid = self._labels >= 0
        n_blocks = config.block_rows * config.block_cols
        self._counts = np.bincount(self._labels[self._valid], minlength=n_blocks).astype(
            np.float64
        )
        if np.any(self._counts == 0):
            raise ValueError(
                "some Blocks map to zero camera pixels; the capture resolution "
                "is too low for this Block grid"
            )

    # ------------------------------------------------------------------
    # Per-capture processing
    # ------------------------------------------------------------------
    def block_noise_map(self, pixels: np.ndarray) -> np.ndarray:
        """Texture-corrected induced-noise level of every Block.

        Returns a ``(block_rows, block_cols)`` float map: mean
        ``|pixels - smooth(pixels)|`` over each Block core, minus the
        frame-level mean (the paper's high-texture correction).
        """
        img = np.asarray(pixels, dtype=np.float32)
        if img.shape != (self.camera_height, self.camera_width):
            raise ValueError(
                f"capture shape {img.shape} does not match decoder "
                f"({self.camera_height}, {self.camera_width})"
            )
        smooth = ndimage.uniform_filter(img, size=3, mode="nearest")
        diff = np.abs(img - smooth)
        sums = np.bincount(
            self._labels[self._valid],
            weights=diff[self._valid].astype(np.float64),
            minlength=self._counts.size,
        )
        noise = (sums / self._counts).reshape(
            self.config.block_rows, self.config.block_cols
        )
        return (noise - noise.mean()).astype(np.float64)

    def assign(
        self, mid_exposure_s: float, extra_phase_s: float = 0.0
    ) -> tuple[int, float, float]:
        """Map a mid-exposure time to ``(data_index, weight, contamination)``.

        ``extra_phase_s`` is an additional clock correction on top of
        ``clock_phase_s``; the self-healing pass uses it to re-assign
        stored observations under candidate phases without reprocessing
        any pixels.
        """
        local_time = mid_exposure_s - self.clock_phase_s - extra_phase_s
        display_index = int(np.floor(local_time * self.config.refresh_hz))
        display_index = max(display_index, 0)
        data_index, step = divmod(display_index, self.config.tau)
        current_factor, next_factor = self.waveform.factors(step)
        if next_factor > current_factor:
            return data_index + 1, float(next_factor**2), float(current_factor)
        return data_index, float(current_factor**2), float(next_factor)

    def observe(self, capture: CapturedFrame) -> BlockObservation:
        """Extract evidence from one capture: noise map + cycle weighting.

        A capture taken early in a cycle is clean evidence for the cycle's
        own data frame.  Deep into the transition half the *incoming* data
        frame's pattern dominates (Omega_01 near 1, Omega_10 near 0), so
        such captures are assigned to the next data frame instead -- this
        buys the aggregator roughly one extra usable capture per cycle.
        """
        data_index, weight, contamination = self.assign(capture.mid_exposure_s)
        return BlockObservation(
            data_frame_index=data_index,
            weight=weight,
            contamination=contamination,
            noise_map=self.block_noise_map(capture.pixels),
            capture_index=capture.index,
            mid_exposure_s=float(capture.mid_exposure_s),
            level=float(np.asarray(capture.pixels, dtype=np.float64).mean()),
        )

    def synchronized(self, captures: list[CapturedFrame]) -> "InFrameDecoder":
        """A copy whose data-frame clock is estimated blindly from *captures*.

        When the receiver's timestamps are not on the display's clock (no
        shared reference), :func:`estimate_cycle_phase` recovers the cycle
        phase from the capture noise energies and this decoder variant
        groups captures accordingly.
        """
        phase = estimate_cycle_phase(captures, self)
        return InFrameDecoder(
            self.config,
            self.geometry,
            self.camera_height,
            self.camera_width,
            inset=self.inset,
            aggregation=self.aggregation,
            clock_phase_s=self.clock_phase_s + phase,
            screen_rect=self.screen_rect,
            view=self.view,
        )

    # ------------------------------------------------------------------
    # Aggregation and decision
    # ------------------------------------------------------------------
    def decode(self, captures: list[CapturedFrame]) -> list[DecodedDataFrame]:
        """Decode a capture sequence into per-data-frame verdicts.

        Data frames observed by no capture (or only by zero-weight
        transition captures) are skipped.
        """
        return self.decide_observations([self.observe(c) for c in captures])

    def decide_observations(
        self, observations: list[BlockObservation]
    ) -> list[DecodedDataFrame]:
        """Aggregate pre-extracted observations into data-frame verdicts.

        The per-capture :meth:`observe` stage is the expensive half of
        decoding and is embarrassingly parallel; ``repro.runtime``
        computes observations on worker processes and feeds them here,
        while :meth:`decode` is the serial observe-then-decide
        composition.  The verdicts depend only on the observation
        *values*, never on which process produced them.
        """
        grouped: dict[int, list[BlockObservation]] = {}
        for obs in observations:
            grouped.setdefault(obs.data_frame_index, []).append(obs)
        decoded = []
        for data_index in sorted(grouped):
            frame = self._decide(data_index, grouped[data_index])
            if frame is not None:
                decoded.append(frame)
        return decoded

    # ------------------------------------------------------------------
    # Self-healing decode (pair-phase tracking + gain segmentation)
    # ------------------------------------------------------------------
    def decode_healed(
        self, captures: list[CapturedFrame]
    ) -> tuple[list[DecodedDataFrame], HealingReport]:
        """Observe-then-heal composition of :meth:`decide_observations_healed`."""
        return self.decide_observations_healed([self.observe(c) for c in captures])

    def decide_observations_healed(
        self,
        observations: list[BlockObservation],
        *,
        window_data_frames: int = 3,
        relock_trigger: float = 0.85,
        score_floor: float = 0.2,
        gain_step: float = 0.12,
        blackout_gain: float = 0.35,
        max_resyncs: int = 8,
    ) -> tuple[list[DecodedDataFrame], HealingReport]:
        """Decode with continuous pair-phase tracking and gain re-estimation.

        The plain :meth:`decide_observations` trusts capture timestamps and
        a fixed exposure: one camera-clock slip mid-stream misassigns every
        later capture and corrupts the rest of the transmission.  This pass
        is the self-healing variant:

        1. **Gain segmentation.**  Captures are split into segments at
           >``gain_step`` jumps of mean pixel level (exposure or ambient
           steps).  Each segment's noise maps are re-normalised to the
           dominant segment's level so per-frame thresholds stay bimodal
           across a step; segments darker than ``blackout_gain`` of the
           reference (occlusions) are dropped from evidence entirely.
        2. **Windowed phase tracking.**  The stream is walked in windows of
           ``window_data_frames`` cycles.  Each window is scored by decode
           quality (mean fraction of GOBs available *and* parity-clean).  A
           score collapse below ``relock_trigger`` of the running baseline
           (or below ``score_floor`` outright) marks desynchronisation; the
           pass then re-locks by scoring candidate phases -- every
           whole-display-frame slip within half a cycle, plus the blind
           energy estimate over the window (the sliding-window form of
           :func:`estimate_cycle_phase`) -- and adopts the best candidate
           if it clearly improves the window.
        3. **Re-assignment.**  Observations are re-assigned to data frames
           under their window's phase (noise maps are phase-independent, so
           healing never reprocesses pixels) and aggregated as usual.

        Returns the decoded frames plus a :class:`HealingReport` recording
        every segment, re-lock attempt and adopted resync.
        """
        obs = sorted(observations, key=lambda o: (o.mid_exposure_s, o.capture_index))
        if not obs:
            return [], HealingReport()

        # --- 1. gain segmentation -------------------------------------
        levels = [o.level for o in obs]
        spans: list[tuple[int, int]] = []
        start = 0
        for i in range(1, len(obs)):
            ref = float(np.median(levels[start:i]))
            if ref > 1e-6 and abs(levels[i] / ref - 1.0) > gain_step:
                spans.append((start, i))
                start = i
        spans.append((start, len(obs)))
        largest = max(spans, key=lambda span: span[1] - span[0])
        ref_level = float(np.median(levels[largest[0] : largest[1]]))

        segments: list[GainSegment] = []
        active: list[BlockObservation] = []
        excluded = 0
        for s0, s1 in spans:
            med = float(np.median(levels[s0:s1]))
            gain = med / ref_level if ref_level > 1e-6 else 1.0
            blackout = gain < blackout_gain
            segments.append(
                GainSegment(
                    start_capture=obs[s0].capture_index,
                    n_captures=s1 - s0,
                    level=med,
                    gain=gain,
                    blackout=blackout,
                )
            )
            if blackout:
                excluded += s1 - s0
            elif abs(gain - 1.0) > 0.02:
                scale = 1.0 / gain
                active.extend(
                    replace(o, noise_map=o.noise_map * scale) for o in obs[s0:s1]
                )
            else:
                active.extend(obs[s0:s1])
        if not active:
            return [], HealingReport(
                segments=tuple(segments), excluded_captures=excluded
            )

        # --- 2. windowed phase tracking -------------------------------
        cycle_s = self.config.tau / self.config.refresh_hz
        slip_s = 1.0 / self.config.refresh_hz
        max_k = max(self.config.tau // 2, 1)
        # Candidate phases are absolute whole-display-frame offsets within
        # half a cycle (plus zero, so a spurious lock can release), never
        # offsets from the current phase: re-locks cannot walk the phase
        # beyond the model's slip bound by accumulating adoptions.
        slips = [k * slip_s for k in range(-max_k, max_k + 1)]
        window_s = window_data_frames * cycle_s

        phases = [0.0] * len(active)
        resyncs: list[ResyncEvent] = []
        windows = 0
        attempts = 0
        baseline: float | None = None
        phase = 0.0
        refine = False
        pos = 0
        while pos < len(active):
            t0 = active[pos].mid_exposure_s
            end = pos
            while end < len(active) and active[end].mid_exposure_s < t0 + window_s:
                end += 1
            if end - pos < 3:
                end = min(len(active), pos + 3)
            win = active[pos:end]
            windows += 1
            score = self._phase_score(win, phase)
            triggered = (
                len(win) >= 3
                and len(resyncs) < max_resyncs
                and (
                    score < score_floor
                    or (baseline is not None and score < relock_trigger * baseline)
                )
            )
            # A re-lock adopted on an onset-straddling window is often a
            # compromise between the clean head and the slipped tail, so
            # the window right after an adoption gets one unconditional
            # refinement attempt with a light margin.
            refining = refine and not triggered and len(win) >= 3
            refine = False
            if triggered or refining:
                attempts += 1
                best_phase, best_score = phase, score
                candidates = [s for s in slips if s != phase]
                estimate = self._window_phase_estimate(win)
                if estimate is not None:
                    candidates.append(estimate)
                for cand in candidates:
                    cand_score = self._phase_score(win, cand)
                    if cand_score > best_score + 1e-9:
                        best_phase, best_score = cand, cand_score
                margin = (
                    max(score * 1.02, score + 0.02)
                    if refining
                    else max(score * 1.15, score + 0.08)
                )
                if best_phase != phase and best_score >= margin:
                    resyncs.append(
                        ResyncEvent(
                            capture_index=win[0].capture_index,
                            time_s=float(win[0].mid_exposure_s),
                            phase_before_s=phase,
                            phase_after_s=best_phase,
                        )
                    )
                    phase = best_phase
                    score = best_score
                    refine = triggered and len(resyncs) < max_resyncs
            baseline = score if baseline is None else 0.6 * baseline + 0.4 * score
            for k in range(pos, end):
                phases[k] = phase
            pos = end

        # --- 3. re-assignment and final decision ----------------------
        healed = [self._reassign(active[i], phases[i]) for i in range(len(active))]
        report = HealingReport(
            windows=windows,
            relock_attempts=attempts,
            resyncs=tuple(resyncs),
            segments=tuple(segments),
            excluded_captures=excluded,
        )
        return self.decide_observations(healed), report

    def _reassign(
        self, obs: BlockObservation, extra_phase_s: float
    ) -> BlockObservation:
        """The observation re-timed under an extra clock correction."""
        data_index, weight, contamination = self.assign(
            obs.mid_exposure_s, extra_phase_s
        )
        if (
            data_index == obs.data_frame_index
            and weight == obs.weight
            and contamination == obs.contamination
        ):
            return obs
        return replace(
            obs,
            data_frame_index=data_index,
            weight=weight,
            contamination=contamination,
        )

    def _phase_score(
        self, observations: list[BlockObservation], extra_phase_s: float
    ) -> float:
        """Decode quality of *observations* under a candidate phase.

        Per-capture-weighted fraction of GOBs that are both available and
        parity-clean -- the objective the re-lock search maximises.  Each
        decodable frame's fraction counts once per capture assigned to it
        and the denominator is the total capture count, so a candidate
        cannot inflate its score by pushing captures out of weak edge
        frames (captures stranded in undecodable frames score zero).
        """
        grouped: dict[int, list[BlockObservation]] = {}
        for obs in observations:
            moved = self._reassign(obs, extra_phase_s)
            grouped.setdefault(moved.data_frame_index, []).append(moved)
        total = 0.0
        for data_index in sorted(grouped):
            members = grouped[data_index]
            frame = self._decide(data_index, members)
            if frame is None:
                continue
            frac = float(np.mean(frame.gob_available & frame.gob_parity_ok))
            total += frac * len(members)
        return total / len(observations) if observations else 0.0

    def _window_phase_estimate(
        self, window: list[BlockObservation]
    ) -> float | None:
        """Blind energy-based phase candidate for one window, signed.

        The sliding-window form of :func:`estimate_cycle_phase`: noise
        energies come from the stored observation maps instead of fresh
        pixel processing.  The ``[0, cycle)`` estimate is mapped to the
        signed equivalent of smaller magnitude so re-locks preserve
        absolute data-frame indices for slips under half a cycle.
        """
        if len(window) < 3:
            return None
        times = np.array([o.mid_exposure_s - self.clock_phase_s for o in window])
        energies = np.array([float(np.abs(o.noise_map).mean()) for o in window])
        phi = phase_from_energies(times, energies, self.config)
        cycle_s = self.config.tau / self.config.refresh_hz
        if phi > cycle_s / 2.0:
            phi -= cycle_s
        return phi

    def _decide(
        self, data_index: int, observations: list[BlockObservation]
    ) -> DecodedDataFrame | None:
        total_weight = sum(obs.weight for obs in observations)
        if total_weight <= 1e-9:
            return None
        if self.aggregation == "max":
            # Use clean captures only: mid-transition the *other* data
            # frame's Blocks leak spurious noise into this frame's
            # 0-Blocks, and a max would keep every leak.  Fall back to the
            # cleanest capture when the cycle was only seen mid-transition.
            usable = [
                obs
                for obs in observations
                if obs.weight >= 0.8 and obs.contamination <= 0.12
            ]
            if not usable:
                usable = [min(observations, key=lambda obs: obs.contamination)]
            noise = np.maximum.reduce([obs.noise_map for obs in usable])
        else:
            noise = sum(obs.weight * obs.noise_map for obs in observations) / total_weight
        threshold, spread = self._threshold(noise)
        raw_bits = noise > threshold
        if spread <= 1e-9:
            confident = np.zeros_like(raw_bits, dtype=bool)
        else:
            confident = np.abs(noise - threshold) >= self.config.decision_margin * spread
        gob_available = self._gob_available(confident)
        bits, parity_ok, _ = decode_gob_grid(raw_bits, self.config)
        return DecodedDataFrame(
            index=data_index,
            bits=bits,
            confident=confident,
            gob_available=gob_available,
            gob_parity_ok=parity_ok,
            noise_map=noise,
            threshold=threshold,
            n_captures=len(observations),
            spread=spread,
        )

    def _threshold(self, noise: np.ndarray) -> tuple[float, float]:
        """Decision threshold and cluster spread for a noise map."""
        values = noise.ravel()
        if self.config.threshold is not None:
            threshold = float(self.config.threshold)
        else:
            threshold = two_means_threshold(values)
        ones = values[values > threshold]
        zeros = values[values <= threshold]
        if ones.size == 0 or zeros.size == 0:
            return threshold, 0.0
        spread = float(ones.mean() - zeros.mean())
        return threshold, max(spread, 0.0)

    def _gob_available(self, confident: np.ndarray) -> np.ndarray:
        """Per-GOB availability from the Block confidence mask.

        XOR GOBs need every Block decoded (the paper's rule).  Hamming
        GOBs tolerate one unconfident Block among the 8 coded ones -- the
        SECDED correction covers it -- and ignore the spare 9th Block.
        """
        m = self.config.gob_size
        tiled = confident.reshape(self.config.gob_rows, m, self.config.gob_cols, m)
        if self.config.gob_code == "hamming84":
            flat = tiled.transpose(0, 2, 1, 3).reshape(
                self.config.gob_rows, self.config.gob_cols, m * m
            )
            unconfident_coded = (~flat[:, :, :8]).sum(axis=2)
            return unconfident_coded <= 1
        return tiled.all(axis=(1, 3))


def two_means_threshold(values: np.ndarray, max_iterations: int = 50) -> float:
    """Midpoint threshold from 1-D 2-means clustering.

    The default when ``config.threshold`` is None.  More stable than Otsu
    on the decoder's noise maps, whose two populations have very different
    variances (tight 0-cluster, band-smeared 1-cluster): Lloyd iterations
    converge to the cluster means and the cut sits at their midpoint.
    """
    samples = np.asarray(values, dtype=np.float64).ravel()
    lo, hi = float(samples.min()), float(samples.max())
    if hi - lo < 1e-12:
        return lo
    center0, center1 = np.percentile(samples, [20.0, 80.0])
    if center1 - center0 < 1e-12:
        return float((lo + hi) / 2.0)
    for _ in range(max_iterations):
        cut = (center0 + center1) / 2.0
        low = samples[samples <= cut]
        high = samples[samples > cut]
        if low.size == 0 or high.size == 0:
            break
        new0, new1 = float(low.mean()), float(high.mean())
        if abs(new0 - center0) < 1e-9 and abs(new1 - center1) < 1e-9:
            center0, center1 = new0, new1
            break
        center0, center1 = new0, new1
    return float((center0 + center1) / 2.0)


def otsu_threshold(values: np.ndarray, bins: int = 128) -> float:
    """Otsu's bimodal threshold over a 1-D sample.

    Used when ``config.threshold`` is None: the pseudo-random data keeps
    both bit populations present, so the noise histogram is bimodal and
    the maximal between-class variance split recovers the paper's ``T``
    without manual tuning.
    """
    samples = np.asarray(values, dtype=np.float64).ravel()
    lo, hi = float(samples.min()), float(samples.max())
    if hi - lo < 1e-12:
        return lo
    hist, edges = np.histogram(samples, bins=bins, range=(lo, hi))
    centers = (edges[:-1] + edges[1:]) / 2.0
    weights = hist.astype(np.float64) / hist.sum()
    cum_w = np.cumsum(weights)
    cum_mean = np.cumsum(weights * centers)
    total_mean = cum_mean[-1]
    with np.errstate(divide="ignore", invalid="ignore"):
        between = (total_mean * cum_w - cum_mean) ** 2 / (cum_w * (1.0 - cum_w))
    # Splits that leave (almost) everything on one side are degenerate.
    between[~np.isfinite(between)] = -1.0
    between[(cum_w < 1e-3) | (cum_w > 1.0 - 1e-3)] = -1.0
    # Well-separated clusters leave a plateau of equally good cuts across
    # the empty gap; take its middle.
    best = between.max()
    plateau = np.flatnonzero(between >= best - 1e-12)
    return float(centers[plateau[len(plateau) // 2]])


def estimate_cycle_phase(
    captures: list[CapturedFrame],
    decoder: InFrameDecoder,
) -> float:
    """Blindly estimate the data-frame cycle phase from capture energies.

    The total |noise| of a capture dips while the envelope transitions
    (half the switching Blocks sit below full amplitude), so correlating
    capture noise energy against the cycle period recovers the phase
    without access to the display clock.  Returns the estimated phase
    offset in seconds, in ``[0, tau / refresh_hz)``.
    """
    if len(captures) < 3:
        raise ValueError("phase estimation needs at least 3 captures")
    times = np.array([c.mid_exposure_s for c in captures])
    energies = np.array(
        [float(np.abs(decoder.block_noise_map(c.pixels)).mean()) for c in captures]
    )
    return phase_from_energies(times, energies, decoder.config)


def phase_from_energies(
    times: np.ndarray, energies: np.ndarray, config: InFrameConfig
) -> float:
    """Cycle phase maximising stable/transition-half energy contrast.

    The scan core shared by :func:`estimate_cycle_phase` (fresh pixel
    energies over a whole run) and the healed decoder's sliding-window
    re-lock (stored observation energies).  Returns a phase in
    ``[0, tau / refresh_hz)``.
    """
    cycle_s = config.tau / config.refresh_hz
    centered = energies - energies.mean()
    phases = np.linspace(0.0, cycle_s, 48, endpoint=False)
    scores = np.empty_like(phases)
    for i, phi in enumerate(phases):
        # Captures landing in the stable half should carry the energy.
        steps = np.floor(((times - phi) % cycle_s) / cycle_s * config.tau).astype(int)
        stable = steps < config.tau // 2
        if stable.all() or not stable.any():
            scores[i] = 0.0
        else:
            scores[i] = centered[stable].mean() - centered[~stable].mean()
    return float(phases[int(np.argmax(scores))])


# ----------------------------------------------------------------------
# Decode diagnostics (paper Section 4's statistics as repro.obs metrics)
# ----------------------------------------------------------------------
#: Bucket edges for texture-corrected per-Block noise levels (pixel counts).
#: Fixed so worker-local histograms merge exactly (see repro.obs.metrics).
NOISE_LEVEL_EDGES = (-8.0, -4.0, -2.0, -1.0, -0.5, 0.0, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0)
#: Bucket edges for |noise - threshold| / spread margins (spread units;
#: compare ``InFrameConfig.decision_margin``).
THRESHOLD_MARGIN_EDGES = (0.05, 0.1, 0.2, 0.35, 0.5, 0.75, 1.0, 1.5, 2.0, 3.0)


def record_observation_telemetry(
    observation: BlockObservation, telemetry: Telemetry
) -> None:
    """Record one capture's per-Block noise evidence into *telemetry*.

    Called on the worker that extracted the observation; the histogram
    buckets ride back with the chunk result and merge exactly, so the
    aggregate is identical at any worker count.
    """
    metrics = telemetry.metrics
    metrics.counter("decode.observations").inc()
    metrics.histogram("decode.block_noise", NOISE_LEVEL_EDGES).observe_array(
        observation.noise_map
    )


def record_decode_telemetry(
    decoded: list[DecodedDataFrame], telemetry: Telemetry
) -> None:
    """Record the decided frames' Section-4 statistics into *telemetry*.

    Per-frame threshold margins (in spread units), Block confidence and
    per-GOB availability/parity accounting -- the numbers DeepLight-style
    link debugging needs per condition, here per run.
    """
    metrics = telemetry.metrics
    margins = metrics.histogram("decode.threshold_margin", THRESHOLD_MARGIN_EDGES)
    for frame in decoded:
        metrics.counter("decode.frames").inc()
        if frame.spread > 1e-9:
            margins.observe_array(
                np.abs(frame.noise_map - frame.threshold) / frame.spread
            )
        metrics.counter("decode.blocks_total").inc(int(frame.confident.size))
        metrics.counter("decode.blocks_confident").inc(int(frame.confident.sum()))
        metrics.counter("decode.gobs_total").inc(int(frame.gob_available.size))
        metrics.counter("decode.gobs_available").inc(int(frame.gob_available.sum()))
        metrics.counter("decode.gob_parity_failures").inc(
            int(np.sum(frame.gob_available & ~frame.gob_parity_ok))
        )


def record_healing_telemetry(report: HealingReport, telemetry: Telemetry) -> None:
    """Record a healed decode's repairs: counters plus resync trace events."""
    metrics = telemetry.metrics
    metrics.counter("heal.windows").inc(report.windows)
    metrics.counter("heal.relock_attempts").inc(report.relock_attempts)
    metrics.counter("heal.resyncs").inc(report.n_resyncs)
    metrics.counter("heal.excluded_captures").inc(report.excluded_captures)
    metrics.counter("heal.blackout_segments").inc(
        sum(1 for segment in report.segments if segment.blackout)
    )
    for event in report.resyncs:
        telemetry.tracer.event(
            "heal.resync",
            capture=event.capture_index,
            time_s=event.time_s,
            phase_before_s=event.phase_before_s,
            phase_after_s=event.phase_after_s,
        )
