"""InFrame configuration.

One dataclass holds every tunable the paper introduces, with the paper's
prototype values as defaults:

* ``element_pixels`` (p): side of a super Pixel in device pixels; p = 4 is
  the paper's choice for 1920x1080 at typical viewing distance.
* ``pixels_per_block`` (s): side of a coding Block in super Pixels; one
  Block carries one bit.
* ``gob_size`` (m): side of a Group of Blocks in Blocks; the prototype uses
  2x2 GOBs with the fourth Block as XOR parity.
* ``block_rows`` x ``block_cols``: the data-frame grid; the paper uses
  30x50 Blocks grouped into 15x25 GOBs.
* ``amplitude`` (delta): chessboard amplitude in pixel-value units.
* ``tau``: data-frame cycle length, counted in *displayed frames* (tau/2
  complementary iterations).  The paper's throughput numbers are mutually
  consistent under this reading (see DESIGN.md).
* ``waveform``: the transition envelope -- the paper picked half a
  square-root raised cosine over linear and stair alternatives.

Two extension flags go beyond the paper (both default off):

* ``gamma_compensation`` -- shift each modulated pair so complementarity
  holds in *luminance* rather than pixel values, removing the static
  gamma-convexity brightening of 1-Blocks (see DESIGN.md);
* ``adaptive_amplitude`` -- raise delta per Block up to
  ``adaptive_amplitude_max`` where the content's own texture perceptually
  masks the modulation, the Section 5 "increase the screen-camera channel
  rate without interfering the primary screen-eye channel" direction.
* ``gob_code`` -- ``"xor"`` is the prototype's parity; ``"hamming84"``
  implements the paper's "more sophisticated error correction ... for
  larger GOB" future work with 3x3 GOBs and SECDED correction.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro._util import check_in_range, check_positive, check_positive_int

_WAVEFORMS = ("srrc", "linear", "stair")
_PATTERNS = ("chessboard", "stripes", "random")


@dataclass(frozen=True)
class InFrameConfig:
    """All InFrame parameters; defaults reproduce the paper's prototype."""

    element_pixels: int = 4
    pixels_per_block: int = 9
    gob_size: int = 2
    block_rows: int = 30
    block_cols: int = 50
    amplitude: float = 20.0
    tau: int = 12
    waveform: str = "srrc"
    pattern: str = "chessboard"
    refresh_hz: float = 120.0
    video_fps: float = 30.0
    threshold: float | None = None
    decision_margin: float = 0.18
    clip_mode: str = "pixel"
    gamma_compensation: bool = False
    adaptive_amplitude: bool = False
    adaptive_amplitude_max: float = 45.0
    gob_code: str = "xor"

    def __post_init__(self) -> None:
        check_positive_int(self.element_pixels, "element_pixels")
        check_positive_int(self.pixels_per_block, "pixels_per_block")
        check_positive_int(self.gob_size, "gob_size")
        if self.gob_size < 2:
            raise ValueError(f"gob_size must be >= 2 (one parity Block per GOB), got {self.gob_size}")
        check_positive_int(self.block_rows, "block_rows")
        check_positive_int(self.block_cols, "block_cols")
        if self.block_rows % self.gob_size or self.block_cols % self.gob_size:
            raise ValueError(
                f"block grid {self.block_rows}x{self.block_cols} must tile into "
                f"{self.gob_size}x{self.gob_size} GOBs"
            )
        check_in_range(self.amplitude, "amplitude", 0.0, 127.0)
        check_positive_int(self.tau, "tau")
        if self.tau % 2:
            raise ValueError(f"tau must be even (whole complementary pairs), got {self.tau}")
        if self.waveform not in _WAVEFORMS:
            raise ValueError(f"waveform must be one of {_WAVEFORMS}, got {self.waveform!r}")
        if self.pattern not in _PATTERNS:
            raise ValueError(f"pattern must be one of {_PATTERNS}, got {self.pattern!r}")
        check_positive(self.refresh_hz, "refresh_hz")
        check_positive(self.video_fps, "video_fps")
        duplication = self.refresh_hz / self.video_fps
        if abs(duplication - round(duplication)) > 1e-9 or duplication < 1:
            raise ValueError(
                f"refresh_hz ({self.refresh_hz}) must be an integer multiple of "
                f"video_fps ({self.video_fps})"
            )
        if self.threshold is not None:
            check_positive(self.threshold, "threshold")
        check_in_range(self.decision_margin, "decision_margin", 0.0, 1.0)
        if self.clip_mode not in ("pixel", "block"):
            raise ValueError(f"clip_mode must be 'pixel' or 'block', got {self.clip_mode!r}")
        check_in_range(self.adaptive_amplitude_max, "adaptive_amplitude_max", 1.0, 127.0)
        if self.gob_code not in ("xor", "hamming84"):
            raise ValueError(f"gob_code must be 'xor' or 'hamming84', got {self.gob_code!r}")
        if self.gob_code == "hamming84" and self.gob_size != 3:
            raise ValueError(
                "gob_code='hamming84' needs 3x3 GOBs (8 coded Blocks + 1 spare), "
                f"got gob_size={self.gob_size}"
            )

    # ------------------------------------------------------------------
    # Derived geometry
    # ------------------------------------------------------------------
    @property
    def block_side_px(self) -> int:
        """Side of one Block in device pixels (p * s)."""
        return self.element_pixels * self.pixels_per_block

    @property
    def data_height_px(self) -> int:
        """Height of the data area in device pixels."""
        return self.block_rows * self.block_side_px

    @property
    def data_width_px(self) -> int:
        """Width of the data area in device pixels."""
        return self.block_cols * self.block_side_px

    @property
    def gob_rows(self) -> int:
        """GOB grid rows."""
        return self.block_rows // self.gob_size

    @property
    def gob_cols(self) -> int:
        """GOB grid columns."""
        return self.block_cols // self.gob_size

    @property
    def n_gobs(self) -> int:
        """Total GOBs per data frame."""
        return self.gob_rows * self.gob_cols

    @property
    def bits_per_gob(self) -> int:
        """Data bits per GOB.

        XOR parity (the paper's prototype): all Blocks minus one parity
        Block.  Hamming(8,4) SECDED (the paper's larger-GOB future work):
        4 data bits in a 3x3 GOB.
        """
        if self.gob_code == "hamming84":
            return 4
        return self.gob_size * self.gob_size - 1

    @property
    def bits_per_frame(self) -> int:
        """Data bits per data frame (the paper's w/s/2 x h/s/2 x 3)."""
        return self.n_gobs * self.bits_per_gob

    @property
    def frame_duplication(self) -> int:
        """Displayed frames per content video frame."""
        return int(round(self.refresh_hz / self.video_fps))

    @property
    def data_frame_rate_hz(self) -> float:
        """Data frames per second (refresh / tau)."""
        return self.refresh_hz / self.tau

    @property
    def raw_bit_rate_bps(self) -> float:
        """Data bits per second before availability/error accounting."""
        return self.bits_per_frame * self.data_frame_rate_hz

    def display_frames_per_data_frame(self) -> int:
        """Alias for tau with its unit spelled out."""
        return self.tau

    # ------------------------------------------------------------------
    # Variants
    # ------------------------------------------------------------------
    def with_updates(self, **changes: object) -> "InFrameConfig":
        """A copy with the given fields replaced (validation re-runs)."""
        return replace(self, **changes)

    def scaled(self, factor: float) -> "InFrameConfig":
        """A spatially scaled config for reduced-resolution experiments.

        Keeps the Block *grid* (bits per frame, rates, GOB structure) and
        the super-Pixel side ``p`` fixed -- ``p`` sets the pattern's
        spatial frequency relative to the camera's sampling, which is what
        the paper tuned to the eye/camera resolution -- and shrinks the
        Block side ``s`` instead.  A scaled run therefore trades per-bit
        spatial redundancy for speed while preserving the channel physics.
        """
        check_positive(factor, "factor")
        s = max(2, int(round(self.pixels_per_block * factor)))
        return self.with_updates(pixels_per_block=s)
