"""Link metrics: the quantities the paper's Figure 7 reports.

The paper reports, per configuration:

* throughput in kbps,
* the ratio of available GOBs,
* the GOB error rate,

and the throughput follows ``bits_per_frame * data_frame_rate *
available_ratio * (1 - error_rate)`` (see DESIGN.md for the accounting
that reproduces the paper's own numbers).  With ground truth in hand the
harness measures the *true* error rate of available GOBs; the receiver's
parity-based estimate is reported alongside.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.config import InFrameConfig
from repro.core.decoder import DecodedDataFrame


@dataclass(frozen=True)
class FrameComparison:
    """Ground-truth comparison for one decoded data frame."""

    index: int
    bit_accuracy: float
    available_ratio: float
    gob_error_rate: float
    parity_error_rate: float


@dataclass(frozen=True)
class LinkStats:
    """Aggregate link statistics over a run."""

    n_data_frames: int
    available_gob_ratio: float
    gob_error_rate: float
    parity_error_rate: float
    bit_accuracy: float
    data_frame_rate_hz: float
    bits_per_frame: int
    throughput_bps: float
    goodput_bps: float

    @property
    def throughput_kbps(self) -> float:
        """Throughput in kbps (the paper's headline unit)."""
        return self.throughput_bps / 1000.0

    def row(self) -> str:
        """One formatted summary line for the benchmark tables."""
        return (
            f"frames={self.n_data_frames:3d}  avail={self.available_gob_ratio * 100:5.1f}%  "
            f"err={self.gob_error_rate * 100:5.1f}%  "
            f"throughput={self.throughput_kbps:5.2f} kbps"
        )


def gob_correct_mask(
    truth: np.ndarray, decoded: DecodedDataFrame, config: InFrameConfig
) -> np.ndarray:
    """Per-GOB correctness: every Block bit matches the ground truth."""
    truth = np.asarray(truth, dtype=bool)
    if truth.shape != decoded.bits.shape:
        raise ValueError(f"truth {truth.shape} vs decoded {decoded.bits.shape}")
    matches = truth == decoded.bits
    m = config.gob_size
    tiled = matches.reshape(config.gob_rows, m, config.gob_cols, m)
    return tiled.all(axis=(1, 3))


def compare_bits(
    truth: np.ndarray, decoded: DecodedDataFrame, config: InFrameConfig
) -> FrameComparison:
    """Score one decoded data frame against its transmitted grid."""
    truth = np.asarray(truth, dtype=bool)
    correct = gob_correct_mask(truth, decoded, config)
    available = decoded.gob_available
    n_available = int(available.sum())
    if n_available:
        error_rate = float((available & ~correct).sum() / n_available)
    else:
        error_rate = 0.0
    return FrameComparison(
        index=decoded.index,
        bit_accuracy=float((truth == decoded.bits).mean()),
        available_ratio=float(available.mean()),
        gob_error_rate=error_rate,
        parity_error_rate=decoded.parity_error_ratio,
    )


def summarize_link(
    truths: list[np.ndarray],
    decodeds: list[DecodedDataFrame],
    config: InFrameConfig,
) -> LinkStats:
    """Aggregate Figure-7 statistics over a run.

    ``truths[i]`` must be the transmitted grid for ``decodeds[i]``.
    """
    if len(truths) != len(decodeds):
        raise ValueError(f"{len(truths)} truths vs {len(decodeds)} decoded frames")
    if not decodeds:
        raise ValueError("no decoded data frames to summarize")
    comparisons = [
        compare_bits(truth, decoded, config) for truth, decoded in zip(truths, decodeds)
    ]
    available = float(np.mean([c.available_ratio for c in comparisons]))
    # Error rate averaged over frames that had available GOBs.
    weighted_errors = [
        (c.gob_error_rate, c.available_ratio) for c in comparisons if c.available_ratio > 0
    ]
    if weighted_errors:
        errors, weights = zip(*weighted_errors)
        gob_error = float(np.average(errors, weights=weights))
    else:
        gob_error = 0.0
    parity_error = float(np.mean([c.parity_error_rate for c in comparisons]))
    accuracy = float(np.mean([c.bit_accuracy for c in comparisons]))
    rate = config.data_frame_rate_hz
    bits = config.bits_per_frame
    throughput = bits * rate * available * (1.0 - gob_error)
    goodput = bits * rate * available * max(0.0, 1.0 - gob_error) * (1.0 - parity_error)
    return LinkStats(
        n_data_frames=len(decodeds),
        available_gob_ratio=available,
        gob_error_rate=gob_error,
        parity_error_rate=parity_error,
        bit_accuracy=accuracy,
        data_frame_rate_hz=rate,
        bits_per_frame=bits,
        throughput_bps=float(throughput),
        goodput_bps=float(goodput),
    )
